"""Static-analysis pruning of the bounded-exhaustive search.

Two lossless prunes (see ``disprove(..., analyze=True)``): queries
statically empty on both sides short-circuit to an exhausted result,
and support-determined pairs clamp enumeration to multiplicity 1.  The
tests check both the savings and the losslessness — same verdict as the
unpruned search on counterexample-bearing and equivalent pairs alike.
"""

from repro.core import ast
from repro.core.schema import INT, Leaf, Node
from repro.obs.metrics import counter
from repro.solver import disprove

SCHEMA = Node(Leaf(INT), Leaf(INT))
R = ast.Table("R", SCHEMA)
S = ast.Table("S", SCHEMA)
T = ast.Table("T", SCHEMA)
FALSE = ast.PredFalse()


class TestStaticEqualShortCircuit:
    def test_both_statically_empty_skips_enumeration(self):
        before = counter("analysis.disprover.static_equal").value
        q1 = ast.Where(R, FALSE)
        q2 = ast.Product(ast.Where(R, FALSE), S)
        result = disprove(q1, q2)
        assert result.exhausted
        assert not result.found
        assert result.instances_checked == 0
        assert counter("analysis.disprover.static_equal").value > before

    def test_disabled_analysis_still_enumerates(self):
        q1 = ast.Where(R, FALSE)
        q2 = ast.Where(ast.Where(R, FALSE), FALSE)
        result = disprove(q1, q2, analyze=False)
        assert result.exhausted
        assert not result.found
        assert result.instances_checked > 0


class TestMultiplicityClamp:
    def test_clamp_shrinks_the_search_space(self):
        before = counter("analysis.disprover.mult_clamped").value
        q1 = ast.Distinct(ast.Product(R, T))
        q2 = ast.Distinct(ast.UnionAll(ast.Product(R, T),
                                       ast.Product(R, T)))
        pruned = disprove(q1, q2)
        full = disprove(q1, q2, analyze=False)
        assert pruned.exhausted and full.exhausted
        assert not pruned.found and not full.found
        assert pruned.instances_checked < full.instances_checked
        assert pruned.bound.max_multiplicity == 1
        assert full.bound.max_multiplicity == 2
        assert counter("analysis.disprover.mult_clamped").value > before

    def test_clamp_preserves_counterexamples(self):
        # the sides differ already at the support level, so the clamped
        # search must still find the witness
        q1 = ast.Distinct(R)
        q2 = ast.Distinct(ast.Where(R, FALSE))
        result = disprove(q1, q2)
        assert result.found
        assert result.bound.max_multiplicity == 1

    def test_bag_queries_are_never_clamped(self):
        # UNION ALL duplicates are invisible at multiplicity 1: the
        # clamp must not apply to non-DISTINCT-rooted queries
        result = disprove(ast.UnionAll(R, R), R)
        assert result.found
        assert result.bound.max_multiplicity == 2
        cx = result.counterexample
        assert cx.lhs_result != cx.rhs_result

    def test_aggregates_are_never_clamped(self):
        # COUNT sees multiplicities through DISTINCT, so the clamp
        # must not apply when an aggregate appears anywhere
        u = ast.Table("U", Leaf(INT))
        count = ast.Select(ast.E2P(ast.Agg("COUNT", u, INT), INT), u)
        q = ast.Distinct(count)
        result = disprove(q, q)
        assert result.exhausted
        assert result.bound.max_multiplicity == 2
