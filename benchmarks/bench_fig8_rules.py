"""Figure 8 — the paper's main results table.

Regenerates:

    Category            No. of rules    Avg. LOC (proof only)
    Basic               8               11.1
    Aggregation         1               50
    Subquery            2               17
    Magic Set           7               30.3
    Index               3               64
    Conjunctive Query   2               1 (automatic)
    Total               23              25.2

Our proof-effort analog is the number of reasoning steps the engine takes
(congruence closures, witness searches, absorptions, clause matches).  The
reproduction targets are: the per-category rule *counts* match exactly,
every rule verifies, the conjunctive rules are automatic, and the effort
*ordering* matches the paper's (basic/subquery cheap; magic, aggregation
and index expensive; conjunctive trivial).
"""

import pytest

from repro.rules import (
    CATEGORY_ORDER,
    PAPER_FIGURE_8,
    all_buggy_rules,
    rules_by_category,
)

_CATEGORY_LABEL = {
    "basic": "Basic",
    "aggregation": "Aggregation",
    "subquery": "Subquery",
    "magic": "Magic Set",
    "index": "Index",
    "conjunctive": "Conjunctive Query",
}


def _prove_all():
    results = {}
    for category, rules in rules_by_category().items():
        proofs = [rule.prove() for rule in rules]
        results[category] = proofs
    return results


def test_figure8_report(report, benchmark):
    results = benchmark(_prove_all)

    report.add("Figure 8 — Rewrite rules proved")
    report.add("=" * 76)
    report.add(f"{'Category':<20}{'No. of rules':>13}{'(paper)':>9}"
               f"{'Avg steps':>11}{'(paper LOC)':>13}{'Status':>10}")
    report.add("-" * 76)
    total_rules = 0
    total_steps = 0.0
    for category in CATEGORY_ORDER:
        proofs = results[category]
        paper_count, paper_loc = PAPER_FIGURE_8[category]
        steps = [p.engine_steps for p in proofs]
        avg = sum(steps) / len(steps)
        verified = all(p.verified for p in proofs)
        label = _CATEGORY_LABEL[category]
        suffix = " (automatic)" if category == "conjunctive" else ""
        report.add(f"{label:<20}{len(proofs):>13}{paper_count:>9}"
                   f"{avg:>11.1f}{paper_loc:>13}"
                   f"{'VERIFIED' if verified else 'FAILED':>10}{suffix}")
        total_rules += len(proofs)
        total_steps += sum(steps)
        assert len(proofs) == paper_count
        assert verified
    report.add("-" * 76)
    report.add(f"{'Total':<20}{total_rules:>13}{23:>9}"
               f"{total_steps / total_rules:>11.1f}{25.2:>13}")
    report.add("")
    report.add("Unsound control rules (must be rejected):")
    for rule in all_buggy_rules():
        proof = rule.prove()
        report.add(f"  {rule.name:<28} "
                   f"{'REJECTED' if not proof.verified else 'ACCEPTED!!'}")
        assert not proof.verified
    report.emit("fig8_rules")
    assert total_rules == 23


def test_figure8_effort_ordering(benchmark):
    """The paper's qualitative shape: CQ < basic/subquery < magic < agg."""
    results = benchmark(_prove_all)
    mean = {cat: sum(p.engine_steps for p in proofs) / len(proofs)
            for cat, proofs in results.items()}
    assert mean["conjunctive"] == min(mean.values())
    assert mean["basic"] < mean["magic"]
    assert mean["basic"] < mean["aggregation"]
    assert mean["subquery"] < mean["aggregation"]


@pytest.mark.parametrize("category", CATEGORY_ORDER)
def test_figure8_per_category_speed(category, benchmark):
    """Per-category proving time (the per-row benchmark series)."""
    rules = rules_by_category()[category]
    proofs = benchmark(lambda: [r.prove() for r in rules])
    assert all(p.verified for p in proofs)
