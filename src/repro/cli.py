"""Command-line interface.

Usage (``python -m repro <command>``):

* ``check --table 'R(a:int,b:int)' SQL1 SQL2`` — decide equivalence of two
  SQL queries against the declared schema,
* ``prove RULE`` — run one library rule's proof (by name),
* ``prove-all`` — prove the whole Figure 8 corpus and print the table,
* ``rules`` — list every rule with category and status metadata.

The CLI is a thin veneer over the library; each command returns a process
exit code (0 = equivalent/verified) so it can script into CI pipelines.
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import List, Optional, Sequence

from .core.equivalence import check_query_equivalence
from .core.schema import BOOL, INT, STRING, SQLType
from .rules import (
    CATEGORY_ORDER,
    all_buggy_rules,
    all_extended_rules,
    all_rules,
    get_rule,
    rules_by_category,
)
from .sql import Catalog, compile_sql

_TYPES = {"int": INT, "bool": BOOL, "string": STRING}

_TABLE_RE = re.compile(r"^(\w+)\((.*)\)$")


class CLIError(Exception):
    """Raised for malformed CLI input; rendered as an error message."""


def parse_table_spec(spec: str) -> tuple:
    """Parse ``R(a:int,b:int)`` into a (name, columns) pair."""
    match = _TABLE_RE.match(spec.strip())
    if not match:
        raise CLIError(f"malformed table spec {spec!r} "
                       f"(expected NAME(col:type,...))")
    name, cols_text = match.groups()
    columns = []
    for part in cols_text.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" not in part:
            raise CLIError(f"malformed column {part!r} in {spec!r}")
        col, ty = (x.strip() for x in part.split(":", 1))
        if ty not in _TYPES:
            raise CLIError(f"unknown type {ty!r} (use int/bool/string)")
        columns.append((col, _TYPES[ty]))
    if not columns:
        raise CLIError(f"table {name!r} needs at least one column")
    return name, columns


def _build_catalog(table_specs: Sequence[str]) -> Catalog:
    catalog = Catalog()
    for spec in table_specs:
        name, columns = parse_table_spec(spec)
        catalog.add_table(name, columns)
    return catalog


def cmd_check(args: argparse.Namespace) -> int:
    catalog = _build_catalog(args.table or [])
    lhs = compile_sql(args.sql1, catalog)
    rhs = compile_sql(args.sql2, catalog)
    result = check_query_equivalence(lhs.query, rhs.query)
    verdict = "EQUIVALENT" if result.equal else "NOT PROVED"
    print(f"{verdict}  ({result.stats.total_steps} engine steps)")
    if not result.equal:
        print("note: the prover is sound but incomplete; "
              "'NOT PROVED' is not a disproof")
    return 0 if result.equal else 1


def cmd_prove(args: argparse.Namespace) -> int:
    try:
        rule = get_rule(args.rule)
    except KeyError as exc:
        raise CLIError(str(exc)) from exc
    proof = rule.prove()
    status = "VERIFIED" if proof.verified else "REJECTED"
    print(f"{rule.name} [{rule.category}]: {status} "
          f"({proof.engine_steps} steps, "
          f"{proof.elapsed_seconds * 1e3:.1f} ms)")
    print(f"  {rule.description}")
    expected = rule.sound
    return 0 if proof.verified == expected else 1


def cmd_prove_all(args: argparse.Namespace) -> int:
    failures = 0
    for category in CATEGORY_ORDER:
        for rule in rules_by_category()[category]:
            proof = rule.prove()
            status = "VERIFIED" if proof.verified else "FAILED"
            print(f"{status:9s} {category:12s} {rule.name:30s} "
                  f"{proof.engine_steps:5d} steps")
            failures += not proof.verified
    for rule in all_buggy_rules():
        proof = rule.prove()
        status = "REJECTED" if not proof.verified else "ACCEPTED?!"
        print(f"{status:9s} {'buggy':12s} {rule.name:30s}")
        failures += proof.verified
    print(f"\n{23 - failures if failures <= 23 else 0}/23 core rules "
          f"verified; unsound rules "
          f"{'all rejected' if failures == 0 else 'NOT all rejected'}")
    return 0 if failures == 0 else 1


def cmd_rules(args: argparse.Namespace) -> int:
    print(f"{'name':<32}{'category':<14}{'paper ref':<24}")
    print("-" * 70)
    for rule in all_rules() + all_extended_rules() + all_buggy_rules():
        marker = "" if rule.sound else "  [UNSOUND CONTROL]"
        print(f"{rule.name:<32}{rule.category:<14}"
              f"{rule.paper_ref:<24}{marker}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HoTTSQL reproduction — prove SQL query rewrites.")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="decide equivalence of two "
                                         "SQL queries")
    check.add_argument("--table", action="append", metavar="SPEC",
                       help="table declaration, e.g. 'R(a:int,b:int)' "
                            "(repeatable)")
    check.add_argument("sql1")
    check.add_argument("sql2")
    check.set_defaults(fn=cmd_check)

    prove = sub.add_parser("prove", help="prove one library rule by name")
    prove.add_argument("rule")
    prove.set_defaults(fn=cmd_prove)

    prove_all = sub.add_parser("prove-all",
                               help="prove the Figure 8 corpus")
    prove_all.set_defaults(fn=cmd_prove_all)

    rules = sub.add_parser("rules", help="list the rule library")
    rules.set_defaults(fn=cmd_rules)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
