"""UniNomial — the symbolic algebra of univalent types (paper Definition 3.1).

HoTTSQL queries denote expressions over
``(U, 0, 1, +, ×, ·→0, ‖·‖, Σ)``.  In the Coq artifact these are honest
homotopy types; here they are *symbolic terms* manipulated by the proof
engine, which implements exactly the equational theory the paper's proofs
use (semiring laws, squash laws, Lemmas 5.1–5.3, congruence, homomorphism
instantiation).

Two term sorts:

* :class:`Term` — **tuple/value terms**: variables, pairing and projections
  (the nested-pair tuples of Sec. 3.1), constants, uninterpreted function
  applications (scalar functions, projection/expression metavariables), and
  aggregates (whose argument is a U-valued function, Sec. 4.2).
* :class:`UTerm` — **univalent-type terms**: the UniNomial operations plus
  the atoms produced by denotation — relation applications ``⟦R⟧ t``,
  equalities ``(t1 = t2)``, and uninterpreted predicates ``⟦b⟧ g``.

Smart constructors (:func:`umul`, :func:`usquash`, ...) apply the always-safe
local laws eagerly; the heavy rewriting lives in
:mod:`repro.core.normalize`.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Tuple as PyTuple

from .intern import interned
from .schema import EMPTY, Leaf, Node, SQLType, Schema


# ---------------------------------------------------------------------------
# Tuple / value terms
# ---------------------------------------------------------------------------

class Term:
    """Base class of tuple-and-scalar terms."""

    __slots__ = ()

    @property
    def schema(self) -> Schema:
        """The schema of the tuple this term denotes."""
        raise NotImplementedError


@interned
@dataclass(frozen=True)
class TVar(Term):
    """A tuple variable of a known schema."""

    name: str
    var_schema: Schema

    @property
    def schema(self) -> Schema:
        return self.var_schema

    def __str__(self) -> str:
        return self.name


@interned
@dataclass(frozen=True)
class TUnit(Term):
    """The unit tuple (the only inhabitant of the empty schema)."""

    @property
    def schema(self) -> Schema:
        return EMPTY

    def __str__(self) -> str:
        return "()"


@interned
@dataclass(frozen=True)
class TPair(Term):
    """Tuple pairing: ``(left, right)`` of schema ``node σl σr``."""

    left: Term
    right: Term

    @property
    def schema(self) -> Schema:
        return Node(self.left.schema, self.right.schema)

    def __str__(self) -> str:
        return f"({self.left}, {self.right})"


@interned
@dataclass(frozen=True)
class TFst(Term):
    """First projection ``t.1``."""

    arg: Term

    @property
    def schema(self) -> Schema:
        s = self.arg.schema
        if isinstance(s, Node):
            return s.left
        raise TypeError(f"TFst of non-node schema {s}")

    def __str__(self) -> str:
        return f"{self.arg}.1"


@interned
@dataclass(frozen=True)
class TSnd(Term):
    """Second projection ``t.2``."""

    arg: Term

    @property
    def schema(self) -> Schema:
        s = self.arg.schema
        if isinstance(s, Node):
            return s.right
        raise TypeError(f"TSnd of non-node schema {s}")

    def __str__(self) -> str:
        return f"{self.arg}.2"


@interned
@dataclass(frozen=True)
class TConst(Term):
    """A scalar literal, viewed as a tuple of a ``Leaf`` schema."""

    value: object
    ty: SQLType

    @property
    def schema(self) -> Schema:
        return Leaf(self.ty)

    def __str__(self) -> str:
        return repr(self.value)


@interned
@dataclass(frozen=True)
class TApp(Term):
    """An uninterpreted function symbol applied to terms.

    Covers three syntactic citizens after denotation: scalar function
    symbols ``f(e...)``, projection metavariables ``⟦p⟧ g``, and expression
    metavariables ``⟦e⟧ g``.  The prover reasons about them purely by
    congruence, which is exactly their "uninterpreted" semantics in the
    paper.
    """

    fn: str
    args: PyTuple[Term, ...]
    result_schema: Schema

    @property
    def schema(self) -> Schema:
        return self.result_schema

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.fn}({rendered})"


@interned
@dataclass(frozen=True)
class TAgg(Term):
    """An aggregate ``agg(λ x. body)`` over a denoted single-column query.

    ``body`` is a :class:`UTerm` with ``var`` bound — the K-relation the
    aggregated subquery denotes (paper Sec. 4.2).  Aggregates are congruent:
    equal relation arguments give equal aggregate values.
    """

    name: str
    var: TVar
    body: "UTerm"
    ty: SQLType

    @property
    def schema(self) -> Schema:
        return Leaf(self.ty)

    def __str__(self) -> str:
        return f"{self.name}(λ{self.var}. {self.body})"


# ---------------------------------------------------------------------------
# UniNomial terms
# ---------------------------------------------------------------------------

class UTerm:
    """Base class of univalent-type (UniNomial) terms."""

    __slots__ = ()


@interned
@dataclass(frozen=True)
class UZero(UTerm):
    """The empty type ``0``."""

    def __str__(self) -> str:
        return "0"


@interned
@dataclass(frozen=True)
class UOne(UTerm):
    """The unit type ``1``."""

    def __str__(self) -> str:
        return "1"


@interned
@dataclass(frozen=True)
class UAdd(UTerm):
    """Direct sum ``a + b``."""

    left: UTerm
    right: UTerm

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


@interned
@dataclass(frozen=True)
class UMul(UTerm):
    """Cartesian product ``a × b``."""

    left: UTerm
    right: UTerm

    def __str__(self) -> str:
        return f"{self.left} × {self.right}"


@interned
@dataclass(frozen=True)
class USquash(UTerm):
    """Propositional truncation ``‖a‖``."""

    arg: UTerm

    def __str__(self) -> str:
        return f"‖{self.arg}‖"


@interned
@dataclass(frozen=True)
class UNeg(UTerm):
    """The function type ``a → 0`` (negation of the truncation)."""

    arg: UTerm

    def __str__(self) -> str:
        return f"({self.arg} → 0)"


@interned
@dataclass(frozen=True)
class USum(UTerm):
    """The infinitary sum ``Σ_{var : Tuple σ} body``."""

    var: TVar
    body: UTerm

    def __str__(self) -> str:
        return f"Σ {self.var}:{self.var.var_schema}. ({self.body})"


@interned
@dataclass(frozen=True)
class UEq(UTerm):
    """The equality type ``(left = right)`` of two tuple terms — a prop."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} = {self.right})"


@interned
@dataclass(frozen=True)
class URel(UTerm):
    """Application of a relation (metavariable or table) to a tuple: ``⟦R⟧ t``."""

    name: str
    arg: Term

    def __str__(self) -> str:
        return f"⟦{self.name}⟧ {self.arg}"


@interned
@dataclass(frozen=True)
class UPred(UTerm):
    """Application of an uninterpreted predicate to terms: ``⟦b⟧ (t...)``."""

    name: str
    args: PyTuple[Term, ...]

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"⟦{self.name}⟧ ({rendered})"


#: Shared atoms.
ZERO = UZero()
ONE = UOne()
UNIT = TUnit()


# ---------------------------------------------------------------------------
# Smart constructors — the always-safe local laws
# ---------------------------------------------------------------------------

def tfst(t: Term) -> Term:
    """``t.1`` with beta reduction on explicit pairs."""
    if isinstance(t, TPair):
        return t.left
    return TFst(t)


def tsnd(t: Term) -> Term:
    """``t.2`` with beta reduction on explicit pairs."""
    if isinstance(t, TPair):
        return t.right
    return TSnd(t)


def tpair(left: Term, right: Term) -> Term:
    """Pairing with surjective-pairing (eta) contraction."""
    if isinstance(left, TFst) and isinstance(right, TSnd) and left.arg == right.arg:
        return left.arg
    return TPair(left, right)


def uadd(left: UTerm, right: UTerm) -> UTerm:
    """Sum with unit laws."""
    if isinstance(left, UZero):
        return right
    if isinstance(right, UZero):
        return left
    return UAdd(left, right)


def umul(left: UTerm, right: UTerm) -> UTerm:
    """Product with unit and annihilation laws."""
    if isinstance(left, UZero) or isinstance(right, UZero):
        return ZERO
    if isinstance(left, UOne):
        return right
    if isinstance(right, UOne):
        return left
    return UMul(left, right)


def is_prop(u: UTerm) -> bool:
    """Syntactic check: is ``u`` certainly a proposition (0-or-1 valued)?

    Propositions are closed under products; sums and relation applications
    are generally not propositions.  The answer is cached on the (interned)
    node, so repeated checks are O(1).
    """
    cached = u.__dict__.get("_hc_prop")
    if cached is not None:
        return cached
    if isinstance(u, (UZero, UOne, UEq, UPred, USquash, UNeg)):
        result = True
    elif isinstance(u, UMul):
        result = is_prop(u.left) and is_prop(u.right)
    else:
        result = False
    object.__setattr__(u, "_hc_prop", result)
    return result


def usquash(u: UTerm) -> UTerm:
    """Truncation with the idempotence/prop laws of Sec. 3.4."""
    if is_prop(u):
        return u
    if isinstance(u, USquash):
        return u
    return USquash(u)


def uneg(u: UTerm) -> UTerm:
    """Negation ``u → 0``, with double-negation = truncation for props."""
    if isinstance(u, UZero):
        return ONE
    if isinstance(u, UOne):
        return ZERO
    if isinstance(u, UNeg):
        # (u → 0) → 0 is by definition the truncation ‖u‖.
        return usquash(u.arg)
    if isinstance(u, USquash):
        # ‖u‖ → 0 and u → 0 are equivalent props.
        return UNeg(u.arg)
    return UNeg(u)


def usum(var: TVar, body: UTerm) -> UTerm:
    """Σ with the empty-body law."""
    if isinstance(body, UZero):
        return ZERO
    return USum(var, body)


def ueq(left: Term, right: Term) -> UTerm:
    """Equality type with reflexivity and constant-disagreement laws."""
    if left == right:
        return ONE
    if isinstance(left, TConst) and isinstance(right, TConst):
        return ONE if left.value == right.value else ZERO
    return UEq(left, right)


def umul_all(factors: List[UTerm]) -> UTerm:
    """Right-nested product of a factor list."""
    result: UTerm = ONE
    for f in reversed(factors):
        result = umul(f, result)
    return result


def uadd_all(terms: List[UTerm]) -> UTerm:
    """Right-nested sum of a summand list."""
    result: UTerm = ZERO
    for t in reversed(terms):
        result = uadd(t, result)
    return result


# ---------------------------------------------------------------------------
# Fresh variables, free variables, substitution
# ---------------------------------------------------------------------------

class _FreshCounter:
    """Process-wide counter for fresh variable names (thread-safe)."""

    def __init__(self) -> None:
        self._count = itertools.count()
        self._lock = threading.Lock()

    def next_name(self, hint: str) -> str:
        with self._lock:
            return f"{hint}${next(self._count)}"


_FRESH = _FreshCounter()


def fresh_var(schema: Schema, hint: str = "t") -> TVar:
    """A tuple variable with a globally fresh name."""
    return TVar(_FRESH.next_name(hint), schema)


#: Empty free-variable set shared by all leaves.
_NO_VARS: FrozenSet[TVar] = frozenset()


def term_free_vars(t: Term) -> FrozenSet[TVar]:
    """Free tuple variables of a tuple term (cached per interned node)."""
    cached = t.__dict__.get("_hc_fv")
    if cached is not None:
        return cached
    if isinstance(t, TVar):
        out: FrozenSet[TVar] = frozenset({t})
    elif isinstance(t, (TUnit, TConst)):
        out = _NO_VARS
    elif isinstance(t, TPair):
        out = term_free_vars(t.left) | term_free_vars(t.right)
    elif isinstance(t, (TFst, TSnd)):
        out = term_free_vars(t.arg)
    elif isinstance(t, TApp):
        out = _NO_VARS
        for a in t.args:
            out |= term_free_vars(a)
    elif isinstance(t, TAgg):
        out = uterm_free_vars(t.body) - {t.var}
    else:
        raise TypeError(f"not a term: {t!r}")
    object.__setattr__(t, "_hc_fv", out)
    return out


def uterm_free_vars(u: UTerm) -> FrozenSet[TVar]:
    """Free tuple variables of a UniNomial term (cached per interned node)."""
    cached = u.__dict__.get("_hc_fv")
    if cached is not None:
        return cached
    if isinstance(u, (UZero, UOne)):
        out: FrozenSet[TVar] = _NO_VARS
    elif isinstance(u, (UAdd, UMul)):
        out = uterm_free_vars(u.left) | uterm_free_vars(u.right)
    elif isinstance(u, (USquash, UNeg)):
        out = uterm_free_vars(u.arg)
    elif isinstance(u, USum):
        out = uterm_free_vars(u.body) - {u.var}
    elif isinstance(u, UEq):
        out = term_free_vars(u.left) | term_free_vars(u.right)
    elif isinstance(u, URel):
        out = term_free_vars(u.arg)
    elif isinstance(u, UPred):
        out = _NO_VARS
        for a in u.args:
            out |= term_free_vars(a)
    else:
        raise TypeError(f"not a UTerm: {u!r}")
    object.__setattr__(u, "_hc_fv", out)
    return out


Substitution = Dict[TVar, Term]


def subst_term(t: Term, sub: Substitution) -> Term:
    """Capture-avoiding substitution on tuple terms.

    Sub-terms whose (cached) free variables are disjoint from the
    substitution's domain are returned as-is — with interning this keeps
    every untouched node, and all of its memoized metadata, shared.
    """
    if not sub:
        return t
    if term_free_vars(t).isdisjoint(sub):
        return t
    if isinstance(t, TVar):
        return sub.get(t, t)
    if isinstance(t, (TUnit, TConst)):
        return t
    if isinstance(t, TPair):
        return tpair(subst_term(t.left, sub), subst_term(t.right, sub))
    if isinstance(t, TFst):
        return tfst(subst_term(t.arg, sub))
    if isinstance(t, TSnd):
        return tsnd(subst_term(t.arg, sub))
    if isinstance(t, TApp):
        return TApp(t.fn, tuple(subst_term(a, sub) for a in t.args),
                    t.result_schema)
    if isinstance(t, TAgg):
        inner_sub, var = _avoid_capture(t.var, sub)
        return TAgg(t.name, var, subst_uterm(t.body, inner_sub), t.ty)
    raise TypeError(f"not a term: {t!r}")


def subst_uterm(u: UTerm, sub: Substitution) -> UTerm:
    """Capture-avoiding substitution on UniNomial terms.

    Shares untouched sub-terms exactly like :func:`subst_term`.
    """
    if not sub:
        return u
    if uterm_free_vars(u).isdisjoint(sub):
        return u
    if isinstance(u, (UZero, UOne)):
        return u
    if isinstance(u, UAdd):
        return uadd(subst_uterm(u.left, sub), subst_uterm(u.right, sub))
    if isinstance(u, UMul):
        return umul(subst_uterm(u.left, sub), subst_uterm(u.right, sub))
    if isinstance(u, USquash):
        return usquash(subst_uterm(u.arg, sub))
    if isinstance(u, UNeg):
        return uneg(subst_uterm(u.arg, sub))
    if isinstance(u, USum):
        inner_sub, var = _avoid_capture(u.var, sub)
        return usum(var, subst_uterm(u.body, inner_sub))
    if isinstance(u, UEq):
        return ueq(subst_term(u.left, sub), subst_term(u.right, sub))
    if isinstance(u, URel):
        return URel(u.name, subst_term(u.arg, sub))
    if isinstance(u, UPred):
        return UPred(u.name, tuple(subst_term(a, sub) for a in u.args))
    raise TypeError(f"not a UTerm: {u!r}")


def _avoid_capture(bound: TVar, sub: Substitution) -> PyTuple[Substitution, TVar]:
    """Drop shadowed bindings and rename the binder when capture threatens."""
    inner = {v: t for v, t in sub.items() if v != bound}
    if not inner:
        return inner, bound
    clash = any(bound in term_free_vars(t) for t in inner.values())
    if clash:
        renamed = fresh_var(bound.var_schema, bound.name.split("$")[0])
        inner[bound] = renamed
        return inner, renamed
    return inner, bound


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------

def iter_subterms(t: Term) -> Iterator[Term]:
    """Yield ``t`` and all its sub-terms (not descending into TAgg bodies)."""
    yield t
    if isinstance(t, TPair):
        yield from iter_subterms(t.left)
        yield from iter_subterms(t.right)
    elif isinstance(t, (TFst, TSnd)):
        yield from iter_subterms(t.arg)
    elif isinstance(t, TApp):
        for a in t.args:
            yield from iter_subterms(a)


def rel_names(u: UTerm) -> FrozenSet[str]:
    """Names of all relations applied anywhere in ``u``."""
    if isinstance(u, URel):
        names = frozenset({u.name}) | _rel_names_term(u.arg)
        return names
    if isinstance(u, (UZero, UOne)):
        return frozenset()
    if isinstance(u, (UAdd, UMul)):
        return rel_names(u.left) | rel_names(u.right)
    if isinstance(u, (USquash, UNeg)):
        return rel_names(u.arg)
    if isinstance(u, USum):
        return rel_names(u.body)
    if isinstance(u, UEq):
        return _rel_names_term(u.left) | _rel_names_term(u.right)
    if isinstance(u, UPred):
        out: FrozenSet[str] = frozenset()
        for a in u.args:
            out |= _rel_names_term(a)
        return out
    raise TypeError(f"not a UTerm: {u!r}")


def _rel_names_term(t: Term) -> FrozenSet[str]:
    if isinstance(t, TAgg):
        return rel_names(t.body)
    if isinstance(t, TPair):
        return _rel_names_term(t.left) | _rel_names_term(t.right)
    if isinstance(t, (TFst, TSnd)):
        return _rel_names_term(t.arg)
    if isinstance(t, TApp):
        out: FrozenSet[str] = frozenset()
        for a in t.args:
            out |= _rel_names_term(a)
        return out
    return frozenset()


def uterm_size(u: UTerm) -> int:
    """Node count of a UniNomial term — the proof-effort metric for Fig. 8.

    Cached per interned node.
    """
    cached = u.__dict__.get("_hc_size")
    if cached is not None:
        return cached
    if isinstance(u, (UZero, UOne)):
        size = 1
    elif isinstance(u, (UAdd, UMul)):
        size = 1 + uterm_size(u.left) + uterm_size(u.right)
    elif isinstance(u, (USquash, UNeg)):
        size = 1 + uterm_size(u.arg)
    elif isinstance(u, USum):
        size = 1 + uterm_size(u.body)
    elif isinstance(u, UEq):
        size = 1 + term_size(u.left) + term_size(u.right)
    elif isinstance(u, URel):
        size = 1 + term_size(u.arg)
    elif isinstance(u, UPred):
        size = 1 + sum(term_size(a) for a in u.args)
    else:
        raise TypeError(f"not a UTerm: {u!r}")
    object.__setattr__(u, "_hc_size", size)
    return size


def term_size(t: Term) -> int:
    """Node count of a tuple term (cached per interned node)."""
    cached = t.__dict__.get("_hc_size")
    if cached is not None:
        return cached
    if isinstance(t, (TVar, TUnit, TConst)):
        size = 1
    elif isinstance(t, TPair):
        size = 1 + term_size(t.left) + term_size(t.right)
    elif isinstance(t, (TFst, TSnd)):
        size = 1 + term_size(t.arg)
    elif isinstance(t, TApp):
        size = 1 + sum(term_size(a) for a in t.args)
    elif isinstance(t, TAgg):
        size = 1 + uterm_size(t.body)
    else:
        raise TypeError(f"not a term: {t!r}")
    object.__setattr__(t, "_hc_size", size)
    return size


#: Backwards-compatible private alias (pre-kernel name).
_term_size = term_size
