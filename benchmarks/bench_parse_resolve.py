#!/usr/bin/env python
"""Front-end microbenchmark: parse + resolve throughput.

The prover's cost is tracked by ``bench_prover_scaling``; this tracks the
*front end* — lexing, parsing, name resolution, and the Sec. 4.2
desugarings (GROUP BY, scalar aggregates, HAVING) — which every
``Session.sql`` call pays before any proving happens.  The corpus spans
the full accepted grammar so a parser or resolver regression on any
shape shows up as a throughput drop.

Reported per phase:

* ``parse``  — SQL text → named AST,
* ``resolve`` — named AST → core HoTTSQL (includes desugaring),
* ``roundtrip`` — unparse + re-parse (the serialization path).

Usage::

    PYTHONPATH=src python benchmarks/bench_parse_resolve.py           # full
    PYTHONPATH=src python benchmarks/bench_parse_resolve.py --smoke   # CI

Exit status is non-zero when any corpus entry fails to compile or to
round-trip — the bench doubles as a smoke test of the whole grammar.
"""

import argparse
import sys
import time

from repro.core.schema import INT
from repro.sql.parser import parse
from repro.sql.resolve import Catalog, Resolver
from repro.sql.unparse import unparse

#: One query per accepted grammar shape (README "Accepted SQL" table).
CORPUS = [
    "SELECT a FROM R",
    "SELECT * FROM R, S WHERE R.a = S.a",
    "SELECT DISTINCT x.a FROM R AS x, R y WHERE x.a = y.b",
    "SELECT a + b AS c, a * 2 - 1 FROM R",
    "SELECT a FROM R WHERE a + 1 = b AND NOT (a = 2 OR b < 3)",
    "SELECT f(a, b) AS v FROM R",
    "SELECT a FROM R WHERE EXISTS (SELECT b FROM S WHERE S.a = R.a)",
    "SELECT DISTINCT a FROM (SELECT a FROM R) t",
    "SELECT a FROM R UNION ALL SELECT a FROM S EXCEPT SELECT b FROM R",
    "SELECT COUNT(b) AS c FROM R",
    "SELECT SUM(a) AS s, COUNT(b) AS n FROM R WHERE a = 1",
    "SELECT k, SUM(b) AS s FROM R GROUP BY k",
    "SELECT k, SUM(b) AS s FROM R GROUP BY k HAVING k = 1",
    "SELECT k, COUNT(b) AS n FROM R GROUP BY k HAVING SUM(b) > 2",
]


def make_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_table("R", [("k", INT), ("a", INT), ("b", INT)])
    catalog.add_table("S", [("a", INT), ("b", INT)])
    return catalog


def bench(repeat: int):
    catalog = make_catalog()
    parsed = []
    started = time.perf_counter()
    for _ in range(repeat):
        parsed = [parse(text) for text in CORPUS]
    parse_wall = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(repeat):
        resolver = Resolver(catalog)
        for query in parsed:
            resolver.resolve_query(query)
    resolve_wall = time.perf_counter() - started

    started = time.perf_counter()
    ok = True
    for _ in range(repeat):
        for query in parsed:
            ok = ok and parse(unparse(query)) == query
    roundtrip_wall = time.perf_counter() - started
    return parse_wall, resolve_wall, roundtrip_wall, ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small repeat count (CI mode)")
    args = parser.parse_args(argv)

    repeat = 20 if args.smoke else 400
    queries = len(CORPUS) * repeat
    parse_wall, resolve_wall, roundtrip_wall, ok = bench(repeat)
    for phase, wall in (("parse", parse_wall), ("resolve", resolve_wall),
                        ("roundtrip", roundtrip_wall)):
        rate = queries / wall if wall else float("inf")
        print(f"  {phase:<10} {wall * 1e3:9.1f} ms "
              f"({queries} queries, {rate:,.0f}/s)")
    if not ok:
        print("FAIL: corpus entry did not round-trip", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
