"""Name resolution: compiling named SQL to the unnamed HoTTSQL core.

The paper's data model is *unnamed* — attributes are paths in a binary
schema tree (Sec. 3.1) — and its artifact expects users to write path
expressions by hand.  This module automates that translation: given a
catalog of named table schemas, it compiles the parser's named AST into
core HoTTSQL, turning ``alias.column`` references into ``Left``/``Right``
paths through the context tuple, threading correlated-subquery scopes
exactly as Figure 6 describes, and desugaring GROUP BY per Sec. 4.2.

Schema layout conventions:

* a table with columns ``c₀ ... c_{m-1}`` has the right-nested schema
  ``node (leaf τ₀) (node (leaf τ₁) ( ... (leaf τ_{m-1})))``,
* a FROM clause with items ``f₀ ... f_{k-1}`` is the right-nested product
  ``node σ₀ (node σ₁ ( ... σ_{k-1}))``,
* the context at depth *d* of nesting is ``node (node (... ) f_{d-1}) ...``
  — each enclosing scope is one ``Left`` step away (Figure 6).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..core import ast
from ..core.schema import BOOL, EMPTY, INT, Leaf, Node, STRING, Schema, SQLType
from . import nast


class ResolutionError(ReproError):
    """Raised when names cannot be resolved against the catalog/scopes."""


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------

@dataclass
class Catalog:
    """Named table schemas: table → ordered (column, type) list."""

    tables: Dict[str, Tuple[Tuple[str, SQLType], ...]] = field(
        default_factory=dict)

    def add_table(self, name: str, columns: Sequence[Tuple[str, SQLType]]
                  ) -> None:
        """Declare a table."""
        if name in self.tables:
            raise ResolutionError(f"table {name!r} already declared")
        names = [c for c, _ in columns]
        if len(set(names)) != len(names):
            raise ResolutionError(f"duplicate column names in {name!r}")
        self.tables[name] = tuple(columns)

    def columns(self, name: str) -> Tuple[Tuple[str, SQLType], ...]:
        if name not in self.tables:
            raise ResolutionError(f"unknown table {name!r}")
        return self.tables[name]

    def schema_of(self, name: str) -> Schema:
        """The right-nested unnamed schema of a table."""
        return columns_to_schema(self.columns(name))


def columns_to_schema(columns: Sequence[Tuple[str, SQLType]]) -> Schema:
    """Right-nested schema tree for an ordered column list."""
    if not columns:
        return EMPTY
    leaves: List[Schema] = [Leaf(ty) for _, ty in columns]
    schema = leaves[-1]
    for leaf_schema in reversed(leaves[:-1]):
        schema = Node(leaf_schema, schema)
    return schema


def column_steps(count: int, index: int) -> Tuple[str, ...]:
    """Path to column ``index`` in a right-nested ``count``-column schema."""
    if not 0 <= index < count:
        raise ResolutionError(f"column index {index} out of range")
    if count == 1:
        return ()
    if index == count - 1:
        return ("R",) * (count - 1)
    return ("R",) * index + ("L",)


def _steps_to_projection(steps: Sequence[str]) -> ast.Projection:
    parts: List[ast.Projection] = [
        ast.LEFT if s == "L" else ast.RIGHT for s in steps]
    return ast.path(*parts) if parts else ast.STAR


# ---------------------------------------------------------------------------
# Scopes
# ---------------------------------------------------------------------------

@dataclass
class Binding:
    """One FROM item visible in a scope."""

    alias: str
    columns: Tuple[Tuple[str, SQLType], ...]
    steps: Tuple[str, ...]   # path from the frame tuple to this item's tuple


@dataclass
class Frame:
    """One query scope: its FROM tuple's schema and bindings."""

    bindings: List[Binding]
    schema: Schema


@dataclass
class Resolved:
    """A compiled query with its output description."""

    query: ast.Query
    schema: Schema
    columns: Tuple[Tuple[str, SQLType], ...]


def _frame_steps(count: int, index: int) -> Tuple[str, ...]:
    """Path to FROM item ``index`` in the right-nested product of ``count``."""
    if count == 1:
        return ()
    if index == count - 1:
        return ("R",) * (count - 1)
    return ("R",) * index + ("L",)


class Resolver:
    """Compiles named queries against a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._fresh = itertools.count()

    # -- queries -----------------------------------------------------------

    def resolve_query(self, query: nast.NQuery,
                      env: Tuple[Frame, ...] = ()) -> Resolved:
        """Compile a named query in an environment of enclosing scopes."""
        if isinstance(query, nast.NSelect):
            return self._resolve_select(query, env)
        if isinstance(query, nast.NUnionAll):
            left = self.resolve_query(query.left, env)
            right = self.resolve_query(query.right, env)
            self._check_compatible(left, right, "UNION ALL")
            return Resolved(ast.UnionAll(left.query, right.query),
                            left.schema, left.columns)
        if isinstance(query, nast.NExcept):
            left = self.resolve_query(query.left, env)
            right = self.resolve_query(query.right, env)
            self._check_compatible(left, right, "EXCEPT")
            return Resolved(ast.Except(left.query, right.query),
                            left.schema, left.columns)
        raise ResolutionError(f"unknown query node: {query!r}")

    def _check_compatible(self, left: Resolved, right: Resolved,
                          op: str) -> None:
        if left.schema != right.schema:
            raise ResolutionError(
                f"{op} branches have incompatible schemas: "
                f"{left.schema} vs {right.schema}")

    def _resolve_select(self, select: nast.NSelect,
                        env: Tuple[Frame, ...]) -> Resolved:
        if select.group_by is not None:
            select = desugar_group_by(select, self._fresh)
        # FROM clause: compile the items and build the frame.
        compiled_items: List[Resolved] = []
        bindings: List[Binding] = []
        aliases = [item.alias for item in select.from_items]
        if len(set(aliases)) != len(aliases):
            raise ResolutionError(f"duplicate FROM aliases: {aliases}")
        count = len(select.from_items)
        for index, item in enumerate(select.from_items):
            if isinstance(item.source, str):
                columns = self.catalog.columns(item.source)
                schema = self.catalog.schema_of(item.source)
                compiled = Resolved(ast.Table(item.source, schema), schema,
                                    columns)
            else:
                compiled = self.resolve_query(item.source, env)
            compiled_items.append(compiled)
            bindings.append(Binding(alias=item.alias,
                                    columns=compiled.columns,
                                    steps=_frame_steps(count, index)))
        from_query = ast.from_clauses(*[c.query for c in compiled_items])
        frame_schema = compiled_items[-1].schema
        for compiled in reversed(compiled_items[:-1]):
            frame_schema = Node(compiled.schema, frame_schema)
        frame = Frame(bindings=bindings, schema=frame_schema)
        inner_env = env + (frame,)

        body = from_query
        if select.where is not None:
            predicate = self._resolve_pred(select.where, inner_env)
            body = ast.Where(body, predicate)

        if select.items:
            projections: List[ast.Projection] = []
            out_columns: List[Tuple[str, SQLType]] = []
            for i, item in enumerate(select.items):
                proj, name, ty = self._resolve_select_item(item, i, inner_env)
                projections.append(proj)
                out_columns.append((name, ty))
            projection = ast.proj_tuple(*projections)
            body = ast.Select(projection, body)
            schema = columns_to_schema(out_columns)
            columns = tuple(out_columns)
        else:
            # SELECT *: keep the whole frame tuple; columns are the
            # concatenation of the bindings' columns.
            schema = frame_schema
            columns = tuple((f"{b.alias}.{c}", ty)
                            for b in bindings for c, ty in b.columns)

        if select.distinct:
            body = ast.Distinct(body)
        return Resolved(body, schema, columns)

    def _resolve_select_item(self, item: nast.NSelectItem, index: int,
                             env: Tuple[Frame, ...]
                             ) -> Tuple[ast.Projection, str, SQLType]:
        expr = item.expr
        if isinstance(expr, nast.NColumn):
            steps, ty = self._column_steps(expr, env)
            name = item.alias or expr.column
            return _steps_to_projection(steps), name, ty
        compiled, ty = self._resolve_expr(expr, env)
        name = item.alias or f"col{index}"
        return ast.E2P(compiled, ty), name, ty

    # -- predicates -----------------------------------------------------------

    def _resolve_pred(self, pred: nast.NPred,
                      env: Tuple[Frame, ...]) -> ast.Predicate:
        if isinstance(pred, nast.NComparison):
            left, lty = self._resolve_expr(pred.left, env)
            right, rty = self._resolve_expr(pred.right, env)
            if lty != rty:
                raise ResolutionError(
                    f"comparison between different types {lty} and {rty}")
            if pred.op == "=":
                return ast.PredEq(left, right)
            if pred.op in ("<>", "!="):
                return ast.PredNot(ast.PredEq(left, right))
            op_name = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge"}[pred.op]
            return ast.PredFunc(op_name, (left, right))
        if isinstance(pred, nast.NAnd):
            return ast.PredAnd(self._resolve_pred(pred.left, env),
                               self._resolve_pred(pred.right, env))
        if isinstance(pred, nast.NOr):
            return ast.PredOr(self._resolve_pred(pred.left, env),
                              self._resolve_pred(pred.right, env))
        if isinstance(pred, nast.NNot):
            return ast.PredNot(self._resolve_pred(pred.operand, env))
        if isinstance(pred, nast.NBoolLit):
            return ast.PredTrue() if pred.value else ast.PredFalse()
        if isinstance(pred, nast.NExists):
            resolved = self.resolve_query(pred.query, env)
            return ast.Exists(resolved.query)
        raise ResolutionError(f"unknown predicate node: {pred!r}")

    # -- expressions ------------------------------------------------------------

    def _resolve_expr(self, expr: nast.NExpr, env: Tuple[Frame, ...]
                      ) -> Tuple[ast.Expression, SQLType]:
        if isinstance(expr, nast.NColumn):
            steps, ty = self._column_steps(expr, env)
            return ast.P2E(_steps_to_projection(steps), ty), ty
        if isinstance(expr, nast.NLiteral):
            value = expr.value
            if isinstance(value, bool):
                return ast.Const(value, BOOL), BOOL
            if isinstance(value, int):
                return ast.Const(value, INT), INT
            if isinstance(value, str):
                return ast.Const(value, STRING), STRING
            raise ResolutionError(f"unsupported literal {value!r}")
        if isinstance(expr, nast.NFuncCall):
            args = []
            for arg in expr.args:
                compiled, _ = self._resolve_expr(arg, env)
                args.append(compiled)
            # Scalar functions are uninterpreted ints by convention.
            return ast.Func(expr.name, tuple(args), INT), INT
        if isinstance(expr, nast.NAggQuery):
            resolved = self.resolve_query(expr.query, env)
            if not isinstance(resolved.schema, Leaf):
                raise ResolutionError(
                    f"aggregate {expr.name} needs a single-column subquery")
            return ast.Agg(expr.name, resolved.query, INT), INT
        if isinstance(expr, nast.NAggCall):
            raise ResolutionError(
                f"aggregate {expr.name} outside GROUP BY "
                f"(only grouped aggregation is supported)")
        raise ResolutionError(f"unknown expression node: {expr!r}")

    # -- column lookup -------------------------------------------------------------

    def _column_steps(self, column: nast.NColumn, env: Tuple[Frame, ...]
                      ) -> Tuple[Tuple[str, ...], SQLType]:
        """Full path from the current context tuple to the column."""
        depth = len(env)
        if depth == 0:
            raise ResolutionError(
                f"column {column.column!r} referenced outside any FROM scope")
        for frame_index in range(depth - 1, -1, -1):
            frame = env[frame_index]
            hit = self._lookup_in_frame(column, frame)
            if hit is None:
                continue
            binding, col_index, ty = hit
            # The context tuple is node (node (... outer ...) f_{d-1}); the
            # innermost frame is one Right step, each level outwards adds
            # a Left step (paper Figure 6).
            prefix = ("L",) * (depth - 1 - frame_index) + ("R",)
            col_path = column_steps(len(binding.columns), col_index)
            return prefix + binding.steps + col_path, ty
        where = f"{column.table}.{column.column}" if column.table \
            else column.column
        raise ResolutionError(f"cannot resolve column reference {where!r}")

    def _lookup_in_frame(self, column: nast.NColumn, frame: Frame):
        candidates = []
        for binding in frame.bindings:
            if column.table is not None and binding.alias != column.table:
                continue
            for index, (name, ty) in enumerate(binding.columns):
                if name == column.column or name.endswith("." + column.column):
                    candidates.append((binding, index, ty))
        if not candidates:
            return None
        if len(candidates) > 1:
            raise ResolutionError(
                f"ambiguous column reference {column.column!r}")
        return candidates[0]


# ---------------------------------------------------------------------------
# GROUP BY desugaring (paper Sec. 4.2) — at the named level
# ---------------------------------------------------------------------------

def desugar_group_by(select: nast.NSelect, fresh=itertools.count()
                     ) -> nast.NSelect:
    """Rewrite GROUP BY into DISTINCT + correlated aggregate subqueries.

    ``SELECT k, SUM(g) FROM R GROUP BY k`` becomes::

        SELECT DISTINCT k, SUM((SELECT g FROM R AS R$i WHERE R$i.k = R.k))
        FROM R

    following the paper's Sec. 4.2 construction.  Non-aggregate select
    items must be the grouping column.
    """
    group = select.group_by
    assert group is not None
    if not select.items:
        raise ResolutionError("GROUP BY requires an explicit select list")

    # Fresh aliases for the inner (per-group) copy of the FROM clause.
    rename: Dict[str, str] = {}
    inner_from = []
    for item in select.from_items:
        new_alias = f"{item.alias}${next(fresh)}"
        rename[item.alias] = new_alias
        inner_from.append(nast.NFromItem(source=item.source, alias=new_alias))

    def rn_expr(expr: nast.NExpr) -> nast.NExpr:
        if isinstance(expr, nast.NColumn):
            if expr.table is None:
                # Bare columns inside the subquery bind to the inner copy.
                return expr
            return nast.NColumn(rename.get(expr.table, expr.table),
                                expr.column)
        if isinstance(expr, nast.NFuncCall):
            return nast.NFuncCall(expr.name,
                                  tuple(rn_expr(a) for a in expr.args))
        return expr

    def rn_pred(pred: nast.NPred) -> nast.NPred:
        if isinstance(pred, nast.NComparison):
            return nast.NComparison(pred.op, rn_expr(pred.left),
                                    rn_expr(pred.right))
        if isinstance(pred, nast.NAnd):
            return nast.NAnd(rn_pred(pred.left), rn_pred(pred.right))
        if isinstance(pred, nast.NOr):
            return nast.NOr(rn_pred(pred.left), rn_pred(pred.right))
        if isinstance(pred, nast.NNot):
            return nast.NNot(rn_pred(pred.operand))
        return pred

    # Qualify both sides of the correlation explicitly: a bare grouping
    # column would otherwise resolve to the inner scope on both sides.
    if group.table is None:
        if len(select.from_items) != 1:
            raise ResolutionError(
                "GROUP BY over multiple FROM items requires a qualified "
                "grouping column")
        outer_alias = select.from_items[0].alias
    else:
        outer_alias = group.table
    outer_group = nast.NColumn(outer_alias, group.column)
    inner_group = nast.NColumn(rename[outer_alias], group.column)
    correlation = nast.NComparison("=", inner_group, outer_group)
    inner_where: nast.NPred = correlation
    if select.where is not None:
        inner_where = nast.NAnd(rn_pred(select.where), correlation)

    items: List[nast.NSelectItem] = []
    for item in select.items:
        expr = item.expr
        if isinstance(expr, nast.NAggCall):
            subquery = nast.NSelect(
                distinct=False,
                items=(nast.NSelectItem(rn_expr(expr.arg), None),),
                from_items=tuple(inner_from),
                where=inner_where,
                group_by=None)
            items.append(nast.NSelectItem(
                nast.NAggQuery(expr.name, subquery), item.alias))
        elif isinstance(expr, nast.NColumn) and expr.column == group.column:
            items.append(item)
        else:
            raise ResolutionError(
                "non-aggregate select item under GROUP BY must be the "
                "grouping column")

    return nast.NSelect(distinct=True, items=tuple(items),
                        from_items=select.from_items, where=select.where,
                        group_by=None)


# ---------------------------------------------------------------------------
# Top-level convenience
# ---------------------------------------------------------------------------

def compile_sql(source: str, catalog: Catalog) -> Resolved:
    """Parse and resolve a SQL string against a catalog."""
    from .parser import parse
    resolver = Resolver(catalog)
    return resolver.resolve_query(parse(source))
