"""Bounded-exhaustive disprover: enumeration, guarantees, replay."""

import pytest

from repro.core.schema import INT, Leaf, Node
from repro.rules import all_buggy_rules, all_rules, get_rule
from repro.semiring import NAT
from repro.solver import (
    Bound,
    count_relations,
    disprove,
    disprove_rule,
    enumerate_relations,
    free_tables,
    has_metavariables,
    replay,
)
from repro.sql import Catalog, compile_sql

SCHEMA = Node(Leaf(INT), Leaf(INT))


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_table("R", [("a", INT), ("b", INT)])
    cat.add_table("S", [("a", INT), ("b", INT)])
    return cat


class TestEnumeration:
    def test_relation_count_matches_formula(self):
        bound = Bound.of(max_rows=2, max_multiplicity=2)
        rels = list(enumerate_relations(SCHEMA, bound))
        # 4 tuples over int domain (0,1): C(4,0) + C(4,1)*2 + C(4,2)*4 = 33.
        assert len(rels) == 33
        assert count_relations(SCHEMA, bound) == 33

    def test_enumeration_is_exhaustive_and_distinct(self):
        bound = Bound.of(max_rows=2, max_multiplicity=2)
        rels = list(enumerate_relations(SCHEMA, bound))
        assert len({repr(sorted(r.items(), key=repr)) for r in rels}) \
            == len(rels)
        assert all(len(r) <= 2 for r in rels)
        assert any(len(r) == 0 for r in rels)

    def test_respects_multiplicity_bound(self):
        bound = Bound.of(max_rows=1, max_multiplicity=3)
        mults = {m for rel in enumerate_relations(SCHEMA, bound)
                 for _, m in rel.items()}
        assert mults == {1, 2, 3}

    def test_tuple_space_is_cached_per_schema_and_domain(self):
        from repro.solver.disprover import _tuple_space
        bound = Bound.of(max_rows=2, max_multiplicity=2)
        _tuple_space.cache_clear()
        list(enumerate_relations(SCHEMA, bound))
        first = _tuple_space.cache_info()
        assert first.misses == 1
        list(enumerate_relations(SCHEMA, bound))
        second = _tuple_space.cache_info()
        assert second.misses == first.misses  # re-enumeration is a hit
        assert second.hits > first.hits


class TestQueryAnalysis:
    def test_free_tables(self, catalog):
        q = compile_sql("SELECT r.a FROM R r, S s WHERE r.a = s.a",
                        catalog).query
        tables = free_tables(q)
        assert set(tables) == {"R", "S"}
        assert all(schema.is_concrete for schema in tables.values())

    def test_closed_query_has_no_metavariables(self, catalog):
        q = compile_sql("SELECT a FROM R", catalog).query
        assert not has_metavariables(q)

    def test_rule_queries_have_metavariables(self):
        rule = get_rule("join_comm")
        assert has_metavariables(rule.lhs)


class TestDisprove:
    def test_finds_projection_counterexample(self, catalog):
        q1 = compile_sql("SELECT a FROM R", catalog).query
        q2 = compile_sql("SELECT b FROM R", catalog).query
        result = disprove(q1, q2)
        assert result.found
        assert result.record is not None
        assert result.record.disagreements

    def test_exhausts_on_equivalent_pair(self, catalog):
        q1 = compile_sql("SELECT a FROM R WHERE a = 1", catalog).query
        result = disprove(q1, q1)
        assert not result.found
        assert result.exhausted
        assert result.instances_checked == 33  # the full bounded space

    def test_bound_info_reports_guarantee(self, catalog):
        q1 = compile_sql("SELECT a FROM R", catalog).query
        result = disprove(q1, q1, bound=Bound.of(1, 1))
        info = result.info()
        assert info.exhausted
        assert "exhausted" in info.describe()

    def test_instance_budget_marks_non_exhausted(self, catalog):
        q1 = compile_sql("SELECT a FROM R", catalog).query
        result = disprove(q1, q1, max_instances=5)
        assert not result.found
        assert not result.exhausted
        assert result.instances_checked == 5

    def test_multiplicity_sensitivity_needs_bags(self, catalog):
        # SELECT a vs SELECT DISTINCT a differ only on duplicates: the
        # counterexample must use multiplicity > 1 or a repeated a-value.
        q1 = compile_sql("SELECT a FROM R", catalog).query
        q2 = compile_sql("SELECT DISTINCT a FROM R", catalog).query
        result = disprove(q1, q2)
        assert result.found

    def test_replay_reproduces_disagreement(self, catalog):
        q1 = compile_sql("SELECT a FROM R", catalog).query
        q2 = compile_sql("SELECT b FROM R", catalog).query
        result = disprove(q1, q2)
        lhs, rhs = replay(result.record, q1, q2,
                          {"R": catalog.schema_of("R")}, NAT)
        assert lhs != rhs
        assert lhs == result.counterexample.lhs_result
        assert rhs == result.counterexample.rhs_result


class TestDisproveRules:
    @pytest.mark.parametrize("rule", all_buggy_rules(),
                             ids=lambda r: r.name)
    def test_every_buggy_rule_is_refuted(self, rule):
        result = disprove_rule(rule, draws=3)
        assert result.found, f"no counterexample for {rule.name}"
        cx = result.counterexample
        assert cx.lhs_result != cx.rhs_result

    def test_sound_rule_survives_small_bound(self):
        rule = get_rule("union_comm")
        result = disprove_rule(rule, bound=Bound.of(1, 2), draws=1)
        assert not result.found
        assert result.exhausted


class TestShardDeterminism:
    """Parallel search must be bit-identical to the serial search."""

    def test_same_witness_serial_and_parallel(self, catalog):
        q1 = compile_sql("SELECT r.a FROM R r, S s WHERE r.a = s.a",
                         catalog).query
        q2 = compile_sql("SELECT DISTINCT r.a FROM R r, S s "
                         "WHERE r.a = s.a", catalog).query
        bound = Bound.of(3, 2)
        serial = disprove(q1, q2, bound=bound, workers=1)
        sharded = disprove(q1, q2, bound=bound, workers=4, batch_size=37)
        assert serial.found and sharded.found
        assert sharded.instances_checked == serial.instances_checked
        assert sharded.counterexample.trial == serial.counterexample.trial
        assert sharded.record == serial.record

    def test_exhaustion_matches_serial(self, catalog):
        q1 = compile_sql("SELECT a FROM R WHERE a = 1", catalog).query
        serial = disprove(q1, q1, bound=Bound.of(2, 2), workers=1)
        sharded = disprove(q1, q1, bound=Bound.of(2, 2), workers=4)
        assert not serial.found and not sharded.found
        assert serial.exhausted and sharded.exhausted
        assert sharded.instances_checked == serial.instances_checked

    def test_knob_validation(self, catalog):
        q1 = compile_sql("SELECT a FROM R", catalog).query
        with pytest.raises(ValueError):
            disprove(q1, q1, workers=0)
        with pytest.raises(ValueError):
            disprove(q1, q1, batch_size=0)


class TestDisproverStress:
    """The compiled disprover makes the PR 9 ``slow`` bounds tier-1."""

    def test_sound_corpus_survives_default_bound(self):
        for rule in all_rules():
            if rule.instantiate is None:
                continue
            result = disprove_rule(rule, bound=Bound.of(2, 2), draws=1,
                                   max_instances=20000)
            assert not result.found, rule.name

    def test_three_row_bound_still_refutes_buggy_rules(self):
        for rule in all_buggy_rules():
            result = disprove_rule(
                rule, bound=Bound.of(3, 2), draws=2, max_instances=50000)
            assert result.found, rule.name


@pytest.mark.slow
class TestDisproverStressSlow:
    """Bigger bounds — opt in with ``--runslow`` (or ``-m slow``)."""

    def test_sound_corpus_survives_multiplicity_three(self):
        for rule in all_rules():
            if rule.instantiate is None:
                continue
            result = disprove_rule(rule, bound=Bound.of(2, 3), draws=1,
                                   max_instances=100000)
            assert not result.found, rule.name

    def test_three_by_three_bound_still_refutes_buggy_rules(self):
        for rule in all_buggy_rules():
            result = disprove_rule(
                rule, bound=Bound.of(3, 3), draws=2, max_instances=200000)
            assert result.found, rule.name
