"""Concrete interpretation of UniNomial terms.

The library has *two* executable readings of a query:

1. :mod:`repro.engine.eval` evaluates the HoTTSQL syntax tree directly
   (support-driven, efficient), and
2. this module evaluates the query's *denotation* — the UniNomial term
   produced by Figure 7 — literally: ``Σ`` enumerates the tuple space of
   the bound variable's schema over finite domains, ``×``/``+`` are the
   semiring operations, ``‖·‖``/``→0`` are truncation and negation.

Agreement between the two on random instances is the strongest executable
validation of the denotational semantics, and interpreting a term before
and after :func:`repro.core.normalize.normalize` validates every rewrite
the normalizer performs.  Both properties are exercised by the test suite
with hypothesis.

Only concrete schemas can be interpreted (a schema variable has no tuple
space); generic rule proofs stay on the symbolic side.
"""

from __future__ import annotations

from typing import Any, Dict

from ..engine.database import Interpretation
from ..errors import ReproError
from ..semiring.semirings import NAT, Semiring
from .schema import DEFAULT_DOMAINS, enumerate_tuples
from .uninomial import (
    TAgg,
    TApp,
    TConst,
    TFst,
    TPair,
    TSnd,
    TUnit,
    TVar,
    Term,
    UAdd,
    UEq,
    UMul,
    UNeg,
    UOne,
    UPred,
    URel,
    USquash,
    USum,
    UTerm,
    UZero,
)

#: A variable environment: tuple variables to concrete nested tuples.
Env = Dict[TVar, Any]


class InterpretationError(ReproError):
    """Raised when a term cannot be interpreted concretely."""


def _as_count(annot: Any) -> int:
    """Convert a semiring annotation to an aggregate count (as in the
    engine's evaluator)."""
    if isinstance(annot, bool):
        return 1 if annot else 0
    if isinstance(annot, int):
        return annot
    from ..semiring.cardinal import Cardinal
    if isinstance(annot, Cardinal):
        return annot.finite_value()
    raise InterpretationError(
        f"cannot aggregate over annotation {annot!r}")


def eval_term(term: Term, env: Env, interp: Interpretation,
              semiring: Semiring = NAT, domains=DEFAULT_DOMAINS) -> Any:
    """Evaluate a tuple/value term to a concrete nested tuple."""
    if isinstance(term, TVar):
        if term not in env:
            raise InterpretationError(f"unbound variable {term}")
        return env[term]
    if isinstance(term, TUnit):
        return ()
    if isinstance(term, TPair):
        return (eval_term(term.left, env, interp, semiring, domains),
                eval_term(term.right, env, interp, semiring, domains))
    if isinstance(term, TFst):
        return eval_term(term.arg, env, interp, semiring, domains)[0]
    if isinstance(term, TSnd):
        return eval_term(term.arg, env, interp, semiring, domains)[1]
    if isinstance(term, TConst):
        return term.value
    if isinstance(term, TApp):
        args = [eval_term(a, env, interp, semiring, domains)
                for a in term.args]
        # Denotation produces TApp for projection metavariables (PVar),
        # expression metavariables (ExprVar), and scalar functions (Func);
        # resolve in that order against the interpretation.
        if term.fn in interp.projections and len(args) == 1:
            return interp.projection(term.fn)(args[0])
        if term.fn in interp.expressions and len(args) == 1:
            return interp.expression(term.fn)(args[0])
        return interp.function(term.fn)(*args)
    if isinstance(term, TAgg):
        bag = []
        for value in enumerate_tuples(term.var.var_schema, domains):
            inner_env = dict(env)
            inner_env[term.var] = value
            annot = eval_uterm(term.body, inner_env, interp, semiring,
                               domains)
            count = _as_count(annot)
            if count:
                bag.append((value, count))
        return interp.aggregate(term.name)(bag)
    raise InterpretationError(f"cannot interpret term {term!r}")


def eval_uterm(u: UTerm, env: Env, interp: Interpretation,
               semiring: Semiring = NAT, domains=DEFAULT_DOMAINS) -> Any:
    """Evaluate a UniNomial term to a semiring element.

    ``Σ`` is interpreted by enumerating the finite tuple space of the
    bound variable's (concrete) schema — the literal reading of the
    paper's infinitary sum on finite domains.
    """
    if isinstance(u, UZero):
        return semiring.zero
    if isinstance(u, UOne):
        return semiring.one
    if isinstance(u, UAdd):
        return semiring.add(
            eval_uterm(u.left, env, interp, semiring, domains),
            eval_uterm(u.right, env, interp, semiring, domains))
    if isinstance(u, UMul):
        left = eval_uterm(u.left, env, interp, semiring, domains)
        if semiring.is_zero(left):
            return semiring.zero
        return semiring.mul(
            left, eval_uterm(u.right, env, interp, semiring, domains))
    if isinstance(u, USquash):
        return semiring.squash(
            eval_uterm(u.arg, env, interp, semiring, domains))
    if isinstance(u, UNeg):
        return semiring.negate(
            eval_uterm(u.arg, env, interp, semiring, domains))
    if isinstance(u, USum):
        total = semiring.zero
        for value in enumerate_tuples(u.var.var_schema, domains):
            inner_env = dict(env)
            inner_env[u.var] = value
            total = semiring.add(
                total, eval_uterm(u.body, inner_env, interp, semiring,
                                  domains))
        return total
    if isinstance(u, UEq):
        left = eval_term(u.left, env, interp, semiring, domains)
        right = eval_term(u.right, env, interp, semiring, domains)
        return semiring.from_bool(left == right)
    if isinstance(u, URel):
        row = eval_term(u.arg, env, interp, semiring, domains)
        return interp.relation(u.name).annotation(row)
    if isinstance(u, UPred):
        args = [eval_term(a, env, interp, semiring, domains)
                for a in u.args]
        if len(args) == 1:
            return semiring.from_bool(bool(interp.predicate(u.name)(args[0])))
        return semiring.from_bool(bool(interp.predicate(u.name)(*args)))
    raise InterpretationError(f"cannot interpret UTerm {u!r}")


def eval_denotation(denotation, interp: Interpretation,
                    semiring: Semiring = NAT, domains=DEFAULT_DOMAINS,
                    extra_tuples=()):
    """Evaluate a closed denotation to a K-relation over the tuple space.

    The context is empty, so ``g = ()``; the result maps every tuple of
    the output schema's (finite) space to its interpreted multiplicity.

    ``extra_tuples`` extends the probed output space: computed values
    (aggregates, arithmetic) can fall outside the base enumeration
    domain, and callers comparing against the support-driven evaluator
    should pass its support here.
    """
    from ..semiring.krelation import KRelation

    out = KRelation(semiring)
    probed = set()
    for value in enumerate_tuples(denotation.schema, domains):
        probed.add(value)
        env = {denotation.g: (), denotation.t: value}
        out.add(value, eval_uterm(denotation.body, env, interp, semiring,
                                  domains))
    for value in extra_tuples:
        if value in probed:
            continue
        probed.add(value)
        env = {denotation.g: (), denotation.t: value}
        out.add(value, eval_uterm(denotation.body, env, interp, semiring,
                                  domains))
    return out


__all__ = [
    "Env",
    "InterpretationError",
    "eval_denotation",
    "eval_term",
    "eval_uterm",
]
