"""Observability end to end: spans as the timing source of truth,
cross-process metric aggregation, kernel counter snapshots, and the CLI
surface (``--trace-out``, ``--log-level``, ``repro stats``)."""

import json
import time

import pytest

from repro.cli import main
from repro.core.intern import KernelLRU
from repro.obs.metrics import (
    REGISTRY,
    diff_snapshots,
    empty_snapshot,
    merge_snapshots,
)
from repro.obs.trace import TRACER
from repro.session import Session
from repro.solver import Job


@pytest.fixture
def session():
    with Session.from_tables("R(a:int,b:int)") as s:
        yield s


# ---------------------------------------------------------------------------
# Timings: populated from spans, bounded by wall clock
# ---------------------------------------------------------------------------

class TestTimingsVsWall:
    def test_sum_of_timings_never_exceeds_wall(self, session):
        """The double-counting regression: ``Verdict.timings`` sums to at
        most the wall clock of the whole check *including* normalization
        (spans are the source of truth, and each side's normalize cost is
        charged exactly once)."""
        q1 = session.sql("SELECT x.a AS a FROM R x WHERE x.b = 1")
        q2 = session.sql("SELECT y.a AS a FROM R y WHERE 1 = y.b")
        started = time.perf_counter()
        verdict = q1.equivalent_to(q2)
        wall = time.perf_counter() - started
        assert verdict.timings
        assert sum(verdict.timings.values()) <= wall

    def test_memoized_side_is_charged_once(self, session):
        q1 = session.sql("SELECT x.a AS a FROM R x")
        q2 = session.sql("SELECT y.a AS a FROM R y")
        q3 = session.sql("SELECT z.b AS a FROM R z")
        first = q1.equivalent_to(q2)
        started = time.perf_counter()
        second = q1.equivalent_to(q3)
        wall = time.perf_counter() - started
        # q1's normalization was charged to the first verdict; the second
        # pays only q3's share, so the bound holds per call.
        assert sum(first.timings.values()) >= first.timings["normalize"]
        assert sum(second.timings.values()) <= wall

    def test_every_executed_tier_appears_in_timings(self, session):
        q1 = session.sql("SELECT x.a AS a FROM R x")
        q2 = session.sql("SELECT y.b AS a FROM R y")
        verdict = q1.equivalent_to(q2)  # inequivalent: all tiers run
        assert {"normalize", "cache", "alpha-hash"} <= set(verdict.timings)
        assert verdict.status.name == "DISPROVED"


# ---------------------------------------------------------------------------
# Cross-process aggregation
# ---------------------------------------------------------------------------

def _jobs(session):
    pairs = [
        ("SELECT x.a AS a FROM R x", "SELECT y.a AS a FROM R y"),
        ("SELECT x.a AS a FROM R x WHERE x.b = 1",
         "SELECT x.a AS a FROM R x WHERE 1 = x.b"),
        ("SELECT x.a AS a FROM R x", "SELECT x.b AS a FROM R x"),
    ]
    return [Job(job_id=f"j{i}", q1=session.sql(a).query,
                q2=session.sql(b).query)
            for i, (a, b) in enumerate(pairs)]


class TestBatchAggregation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_report_metrics_equal_merged_job_metrics(self, session,
                                                     workers):
        report = session.check_batch(_jobs(session), workers=workers)
        assert report.computed == 3
        merged = empty_snapshot()
        for delta in report.job_metrics.values():
            merged = merge_snapshots(merged, delta)
        assert merged["counters"] == report.metrics["counters"]
        assert merged["histograms"] == report.metrics["histograms"]
        assert report.metrics["counters"]["pipeline.checks_total"] == 3.0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_parent_registry_absorbs_worker_deltas(self, session, workers):
        jobs = _jobs(session)
        before = REGISTRY.snapshot()
        report = session.check_batch(jobs, workers=workers)
        parent_delta = diff_snapshots(before, REGISTRY.snapshot())
        # Every counter the workers reported is visible in the parent's
        # own registry (the parent may add more on top, e.g. the alias
        # probes and batch-level counters).
        for name, value in report.metrics["counters"].items():
            assert parent_delta["counters"].get(name, 0.0) >= value, name
        assert parent_delta["counters"]["service.jobs_total"] == 3.0

    def test_cache_hits_ship_no_job_delta(self, session):
        jobs = _jobs(session)
        session.check_batch(jobs, workers=1)
        report = session.check_batch(jobs, workers=1)
        assert report.cache_hits == 3
        assert report.computed == 0
        assert report.job_metrics == {}
        assert report.metrics == empty_snapshot()

    def test_session_metrics_snapshot(self, session):
        session.check_batch(_jobs(session), workers=1)
        snap = session.metrics()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["pipeline.checks_total"] >= 3.0
        tiers = snap["histograms"]["pipeline.tier.cache.seconds"]
        assert tiers["count"] >= 3


# ---------------------------------------------------------------------------
# Kernel counter snapshots
# ---------------------------------------------------------------------------

class TestKernelSnapshots:
    def test_snapshot_is_coherent_and_reset_keeps_entries(self):
        lru = KernelLRU(8, "test-snap")
        lru.put("k", "v")
        lru.get("k")
        lru.get("absent")
        snap = lru.snapshot()
        assert snap == {"hits": 1, "misses": 1, "size": 1,
                        "hit_rate": 0.5,
                        "lifetime_hits": 1, "lifetime_misses": 1}
        pre_reset = lru.reset()
        # reset() atomically returns the outgoing window's snapshot ...
        assert pre_reset == snap
        # ... zeroes only the window counters, and keeps the monotonic
        # lifetime counters (delta consumers difference those).
        assert lru.snapshot() == {"hits": 0, "misses": 0, "size": 1,
                                  "hit_rate": 0.0,
                                  "lifetime_hits": 1, "lifetime_misses": 1}
        assert lru.get("k") == "v"  # entries survived the reset

    def test_clear_drops_entries_too(self):
        lru = KernelLRU(8, "test-clear")
        lru.put("k", "v")
        lru.clear()
        snap = lru.snapshot()
        assert {k: snap[k] for k in ("hits", "misses", "size", "hit_rate")} \
            == {"hits": 0, "misses": 0, "size": 0, "hit_rate": 0.0}
        assert lru.get("k") is None

    def test_verdict_kernel_counters_keep_their_shape(self, session):
        q1 = session.sql("SELECT x.a AS a FROM R x WHERE x.b = 2")
        q2 = session.sql("SELECT y.a AS a FROM R y WHERE y.b = 2")
        verdict = q1.equivalent_to(q2)
        assert set(verdict.kernel_counters) == {
            "normalize_hits", "normalize_misses", "interned_nodes"}
        assert all(isinstance(v, int)
                   for v in verdict.kernel_counters.values())


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCLI:
    def test_check_trace_out_covers_executed_tiers(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = main(["check", "--table", "R(a:int,b:int)",
                     "SELECT x.a AS a FROM R x",
                     "SELECT y.a AS a FROM R y",
                     "--trace-out", str(path)])
        assert code == 0
        with open(path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
        names = {e["name"] for e in trace["traceEvents"]}
        # Every tier the pipeline executed shows up as a span.
        assert {"pipeline.normalize", "pipeline.cache",
                "pipeline.alpha-hash"} <= names
        for event in trace["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0

    def test_optimize_trace_out(self, tmp_path, capsys):
        path = tmp_path / "opt.json"
        code = main(["optimize", "--table", "R(a:int,b:int)",
                     "SELECT x.a AS a FROM R x WHERE x.a = 1 AND x.b = 2",
                     "--trace-out", str(path)])
        assert code == 0
        with open(path, "r", encoding="utf-8") as handle:
            names = {e["name"]
                     for e in json.load(handle)["traceEvents"]}
        assert "optimizer.saturate" in names
        assert "optimizer.saturate.iteration" in names
        assert "optimizer.extract" in names

    def test_tracer_left_disabled_after_trace_out(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        main(["check", "--table", "R(a:int)", "SELECT x.a AS a FROM R x",
              "SELECT x.a AS a FROM R x", "--trace-out", str(path)])
        assert not TRACER.enabled
        assert len(TRACER) == 0

    def test_stats_json_is_machine_readable(self, capsys):
        assert main(["stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"metrics", "kernel"}
        assert set(payload["metrics"]) == {"counters", "gauges",
                                           "histograms"}
        assert "interned_nodes" in payload["kernel"]

    def test_stats_human_output(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "histograms:" in out
        assert "kernel:" in out

    def test_log_level_debug_logs_spans(self, capsys):
        code = main(["check", "--table", "R(a:int)",
                     "SELECT x.a AS a FROM R x",
                     "SELECT y.a AS a FROM R y",
                     "--log-level", "DEBUG"])
        assert code == 0
        err = capsys.readouterr().err
        assert "repro.trace" in err
        assert "pipeline.cache" in err

    def test_log_level_rejects_garbage(self, capsys):
        assert main(["stats", "--log-level", "SHOUTING"]) == 2
        assert "unknown log level" in capsys.readouterr().err
