"""Verification-as-a-service: the ``repro serve`` daemon layer.

A long-lived front door over the tiered pipeline (ROADMAP's "millions
of users" line): a newline-delimited-JSON TCP daemon
(:mod:`~repro.serve.server`) with in-flight dedup and a persistent
worker pool, a sharded disk-backed content-addressed proof store
(:mod:`~repro.serve.store`) many processes share safely, and a retrying
client (:mod:`~repro.serve.client`) that
:meth:`repro.session.Session.connect` wraps so the fluent API runs
remote transparently.
"""

from .client import ServeClient, ServeClientError
from .protocol import MAX_LINE_BYTES, ProtocolError, parse_address
from .server import ReproServer, ServeError
from .store import ShardedProofStore, StoreError, StoreProofCache

__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "ReproServer",
    "ServeClient",
    "ServeClientError",
    "ServeError",
    "ShardedProofStore",
    "StoreError",
    "StoreProofCache",
    "parse_address",
]
