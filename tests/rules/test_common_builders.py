"""The shared rule-construction machinery: semijoin and GROUP BY macros."""

import random


from repro.core import ast
from repro.core.schema import EMPTY, INT, Leaf, Node, SVar
from repro.core.typecheck import infer_query
from repro.engine import Interpretation, run_query
from repro.engine.random_instances import path_projection, random_relation
from repro.rules.common import (
    CONCRETE,
    attr_expr,
    const_expr,
    groupby_agg,
    semijoin,
    semijoin_on,
    standard_interpretation,
    table,
    where_pred,
)
from repro.semiring import KRelation, NAT


class TestSemijoinMacro:
    S1, S2 = SVar("a1"), SVar("a2")

    def test_typechecks(self):
        r = table("R", self.S1)
        s = table("S", self.S2)
        theta = ast.PredVar("theta", Node(self.S1, self.S2))
        q = semijoin(r, s, theta)
        assert infer_query(q, EMPTY) == self.S1

    def test_concrete_semantics(self):
        # R ⋉_{l.0 = r.0} S keeps exactly the R rows with a partner.
        r = table("R", CONCRETE)
        s = table("S", CONCRETE)
        pair_pred = ast.PredEq(attr_expr(ast.LEFT, ast.LEFT),
                               attr_expr(ast.RIGHT, ast.LEFT))
        q = semijoin_on(r, s, pair_pred)
        interp = Interpretation()
        interp.relations["R"] = KRelation(NAT, {(1, 0): 2, (2, 0): 1})
        interp.relations["S"] = KRelation(NAT, {(1, 9): 5})
        out = run_query(q, interp)
        # Semijoin keeps multiplicity of R, ignores S's.
        assert dict(out.items()) == {(1, 0): 2}

    def test_semijoin_idempotent_on_instances(self):
        r = table("R", CONCRETE)
        s = table("S", CONCRETE)
        pair_pred = ast.PredEq(attr_expr(ast.LEFT, ast.LEFT),
                               attr_expr(ast.RIGHT, ast.LEFT))
        once = semijoin_on(r, s, pair_pred)
        twice = semijoin_on(once, s, pair_pred)
        rng = random.Random(4)
        for _ in range(10):
            interp = Interpretation()
            interp.relations["R"] = random_relation(rng, CONCRETE, NAT)
            interp.relations["S"] = random_relation(rng, CONCRETE, NAT)
            assert run_query(once, interp) == run_query(twice, interp)


class TestGroupByMacro:
    def test_typechecks(self):
        s1 = SVar("g1")
        r = table("R", s1)
        k = ast.PVar("k", s1, Leaf(INT))
        v = ast.PVar("v", s1, Leaf(INT))
        q = groupby_agg(r, k, v, "SUM")
        assert infer_query(q, EMPTY) == Node(Leaf(INT), Leaf(INT))

    def test_concrete_grouping(self):
        s1 = SVar("g1")
        r = table("R", s1)
        k = ast.PVar("k", s1, Leaf(INT))
        v = ast.PVar("v", s1, Leaf(INT))
        q = groupby_agg(r, k, v, "SUM")
        interp = Interpretation()
        interp.relations["R"] = KRelation(NAT, {
            (1, 10): 1, (1, 20): 2, (2, 5): 1})
        interp.projections["k"] = path_projection(("L",))
        interp.projections["v"] = path_projection(("R",))
        out = run_query(q, interp)
        # group 1: 10 + 20 + 20 = 50 (multiplicity 2 counts twice)
        assert dict(out.items()) == {(1, 50): 1, (2, 5): 1}

    def test_count_aggregation(self):
        s1 = SVar("g1")
        r = table("R", s1)
        k = ast.PVar("k", s1, Leaf(INT))
        v = ast.PVar("v", s1, Leaf(INT))
        q = groupby_agg(r, k, v, "COUNT")
        interp = Interpretation()
        interp.relations["R"] = KRelation(NAT, {(1, 10): 3, (2, 5): 1})
        interp.projections["k"] = path_projection(("L",))
        interp.projections["v"] = path_projection(("R",))
        out = run_query(q, interp)
        assert dict(out.items()) == {(1, 3): 1, (2, 1): 1}


class TestStandardInterpretation:
    def test_deterministic_given_seed(self):
        i1 = standard_interpretation(random.Random(5), ("R",), attrs=("p",),
                                     preds=("b",), consts=("l",))
        i2 = standard_interpretation(random.Random(5), ("R",), attrs=("p",),
                                     preds=("b",), consts=("l",))
        assert i1.relations["R"] == i2.relations["R"]
        assert i1.expressions["l"](()) == i2.expressions["l"](())

    def test_keyed_generation(self):
        interp = standard_interpretation(
            random.Random(7), ("R",), attrs=("k",), keyed={"R": "k"})
        from repro.engine.constraints import satisfies_key
        assert satisfies_key(interp.relations["R"],
                             interp.projections["k"])

    def test_const_expr_and_where_pred_shapes(self):
        s1 = SVar("c1")
        pred = where_pred("b", s1)
        assert pred.schema == Node(EMPTY, s1)
        expr = const_expr("l")
        assert isinstance(expr, ast.CastExpr)
