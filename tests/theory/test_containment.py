"""Figure 9: containment/equivalence deciders per fragment."""

import random

import pytest

from repro.theory import (
    Atom,
    CQ,
    CQI,
    UCQ,
    Undecidable,
    chain_query,
    cq_bag_contained,
    cq_bag_equivalent,
    cq_set_contained,
    cq_set_equivalent,
    cq_to_hottsql,
    cqi_bag_contained,
    cqi_set_contained,
    cqi_set_equivalent,
    cycle_query,
    find_homomorphism,
    fo_contained,
    rename_apart,
    star_query,
    ucq_bag_contained,
    ucq_set_contained,
    ucq_set_equivalent,
)


class TestHomomorphisms:
    def test_identity_homomorphism(self):
        q = chain_query(3)
        hom = find_homomorphism(q, q)
        assert hom is not None

    def test_chain_collapse(self):
        # A long chain maps onto a self-loop.
        loop = CQ(("x",), (Atom("E", ("x", "x")),))
        assert find_homomorphism(chain_query(4, head_first=True),
                                 loop) is not None

    def test_no_homomorphism_into_shorter_chain(self):
        # With both endpoints in the head, a chain cannot shorten.
        long = chain_query(3, head_first=False)
        short = chain_query(2, head_first=False)
        assert find_homomorphism(long, short) is None

    def test_head_arity_mismatch(self):
        assert find_homomorphism(chain_query(2, head_first=True),
                                 chain_query(2, head_first=False)) is None

    def test_constants_must_match(self):
        q1 = CQ((), (Atom("R", (1,)),))
        q2 = CQ((), (Atom("R", (2,)),))
        assert find_homomorphism(q1, q2) is None
        assert find_homomorphism(q1, q1) is not None


class TestSetContainment:
    def test_self_containment(self):
        q = star_query(3)
        assert cq_set_contained(q, q)

    def test_stars_all_collapse(self):
        # Homomorphisms may merge variables, so every star is equivalent
        # to the single-edge star — the classic minimization example.
        assert cq_set_equivalent(star_query(3), star_query(1))
        assert cq_set_equivalent(star_query(2), star_query(5))

    def test_chain_hierarchy_is_strict(self):
        # "has a path of length 2 from x0" ⊊ "has an edge from x0".
        assert cq_set_contained(chain_query(2), chain_query(1))
        assert not cq_set_contained(chain_query(1), chain_query(2))

    def test_cycles(self):
        # C3 ⊆ C6 (a hom C6 → C3 exists); C6 ⊄ C3 (no hom C3 → C6).
        assert cq_set_contained(cycle_query(3), cycle_query(6))
        assert not cq_set_contained(cycle_query(6), cycle_query(3))

    def test_equivalence_up_to_redundancy(self):
        # q(x) :- E(x,y) ∧ E(x,z) is equivalent to q(x) :- E(x,y).
        redundant = CQ(("x",), (Atom("E", ("x", "y")),
                                Atom("E", ("x", "z"))))
        minimal = CQ(("x",), (Atom("E", ("x", "y")),))
        assert cq_set_equivalent(redundant, minimal)

    def test_alpha_invariance(self):
        q = chain_query(3)
        assert cq_set_equivalent(q, rename_apart(q, "_r"))


class TestBagEquivalence:
    def test_isomorphic_queries(self):
        q = chain_query(3)
        assert cq_bag_equivalent(q, rename_apart(q, "_r"))

    def test_redundancy_matters_for_bags(self):
        # The set-equivalent pair above is NOT bag-equivalent.
        redundant = CQ(("x",), (Atom("E", ("x", "y")),
                                Atom("E", ("x", "z"))))
        minimal = CQ(("x",), (Atom("E", ("x", "y")),))
        assert cq_set_equivalent(redundant, minimal)
        assert not cq_bag_equivalent(redundant, minimal)

    def test_variable_bijectivity_enforced(self):
        # E(x,y) ∧ E(y,x) vs E(x,y) ∧ E(x,y): same atom count, not iso.
        q1 = CQ((), (Atom("E", ("x", "y")), Atom("E", ("y", "x"))))
        q2 = CQ((), (Atom("E", ("x", "y")), Atom("E", ("u", "v"))))
        assert not cq_bag_equivalent(q1, q2)

    def test_head_respected(self):
        q1 = CQ(("x",), (Atom("E", ("x", "y")),))
        q2 = CQ(("y",), (Atom("E", ("x", "y")),))
        assert not cq_bag_equivalent(q1, q2)


class TestUCQ:
    def test_disjunct_absorption(self):
        # chain2 ⊆ chain1, so chain1 ∪ chain2 ≡ chain1.
        u1 = UCQ((chain_query(1), chain_query(2)))
        u2 = UCQ((chain_query(1),))
        assert ucq_set_equivalent(u1, u2)

    def test_strict_union(self):
        # chain1 ⊄ chain2, so adding the chain1 disjunct strictly grows
        # the union.
        u_big = UCQ((chain_query(2), chain_query(1)))
        u_small = UCQ((chain_query(2),))
        assert ucq_set_contained(u_small, u_big)
        assert not ucq_set_contained(u_big, u_small)


class TestCQI:
    X_LT_Y = CQI(CQ(("x",), (Atom("R", ("x", "y")),)), (("x", "y"),))
    UNCONSTRAINED = CQI(CQ(("x",), (Atom("R", ("x", "y")),)), ())

    def test_adding_comparison_shrinks(self):
        assert cqi_set_contained(self.X_LT_Y, self.UNCONSTRAINED)
        assert not cqi_set_contained(self.UNCONSTRAINED, self.X_LT_Y)

    def test_self_equivalence(self):
        assert cqi_set_equivalent(self.X_LT_Y, self.X_LT_Y)

    def test_transitivity_of_order(self):
        # x<y ∧ y<z implies x<z: the query with the redundant comparison
        # is equivalent to the one without.
        base = CQ(("x",), (Atom("R", ("x", "y")), Atom("R", ("y", "z"))))
        with_redundant = CQI(base, (("x", "y"), ("y", "z"), ("x", "z")))
        without = CQI(base, (("x", "y"), ("y", "z")))
        assert cqi_set_equivalent(with_redundant, without)

    def test_incompatible_orders_not_contained(self):
        lt = CQI(CQ(("x",), (Atom("R", ("x", "y")),)), (("x", "y"),))
        gt = CQI(CQ(("x",), (Atom("R", ("x", "y")),)), (("y", "x"),))
        assert not cqi_set_contained(lt, gt)


class TestUndecidableCells:
    def test_bag_containment_cq_open(self):
        with pytest.raises(Undecidable):
            cq_bag_contained(chain_query(1), chain_query(2))

    def test_bag_containment_ucq_undecidable(self):
        with pytest.raises(Undecidable):
            ucq_bag_contained(UCQ((chain_query(1),)),
                              UCQ((chain_query(2),)))

    def test_bag_containment_cqi_undecidable(self):
        with pytest.raises(Undecidable):
            cqi_bag_contained(self_cqi(), self_cqi())

    def test_fo_undecidable(self):
        with pytest.raises(Undecidable):
            fo_contained(None, None)


def self_cqi():
    return CQI(CQ(("x",), (Atom("R", ("x", "y")),)), ())


class TestBridgeToHoTTSQL:
    """Cross-validation: the paper's Sec. 5.2 procedure agrees with the
    classical Chandra–Merlin criterion on random CQ pairs."""

    ARITIES = {"E": 2, "R": 2}

    def _random_cq(self, rng, n_atoms, n_vars):
        variables = [f"v{i}" for i in range(n_vars)]
        atoms = tuple(
            Atom("E", (rng.choice(variables), rng.choice(variables)))
            for _ in range(n_atoms))
        used = sorted({a for atom in atoms for a in atom.args})
        head = (used[0],)
        return CQ(head, atoms)

    @pytest.mark.parametrize("seed", range(12))
    def test_agreement_with_chandra_merlin(self, seed):
        from repro.core.conjunctive import decide_cq
        rng = random.Random(seed)
        q1 = self._random_cq(rng, rng.randint(1, 3), rng.randint(1, 3))
        q2 = self._random_cq(rng, rng.randint(1, 3), rng.randint(1, 3))
        classical = cq_set_equivalent(q1, q2)
        hott = decide_cq(cq_to_hottsql(q1, self.ARITIES),
                         cq_to_hottsql(q2, self.ARITIES),
                         require_fragment=False)
        assert hott.equivalent == classical, f"{q1}  vs  {q2}"

    def test_alpha_variant_bridge(self):
        from repro.core.conjunctive import decide_cq
        q = chain_query(2)
        d = decide_cq(cq_to_hottsql(q, self.ARITIES),
                      cq_to_hottsql(rename_apart(q, "_b"), self.ARITIES),
                      require_fragment=False)
        assert d.equivalent
