"""Static linter for rewrite-rule corpora.

Every check here runs without the prover and without random search —
the point is to catch whole defect classes *before* any semantics is
evaluated, reproducing statically the paper's claim that "common
mistakes made in query optimization fail to pass our formal
verification".  Diagnostics carry stable machine-readable codes:

====== ========= ====================================================
code   severity  meaning
====== ========= ====================================================
RS101  error     RHS uses a metavariable the LHS never binds
RS102  error     the two sides infer different output schemas
RS103  error     a side fails schema inference outright
RS110  error     DISTINCT-scope narrowing: set-valued LHS, RHS
                 rebuilds duplicates (one-point countermodel)
RS111  error     duplicate-sensitive self-join collapse: a table
                 occurrence drops LHS→RHS without set-valued output
RS112  error     EXCEPT reassociation (bag difference does not
                 associate)
RS120  error     multiplicity profile mismatch on a canonical
                 one-point world (generic backstop)
RS130  warning   hypothesis sufficiency: a DISTINCT is dropped with
                 no key hypothesis to license it
RS201  warning   self-embedding rule: one side strictly contains the
                 other (naive rewriters diverge)
RS202  warning   size-increasing cycle across the rule set
====== ========= ====================================================

The RS11x/RS120 family is decided on *canonical one-point worlds*:
deterministic instances built from the rule's shape (each free table
holds the canonical row of its schema at a small swept multiplicity,
clamped to ≤ 1 for tables under a key hypothesis so every world
satisfies the hypotheses).  A disagreement between the two sides on
such a world is a genuine countermodel — the flag can never be a false
positive — yet no randomness and no prover is involved: it is abstract
interpretation over a finite family of least models, in the tradition
of typestate checkers that reject misuse without execution.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import ast
from ..core.schema import INT, Leaf, Node, SVar, Schema
from ..core.typecheck import infer_query as infer_schema
from ..engine.database import Interpretation
from ..engine.eval import EvaluationError, run_query
from ..obs.metrics import counter
from .infer import AnalysisContext, infer_properties, iter_ast

__all__ = [
    "Diagnostic",
    "ExpectedDefect",
    "LintReport",
    "Severity",
    "lint_rule",
    "lint_rules",
]

_DIAGNOSTICS = counter("analysis.lint.diagnostics")
_RULES_LINTED = counter("analysis.lint.rules")

#: Schema variables instantiate to the canonical two-leaf row.
_CONCRETE = Node(Leaf(INT), Leaf(INT))


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class ExpectedDefect:
    """The structured annotation a deliberately buggy rule carries."""

    code: str    #: stable diagnostic code, e.g. ``"RS110"``
    reason: str  #: one-line human explanation of the defect


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, machine-readable."""

    code: str
    severity: Severity
    rule: str
    message: str

    def to_dict(self) -> dict:
        return {"code": self.code, "severity": self.severity.value,
                "rule": self.rule, "message": self.message}

    def __str__(self) -> str:
        return f"{self.severity.value}[{self.code}] {self.rule}: " \
               f"{self.message}"


@dataclass
class LintReport:
    """Aggregate result of linting a corpus."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    rules_checked: int = 0

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    def by_rule(self) -> Dict[str, List[Diagnostic]]:
        grouped: Dict[str, List[Diagnostic]] = {}
        for d in self.diagnostics:
            grouped.setdefault(d.rule, []).append(d)
        return grouped

    def codes_for(self, rule_name: str) -> Tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics
                     if d.rule == rule_name)

    def to_dict(self) -> dict:
        return {"rules_checked": self.rules_checked,
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "diagnostics": [d.to_dict() for d in self.diagnostics]}


# ---------------------------------------------------------------------------
# Structural facts about a rule
# ---------------------------------------------------------------------------

def _metavars(query: ast.Query) -> Dict[str, set]:
    """Names of the projection/predicate/expression metavariables."""
    found = {"proj": set(), "pred": set(), "expr": set()}
    for node in iter_ast(query):
        if isinstance(node, ast.PVar):
            found["proj"].add(node.name)
        elif isinstance(node, ast.PredVar):
            found["pred"].add(node.name)
        elif isinstance(node, ast.ExprVar):
            found["expr"].add(node.name)
    return found


def _free_tables(*queries: ast.Query) -> Dict[str, Schema]:
    tables: Dict[str, Schema] = {}
    for query in queries:
        for node in iter_ast(query):
            if isinstance(node, ast.Table):
                tables[node.name] = node.schema
    return tables


def _table_occurrences(query: ast.Query) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for node in iter_ast(query):
        if isinstance(node, ast.Table):
            counts[node.name] = counts.get(node.name, 0) + 1
    return counts


def _plan_size(query: ast.Query) -> int:
    return sum(1 for _ in iter_ast(query))


def _except_reassociation(lhs: ast.Query, rhs: ast.Query) -> bool:
    """``(a − b) − c`` against ``a − (b − c)`` (either orientation)."""
    def left_nested(q):
        return isinstance(q, ast.Except) and isinstance(q.left, ast.Except)

    def right_nested(q):
        return isinstance(q, ast.Except) and isinstance(q.right, ast.Except)

    for a, b in ((lhs, rhs), (rhs, lhs)):
        if left_nested(a) and right_nested(b) \
                and a.left.left == b.left and a.right == b.right.right:
            return True
    return False


# ---------------------------------------------------------------------------
# Canonical one-point worlds
# ---------------------------------------------------------------------------

def _canonical_row(schema: Schema, value: int):
    """The canonical row of ``schema`` with every leaf set to ``value``
    (schema variables stand for the two-leaf concrete row)."""
    if isinstance(schema, Node):
        return (_canonical_row(schema.left, value),
                _canonical_row(schema.right, value))
    if isinstance(schema, Leaf):
        return value
    if isinstance(schema, SVar):
        return (value, value)
    return ()  # EMPTY


def _leaf_access(row):
    """First base-type leaf of a canonical row (what keys/PVars bind to).

    Canonical rows carry the same value at every leaf, so any-leaf
    access is a well-defined function of the row.
    """
    if isinstance(row, tuple):
        for item in row:
            leaf = _leaf_access(item)
            if leaf is not None:
                return leaf
        return None
    return row


def _world_interpretations(rule) -> List[Tuple[str, Interpretation]]:
    """The finite family of deterministic worlds the profile check runs.

    Every free table holds one or two canonical rows at multiplicities
    swept over a small range — clamped to ≤ 1 for tables under a key
    hypothesis, so each world satisfies the rule's hypotheses by
    construction (canonical rows have pairwise-distinct leaves, hence
    distinct key values, and trivially satisfy any FD).
    """
    from ..semiring.krelation import KRelation
    from ..semiring.semirings import NAT

    tables = _free_tables(rule.lhs, rule.rhs)
    if not tables:
        return []
    keyed = {k.rel for k in rule.hypotheses.keys}
    names = sorted(tables)
    sweeps = []
    for name in names:
        mults = (0, 1) if name in keyed else (0, 1, 2)
        # (row set, multiplicity) choices: one canonical row at each
        # multiplicity, plus a two-distinct-row variant.
        choices = [((0,), m) for m in mults] + [((0, 1), 1)]
        sweeps.append(choices)

    metavars = _metavars(rule.lhs)
    for kind, found in _metavars(rule.rhs).items():
        metavars[kind] |= found
    key_names = {k.proj for k in rule.hypotheses.keys}
    fd_names = set()
    for fd in rule.hypotheses.fds:
        fd_names.add(fd.source)
        fd_names.add(fd.target)

    worlds: List[Tuple[str, Interpretation]] = []
    for combo in itertools.product(*sweeps):
        interp = Interpretation()
        desc = []
        for name, (row_values, mult) in zip(names, combo):
            schema = tables[name]
            rel = KRelation(NAT)
            for value in row_values:
                rel.add(_canonical_row(schema, value), mult)
            interp.relations[name] = rel
            interp.schemas[name] = (schema if not isinstance(schema, SVar)
                                    else _CONCRETE)
            desc.append(f"{name}={{{','.join(str(v) for v in row_values)}}}"
                        f"×{mult}")
        for pname in metavars["proj"] | key_names | fd_names:
            interp.projections.setdefault(pname, _leaf_access)
        for ename in metavars["expr"]:
            interp.expressions[ename] = lambda _input: 0
        for variant, fn in (("⊤", lambda _input: True),
                            ("⊥", lambda _input: False),
                            ("leaf=0", lambda row: _leaf_access(row) == 0)):
            world = Interpretation(
                relations=dict(interp.relations),
                schemas=dict(interp.schemas),
                predicates=dict(interp.predicates),
                projections=dict(interp.projections),
                expressions=dict(interp.expressions),
                functions=dict(interp.functions),
                aggregates=dict(interp.aggregates))
            for bname in metavars["pred"]:
                world.predicates[bname] = fn
            worlds.append((", ".join(desc) + (f", preds={variant}"
                                              if metavars["pred"] else ""),
                           world))
            if not metavars["pred"]:
                break  # predicate variants are indistinguishable
    return worlds


def _profile_countermodel(rule) -> Optional[Tuple[str, int, int]]:
    """First one-point world where the two sides disagree, if any.

    Returns ``(world description, lhs total multiplicity, rhs total
    multiplicity)``; worlds a side cannot evaluate on (opaque
    constructs) are skipped, never flagged.
    """
    for desc, interp in _world_interpretations(rule):
        try:
            left = run_query(rule.lhs, interp)
            right = run_query(rule.rhs, interp)
        except (EvaluationError, KeyError, TypeError):
            continue
        if left != right:
            return (desc,
                    sum(annot for _row, annot in left.items()),
                    sum(annot for _row, annot in right.items()))
    return None


# ---------------------------------------------------------------------------
# The checks
# ---------------------------------------------------------------------------

def lint_rule(rule) -> List[Diagnostic]:
    """All diagnostics for one rule (duck-typed: any object with the
    :class:`~repro.rules.rule.RewriteRule` fields works)."""
    _RULES_LINTED.inc()
    out: List[Diagnostic] = []

    def emit(code: str, severity: Severity, message: str) -> None:
        out.append(Diagnostic(code, severity, rule.name, message))
        _DIAGNOSTICS.inc()
        counter(f"analysis.lint.{code}").inc()

    # RS101 — metavariable containment.  Names declared by the rule's
    # hypotheses (a key's projection, an FD's source/target) count as
    # bound: the ambient axiom supplies them.  A rule that carries
    # hypotheses is a *family* parameterized by that ambient structure
    # (the index rules pick which attribute is indexed), so a leftover
    # unbound name is only a warning there; a hypothesis-free rule must
    # be closed, so it is an error.
    lhs_vars, rhs_vars = _metavars(rule.lhs), _metavars(rule.rhs)
    declared = {k.proj for k in rule.hypotheses.keys}
    for fd in rule.hypotheses.fds:
        declared |= {fd.source, fd.target}
    has_hyps = bool(rule.hypotheses.keys or rule.hypotheses.fds)
    for kind, label in (("proj", "projection"), ("pred", "predicate"),
                        ("expr", "expression")):
        unbound = rhs_vars[kind] - lhs_vars[kind] - declared
        if unbound:
            emit("RS101",
                 Severity.WARNING if has_hyps else Severity.ERROR,
                 f"RHS {label} metavariable(s) "
                 f"{', '.join(sorted(unbound))} never bound on the LHS")

    # RS102 / RS103 — schema preservation via the type checker.
    schemas = []
    for side, query in (("LHS", rule.lhs), ("RHS", rule.rhs)):
        try:
            schemas.append(infer_schema(query, rule.ctx_schema))
        except Exception as exc:  # SchemaError subclasses vary
            emit("RS103", Severity.ERROR,
                 f"{side} fails schema inference: {exc}")
            schemas.append(None)
    if None not in schemas and schemas[0] != schemas[1]:
        emit("RS102", Severity.ERROR,
             f"output schemas differ: {schemas[0]} vs {schemas[1]}")

    # Property inference under the rule's own hypotheses.
    ctx = AnalysisContext.from_hypotheses(rule.hypotheses)
    lhs_props = infer_properties(rule.lhs, ctx)
    rhs_props = infer_properties(rule.rhs, ctx)

    # RS11x / RS120 — the one-point multiplicity profile.
    witness = _profile_countermodel(rule)
    if witness is not None:
        desc, lmult, rmult = witness
        detail = (f"on the canonical world [{desc}] the sides disagree "
                  f"(total multiplicity {lmult} vs {rmult})")
        lhs_counts = _table_occurrences(rule.lhs)
        rhs_counts = _table_occurrences(rule.rhs)
        if lhs_props.set_valued and not rhs_props.set_valued:
            emit("RS110", Severity.ERROR,
                 f"DISTINCT-scope narrowing: LHS is set-valued but the "
                 f"RHS rebuilds duplicates — {detail}")
        elif _except_reassociation(rule.lhs, rule.rhs):
            emit("RS112", Severity.ERROR,
                 f"EXCEPT reassociation: bag difference does not "
                 f"associate — {detail}")
        elif any(rhs_counts.get(name, 0) < count
                 for name, count in lhs_counts.items()):
            emit("RS111", Severity.ERROR,
                 f"duplicate-sensitive join collapse: a table occurrence "
                 f"drops LHS→RHS without set-valued output — {detail}")
        else:
            emit("RS120", Severity.ERROR,
                 f"multiplicity profile mismatch: {detail}")

    # RS130 — hypothesis sufficiency heuristic.
    if lhs_props.set_valued and not rhs_props.set_valued \
            and not rule.hypotheses.keys:
        emit("RS130", Severity.WARNING,
             "a DISTINCT guarantee is dropped LHS→RHS and no key "
             "hypothesis licenses it")

    # RS201 — self-embedding in the declared rewrite direction: applying
    # LHS→RHS re-creates the LHS inside a strictly larger term, so a
    # naive (non-e-graph) rewriter grows without bound.  The shrinking
    # embedding (RHS inside LHS) is the normal shape of a
    # simplification rule and is not flagged.
    if _plan_size(rule.rhs) > _plan_size(rule.lhs) \
            and any(node == rule.lhs for node in iter_ast(rule.rhs)):
        emit("RS201", Severity.WARNING,
             f"self-embedding: the RHS strictly contains the LHS as a "
             f"subterm (size {_plan_size(rule.lhs)} → "
             f"{_plan_size(rule.rhs)})")
    return out


def lint_rules(rules: Sequence) -> LintReport:
    """Lint a corpus: per-rule checks plus the cross-rule cycle check."""
    report = LintReport()
    for rule in rules:
        report.diagnostics.extend(lint_rule(rule))
        report.rules_checked += 1
    report.diagnostics.extend(_cycle_check(rules))
    return report


def _cycle_check(rules: Sequence) -> List[Diagnostic]:
    """RS202 — size-increasing cycles across the rule set.

    Follows exact-term edges ``lhs → rhs`` between distinct rules; a
    chain returning to a term that strictly embeds its starting term
    grows without bound under naive application.
    """
    out: List[Diagnostic] = []
    edges: Dict[ast.Query, List] = {}
    for rule in rules:
        edges.setdefault(rule.lhs, []).append(rule)

    for start in rules:
        term, chain = start.rhs, [start.name]
        for _ in range(len(list(rules))):
            nexts = edges.get(term)
            if not nexts:
                break
            follow = next((r for r in nexts if r.name not in chain), None)
            if follow is None:
                break
            chain.append(follow.name)
            term = follow.rhs
            if _plan_size(term) > _plan_size(start.lhs) \
                    and any(node == start.lhs for node in iter_ast(term)):
                out.append(Diagnostic(
                    "RS202", Severity.WARNING, start.name,
                    f"size-increasing cycle through "
                    f"{' → '.join(chain)} (size {_plan_size(start.lhs)} "
                    f"→ {_plan_size(term)})"))
                counter("analysis.lint.RS202").inc()
                break
    return out
