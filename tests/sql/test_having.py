"""HAVING and scalar aggregates, end to end through the session.

Covers the desugarings of :mod:`repro.sql.resolve` (HAVING as a filter
over the grouped subquery, ungrouped aggregates as single-group
aggregation), their concrete evaluation, the disprover on aggregate
queries, and the resolution errors for the shapes HAVING rejects.
"""

import pytest

from repro import Session
from repro.engine.database import Database
from repro.engine.eval import run_query
from repro.errors import ResolutionError
from repro.semiring.semirings import NAT
from repro.solver.disprover import Bound, disprove
from repro.sql.resolve import Catalog, compile_sql


@pytest.fixture(scope="module")
def session():
    with Session.from_tables("R(k:int,a:int,b:int)") as s:
        yield s


@pytest.fixture()
def catalog():
    cat = Catalog()
    from repro.core.schema import INT
    cat.add_table("R", [("k", INT), ("a", INT), ("b", INT)])
    return cat


@pytest.fixture()
def db(catalog):
    database = Database(NAT)
    database.create_table("R", catalog.schema_of("R"),
                          [[1, 10, 2], [1, 20, 3], [2, 30, 4]])
    return database


def rows(query, db):
    return dict(run_query(query, db.interpretation()).items())


class TestHavingSemantics:
    def test_having_on_group_key(self, catalog, db):
        r = compile_sql(
            "SELECT k, SUM(b) AS s FROM R GROUP BY k HAVING k = 1", catalog)
        assert rows(r.query, db) == {(1, 5): 1}
        assert [c for c, _ in r.columns] == ["k", "s"]

    def test_having_on_aggregate(self, catalog, db):
        r = compile_sql(
            "SELECT k, COUNT(b) AS n FROM R GROUP BY k HAVING SUM(b) > 4",
            catalog)
        assert rows(r.query, db) == {(1, 2): 1}

    def test_having_on_aliased_aggregate_in_list(self, catalog, db):
        r = compile_sql(
            "SELECT k, SUM(b) AS s FROM R GROUP BY k HAVING SUM(b) = 4",
            catalog)
        assert rows(r.query, db) == {(2, 4): 1}

    def test_having_equivalent_to_pushdown(self, session):
        lhs = session.sql(
            "SELECT k, SUM(b) AS s FROM R GROUP BY k HAVING k = 1")
        rhs = session.sql(
            "SELECT k, SUM(b) AS s FROM R WHERE k = 1 GROUP BY k")
        assert lhs.equivalent_to(rhs).proved

    def test_having_not_equivalent_to_unfiltered(self, session):
        lhs = session.sql(
            "SELECT k, SUM(b) AS s FROM R GROUP BY k HAVING k = 1")
        rhs = session.sql("SELECT k, SUM(b) AS s FROM R GROUP BY k")
        verdict = lhs.equivalent_to(rhs)
        assert verdict.disproved


class TestHavingErrors:
    def test_ungrouped_column_in_having(self, session):
        with pytest.raises(ResolutionError,
                           match="non-grouped, non-aggregate"):
            session.sql("SELECT a FROM R HAVING a = 1")

    def test_non_group_column_under_group_by(self, session):
        with pytest.raises(ResolutionError,
                           match="non-grouped, non-aggregate"):
            session.sql(
                "SELECT k, SUM(b) AS s FROM R GROUP BY k HAVING a = 1")

    def test_having_requires_select_list(self, session):
        with pytest.raises(ResolutionError, match="select list"):
            session.sql("SELECT * FROM R HAVING TRUE")


class TestScalarAggregates:
    def test_count_resolves_and_evaluates(self, catalog, db):
        r = compile_sql("SELECT COUNT(b) AS c FROM R", catalog)
        assert rows(r.query, db) == {3: 1}
        assert [c for c, _ in r.columns] == ["c"]

    def test_scalar_aggregate_respects_where(self, catalog, db):
        r = compile_sql("SELECT SUM(b) AS s FROM R WHERE k = 1", catalog)
        assert rows(r.query, db) == {5: 1}

    def test_empty_input_gives_empty_result(self, catalog, db):
        # The paper's NULL-free semantics: no zero row is invented.
        r = compile_sql("SELECT COUNT(b) AS c FROM R WHERE k = 99", catalog)
        assert rows(r.query, db) == {}

    def test_multiple_scalar_aggregates(self, catalog, db):
        r = compile_sql("SELECT SUM(b) AS s, COUNT(a) AS n FROM R", catalog)
        assert rows(r.query, db) == {(9, 3): 1}

    def test_scalar_agg_having(self, catalog, db):
        kept = compile_sql("SELECT COUNT(b) AS c FROM R HAVING COUNT(b) > 2",
                           catalog)
        dropped = compile_sql(
            "SELECT COUNT(b) AS c FROM R HAVING COUNT(b) > 3", catalog)
        assert rows(kept.query, db) == {3: 1}
        assert rows(dropped.query, db) == {}


class TestCorrelatedExistsUnderDesugar:
    """The per-group alias renaming must reach inside EXISTS subqueries;
    leaving ``R.a`` untouched re-correlates the EXISTS against the outer
    row and silently miscounts (regression found in review)."""

    @pytest.fixture()
    def two_tables(self):
        from repro.core.schema import INT
        cat = Catalog()
        cat.add_table("R", [("a", INT), ("b", INT)])
        cat.add_table("S", [("a", INT)])
        database = Database(NAT)
        database.create_table("R", cat.schema_of("R"),
                              [[1, 10], [2, 20], [3, 30]])
        database.create_table("S", cat.schema_of("S"), [[1]])
        return cat, database

    def test_scalar_agg_with_exists_filter(self, two_tables):
        cat, database = two_tables
        r = compile_sql(
            "SELECT COUNT(b) AS c FROM R "
            "WHERE EXISTS (SELECT a FROM S WHERE S.a = R.a)", cat)
        assert rows(r.query, database) == {1: 1}

    def test_group_by_with_exists_filter(self, two_tables):
        cat, database = two_tables
        r = compile_sql(
            "SELECT a, COUNT(b) AS c FROM R "
            "WHERE EXISTS (SELECT a FROM S WHERE S.a = R.a) GROUP BY a",
            cat)
        assert rows(r.query, database) == {(1, 1): 1}

    def test_shadowed_alias_not_renamed(self, two_tables):
        # The EXISTS subquery redefines alias R; its R.b must bind to
        # its own FROM item, not get rewritten to the per-group copy.
        cat, database = two_tables
        r = compile_sql(
            "SELECT COUNT(b) AS c FROM R "
            "WHERE EXISTS (SELECT b FROM R WHERE R.b = 10)", cat)
        assert rows(r.query, database) == {3: 1}


class TestDisproverOnAggregates:
    """The disprover's instance evaluator handles the new aggregate
    forms: it separates genuinely different aggregate queries and
    exhausts the bound on equivalent ones."""

    def test_separates_sum_from_count(self, session):
        q1 = session.sql("SELECT SUM(b) AS v FROM R")
        q2 = session.sql("SELECT COUNT(b) AS v FROM R")
        result = q1.disprove(q2, bound=Bound(max_rows=1,
                                             max_multiplicity=2))
        assert result.found

    def test_exhausts_on_commuted_arithmetic(self, session):
        q1 = session.sql("SELECT a + b AS c FROM R")
        q2 = session.sql("SELECT b + a AS c FROM R")
        result = q1.disprove(q2, bound=Bound(max_rows=1,
                                             max_multiplicity=1))
        assert not result.found
        assert result.exhausted

    def test_uninterpreted_function_abstains(self, session):
        # A parseable query with a symbol the evaluator cannot interpret
        # must yield UNKNOWN, not crash the disprover tier (regression:
        # this used to escape as a raw KeyError).
        from repro.solver.verdict import Status
        verdict = session.check("SELECT f(a) AS c FROM R",
                                "SELECT b AS c FROM R")
        assert verdict.status is Status.UNKNOWN

    def test_division_by_zero_is_total(self, catalog):
        # Domains include 0; SQL ``/`` maps to the totalized ``div``.
        r1 = compile_sql("SELECT a / b AS c FROM R", catalog)
        r2 = compile_sql("SELECT a / b AS c FROM R WHERE b = b", catalog)
        result = disprove(r1.query, r2.query,
                          bound=Bound(max_rows=1, max_multiplicity=1))
        assert not result.found
        assert result.exhausted


class TestExpressionSelectLists:
    def test_commuted_sum_proves(self, session):
        assert session.check("SELECT a+b AS c FROM R",
                             "SELECT b+a AS c FROM R").proved

    def test_commuted_product_proves(self, session):
        assert session.check("SELECT a*b AS c FROM R WHERE a*b = 4",
                             "SELECT b*a AS c FROM R WHERE b*a = 4").proved

    def test_subtraction_does_not_commute(self, session):
        verdict = session.check("SELECT a-b AS c FROM R",
                                "SELECT b-a AS c FROM R")
        assert verdict.disproved

    def test_arithmetic_in_predicates(self, session):
        assert session.check("SELECT a FROM R WHERE a + 1 = b",
                             "SELECT a FROM R WHERE 1 + a = b").proved

    def test_type_mismatch_rejected(self, session):
        with pytest.raises(ResolutionError, match="different types"):
            session.sql("SELECT a + 'x' FROM R")
        with pytest.raises(ResolutionError, match="non-numeric"):
            session.sql("SELECT 'x' + 'y' FROM R")
