"""Index rewrite rules (paper Sec. 5.1.4, Figure 8 row "Index": 3 rules).

Following Tsatalos et al. (VLDB 1994), an index is a *logical relation*:
if ``k`` is a key of R and ``a`` an attribute, the index on ``a`` is the
query ``I := SELECT k, a FROM R``.  Index rules therefore relate a plain
scan with a join against the expanded view, and are valid only under the
key hypothesis — which enters the prover as a Horn axiom
(:class:`~repro.core.equivalence.KeyConstraint`).
"""

from __future__ import annotations

import random
from typing import Tuple

from ..core import ast
from ..core.equivalence import Hypotheses, KeyConstraint
from ..core.schema import INT, Leaf, SVar
from ..engine.random_instances import path_projection
from .common import attr_expr, const_expr, standard_interpretation, table
from .rule import RewriteRule

_S1 = SVar("s1")
_R = table("R", _S1)
_K = ast.PVar("k", _S1, Leaf(INT))
_A = ast.PVar("a", _S1, Leaf(INT))

_KEY_HYPS = Hypotheses(keys=(KeyConstraint("R", "k", Leaf(INT)),))


def index_view() -> ast.Query:
    """The index as a query: ``SELECT k, a FROM R`` (paper Sec. 4.2)."""
    return ast.Select(
        ast.Duplicate(ast.path(ast.RIGHT, _K), ast.path(ast.RIGHT, _A)), _R)


def _keyed_factory(lhs: ast.Query, rhs: ast.Query, consts=("l",)):
    def factory(rng: random.Random):
        interp = standard_interpretation(
            rng, ("R",), attrs=("a",), consts=consts, keyed={"R": "k"})
        # "k" must be the key attribute: pick the leaf the keyed generator
        # used.  standard_interpretation keys on an attrs entry, so wire "k"
        # explicitly: the key path is the one registered for "k".
        return lhs, rhs, interp
    return factory


def _index_scan() -> RewriteRule:
    # SELECT * FROM R WHERE a = ℓ
    #   ≡ SELECT (R part) FROM I, R WHERE I.a = ℓ AND I.k = R.k
    ell = const_expr("l")
    lhs = ast.Where(_R, ast.PredEq(ast.P2E(ast.Compose(ast.RIGHT, _A), INT),
                                   ell))
    eye = index_view()
    pred = ast.PredAnd(
        ast.PredEq(attr_expr(ast.RIGHT, ast.LEFT, ast.RIGHT), ell),
        ast.PredEq(attr_expr(ast.RIGHT, ast.LEFT, ast.LEFT),
                   ast.P2E(ast.path(ast.RIGHT, ast.RIGHT, _K), INT)))
    rhs = ast.Select(ast.path(ast.RIGHT, ast.RIGHT),
                     ast.Where(ast.Product(eye, _R), pred))

    def factory(rng: random.Random):
        interp = standard_interpretation(
            rng, (), attrs=())
        # Key attribute at path L, indexed attribute at path R; relation
        # generated key-consistent on L.
        from ..engine.random_instances import random_keyed_relation
        from .common import CONCRETE
        from ..semiring.semirings import NAT
        interp.relations["R"] = random_keyed_relation(rng, CONCRETE, ("L",),
                                                      NAT)
        interp.schemas["R"] = CONCRETE
        interp.projections["k"] = path_projection(("L",))
        interp.projections["a"] = path_projection(("R",))
        value = rng.choice((0, 1, 2))
        interp.expressions["l"] = lambda _unit, _v=value: _v
        return lhs, rhs, interp

    return RewriteRule(
        name="index_scan", category="index",
        description="Full scan with an attribute filter becomes an index "
                    "lookup joined back on the key (paper Sec. 5.1.4); "
                    "requires the key Horn axiom to collapse the join.",
        lhs=lhs, rhs=rhs, hypotheses=_KEY_HYPS,
        tactic_script=("extensionality", "sum_hoist", "point_eliminate",
                       "key_axiom", "keyed_dedup", "absorb_lemma_5_3"),
        paper_ref="Sec. 5.1.4",
        instantiate=factory)


def _index_key_lookup() -> RewriteRule:
    # SELECT * FROM R WHERE k = ℓ
    #   ≡ SELECT (R part) FROM I, R WHERE I.k = ℓ AND I.k = R.k
    ell = const_expr("l")
    lhs = ast.Where(_R, ast.PredEq(ast.P2E(ast.Compose(ast.RIGHT, _K), INT),
                                   ell))
    eye = index_view()
    pred = ast.PredAnd(
        ast.PredEq(attr_expr(ast.RIGHT, ast.LEFT, ast.LEFT), ell),
        ast.PredEq(attr_expr(ast.RIGHT, ast.LEFT, ast.LEFT),
                   ast.P2E(ast.path(ast.RIGHT, ast.RIGHT, _K), INT)))
    rhs = ast.Select(ast.path(ast.RIGHT, ast.RIGHT),
                     ast.Where(ast.Product(eye, _R), pred))

    def factory(rng: random.Random):
        from ..engine.random_instances import random_keyed_relation
        from .common import CONCRETE
        from ..semiring.semirings import NAT
        interp = standard_interpretation(rng, ())
        interp.relations["R"] = random_keyed_relation(rng, CONCRETE, ("L",),
                                                      NAT)
        interp.schemas["R"] = CONCRETE
        interp.projections["k"] = path_projection(("L",))
        interp.projections["a"] = path_projection(("R",))
        value = rng.choice((0, 1, 2))
        interp.expressions["l"] = lambda _unit, _v=value: _v
        return lhs, rhs, interp

    return RewriteRule(
        name="index_key_lookup", category="index",
        description="Point lookup on the key routed through the index view.",
        lhs=lhs, rhs=rhs, hypotheses=_KEY_HYPS,
        tactic_script=("extensionality", "sum_hoist", "point_eliminate",
                       "key_axiom", "keyed_dedup"),
        paper_ref="Sec. 5.1.4",
        instantiate=factory)


def _index_semijoin_elim() -> RewriteRule:
    # R ⋉_{k = k} I ≡ R: probing your own index is a no-op.
    eye = index_view()
    pred = ast.PredEq(
        ast.P2E(ast.path(ast.LEFT, _K), INT),
        attr_expr(ast.RIGHT, ast.LEFT))
    lhs = ast.Where(_R, ast.Exists(ast.Where(
        eye,
        ast.CastPred(ast.Duplicate(ast.path(ast.LEFT, ast.RIGHT), ast.RIGHT),
                     pred))))
    rhs = _R

    def factory(rng: random.Random):
        from ..engine.random_instances import random_keyed_relation
        from .common import CONCRETE
        from ..semiring.semirings import NAT
        interp = standard_interpretation(rng, ())
        interp.relations["R"] = random_keyed_relation(rng, CONCRETE, ("L",),
                                                      NAT)
        interp.schemas["R"] = CONCRETE
        interp.projections["k"] = path_projection(("L",))
        interp.projections["a"] = path_projection(("R",))
        return lhs, rhs, interp

    return RewriteRule(
        name="index_semijoin_elim", category="index",
        description="Semijoining a relation against its own index on the "
                    "key eliminates the probe: the witness is the row's own "
                    "index entry (k(t), a(t)).",
        lhs=lhs, rhs=rhs, hypotheses=_KEY_HYPS,
        tactic_script=("extensionality", "absorb_lemma_5_3",
                       "instantiate_witness_pair"),
        paper_ref="Sec. 5.1.4",
        instantiate=factory)


def index_rules() -> Tuple[RewriteRule, ...]:
    """The three index rules of Figure 8."""
    return (_index_scan(), _index_key_lookup(), _index_semijoin_elim())
