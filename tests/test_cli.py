"""Command-line interface."""

import pytest

from repro.cli import CLIError, main, parse_table_spec
from repro.core.schema import INT, STRING


class TestTableSpecs:
    def test_parse_basic(self):
        name, columns = parse_table_spec("R(a:int,b:string)")
        assert name == "R"
        assert columns == [("a", INT), ("b", STRING)]

    def test_whitespace_tolerated(self):
        name, columns = parse_table_spec(" Emp( eid : int , did : int ) ")
        assert name == "Emp"
        assert len(columns) == 2

    @pytest.mark.parametrize("bad", [
        "R",
        "R()",
        "R(a)",
        "R(a:float)",
        "(a:int)",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(CLIError):
            parse_table_spec(bad)


class TestCheckCommand:
    def test_equivalent_pair_exits_zero(self, capsys):
        code = main([
            "check", "--table", "R(a:int,b:int)",
            "SELECT DISTINCT a FROM R",
            "SELECT DISTINCT x.a FROM R AS x, R AS y WHERE x.a = y.a",
        ])
        assert code == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_unproved_pair_exits_one(self, capsys):
        code = main([
            "check", "--table", "R(a:int,b:int)",
            "SELECT a FROM R",
            "SELECT b FROM R",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "NOT PROVED" in out
        assert "incomplete" in out

    def test_bad_table_spec_is_cli_error(self, capsys):
        code = main(["check", "--table", "R(?)", "SELECT a FROM R",
                     "SELECT a FROM R"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestProveCommands:
    def test_prove_single_rule(self, capsys):
        assert main(["prove", "join_comm"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_prove_buggy_rule_rejection_is_success(self, capsys):
        # For an unsound rule, REJECTED is the expected outcome → exit 0.
        assert main(["prove", "bad_union_distinct"]) == 0
        assert "REJECTED" in capsys.readouterr().out

    def test_prove_unknown_rule(self, capsys):
        assert main(["prove", "no_such_rule"]) == 2

    def test_rules_listing(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "join_comm" in out
        assert "UNSOUND CONTROL" in out

    def test_prove_all(self, capsys):
        assert main(["prove-all"]) == 0
        out = capsys.readouterr().out
        assert "23/23 core rules verified" in out
        assert "all rejected" in out
