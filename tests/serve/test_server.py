"""The serve daemon: ops, in-flight dedup, cross-process warm serving."""

import threading
import time

import pytest

from repro.serve.client import ServeClient
from repro.serve.server import ReproServer
from repro.solver import Status

TABLES = ["R(a:int,b:int)"]
Q1 = "SELECT DISTINCT a FROM R"
Q2 = "SELECT DISTINCT x.a FROM R AS x, R AS y WHERE x.a = y.a"


@pytest.fixture
def server():
    srv = ReproServer(port=0, tables=TABLES, workers=4).start()
    yield srv
    srv.shutdown()


@pytest.fixture
def client(server):
    with ServeClient(server.address) as cli:
        yield cli


class TestOps:
    def test_ping(self, client):
        assert client.ping() is True

    def test_check_and_cache(self, client):
        cold = client.check(Q1, Q2)
        assert cold.status is Status.PROVED and not cold.cached
        warm = client.check(Q1, Q2)
        assert warm.status is Status.PROVED and warm.cached

    def test_check_disproved_carries_counterexample(self, client):
        verdict = client.check("SELECT a FROM R", "SELECT b FROM R")
        assert verdict.status is Status.DISPROVED
        assert verdict.counterexample is not None

    def test_check_uses_default_tables(self, client):
        # No per-request tables: the server's --table defaults apply.
        verdict = client.check(Q1, Q1)
        assert verdict.status is Status.PROVED

    def test_batch_check(self, client):
        verdicts = client.batch_check(
            [(Q1, Q2), ("SELECT a FROM R", "SELECT b FROM R")],
            tables=TABLES)
        assert [v.status for v in verdicts] == \
            [Status.PROVED, Status.DISPROVED]

    def test_optimize(self, client):
        result = client.optimize(
            "SELECT a FROM (SELECT a, b FROM R WHERE a = 1) AS s",
            tables=TABLES, rows={"R": 1000})
        assert result["certified"] is not False
        assert result["best_cost"] <= result["original_cost"]

    def test_stats_shape(self, client):
        client.check(Q1, Q2)
        stats = client.stats()
        assert stats["server"]["requests_total"] >= 1
        assert stats["server"]["pipeline_runs_total"] >= 1
        assert "hits" in stats["cache"]
        assert "counters" in stats["metrics"]

    def test_streaming_connection(self, client):
        # Many requests over one connection, interleaved ops.
        for _ in range(3):
            assert client.ping() is True
            assert client.check(Q1, Q1).proved


class TestInflightDedup:
    def test_identical_cold_checks_run_pipeline_once(self):
        """Two concurrent clients asking the same cold question trigger
        exactly one pipeline run; the second fans in as a follower."""
        server = ReproServer(port=0, tables=TABLES, workers=4).start()
        try:
            before = server._op_stats({})["server"]
            release = threading.Event()
            calls = []
            inner = server.pipeline.check

            def slow_check(*args, **kwargs):
                calls.append(threading.get_ident())
                release.wait(10.0)
                return inner(*args, **kwargs)

            server.pipeline.check = slow_check
            results = {}

            def ask(name):
                with ServeClient(server.address) as cli:
                    results[name] = cli.check_detail(Q1, Q2)

            threads = [threading.Thread(target=ask, args=(n,))
                       for n in ("first", "second")]
            for t in threads:
                t.start()
            # Wait until the leader is inside the (blocked) pipeline run
            # and the follower has had a chance to arrive.
            deadline = time.time() + 10.0
            while not calls and time.time() < deadline:
                time.sleep(0.01)
            time.sleep(0.2)
            release.set()
            for t in threads:
                t.join(timeout=30.0)

            assert len(calls) == 1  # exactly one pipeline run
            roles = sorted(r["dedup"] for r in results.values())
            assert roles == ["follower", "leader"]
            for r in results.values():
                assert r["status"] == "PROVED"
            # The metric counters are process-wide; assert the deltas.
            stats = server._op_stats({})["server"]
            assert stats["pipeline_runs_total"] \
                - before["pipeline_runs_total"] == 1
            assert stats["dedup_followers_total"] \
                - before["dedup_followers_total"] == 1
            assert stats["inflight"] == 0  # all drained
        finally:
            release.set()
            server.shutdown()

    def test_follower_counterexample_is_reoriented(self):
        """A follower asking the mirrored pair gets the counterexample
        oriented for *its* argument order."""
        server = ReproServer(port=0, tables=TABLES, workers=4).start()
        try:
            release = threading.Event()
            started = threading.Event()
            inner = server.pipeline.check

            def slow_check(*args, **kwargs):
                started.set()
                release.wait(10.0)
                return inner(*args, **kwargs)

            server.pipeline.check = slow_check
            results = {}
            lhs, rhs = "SELECT a FROM R", "SELECT b FROM R"

            def ask(name, sql1, sql2):
                with ServeClient(server.address) as cli:
                    results[name] = cli.check(sql1, sql2)

            leader = threading.Thread(target=ask, args=("fwd", lhs, rhs))
            leader.start()
            assert started.wait(10.0)
            follower = threading.Thread(target=ask, args=("rev", rhs, lhs))
            follower.start()
            time.sleep(0.2)
            release.set()
            leader.join(timeout=30.0)
            follower.join(timeout=30.0)

            assert results["fwd"].status is Status.DISPROVED
            assert results["rev"].status is Status.DISPROVED
        finally:
            release.set()
            server.shutdown()


class TestSharedStore:
    def test_second_server_serves_from_store(self, tmp_path):
        """The headline acceptance check: a second server process on the
        same --store-dir answers previously proved pairs from the shard
        store, without re-proving."""
        first = ReproServer(port=0, tables=TABLES,
                            store_dir=str(tmp_path)).start()
        try:
            with ServeClient(first.address) as cli:
                cold = cli.check(Q1, Q2)
                assert cold.status is Status.PROVED and not cold.cached
        finally:
            first.shutdown()

        second = ReproServer(port=0, tables=TABLES,
                             store_dir=str(tmp_path)).start()
        try:
            with ServeClient(second.address) as cli:
                warm = cli.check(Q1, Q2)
            assert warm.status is Status.PROVED
            assert warm.cached  # answered from the shard store
        finally:
            second.shutdown()
