"""E-class property analysis + property-guarded e-rules.

The egg-style e-class analysis for the plan e-graph: every e-class gets
the property-lattice element of :mod:`repro.analysis.properties`,
computed with the *same* transfer functions the tree analysis uses
(:func:`repro.analysis.infer.transfer` — the e-graph's ``(op, label,
children)`` decomposition is exactly the transfer kernel's signature).
Because all members of an e-class denote the same bag, each member's
derived guarantees hold for the whole class, so members combine with
:meth:`~repro.analysis.properties.PlanProperties.refine` (facts
accumulate) rather than a lossy lattice join.

On top of it, the guarded e-rules — rewrites that are only sound when
the inferred facts license them, which plain syntactic e-rules cannot
express:

* ``distinct_elim_under_key`` — ``DISTINCT q ≡ q`` when ``q`` is
  set-valued (structurally, or via a key hypothesis);
* ``where_taut_elim``        — ``σ_b(q) ≡ q`` when ``b`` is a tautology;
* ``where_contra_to_empty``  — ``σ_b(q) ≡ σ_FALSE(q)`` when ``b`` is a
  contradiction (the canonical empty plan, visible to the cost model);
* ``except_empty_elim``      — ``q − e ≡ q`` when ``e`` is guaranteed
  empty.

Every union they perform is still re-certified end to end by the
verification pipeline when the planner extracts a winner (the keyed
case is dischargeable because the equivalence engine's absorption knows
keys force set-valuedness).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..analysis.infer import AnalysisContext, EMPTY_CONTEXT, pred_sat, transfer
from ..analysis.properties import PlanProperties, Sat, TOP
from ..core import ast
from ..obs.metrics import counter
from .egraph import EGraph, ENode, Reason
from .saturate import ERule

__all__ = ["EClassAnalysis", "guarded_rules"]


class EClassAnalysis:
    """On-demand, memoized property inference over e-classes."""

    def __init__(self, eg: EGraph, ctx: AnalysisContext = EMPTY_CONTEXT
                 ) -> None:
        self.eg = eg
        self.ctx = ctx
        self._memo: Dict[int, PlanProperties] = {}
        self._in_progress: set = set()

    def props(self, cid: int) -> PlanProperties:
        """Properties of e-class ``cid`` (cycle-safe: a class reached
        through itself contributes no facts, which is conservative)."""
        cid = self.eg.find(cid)
        cached = self._memo.get(cid)
        if cached is not None:
            return cached
        if cid in self._in_progress:
            return TOP
        self._in_progress.add(cid)
        try:
            result = TOP
            for node in self.eg.nodes_of(cid):
                children = tuple(self.props(child)
                                 for child in node.children)
                result = result.refine(
                    transfer(node.op, node.label, children, self.ctx))
        finally:
            self._in_progress.discard(cid)
        self._memo[cid] = result
        return result


# ---------------------------------------------------------------------------
# The guarded e-rules
# ---------------------------------------------------------------------------

def _fired(name: str) -> int:
    counter(f"analysis.guarded.{name}").inc()
    return 1


def guarded_rules(ctx: AnalysisContext = EMPTY_CONTEXT
                  ) -> Tuple[ERule, ...]:
    """The property-guarded rule suite, closed over an analysis context.

    Each closure builds a fresh :class:`EClassAnalysis` per application
    (the e-graph mutates between fires; per-call memoization already
    collapses the recursion), checks its licence, and only then unions.
    """

    def distinct_elim(eg: EGraph, cid: int, node: ENode) -> int:
        child = eg.find(node.children[0])
        if eg.find(cid) == child:
            return 0
        if not EClassAnalysis(eg, ctx).props(child).set_valued:
            return 0
        eg.union(cid, child, Reason("distinct_elim_under_key", node))
        return _fired("distinct_elim_under_key")

    def where_taut(eg: EGraph, cid: int, node: ENode) -> int:
        child = eg.find(node.children[0])
        if eg.find(cid) == child:
            return 0
        if pred_sat(node.label[0], ctx) is not Sat.ALWAYS:
            return 0
        eg.union(cid, child, Reason("where_taut_elim", node))
        return _fired("where_taut_elim")

    def where_contra(eg: EGraph, cid: int, node: ENode) -> int:
        pred = node.label[0]
        if isinstance(pred, ast.PredFalse):
            return 0  # already the canonical empty filter
        if pred_sat(pred, ctx) is not Sat.NEVER:
            return 0
        child = eg.find(node.children[0])
        empty = eg.add(ast.Where, (ast.PredFalse(),), (child,),
                       reason=Reason("where_contra_to_empty", node))
        eg.union(cid, empty, Reason("where_contra_to_empty", node))
        return _fired("where_contra_to_empty")

    def except_empty(eg: EGraph, cid: int, node: ENode) -> int:
        left, right = (eg.find(node.children[0]),
                       eg.find(node.children[1]))
        if eg.find(cid) == left:
            return 0
        if not EClassAnalysis(eg, ctx).props(right).empty:
            return 0
        eg.union(cid, left, Reason("except_empty_elim", node))
        return _fired("except_empty_elim")

    return (
        ERule("distinct_elim_under_key", (ast.Distinct,), distinct_elim),
        ERule("where_taut_elim", (ast.Where,), where_taut),
        ERule("where_contra_to_empty", (ast.Where,), where_contra),
        ERule("except_empty_elim", (ast.Except,), except_empty),
    )
