"""The serve layer's wire protocol: newline-delimited JSON.

One request per line, one response per line, UTF-8, no framing beyond
``\\n`` — trivially scriptable (``nc``, a few lines of any language) and
streamable: a connection stays open for any number of requests.

Request::

    {"op": "check", "id": 7, "sql1": "...", "sql2": "...",
     "tables": ["R(a:int,b:int)"]}

Response (the ``id`` echoes the request's, when given)::

    {"ok": true,  "id": 7, "result": {...}}
    {"ok": false, "id": 7, "error": {"code": "compile-error",
                                     "message": "..."}}

Error codes are a closed vocabulary (:data:`ERROR_CODES`) so clients can
dispatch on them; anything unexpected server-side maps to ``internal``
with the traceback kept in the server log, never on the wire.

The module is shared by client and server so the two cannot drift: both
read with :func:`read_message` (which enforces the line-length cap — the
defense against a client or server streaming an unbounded payload) and
write with :func:`encode`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError

#: Default cap on one request/response line (bytes, newline included).
MAX_LINE_BYTES = 1 << 20

#: The closed error-code vocabulary.
ERROR_CODES = ("bad-request", "too-large", "unknown-op", "compile-error",
               "unsupported", "overloaded", "shutting-down", "internal")

#: Operations the server understands.
OPS = ("ping", "check", "batch-check", "optimize", "stats", "shutdown")


class ProtocolError(ReproError):
    """A malformed or oversized message (maps to an error response).

    ``request_id`` carries the offending request's ``id`` when the
    request parsed far enough to have one, so the error response can
    still echo it.
    """

    def __init__(self, code: str, message: str,
                 request_id: Optional[Any] = None) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.request_id = request_id


def encode(message: Dict[str, Any]) -> bytes:
    """One message as a single newline-terminated JSON line."""
    return json.dumps(message, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8") + b"\n"


def read_message(stream, limit: int = MAX_LINE_BYTES) -> Optional[bytes]:
    """Read one raw line from a binary stream, enforcing the size cap.

    Returns None on EOF (peer closed), skips blank lines, raises
    :class:`ProtocolError` (``too-large``) when a line exceeds ``limit``
    without terminating — after which the stream cannot be resynchronized
    and the connection should be dropped.
    """
    while True:
        raw = stream.readline(limit + 1)
        if not raw:
            return None
        if len(raw) > limit:
            raise ProtocolError(
                "too-large",
                f"request line exceeds {limit} bytes; close the "
                f"connection and reconnect")
        if raw.strip():
            return raw


def decode_request(raw: bytes) -> Dict[str, Any]:
    """Parse and shape-check one request line."""
    try:
        message = json.loads(raw)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad-request",
                            f"request is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("bad-request",
                            "request must be a JSON object")
    request_id = message.get("id")
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request",
                            'request needs an "op" string field',
                            request_id)
    if op not in OPS:
        raise ProtocolError("unknown-op",
                            f"unknown op {op!r} (expected one of "
                            f"{', '.join(OPS)})", request_id)
    return message


def ok_response(result: Any,
                request_id: Optional[Any] = None) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True, "result": result}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response(code: str, message: str,
                   request_id: Optional[Any] = None) -> Dict[str, Any]:
    assert code in ERROR_CODES, code
    response: Dict[str, Any] = {"ok": False,
                                "error": {"code": code, "message": message}}
    if request_id is not None:
        response["id"] = request_id
    return response


def parse_address(address) -> Tuple[str, int]:
    """``"host:port"`` / ``":port"`` / ``(host, port)`` → (host, port)."""
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    if isinstance(address, str):
        host, sep, port = address.rpartition(":")
        if sep and port.isdigit():
            return host or "127.0.0.1", int(port)
    raise ProtocolError("bad-request",
                        f"malformed address {address!r} "
                        f"(expected HOST:PORT)")


__all__ = ["ERROR_CODES", "MAX_LINE_BYTES", "OPS", "ProtocolError",
           "decode_request", "encode", "error_response", "ok_response",
           "parse_address", "read_message"]
