"""Deliberately unsound rewrites — real optimizer mistakes.

The paper's opening motivation (Sec. 1) is that production databases have
shipped unsound rewrites: PostgreSQL bug #5673 (a plan transformation
returning wrong results) and MySQL bug #70038 (wrong COUNT(DISTINCT) in the
presence of a unique key).  These rules encode classic set/bag confusions
of that family.  Each must (a) be *rejected* by the prover and (b) be
*refuted* by the random-instance falsifier with a concrete counterexample —
reproducing the paper's claim that "common mistakes made in query
optimization fail to pass our formal verification".
"""

from __future__ import annotations

import random
from typing import Tuple

from ..analysis.rulecheck import ExpectedDefect
from ..core import ast
from ..core.schema import INT, Leaf
from .common import SR, SS, standard_interpretation, table
from .rule import RewriteRule

_R = table("R", SR)
_S_SAME = table("S", SR)
_S = table("S", SS)


def _bad_distinct_push_join() -> RewriteRule:
    # DISTINCT (R × S)  ≢  (DISTINCT R) × S: the right side keeps S's
    # duplicate multiplicities.
    lhs = ast.Distinct(ast.Product(_R, _S))
    rhs = ast.Product(ast.Distinct(_R), _S)
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R", "S"))
        return lhs, rhs, interp
    return RewriteRule(
        name="bad_distinct_push_join", category="buggy",
        description="UNSOUND: pushing DISTINCT to one side of a join "
                    "(set/bag confusion).",
        lhs=lhs, rhs=rhs, sound=False,
        tactic_script=("rejected",),
        expected_defect=ExpectedDefect(
            "RS110",
            "DISTINCT narrowed to one join input; the other side's duplicate multiplicities survive"),
        instantiate=factory)


def _bad_union_distinct() -> RewriteRule:
    # DISTINCT (R UNION ALL S)  ≢  (DISTINCT R) UNION ALL (DISTINCT S):
    # a tuple present in both sides is double-counted on the right.
    lhs = ast.Distinct(ast.UnionAll(_R, _S_SAME))
    rhs = ast.UnionAll(ast.Distinct(_R), ast.Distinct(_S_SAME))
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R", "S"))
        return lhs, rhs, interp
    return RewriteRule(
        name="bad_union_distinct", category="buggy",
        description="UNSOUND: DISTINCT does not distribute over UNION ALL.",
        lhs=lhs, rhs=rhs, sound=False,
        tactic_script=("rejected",),
        expected_defect=ExpectedDefect(
            "RS110",
            "DISTINCT does not distribute over UNION ALL; shared tuples are double-counted"),
        instantiate=factory)


def _bad_self_join_dedup_bag() -> RewriteRule:
    # The paper's Q3 ≡ Q2 (Figure 2) REQUIRES the DISTINCT: at bag
    # semantics the self-join squares multiplicities.
    p = ast.PVar("p", SR, Leaf(INT))
    lhs = ast.Select(
        ast.path(ast.RIGHT, ast.LEFT, p),
        ast.Where(
            ast.Product(_R, _R),
            ast.PredEq(ast.P2E(ast.path(ast.RIGHT, ast.LEFT, p), INT),
                       ast.P2E(ast.path(ast.RIGHT, ast.RIGHT, p), INT))))
    rhs = ast.Select(ast.path(ast.RIGHT, p), _R)
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R",), attrs=("p",))
        return lhs, rhs, interp
    return RewriteRule(
        name="bad_self_join_dedup_bag", category="buggy",
        description="UNSOUND: the Figure 2 self-join elimination *without* "
                    "DISTINCT — multiplicities square under bag semantics.",
        lhs=lhs, rhs=rhs, sound=False,
        tactic_script=("rejected",),
        paper_ref="Figure 2 (DISTINCT omitted)",
        expected_defect=ExpectedDefect(
            "RS111",
            "self-join collapse without DISTINCT; multiplicities square under bag semantics"),
        instantiate=factory)


def _bad_except_assoc() -> RewriteRule:
    # (R EXCEPT S) EXCEPT T  ≢  R EXCEPT (S EXCEPT T).
    t = table("T", SR)
    lhs = ast.Except(ast.Except(_R, _S_SAME), t)
    rhs = ast.Except(_R, ast.Except(_S_SAME, t))
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R", "S", "T"))
        return lhs, rhs, interp
    return RewriteRule(
        name="bad_except_assoc", category="buggy",
        description="UNSOUND: EXCEPT is not associative (a tuple in S∩T "
                    "survives the right-hand side).",
        lhs=lhs, rhs=rhs, sound=False,
        tactic_script=("rejected",),
        expected_defect=ExpectedDefect(
            "RS112",
            "bag EXCEPT is not associative; tuples in S∩T survive the reassociated side"),
        instantiate=factory)


def _bad_count_distinct_key() -> RewriteRule:
    # MySQL bug #70038's shape: treating COUNT over a projection as if the
    # projection were duplicate-free because SOME key exists — here the
    # projected attribute is NOT the key, so dropping DISTINCT is wrong.
    p = ast.PVar("p", SR, Leaf(INT))
    lhs = ast.Distinct(ast.Select(ast.path(ast.RIGHT, p), _R))
    rhs = ast.Select(ast.path(ast.RIGHT, p), _R)
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R",), attrs=("p",))
        return lhs, rhs, interp
    return RewriteRule(
        name="bad_count_distinct_key", category="buggy",
        description="UNSOUND: dropping DISTINCT from a non-key projection "
                    "(the MySQL #70038 family).",
        lhs=lhs, rhs=rhs, sound=False,
        tactic_script=("rejected",),
        paper_ref="Sec. 1 [45]",
        expected_defect=ExpectedDefect(
            "RS110",
            "DISTINCT dropped from a non-key projection (MySQL #70038 family)"),
        instantiate=factory)


def buggy_rules() -> Tuple[RewriteRule, ...]:
    """Unsound rewrites the system must reject and refute."""
    return (
        _bad_distinct_push_join(),
        _bad_union_distinct(),
        _bad_self_join_dedup_bag(),
        _bad_except_assoc(),
        _bad_count_distinct_key(),
    )
