"""Certified query optimizer: rewriter, cost model, planner."""

from .cost import Estimate, TableStats, estimate, plan_cost
from .explain import explain
from .planner import PlanningResult, optimize
from .rewriter import (
    TRANSFORMATIONS,
    CertifiedCandidate,
    certified_rewrites,
    proj_steps,
    rewrites,
    steps_to_proj,
)

__all__ = [
    "CertifiedCandidate",
    "Estimate",
    "PlanningResult",
    "TRANSFORMATIONS",
    "TableStats",
    "certified_rewrites",
    "estimate",
    "explain",
    "optimize",
    "plan_cost",
    "proj_steps",
    "rewrites",
    "steps_to_proj",
]
