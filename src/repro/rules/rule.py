"""Rewrite rules: statement, proof, and oracle validation.

A :class:`RewriteRule` packages everything DOPCERT attaches to a rule:

* the two generic HoTTSQL queries (with metavariables),
* the integrity-constraint hypotheses it assumes (keys/FDs),
* a *tactic script* — the DOPCERT-style proof sketch, recorded so the
  Figure 8 benchmark can report proof effort per category,
* an *instantiator* that produces random concrete instances for the
  evaluation oracle (the falsifier of
  :mod:`repro.engine.random_instances`).

``prove()`` runs the symbolic engine; ``validate()`` runs the oracle.  A
sound rule passes both; the deliberately buggy rules in
:mod:`repro.rules.buggy` fail both (the prover rejects them and the
falsifier produces a counterexample), reproducing the paper's claim that
"common mistakes made in query optimization fail to pass our formal
verification".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core import ast
from ..core.conjunctive import decide_cq
from ..core.equivalence import (
    EquivalenceResult,
    Hypotheses,
    NO_HYPOTHESES,
    check_query_equivalence,
)
from ..core.schema import EMPTY, Schema
from ..core.typecheck import infer_query
from ..engine.random_instances import (
    Counterexample,
    InstanceFactory,
    find_counterexample,
)
from ..obs.metrics import counter, histogram
from ..obs.trace import span
from ..semiring.semirings import NAT, Semiring

_PROOF_SECONDS = histogram("rules.proof.seconds")


@dataclass
class Proof:
    """The result of running a rule's proof."""

    rule_name: str
    verified: bool
    tactic_script: Tuple[str, ...]
    engine_steps: int
    elapsed_seconds: float
    automatic: bool
    detail: Optional[EquivalenceResult] = None

    @property
    def script_length(self) -> int:
        """Length of the declared tactic script — the paper's "LOC" analog."""
        return 1 if self.automatic else len(self.tactic_script)


@dataclass
class RewriteRule:
    """A (candidate) query rewrite, generic over schemas and metavariables."""

    name: str
    category: str
    description: str
    lhs: ast.Query
    rhs: ast.Query
    tactic_script: Tuple[str, ...] = ("extensionality", "normalize", "semiring")
    ctx_schema: Schema = EMPTY
    hypotheses: Hypotheses = NO_HYPOTHESES
    automatic: bool = False
    sound: bool = True
    paper_ref: str = ""
    instantiate: Optional[InstanceFactory] = None
    #: for deliberately unsound rules: the structured defect the static
    #: linter is expected to report — an
    #: :class:`~repro.analysis.rulecheck.ExpectedDefect` carrying the
    #: stable diagnostic code and a one-line reason.  ``None`` for sound
    #: rules; the linter test suite asserts the annotation is reproduced.
    expected_defect: Optional[object] = None

    def typecheck(self) -> Tuple[Schema, Schema]:
        """Infer both sides' output schemas (they must agree)."""
        lhs_schema = infer_query(self.lhs, self.ctx_schema)
        rhs_schema = infer_query(self.rhs, self.ctx_schema)
        if lhs_schema != rhs_schema:
            raise ValueError(
                f"rule {self.name!r}: schema mismatch "
                f"{lhs_schema} vs {rhs_schema}")
        return lhs_schema, rhs_schema

    def prove(self) -> Proof:
        """Run the symbolic proof (decision procedure for CQ rules)."""
        with span("rules.prove", rule=self.name,
                  automatic=self.automatic) as sp:
            if self.automatic:
                decision = decide_cq(self.lhs, self.rhs, self.ctx_schema,
                                     self.hypotheses,
                                     require_fragment=False)
                proof = Proof(
                    rule_name=self.name, verified=decision.equivalent,
                    tactic_script=("cq_decide",), engine_steps=1,
                    elapsed_seconds=0.0, automatic=True)
            else:
                result = check_query_equivalence(
                    self.lhs, self.rhs, self.ctx_schema, self.hypotheses)
                proof = Proof(
                    rule_name=self.name, verified=result.equal,
                    tactic_script=self.tactic_script,
                    engine_steps=result.stats.total_steps,
                    elapsed_seconds=0.0, automatic=False, detail=result)
            sp.attrs["verified"] = proof.verified
        proof.elapsed_seconds = sp.duration
        _PROOF_SECONDS.observe(sp.duration)
        counter("rules.proofs.verified" if proof.verified
                else "rules.proofs.rejected").inc()
        return proof

    def validate(self, trials: int = 25, seed: int = 0,
                 semiring: Semiring = NAT) -> Optional[Counterexample]:
        """Run the random-instance oracle; ``None`` means no disagreement."""
        if self.instantiate is None:
            raise ValueError(f"rule {self.name!r} has no instantiator")
        return find_counterexample(self.instantiate, trials=trials,
                                   seed=seed, semiring=semiring)

    def __str__(self) -> str:
        return f"<RewriteRule {self.name} [{self.category}]>"
