"""Sharded, disk-backed, content-addressed proof store.

The batch service's :class:`~repro.solver.cache.ProofCache` is one JSON
file rewritten wholesale — fine for a single process, useless as the
shared substrate of a long-lived verification service.  This module is
the persistent tier the ``repro serve`` daemon (and any number of other
processes) layer their in-memory caches over:

* **Content-addressed**: entries are keyed by the pipeline's symmetric
  alpha-canonical pair fingerprint (sha256 hex), so alpha-equivalent
  questions from different clients, processes, and runs land on the
  same record.
* **Sharded**: fingerprint prefix → shard (``int(fp[:8], 16) % shards``),
  one append-only JSONL segment per shard, so concurrent writers rarely
  contend and no single file grows unboundedly hot.
* **Multi-process safe**: appends happen under a per-shard advisory file
  lock (:func:`repro.fslock.file_lock`); readers keep a byte-offset
  index per shard and *tail-scan* incrementally, so a second server on
  the same ``--store-dir`` sees the first one's proofs without any
  coordination channel.  Compaction rewrites a segment last-wins via
  atomic rename; readers detect the rewrite (shrunk or diverged file)
  and rebuild their index.

Layout of a store directory::

    store.json            {"version": 1, "shards": N}
    shard-0000.jsonl      one ["<fingerprint>", {verdict}] record per line
    shard-0000.jsonl.lock sidecar advisory lock (flock)

:class:`StoreProofCache` is the layering: a drop-in
:class:`~repro.solver.cache.ProofCache` (so the untouched
:class:`~repro.solver.pipeline.Pipeline` probes and fills it) whose hot
tier is the bounded in-memory LRU and whose misses fall through to —
and whose inserts write through to — the shard store.  It is
thread-safe, which the plain ``ProofCache`` is not, because the serve
daemon checks queries from many handler threads at once.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Any, Dict, Optional

from ..fslock import file_lock
from ..obs.logs import get_logger
from ..obs.metrics import counter, gauge
from ..obs.trace import span
from ..solver.cache import ProofCache
from ..solver.verdict import Verdict

_log = get_logger("serve.store")

_SHARD_HITS = counter("store.shard_hits_total")
_SHARD_MISSES = counter("store.shard_misses_total")
_APPENDS = counter("store.appends_total")
_COMPACTIONS = counter("store.compactions_total")
_ENTRIES = gauge("store.entries")

#: Name of the store's metadata file (records the shard count, which is
#: fixed at creation — every process opening the store must agree).
META_FILE = "store.json"


class StoreError(ValueError):
    """Raised for an unusable store directory (bad meta, bad shards)."""


class ShardedProofStore:
    """The disk tier: fingerprint → verdict across sharded JSONL segments.

    Args:
        root: store directory (created if missing).
        shards: shard count for a *new* store; an existing store's
            recorded count always wins (a mismatch logs a warning).
        auto_compact: rewrite a segment when superseded records outnumber
            live ones (appends are last-wins, so re-proofs accumulate).
    """

    def __init__(self, root: str, shards: int = 16,
                 auto_compact: bool = True) -> None:
        if shards < 1:
            raise StoreError(f"shard count must be positive, got {shards}")
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.auto_compact = auto_compact
        self._lock = threading.RLock()
        #: shard → fingerprint → byte offset of its newest record.
        self._index: Dict[int, Dict[str, int]] = {}
        #: shard → bytes of the segment already folded into the index.
        self._scanned: Dict[int, int] = {}
        #: shard → superseded (dead) records seen while scanning.
        self._dead: Dict[int, int] = {}
        self.shards = self._init_meta(shards)

    def _init_meta(self, requested: int) -> int:
        """Create or read ``store.json`` (under its lock: two processes
        may race to create the same store)."""
        meta_path = os.path.join(self.root, META_FILE)
        with file_lock(meta_path):
            if os.path.exists(meta_path):
                with open(meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
                if meta.get("version") != 1 or "shards" not in meta:
                    raise StoreError(
                        f"unsupported store metadata in {meta_path!r}")
                recorded = int(meta["shards"])
                if recorded != requested:
                    _log.warning(
                        "store %s has %d shard(s); ignoring requested %d",
                        self.root, recorded, requested)
                return recorded
            payload = {"version": 1, "shards": requested}
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, meta_path)
            return requested

    # -- addressing ---------------------------------------------------------

    def shard_of(self, fingerprint: str) -> int:
        """Shard index of a fingerprint (stable across processes)."""
        try:
            prefix = int(fingerprint[:8], 16)
        except ValueError:
            # Non-hex keys (tests, future key schemes) still shard
            # deterministically.
            prefix = hash(fingerprint) & 0xFFFFFFFF
        return prefix % self.shards

    def _segment(self, shard: int) -> str:
        return os.path.join(self.root, f"shard-{shard:04d}.jsonl")

    # -- the incremental per-shard index -------------------------------------

    def _reset_shard(self, shard: int) -> None:
        self._index[shard] = {}
        self._scanned[shard] = 0
        self._dead[shard] = 0

    def _refresh_locked(self, shard: int) -> None:
        """Fold any segment bytes appended since the last scan (possibly
        by another process) into the in-memory offset index."""
        segment = self._segment(shard)
        try:
            size = os.path.getsize(segment)
        except OSError:
            size = 0
        start = self._scanned.get(shard, 0)
        if size < start:
            # Another process compacted the segment out from under us:
            # every offset is stale, rebuild from scratch.
            self._reset_shard(shard)
            start = 0
        if size <= start:
            self._index.setdefault(shard, {})
            return
        with open(segment, "rb") as handle:
            handle.seek(start)
            data = handle.read(size - start)
        complete = data.rfind(b"\n")
        if complete < 0:
            return  # only a partially flushed line so far
        index = self._index.setdefault(shard, {})
        dead = self._dead.get(shard, 0)
        offset = start
        for raw in data[:complete + 1].split(b"\n")[:-1]:
            record_offset = offset
            offset += len(raw) + 1
            try:
                fingerprint = json.loads(raw)[0]
            except (ValueError, IndexError, TypeError):
                continue  # torn or corrupt line: ignore, never crash
            if fingerprint in index:
                dead += 1
            index[fingerprint] = record_offset
        self._dead[shard] = dead
        self._scanned[shard] = start + complete + 1

    def _read_at(self, shard: int, fingerprint: str,
                 offset: int) -> Optional[Verdict]:
        segment = self._segment(shard)
        try:
            with open(segment, "rb") as handle:
                handle.seek(offset)
                raw = handle.readline()
            found, data = json.loads(raw)
            if found != fingerprint:
                raise ValueError("offset points at a different record")
            verdict = Verdict.from_dict(data)
            verdict.fingerprint = fingerprint
            return verdict
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # -- public API ----------------------------------------------------------

    def read(self, fingerprint: str) -> Optional[Verdict]:
        """The newest stored verdict for a fingerprint, or None."""
        shard = self.shard_of(fingerprint)
        with self._lock:
            self._refresh_locked(shard)
            offset = self._index.get(shard, {}).get(fingerprint)
            if offset is not None:
                verdict = self._read_at(shard, fingerprint, offset)
                if verdict is None:
                    # Stale offset (concurrent compaction): rebuild once.
                    self._reset_shard(shard)
                    self._refresh_locked(shard)
                    offset = self._index.get(shard, {}).get(fingerprint)
                    if offset is not None:
                        verdict = self._read_at(shard, fingerprint, offset)
                if verdict is not None:
                    _SHARD_HITS.inc()
                    return verdict
            _SHARD_MISSES.inc()
            return None

    def append(self, fingerprint: str, verdict: Verdict) -> None:
        """Durably record a verdict (last-wins per fingerprint)."""
        line = json.dumps([fingerprint, verdict.to_dict()],
                          separators=(",", ":")).encode("utf-8") + b"\n"
        shard = self.shard_of(fingerprint)
        segment = self._segment(shard)
        with self._lock:
            with file_lock(segment):
                # Fold in whatever other processes appended first, so our
                # scan cursor can jump cleanly over our own record.
                self._refresh_locked(shard)
                offset = self._scanned.get(shard, 0)
                with open(segment, "ab") as handle:
                    # A concurrent writer may have appended between the
                    # scan and the open; trust the real end of file.
                    handle.seek(0, os.SEEK_END)
                    offset = handle.tell()
                    handle.write(line)
                index = self._index.setdefault(shard, {})
                if fingerprint in index:
                    self._dead[shard] = self._dead.get(shard, 0) + 1
                index[fingerprint] = offset
                self._scanned[shard] = offset + len(line)
            _APPENDS.inc()
            _ENTRIES.set(sum(len(i) for i in self._index.values()))
            if self.auto_compact and \
                    self._dead.get(shard, 0) > max(64, len(
                        self._index.get(shard, {}))):
                self.compact(shard)

    def compact(self, shard: Optional[int] = None) -> None:
        """Rewrite segment(s) keeping only the newest record per key."""
        targets = range(self.shards) if shard is None else (shard,)
        for target in targets:
            self._compact_one(target)

    def _compact_one(self, shard: int) -> None:
        segment = self._segment(shard)
        with self._lock:
            with file_lock(segment), span("store.compact", shard=shard):
                if not os.path.exists(segment):
                    return
                self._reset_shard(shard)
                self._refresh_locked(shard)
                index = self._index.get(shard, {})
                records = []
                for fingerprint in index:
                    verdict = self._read_at(shard, fingerprint,
                                            index[fingerprint])
                    if verdict is not None:
                        records.append((fingerprint, verdict))
                fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
                with os.fdopen(fd, "wb") as handle:
                    for fingerprint, verdict in records:
                        handle.write(json.dumps(
                            [fingerprint, verdict.to_dict()],
                            separators=(",", ":")).encode("utf-8") + b"\n")
                os.replace(tmp, segment)
                self._reset_shard(shard)
                self._refresh_locked(shard)
            _COMPACTIONS.inc()

    def __len__(self) -> int:
        """Distinct fingerprints currently indexed (refreshes all shards)."""
        with self._lock:
            for shard in range(self.shards):
                self._refresh_locked(shard)
            return sum(len(index) for index in self._index.values())

    def __contains__(self, fingerprint: str) -> bool:
        shard = self.shard_of(fingerprint)
        with self._lock:
            self._refresh_locked(shard)
            return fingerprint in self._index.get(shard, {})

    def stats(self) -> Dict[str, Any]:
        """Shard layout + per-shard entry counts + traffic counters."""
        with self._lock:
            for shard in range(self.shards):
                self._refresh_locked(shard)
            per_shard = {shard: len(self._index.get(shard, {}))
                         for shard in range(self.shards)}
            return {
                "root": self.root,
                "shards": self.shards,
                "entries": sum(per_shard.values()),
                "per_shard": per_shard,
                "dead_records": sum(self._dead.values()),
                "hits": _SHARD_HITS.value,
                "misses": _SHARD_MISSES.value,
                "appends": _APPENDS.value,
                "compactions": _COMPACTIONS.value,
            }


class StoreProofCache(ProofCache):
    """A thread-safe :class:`ProofCache` whose cold tier is a shard store.

    Drop-in for the pipeline: probes hit the bounded in-memory LRU first
    (the hot tier this class inherits), fall through to the shard store
    on miss (promoting disk hits into the hot tier, *without* a
    write-back), and inserts write through to disk so every other
    process sharing the store directory profits.  ``hits``/``misses``
    count the layered result — a disk hit is a cache hit, exactly one
    count per probe.
    """

    def __init__(self, store: ShardedProofStore,
                 max_size: int = 4096) -> None:
        super().__init__(max_size=max_size)
        self._store = store
        self._tier_lock = threading.RLock()

    @property
    def store(self) -> ShardedProofStore:
        return self._store

    # -- layered lookups ------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[Verdict]:
        with self._tier_lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
                counter("proofcache.hits_total").inc()
                return self._copy_as_cached(entry)
            verdict = self._store.read(fingerprint)
            if verdict is not None:
                # Promote into the hot tier only — the record is already
                # on disk, a write-back would just grow the segment.
                ProofCache.put(self, fingerprint, verdict)
                self.hits += 1
                counter("proofcache.hits_total").inc()
                return self._copy_as_cached(verdict)
            self.misses += 1
            counter("proofcache.misses_total").inc()
            return None

    def get_by_alias(self, alias: str) -> Optional[Verdict]:
        with self._tier_lock:
            # Unlike the plain cache, an alias whose entry left the hot
            # tier is not dangling — the record usually still lives on
            # disk, so fall through to the layered probe.
            fingerprint = self._aliases.get(alias)
            if fingerprint is None:
                return None
            return self.get(fingerprint)

    def __contains__(self, fingerprint: str) -> bool:
        with self._tier_lock:
            return (fingerprint in self._entries
                    or fingerprint in self._store)

    # -- write-through inserts ------------------------------------------------

    def put(self, fingerprint: str, verdict: Verdict,
            alias: Optional[str] = None) -> None:
        with self._tier_lock:
            ProofCache.put(self, fingerprint, verdict, alias=alias)
        self._store.append(fingerprint, verdict)

    def register_alias(self, alias: str, fingerprint: str) -> None:
        with self._tier_lock:
            # The entry may live only on disk; the plain implementation
            # would drop the alias when the hot tier lacks it.
            if fingerprint in self._entries or fingerprint in self._store:
                self._aliases[alias] = fingerprint

    # -- persistence ----------------------------------------------------------

    def save(self, path: Optional[str] = None) -> str:
        """Every insert is already durable; saving is a no-op."""
        return self._store.root

    def stats(self) -> Dict[str, Any]:
        with self._tier_lock:
            return {
                "hot_entries": len(self._entries),
                "hot_max_size": self.max_size,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
                "store": self._store.stats(),
            }


__all__ = ["META_FILE", "ShardedProofStore", "StoreError",
           "StoreProofCache"]
