"""List semantics (the prior-work baseline) cross-validates the K-evaluator."""

import random
from collections import Counter

import pytest

from repro.core import ast
from repro.core.schema import INT, Leaf, Node
from repro.engine import (
    Database,
    bags_equal,
    eval_query_list,
    run_query,
    sets_equal,
)
from repro.engine.database import Interpretation
from repro.engine.random_instances import random_relation
from repro.semiring import NAT

SCHEMA = Node(Leaf(INT), Leaf(INT))


@pytest.fixture
def interp():
    db = Database(NAT)
    db.create_table("R", SCHEMA, [[1, 10], [1, 10], [2, 20]])
    db.create_table("S", SCHEMA, [[1, 10], [3, 30]])
    return db.interpretation()


def _krel_as_bag(rel):
    out = Counter()
    for row, mult in rel.items():
        out[row] += mult
    return out


def _assert_agree(query, interp):
    list_out = Counter(eval_query_list(query, interp))
    k_out = _krel_as_bag(run_query(query, interp))
    assert list_out == k_out


R = ast.Table("R", SCHEMA)
S = ast.Table("S", SCHEMA)


class TestAgreement:
    def test_table(self, interp):
        _assert_agree(R, interp)

    def test_select(self, interp):
        _assert_agree(ast.Select(ast.path(ast.RIGHT, ast.LEFT), R), interp)

    def test_product(self, interp):
        _assert_agree(ast.Product(R, S), interp)

    def test_where(self, interp):
        pred = ast.PredFunc("lt", (
            ast.P2E(ast.path(ast.RIGHT, ast.LEFT), INT),
            ast.Const(2, INT)))
        _assert_agree(ast.Where(R, pred), interp)

    def test_union_except_distinct(self, interp):
        _assert_agree(ast.UnionAll(R, S), interp)
        _assert_agree(ast.Except(R, S), interp)
        _assert_agree(ast.Distinct(R), interp)

    def test_correlated_exists(self, interp):
        pred = ast.Exists(ast.Where(S, ast.PredEq(
            ast.P2E(ast.path(ast.RIGHT, ast.LEFT), INT),
            ast.P2E(ast.path(ast.LEFT, ast.RIGHT, ast.LEFT), INT))))
        _assert_agree(ast.Where(R, pred), interp)

    def test_nested_composite(self, interp):
        q = ast.Distinct(ast.Select(
            ast.path(ast.RIGHT, ast.LEFT, ast.LEFT),
            ast.Where(ast.Product(R, S), ast.PredEq(
                ast.P2E(ast.path(ast.RIGHT, ast.LEFT, ast.LEFT), INT),
                ast.P2E(ast.path(ast.RIGHT, ast.RIGHT, ast.LEFT), INT)))))
        _assert_agree(q, interp)


class TestRandomizedAgreement:
    """The two implementations of the semantics agree on random instances
    and a corpus of query shapes — the strongest evidence each is right."""

    QUERIES = [
        R,
        ast.Select(ast.path(ast.RIGHT, ast.RIGHT), R),
        ast.Product(R, S),
        ast.UnionAll(R, ast.UnionAll(S, R)),
        ast.Except(ast.UnionAll(R, S), S),
        ast.Distinct(ast.Select(ast.path(ast.RIGHT, ast.LEFT),
                                ast.Product(R, S))),
        ast.Where(ast.Product(R, S), ast.PredEq(
            ast.P2E(ast.path(ast.RIGHT, ast.LEFT, ast.LEFT), INT),
            ast.P2E(ast.path(ast.RIGHT, ast.RIGHT, ast.LEFT), INT))),
    ]

    @pytest.mark.parametrize("seed", range(5))
    def test_agreement_on_random_instances(self, seed):
        rng = random.Random(seed)
        interp = Interpretation()
        interp.relations["R"] = random_relation(rng, SCHEMA, NAT)
        interp.relations["S"] = random_relation(rng, SCHEMA, NAT)
        for query in self.QUERIES:
            _assert_agree(query, interp)


class TestEquivalenceNotions:
    def test_bags_equal(self):
        assert bags_equal([1, 2, 2], [2, 1, 2])
        assert not bags_equal([1, 2], [1, 2, 2])

    def test_sets_equal(self):
        assert sets_equal([1, 2, 2], [2, 1])
        assert not sets_equal([1], [1, 2])
