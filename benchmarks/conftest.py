"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's figures/tables: it prints
the rows the paper reports (visible with ``pytest -s``) and writes them to
``benchmarks/output/<name>.txt`` so EXPERIMENTS.md can reference stable
artifacts.
"""

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture
def report():
    """A collector that prints and persists a figure's rows."""

    class Report:
        def __init__(self) -> None:
            self.lines = []
            self.name = None

        def add(self, line: str = "") -> None:
            self.lines.append(line)

        def emit(self, name: str) -> None:
            self.name = name
            text = "\n".join(self.lines)
            print("\n" + text)
            OUTPUT_DIR.mkdir(exist_ok=True)
            (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n",
                                                    encoding="utf-8")

    return Report()
