"""Extended rule corpus — proving beyond the Figure 8 set.

Not a paper figure: this benchmark demonstrates the engine generalizes
past the evaluated corpus, proving ten further laws of the same families
(union/projection distribution, truncation laws, EXCEPT laws) with the
same tactic set and comparable effort.
"""

from repro.rules import all_extended_rules


def _prove_all():
    return [(rule, rule.prove()) for rule in all_extended_rules()]


def test_extended_rules_report(report, benchmark):
    results = benchmark(_prove_all)
    report.add("Extended rules — beyond the paper's 23")
    report.add("=" * 60)
    report.add(f"{'Rule':<32}{'Steps':>8}{'Status':>12}")
    report.add("-" * 60)
    for rule, proof in results:
        report.add(f"{rule.name:<32}{proof.engine_steps:>8}"
                   f"{'VERIFIED' if proof.verified else 'FAILED':>12}")
        assert proof.verified
    report.add("-" * 60)
    report.add(f"{'Total':<32}{sum(p.engine_steps for _, p in results):>8}"
               f"{f'{len(results)}/{len(results)}':>12}")
    report.emit("extended_rules")


def test_extended_rules_oracle(benchmark):
    rules = all_extended_rules()
    verdicts = benchmark(
        lambda: [rule.validate(trials=8) for rule in rules])
    assert all(v is None for v in verdicts)
