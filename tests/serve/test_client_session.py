"""ServeClient ergonomics and the remote Session.connect surface."""

import pytest

from repro.core.equivalence import Hypotheses, KeyConstraint
from repro.core.schema import INT
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.server import ReproServer
from repro.session import Session, SessionError
from repro.solver import Status

TABLES = ["R(a:int,b:int)"]
Q1 = "SELECT DISTINCT a FROM R"
Q2 = "SELECT DISTINCT x.a FROM R AS x, R AS y WHERE x.a = y.a"


@pytest.fixture
def server():
    srv = ReproServer(port=0, tables=TABLES).start()
    yield srv
    srv.shutdown()


class TestServeClient:
    def test_connect_refused_raises_typed_error(self):
        client = ServeClient("127.0.0.1:1", connect_retries=2,
                             retry_delay=0.01)
        with pytest.raises(ServeClientError) as excinfo:
            client.connect()
        assert excinfo.value.code == "connection"

    def test_bad_address_raises(self):
        with pytest.raises(ServeClientError):
            ServeClient("not-an-address")

    def test_server_error_carries_code(self, server):
        with ServeClient(server.address) as cli:
            with pytest.raises(ServeClientError) as excinfo:
                cli.check("SELEKT nope", Q1, tables=TABLES)
            assert excinfo.value.code == "compile-error"

    def test_retry_after_server_restart_on_same_port(self, server):
        # An idle client survives the daemon dropping its connection.
        cli = ServeClient(server.address)
        assert cli.ping() is True
        cli._sock.close()  # simulate the daemon dropping the socket
        assert cli.ping() is True  # request() reconnects once
        cli.close()

    def test_disprover_knobs_thread_through(self, server):
        with ServeClient(server.address) as cli:
            verdict = cli.check("SELECT a FROM R",
                                "SELECT DISTINCT a FROM R",
                                disprover_workers=2,
                                disprover_batch_size=32)
            assert verdict.status is Status.DISPROVED
            baseline = cli.check("SELECT b FROM R",
                                 "SELECT DISTINCT b FROM R")
            assert baseline.status is Status.DISPROVED

    def test_bad_disprover_knobs_are_protocol_errors(self, server):
        with ServeClient(server.address) as cli:
            for payload in ({"disprover_workers": 0},
                            {"disprover_workers": "four"},
                            {"disprover_batch_size": 0},
                            {"disprover_batch_size": True}):
                with pytest.raises(ServeClientError) as excinfo:
                    cli.request("check", sql1=Q1, sql2=Q1, **payload)
                assert excinfo.value.code == "bad-request"


class TestRemoteSession:
    def test_fluent_check_runs_remote(self, server):
        with Session.connect(server.address, *TABLES) as session:
            assert session.is_remote
            verdict = session.sql(Q1).equivalent_to(Q2)
            assert verdict.status is Status.PROVED
            # Second ask: served from the daemon's cache.
            assert session.check(Q1, Q2).cached

    def test_check_pairs_one_round_trip(self, server):
        with Session.connect(server.address, *TABLES) as session:
            report = session.check_pairs(
                [(Q1, Q2), ("SELECT a FROM R", "SELECT b FROM R")])
            assert len(report) == 2
            assert report.count(Status.PROVED) == 1
            assert report.count(Status.DISPROVED) == 1

    def test_local_compile_errors_fail_fast(self, server):
        with Session.connect(server.address, *TABLES) as session:
            with pytest.raises(Exception):
                session.sql("SELECT missing_col FROM R")

    def test_hypotheses_are_rejected_remotely(self, server):
        hyps = Hypotheses(keys=(KeyConstraint(
            rel="R", proj="a", proj_schema=INT),))
        with Session.connect(server.address, *TABLES) as session:
            with pytest.raises(SessionError):
                session.check(Q1, Q2, hyps)

    def test_close_releases_client(self, server):
        session = Session.connect(server.address, *TABLES)
        client = session.remote
        session.close()
        assert not session.is_remote
        assert not client.connected

    def test_connect_refused_surfaces(self):
        with pytest.raises(ServeClientError):
            Session.connect("127.0.0.1:1", *TABLES,
                            connect_retries=2)
