"""Cost-based plan search over certified rewrites.

A small Exodus/Volcano-style planner (the lineage the paper reviews in
Sec. 6.1): breadth-first exploration of the rewrite space, cost-based plan
selection, and — the point of the whole exercise — *certification* of the
chosen plan against the original query using the equivalence prover.

Because every transformation in :mod:`repro.optimizer.rewriter` is an
instance of a rule proved sound by the engine, certification should never
fail; it is belt-and-braces, and the test suite asserts it holds on a
corpus of optimizer workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from dataclasses import fields as dataclass_fields

from ..core import ast
from .cost import TableStats, plan_cost
from .rewriter import rewrites


def _plan_size(node: object, _seen_types=(ast.Query, ast.Predicate,
                                          ast.Expression, ast.Projection)
               ) -> int:
    """Node count of a plan tree (queries, predicates, expressions,
    projections) — the planner's tie-break among equal-cost plans."""
    size = 1
    for field in dataclass_fields(node):
        value = getattr(node, field.name)
        children = value if isinstance(value, tuple) else (value,)
        for child in children:
            if isinstance(child, _seen_types):
                size += _plan_size(child)
    return size


@dataclass
class PlanningResult:
    """Outcome of plan search."""

    original: ast.Query
    best_plan: ast.Query
    original_cost: float
    best_cost: float
    plans_explored: int
    applied_rules: Tuple[str, ...]
    certified: Optional[bool]

    @property
    def improved(self) -> bool:
        return self.best_cost < self.original_cost


def optimize(query: ast.Query, stats: TableStats, max_plans: int = 400,
             certify: bool = True, pipeline=None) -> PlanningResult:
    """Search the rewrite space for the cheapest equivalent plan.

    Args:
        query: the initial (core HoTTSQL) plan.
        stats: base-table cardinalities for the cost model.
        max_plans: exploration budget.
        certify: when True, prove ``best ≡ original`` with the equivalence
            engine before returning.
        pipeline: the :class:`~repro.solver.pipeline.Pipeline` to certify
            through (a session passes its own, so the proof lands in the
            session's cache); defaults to the process-wide pipeline.

    Returns:
        The chosen plan with costs, exploration counters, the chain of
        rule names that produced it, and the certification verdict.
    """
    origin_cost = plan_cost(query, stats)
    seen: Set[ast.Query] = {query}
    frontier: List[Tuple[ast.Query, Tuple[str, ...]]] = [(query, ())]
    best_plan, best_cost, best_rules = query, origin_cost, ()
    best_size = _plan_size(query)
    explored = 1

    while frontier and explored < max_plans:
        next_frontier: List[Tuple[ast.Query, Tuple[str, ...]]] = []
        for plan, rules in frontier:
            for candidate, rule in rewrites(plan):
                if candidate in seen:
                    continue
                seen.add(candidate)
                explored += 1
                cost = plan_cost(candidate, stats)
                chain = rules + (rule,)
                size = _plan_size(candidate)
                # Equal-cost plans tie-break on syntactic size, so a
                # simplification the cost model is blind to (dedup'd
                # conjuncts, say) still wins over the bloated original.
                if cost < best_cost or (cost == best_cost
                                        and size < best_size):
                    best_plan, best_cost, best_rules = candidate, cost, chain
                    best_size = size
                next_frontier.append((candidate, chain))
                if explored >= max_plans:
                    break
            if explored >= max_plans:
                break
        frontier = next_frontier

    certified: Optional[bool] = None
    if certify:
        # Certification runs through a verification pipeline so that the
        # proof lands in (and may come from) its proof cache — the
        # caller's own (a Session's) or the process-wide default.
        if pipeline is None:
            from ..solver.pipeline import default_pipeline
            pipeline = default_pipeline()
        certified = pipeline.certify(query, best_plan)
    return PlanningResult(
        original=query, best_plan=best_plan, original_cost=origin_cost,
        best_cost=best_cost, plans_explored=explored,
        applied_rules=best_rules, certified=certified)
