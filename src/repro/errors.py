"""The library-wide exception hierarchy.

Every error the library raises on *user-facing* input — SQL that does not
lex, parse, or resolve, ill-typed core queries, malformed table specs,
bad CLI arguments, an exhausted proof budget — derives from a single base,
:class:`ReproError`, so callers can write one handler::

    from repro import ReproError, Session

    with Session.from_tables("R(a:int,b:int)") as session:
        try:
            verdict = session.check(sql1, sql2)
        except ReproError as exc:
            print(f"bad input: {exc}")

The concrete exception classes keep living next to the code that raises
them (``ParseError`` in :mod:`repro.sql.parser`, ``TypecheckError`` in
:mod:`repro.core.typecheck`, ...), and their existing hierarchies are
unchanged; this module only roots them and re-exports the names so
``from repro.errors import ParseError`` works as a one-stop import.
"""

from __future__ import annotations

import importlib


class ReproError(Exception):
    """Base class of every exception the repro library raises on bad input
    or an exhausted budget.  ``except ReproError`` catches any of them."""


class SchemaMismatchError(ReproError, ValueError):
    """The two sides of an equivalence question have different output (or
    context) schemas, so the question is ill-typed rather than false.

    Also a :class:`ValueError` so pre-existing ``except ValueError``
    handlers (the CLI, older callers) keep working.
    """


#: name → defining module, for the lazy re-export of the concrete classes
#: (imported on attribute access to keep this module free of import cycles:
#: the defining modules themselves import :class:`ReproError` from here).
_HOMES = {
    "LexError": "repro.sql.lexer",
    "ParseError": "repro.sql.parser",
    "ResolutionError": "repro.sql.resolve",
    "TypecheckError": "repro.core.typecheck",
    "InterpretationError": "repro.core.interp",
    "NotConjunctive": "repro.core.conjunctive",
    "StepBudgetExceeded": "repro.core.equivalence",
    "CLIError": "repro.cli",
    "SessionError": "repro.session",
    "TableSpecError": "repro.session",
    "PlanRenderingError": "repro.sql.decompile",
}

__all__ = ["ReproError", "SchemaMismatchError"] + sorted(_HOMES)


def __getattr__(name: str):
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(home), name)


def __dir__():
    return sorted(set(globals()) | set(__all__))
