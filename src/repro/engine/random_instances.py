"""Randomized instance generation and the counterexample falsifier.

The paper motivates DOPCERT with real optimizer bugs that "can go
undetected for extended periods of time" (Sec. 1).  The complementary tool
to a prover is a *falsifier*: generate random instances, evaluate both
sides of a candidate rewrite, and report any disagreement.  (The successor
system, Cosette, ships exactly this combination.)  Here the falsifier
doubles as the oracle that re-validates every rule the symbolic prover
accepts, over several semirings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..core import ast
from ..core.schema import (
    DEFAULT_DOMAINS,
    Empty,
    Leaf,
    Node,
    Path,
    SQLType,
    Schema,
    tuple_get,
)
from ..semiring.krelation import KRelation
from ..semiring.semirings import NAT, Semiring
from .database import Interpretation
from .eval import run_query


#: Per-type value domains for random generation.
Domains = Dict[str, Tuple[Any, ...]]


def _resolve_domains(domains: Optional[Domains]) -> Domains:
    """Default to a *copy* of :data:`DEFAULT_DOMAINS`.

    The module default is never handed out directly: a caller mutating the
    returned mapping (adding a type, shrinking a domain) must not poison
    every later call that relies on the default.
    """
    return dict(DEFAULT_DOMAINS) if domains is None else domains


def random_value(rng: random.Random, ty: SQLType,
                 domains: Optional[Domains] = None) -> Any:
    """A random leaf value of the given base type."""
    domains = _resolve_domains(domains)
    if ty.name not in domains:
        raise ValueError(f"no domain for type {ty}")
    return rng.choice(domains[ty.name])


def random_tuple(rng: random.Random, schema: Schema,
                 domains: Optional[Domains] = None) -> Any:
    """A random nested tuple of a concrete schema."""
    domains = _resolve_domains(domains)
    if isinstance(schema, Empty):
        return ()
    if isinstance(schema, Leaf):
        return random_value(rng, schema.ty, domains)
    if isinstance(schema, Node):
        return (random_tuple(rng, schema.left, domains),
                random_tuple(rng, schema.right, domains))
    raise ValueError(f"cannot sample tuples of non-concrete schema {schema}")


def random_relation(rng: random.Random, schema: Schema,
                    semiring: Semiring = NAT, max_rows: int = 5,
                    max_multiplicity: int = 3,
                    domains: Optional[Domains] = None) -> KRelation:
    """A random K-relation with small support and small multiplicities."""
    domains = _resolve_domains(domains)
    rel = KRelation(semiring)
    for _ in range(rng.randint(0, max_rows)):
        row = random_tuple(rng, schema, domains)
        mult = rng.randint(1, max_multiplicity)
        rel.add(row, semiring.from_int(mult))
    return rel


def random_keyed_relation(rng: random.Random, schema: Schema,
                          key_path: Path, semiring: Semiring = NAT,
                          max_rows: int = 5,
                          domains: Optional[Domains] = None) -> KRelation:
    """A random relation satisfying a key on ``key_path``.

    Key semantics (paper Sec. 4.2) force set-valued relations with unique
    key values, so each generated row has multiplicity one and a fresh key.
    """
    domains = _resolve_domains(domains)
    rel = KRelation(semiring)
    used_keys = set()
    for _ in range(rng.randint(0, max_rows)):
        row = random_tuple(rng, schema, domains)
        key = tuple_get(row, key_path)
        if key in used_keys:
            continue
        used_keys.add(key)
        rel.add(row, semiring.one)
    return rel


def random_leaf_path(rng: random.Random, schema: Schema
                     ) -> Tuple[Path, SQLType]:
    """A uniformly random attribute (path to a leaf) of a concrete schema."""
    leaves = schema.leaves()
    if not leaves:
        raise ValueError(f"schema {schema} has no attributes")
    return rng.choice(leaves)


def deterministic_predicate(seed: int) -> Callable[[Any], bool]:
    """A pseudo-random but deterministic boolean function on tuples.

    Deterministic in the tuple value, so the same predicate metavariable
    instantiation evaluates identically across both sides of a rewrite.
    """

    def predicate(value: Any) -> bool:
        return (hash((seed, value)) & 0xFFFF) % 2 == 0

    return predicate


def deterministic_expression(seed: int, values: Sequence[Any]
                             ) -> Callable[[Any], Any]:
    """A deterministic function from tuples into a fixed value list."""

    def expression(value: Any) -> Any:
        return values[(hash((seed, value)) & 0xFFFF) % len(values)]

    return expression


def path_projection(path: Path) -> Callable[[Any], Any]:
    """The concrete function for a projection metavariable set to ``path``."""

    def project(value: Any) -> Any:
        return tuple_get(value, path)

    return project


# ---------------------------------------------------------------------------
# The falsifier
# ---------------------------------------------------------------------------

#: A rule instantiation: two closed queries plus their interpretation.
Instance = Tuple[ast.Query, ast.Query, Interpretation]

#: A function producing a fresh random instantiation of a rewrite rule.
InstanceFactory = Callable[[random.Random], Instance]


@dataclass
class Counterexample:
    """A concrete refutation of a candidate rewrite."""

    trial: int
    lhs_query: ast.Query
    rhs_query: ast.Query
    interpretation: Interpretation
    lhs_result: KRelation
    rhs_result: KRelation

    def describe(self) -> str:
        """Human-readable summary: the disagreeing tuples."""
        lines = ["counterexample found:"]
        rows = set(self.lhs_result.support()) | set(self.rhs_result.support())
        for row in sorted(rows, key=repr):
            left = self.lhs_result.annotation(row)
            right = self.rhs_result.annotation(row)
            if left != right:
                lines.append(f"  tuple {row!r}: lhs multiplicity {left!r}, "
                             f"rhs multiplicity {right!r}")
        return "\n".join(lines)


def find_counterexample(factory: InstanceFactory, trials: int = 40,
                        seed: int = 0,
                        semiring: Semiring = NAT) -> Optional[Counterexample]:
    """Search for an instance on which the two sides disagree.

    Returns the first counterexample found, or ``None`` after ``trials``
    agreeing instances (which is *evidence*, not proof — that is the
    prover's job).
    """
    rng = random.Random(seed)
    for trial in range(trials):
        lhs_query, rhs_query, interp = factory(rng)
        lhs = run_query(lhs_query, interp, semiring)
        rhs = run_query(rhs_query, interp, semiring)
        if lhs != rhs:
            return Counterexample(
                trial=trial, lhs_query=lhs_query, rhs_query=rhs_query,
                interpretation=interp, lhs_result=lhs, rhs_result=rhs)
    return None


def agreement_rate(factory: InstanceFactory, trials: int = 40,
                   seed: int = 0, semiring: Semiring = NAT) -> float:
    """Fraction of random instances on which the two sides agree."""
    rng = random.Random(seed)
    agreed = 0
    for _ in range(trials):
        lhs_query, rhs_query, interp = factory(rng)
        if run_query(lhs_query, interp, semiring) == \
                run_query(rhs_query, interp, semiring):
            agreed += 1
    return agreed / trials if trials else 1.0
