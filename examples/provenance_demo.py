"""Semiring genericity: one query, four semantics.

HoTTSQL's semantics generalizes K-relations (Green et al.), so the same
query evaluates under any commutative semiring.  This demo runs one join
query under:

* ``NAT``      — bag semantics (multiplicities),
* ``BOOL``     — set semantics,
* ``NAT_INF``  — the paper's cardinal semantics (a tuple with infinite
  multiplicity flows through the operators),
* ``ℕ[X]``     — provenance polynomials: each output tuple's annotation
  records exactly which input tuples derived it and how.

Because ℕ[X] is the *free* commutative semiring, a rewrite validated on
provenance-annotated inputs is validated for every semiring at once —
which is how the test suite checks the rule library.

Run:  python examples/provenance_demo.py
"""

from repro import Catalog, Database, INT, compile_sql
from repro.engine import Interpretation, run_query
from repro.semiring import BOOL, KRelation, NAT, NAT_INF, OMEGA, PROVENANCE
from repro.semiring.provenance import Polynomial

QUERY = "SELECT x.a FROM R x, S y WHERE x.a = y.a"


def main() -> None:
    catalog = Catalog()
    catalog.add_table("R", [("a", INT), ("b", INT)])
    catalog.add_table("S", [("a", INT), ("c", INT)])

    db = Database(NAT)
    db.create_table("R", catalog.schema_of("R"), [[1, 10], [1, 20], [2, 30]])
    db.create_table("S", catalog.schema_of("S"), [[1, 7], [2, 8], [2, 9]])
    resolved = compile_sql(QUERY, catalog)

    print("Query:", QUERY)
    print("R = {(1,10), (1,20), (2,30)}   S = {(1,7), (2,8), (2,9)}")
    print()

    # Bag semantics ---------------------------------------------------------
    bags = run_query(resolved.query, db.interpretation(), NAT)
    print("bag semantics (NAT):       ",
          {row: m for row, m in sorted(bags.items())})

    # Set semantics ----------------------------------------------------------
    bool_db = db.reannotate(BOOL)
    sets = run_query(resolved.query, bool_db.interpretation(), BOOL)
    print("set semantics (BOOL):      ",
          {row: m for row, m in sorted(sets.items())})

    # Cardinal semantics with an infinite tuple -------------------------------
    inf_db = db.reannotate(NAT_INF)
    rel = inf_db.relation("R")
    boosted = KRelation(NAT_INF, dict(rel.items()))
    boosted.add((1, 10), OMEGA)
    interp_inf = Interpretation(relations={"R": boosted,
                                           "S": inf_db.relation("S")})
    cards = run_query(resolved.query, interp_inf, NAT_INF)
    print("cardinal semantics (ω):    ",
          {row: str(m) for row, m in sorted(cards.items())})

    # Provenance ---------------------------------------------------------------
    prov_db = db.reannotate(
        PROVENANCE,
        lambda table, row: Polynomial.variable(f"{table}{row}"))
    prov = run_query(resolved.query, prov_db.interpretation(), PROVENANCE)
    print()
    print("provenance polynomials (ℕ[X]):")
    for row, poly in sorted(prov.items()):
        print(f"  {row}: {poly}")

    # The homomorphism property: evaluating the provenance at the original
    # multiplicities recovers the bag answer.
    assignment = {}
    for name in ("R", "S"):
        for row, mult in db.relation(name).items():
            assignment[f"{name}{row}"] = mult
    recovered = prov.map_annotations(
        lambda p: p.evaluate(NAT, assignment), NAT)
    print()
    print("evaluating provenance at input multiplicities recovers the bag:",
          recovered == bags)
    assert recovered == bags


if __name__ == "__main__":
    main()
