"""Sharded proof store: durability, sharing, compaction, corruption."""

import json
import os

import pytest

from repro.core.schema import INT
from repro.serve.store import (
    META_FILE,
    ShardedProofStore,
    StoreError,
    StoreProofCache,
)
from repro.solver import Pipeline, Status, Verdict
from repro.sql import Catalog, compile_sql


def _verdict(tag, status=Status.PROVED):
    return Verdict(status=status, stage="prover", fingerprint=tag)


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_table("R", [("a", INT), ("b", INT)])
    return cat


class TestShardedStore:
    def test_roundtrip(self, tmp_path):
        store = ShardedProofStore(str(tmp_path), shards=4)
        store.append("a" * 64, _verdict("a" * 64))
        hit = store.read("a" * 64)
        assert hit is not None and hit.status is Status.PROVED
        assert store.read("b" * 64) is None

    def test_last_wins(self, tmp_path):
        store = ShardedProofStore(str(tmp_path), shards=4)
        fp = "c" * 64
        store.append(fp, _verdict(fp, Status.UNKNOWN))
        store.append(fp, _verdict(fp, Status.PROVED))
        assert store.read(fp).status is Status.PROVED
        assert len(store) == 1

    def test_cross_instance_sharing(self, tmp_path):
        # Two store objects on one directory model two server processes.
        writer = ShardedProofStore(str(tmp_path), shards=4)
        reader = ShardedProofStore(str(tmp_path), shards=4)
        assert reader.read("d" * 64) is None
        writer.append("d" * 64, _verdict("d" * 64))
        hit = reader.read("d" * 64)  # tail-scan picks up the append
        assert hit is not None and hit.status is Status.PROVED

    def test_shard_layout_is_stable(self, tmp_path):
        store = ShardedProofStore(str(tmp_path), shards=8)
        fingerprints = [f"{i:064x}" for i in range(64)]
        for fp in fingerprints:
            assert 0 <= store.shard_of(fp) < 8
        again = ShardedProofStore(str(tmp_path), shards=8)
        assert [store.shard_of(fp) for fp in fingerprints] == \
            [again.shard_of(fp) for fp in fingerprints]

    def test_existing_shard_count_wins(self, tmp_path):
        ShardedProofStore(str(tmp_path), shards=4)
        reopened = ShardedProofStore(str(tmp_path), shards=32)
        assert reopened.shards == 4

    def test_rejects_bad_meta(self, tmp_path):
        with open(os.path.join(str(tmp_path), META_FILE), "w",
                  encoding="utf-8") as handle:
            json.dump({"version": 99}, handle)
        with pytest.raises(StoreError):
            ShardedProofStore(str(tmp_path))

    def test_rejects_nonpositive_shards(self, tmp_path):
        with pytest.raises(StoreError):
            ShardedProofStore(str(tmp_path), shards=0)

    def test_compaction_keeps_newest(self, tmp_path):
        store = ShardedProofStore(str(tmp_path), shards=1,
                                  auto_compact=False)
        fp = "e" * 64
        for status in (Status.UNKNOWN, Status.DISPROVED, Status.PROVED):
            store.append(fp, _verdict(fp, status))
        store.append("f" * 64, _verdict("f" * 64))
        segment = os.path.join(str(tmp_path), "shard-0000.jsonl")
        before = os.path.getsize(segment)
        store.compact()
        after = os.path.getsize(segment)
        assert after < before  # two superseded records dropped
        assert store.read(fp).status is Status.PROVED
        assert store.read("f" * 64) is not None

    def test_reader_survives_concurrent_compaction(self, tmp_path):
        writer = ShardedProofStore(str(tmp_path), shards=1,
                                   auto_compact=False)
        reader = ShardedProofStore(str(tmp_path), shards=1)
        fp = "1" * 64
        for status in (Status.UNKNOWN, Status.PROVED):
            writer.append(fp, _verdict(fp, status))
        assert reader.read(fp).status is Status.PROVED  # index is warm
        writer.compact()  # shrinks the file under the reader's offsets
        assert reader.read(fp).status is Status.PROVED

    def test_corrupt_lines_are_skipped(self, tmp_path):
        store = ShardedProofStore(str(tmp_path), shards=1)
        store.append("2" * 64, _verdict("2" * 64))
        segment = os.path.join(str(tmp_path), "shard-0000.jsonl")
        with open(segment, "ab") as handle:
            handle.write(b"{not json at all\n")
            handle.write(b'["torn-record-without-newline"')
        fresh = ShardedProofStore(str(tmp_path), shards=1)
        assert fresh.read("2" * 64) is not None
        assert len(fresh) == 1

    def test_stats_shape(self, tmp_path):
        store = ShardedProofStore(str(tmp_path), shards=2)
        store.append("3" * 64, _verdict("3" * 64))
        stats = store.stats()
        assert stats["shards"] == 2
        assert stats["entries"] == 1
        assert sum(stats["per_shard"].values()) == 1


class TestStoreProofCache:
    def test_layered_hit_accounting(self, tmp_path):
        cache = StoreProofCache(ShardedProofStore(str(tmp_path)),
                                max_size=4)
        fp = "4" * 64
        assert cache.get(fp) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put(fp, _verdict(fp))
        assert cache.get(fp).cached is True  # hot tier
        assert (cache.hits, cache.misses) == (1, 1)

    def test_disk_fallthrough_after_hot_eviction(self, tmp_path):
        cache = StoreProofCache(ShardedProofStore(str(tmp_path)),
                                max_size=2)
        fps = [f"{i:064x}" for i in range(5)]
        for fp in fps:
            cache.put(fp, _verdict(fp))
        # fps[0] left the 2-entry hot tier long ago but is on disk.
        hit = cache.get(fps[0])
        assert hit is not None and hit.cached is True

    def test_alias_survives_hot_eviction(self, tmp_path):
        cache = StoreProofCache(ShardedProofStore(str(tmp_path)),
                                max_size=2)
        fps = [f"{i:064x}" for i in range(4)]
        cache.put(fps[0], _verdict(fps[0]), alias="the-alias")
        for fp in fps[1:]:
            cache.put(fp, _verdict(fp))
        assert cache.get_by_alias("the-alias") is not None

    def test_save_is_a_noop(self, tmp_path):
        cache = StoreProofCache(ShardedProofStore(str(tmp_path)))
        assert cache.save() == os.path.abspath(str(tmp_path))

    def test_pipeline_restart_stays_warm(self, tmp_path, catalog):
        """A fresh pipeline over the same store dir serves previously
        proved pairs without re-proving (the cross-process warm story)."""
        q1 = compile_sql("SELECT DISTINCT a FROM R", catalog).query
        q2 = compile_sql(
            "SELECT DISTINCT x.a FROM R AS x, R AS y WHERE x.a = y.a",
            catalog).query
        first = Pipeline(cache=StoreProofCache(
            ShardedProofStore(str(tmp_path))))
        cold = first.check(q1, q2)
        assert cold.proved and not cold.cached

        second = Pipeline(cache=StoreProofCache(
            ShardedProofStore(str(tmp_path))))
        warm = second.check(q1, q2)
        assert warm.proved and warm.cached
