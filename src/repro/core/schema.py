"""HoTTSQL data model: types, binary-tree schemas, and dependent tuples.

Paper Sec. 3.1 (Figures 3 and 4).  A schema is a binary tree whose leaves
carry base types; a tuple is a nested pair with exactly the shape of its
schema.  Attributes are *paths* into the tree (``Left`` / ``Right``
selectors), which is what lets generic rewrite rules quantify over schemas:
a rule can mention "some attribute ``p`` of R" without fixing R's shape.

Concretely a tuple of schema

* ``Empty``        is the Python value ``()``
* ``Leaf τ``       is a Python value of type ``τ``
* ``Node σ1 σ2``   is a pair ``(t1, t2)`` of tuples of ``σ1`` and ``σ2``

The module also provides :class:`SVar`, a *schema variable*, used by generic
rewrite rules that must hold for every schema (paper Sec. 3.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence, Tuple

from .intern import interned


# ---------------------------------------------------------------------------
# Base types
# ---------------------------------------------------------------------------

class _Null:
    """The SQL NULL marker (paper Sec. 7's three-valued-logic extension).

    A singleton sentinel inhabiting *every* base type; comparable and
    hashable so it can live inside tuples, but equal only to itself — the
    3-valued comparison semantics lives in :mod:`repro.sql.three_valued`,
    not here.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __lt__(self, other) -> bool:
        return False  # NULLs sort nowhere; engine code never orders them


#: The NULL value (Sec. 7).
NULL = _Null()


@interned
@dataclass(frozen=True)
class SQLType:
    """A base SQL type (paper Figure 3: int, bool, string, ...)."""

    name: str

    #: Python types acceptable as constants of this SQL type, keyed by name.
    _PYTHON_CARRIERS = {
        "int": (int,),
        "bool": (bool,),
        "string": (str,),
        "float": (int, float),  # ints embed into float columns, bools do not
    }

    def validate(self, value: Any) -> bool:
        """True iff ``value`` is a legal constant of this type.

        NULL inhabits every type (paper Sec. 7).
        """
        if value is NULL:
            return True
        carriers = self._PYTHON_CARRIERS.get(self.name)
        if carriers is None:
            return True  # user-defined base types are unconstrained
        if self.name in ("int", "float") and isinstance(value, bool):
            return False
        return isinstance(value, carriers)

    def __str__(self) -> str:
        return self.name


#: The stock base types from Figure 3 (float via the Sec. 7 extensions).
INT = SQLType("int")
BOOL = SQLType("bool")
STRING = SQLType("string")
FLOAT = SQLType("float")


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------

class Schema:
    """Abstract schema tree node.  Immutable; concrete subclasses below."""

    __slots__ = ()

    @property
    def is_concrete(self) -> bool:
        """True iff the schema contains no schema variables."""
        raise NotImplementedError

    def leaves(self) -> List[Tuple["Path", SQLType]]:
        """All (path, type) pairs for the leaf attributes, left to right."""
        out: List[Tuple[Path, SQLType]] = []
        _collect_leaves(self, (), out)
        return out

    @property
    def width(self) -> int:
        """Number of leaf attributes (concrete schemas only)."""
        return len(self.leaves())

    def __str__(self) -> str:
        return schema_to_str(self)


@dataclass(frozen=True)
class Empty(Schema):
    """The empty schema; its only tuple is the unit tuple ``()``."""

    __slots__ = ()

    @property
    def is_concrete(self) -> bool:
        return True


@interned
@dataclass(frozen=True)
class Leaf(Schema):
    """A single attribute of base type ``ty``."""

    ty: SQLType

    @property
    def is_concrete(self) -> bool:
        return True


@interned
@dataclass(frozen=True)
class Node(Schema):
    """An internal node: the concatenation of two sub-schemas."""

    left: Schema
    right: Schema

    @property
    def is_concrete(self) -> bool:
        return self.left.is_concrete and self.right.is_concrete


@interned
@dataclass(frozen=True)
class SVar(Schema):
    """A schema variable, standing for an arbitrary unknown schema.

    Generic rewrite rules (paper Sec. 3.3) quantify over all schemas; a rule
    mentioning relation R of schema ``SVar("R")`` holds for every
    instantiation of that variable.
    """

    name: str

    @property
    def is_concrete(self) -> bool:
        return False


#: The empty schema singleton (convenience).
EMPTY = Empty()


def node(*schemas: Schema) -> Schema:
    """Right-nested concatenation of one or more schemas."""
    if not schemas:
        return EMPTY
    result = schemas[-1]
    for s in reversed(schemas[:-1]):
        result = Node(s, result)
    return result


def leaf(ty: SQLType) -> Leaf:
    """A one-attribute schema of the given base type."""
    return Leaf(ty)


def _collect_leaves(schema: Schema, prefix: Tuple[str, ...],
                    out: List[Tuple["Path", SQLType]]) -> None:
    if isinstance(schema, Leaf):
        out.append((prefix, schema.ty))
    elif isinstance(schema, Node):
        _collect_leaves(schema.left, prefix + ("L",), out)
        _collect_leaves(schema.right, prefix + ("R",), out)
    elif isinstance(schema, SVar):
        raise ValueError(f"cannot enumerate leaves of schema variable {schema.name!r}")
    # Empty contributes nothing.


def schema_to_str(schema: Schema) -> str:
    """Render a schema in the paper's notation."""
    if isinstance(schema, Empty):
        return "empty"
    if isinstance(schema, Leaf):
        return f"leaf {schema.ty}"
    if isinstance(schema, Node):
        return f"(node {schema_to_str(schema.left)} {schema_to_str(schema.right)})"
    if isinstance(schema, SVar):
        return f"?{schema.name}"
    raise TypeError(f"not a schema: {schema!r}")


def schemas_equal(a: Schema, b: Schema) -> bool:
    """Structural schema equality (schema variables match by name only)."""
    return a == b


# ---------------------------------------------------------------------------
# Paths
# ---------------------------------------------------------------------------

#: A path into a schema tree: a tuple of "L"/"R" selectors.
Path = Tuple[str, ...]


def subschema(schema: Schema, path: Path) -> Schema:
    """The sub-schema reached by following ``path``.

    Raises:
        ValueError: if the path leaves the tree.
    """
    current = schema
    for step in path:
        if not isinstance(current, Node):
            raise ValueError(f"path {path} does not fit schema {schema}")
        current = current.left if step == "L" else current.right
    return current


# ---------------------------------------------------------------------------
# Tuples (concrete values)
# ---------------------------------------------------------------------------

def validate_tuple(schema: Schema, value: Any) -> bool:
    """True iff ``value`` is a well-formed tuple of ``schema``."""
    if isinstance(schema, Empty):
        return value == ()
    if isinstance(schema, Leaf):
        return schema.ty.validate(value)
    if isinstance(schema, Node):
        return (isinstance(value, tuple) and len(value) == 2
                and validate_tuple(schema.left, value[0])
                and validate_tuple(schema.right, value[1]))
    raise ValueError(f"cannot validate tuples of non-concrete schema {schema}")


def tuple_get(value: Any, path: Path) -> Any:
    """Follow a path inside a concrete nested-pair tuple."""
    current = value
    for step in path:
        current = current[0] if step == "L" else current[1]
    return current


def tuple_of(schema: Schema, flat: Sequence[Any]) -> Any:
    """Build a nested tuple of ``schema`` from a flat attribute list.

    The inverse of :func:`tuple_flatten`; handy for loading test data.
    """
    values = list(flat)
    result, rest = _build_tuple(schema, values)
    if rest:
        raise ValueError(f"too many values for schema {schema}: {flat!r}")
    return result


def _build_tuple(schema: Schema, values: List[Any]) -> Tuple[Any, List[Any]]:
    if isinstance(schema, Empty):
        return (), values
    if isinstance(schema, Leaf):
        if not values:
            raise ValueError(f"not enough values for schema {schema}")
        head, rest = values[0], values[1:]
        if not schema.ty.validate(head):
            raise ValueError(f"value {head!r} is not of type {schema.ty}")
        return head, rest
    if isinstance(schema, Node):
        left_val, rest = _build_tuple(schema.left, values)
        right_val, rest = _build_tuple(schema.right, rest)
        return (left_val, right_val), rest
    raise ValueError(f"cannot build tuples of non-concrete schema {schema}")


def tuple_flatten(schema: Schema, value: Any) -> List[Any]:
    """Flatten a nested tuple into its left-to-right leaf values."""
    out: List[Any] = []
    _flatten_tuple(schema, value, out)
    return out


def _flatten_tuple(schema: Schema, value: Any, out: List[Any]) -> None:
    if isinstance(schema, Empty):
        return
    if isinstance(schema, Leaf):
        out.append(value)
        return
    if isinstance(schema, Node):
        _flatten_tuple(schema.left, value[0], out)
        _flatten_tuple(schema.right, value[1], out)
        return
    raise ValueError(f"cannot flatten tuples of non-concrete schema {schema}")


#: Default finite domains used when enumerating all tuples of a schema
#: (oracle evaluation on small instances).
DEFAULT_DOMAINS: Dict[str, Tuple[Any, ...]] = {
    "int": (0, 1, 2),
    "bool": (False, True),
    "string": ("a", "b"),
    "float": (0.0, 0.5, 1.0),
}


def enumerate_tuples(schema: Schema,
                     domains: Dict[str, Tuple[Any, ...]] | None = None
                     ) -> Iterator[Any]:
    """Yield every tuple of ``schema`` over finite per-type domains.

    Used by the concrete evaluator to interpret the paper's Σ over
    ``Tuple σ`` when projecting, and by the random-testing falsifier.
    """
    domains = domains or DEFAULT_DOMAINS
    if isinstance(schema, Empty):
        yield ()
        return
    if isinstance(schema, Leaf):
        if schema.ty.name not in domains:
            raise ValueError(f"no enumeration domain for type {schema.ty}")
        yield from domains[schema.ty.name]
        return
    if isinstance(schema, Node):
        left_vals = list(enumerate_tuples(schema.left, domains))
        right_vals = list(enumerate_tuples(schema.right, domains))
        for lv, rv in itertools.product(left_vals, right_vals):
            yield (lv, rv)
        return
    raise ValueError(f"cannot enumerate tuples of non-concrete schema {schema}")
