"""Batch verification service: dedup, cache, and fan out across workers.

The ROADMAP's north star is a system that "serves heavy traffic"; a query
optimizer or a CI pipeline does not ask one equivalence question, it asks
thousands — many of them duplicates.  :class:`VerificationService` accepts
a batch of (schema, Q1, Q2) jobs and answers them by:

1. **deduplicating** syntactically identical questions (the order of the
   pair does not matter — equivalence is symmetric),
2. consulting the **proof cache** via the syntactic alias index (a warm
   batch answers without normalizing anything),
3. fanning the remaining unique questions out across a
   ``multiprocessing`` worker pool, each worker running its own
   :class:`~repro.solver.pipeline.Pipeline`,
4. folding every worker verdict back into the shared cache (and, when
   configured, persisting it to disk for the next run).

Everything that crosses the process boundary is plain data: queries are
frozen dataclasses, verdicts are serialization-safe (live counterexamples
are stripped).  Rules are dispatched *by name* — their instantiators are
closures, which do not pickle — and re-resolved inside the worker.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core import ast
from ..core.equivalence import Hypotheses, NO_HYPOTHESES
from ..core.schema import Schema
from .cache import query_side_digest, syntactic_alias
from .pipeline import Pipeline, PipelineConfig
from .verdict import Status, Verdict


@dataclass(frozen=True)
class Job:
    """One equivalence question in a batch."""

    job_id: str
    q1: ast.Query
    q2: ast.Query
    ctx_schema: Optional[Schema] = None
    hyps: Hypotheses = NO_HYPOTHESES

    def alias(self) -> str:
        return syntactic_alias(self.q1, self.q2, self.ctx_schema, self.hyps)


@dataclass
class BatchReport:
    """Per-job verdicts plus the batch-level accounting."""

    verdicts: Dict[str, Verdict]
    total_jobs: int
    unique_questions: int
    cache_hits: int
    computed: int
    workers: int
    wall_seconds: float

    @property
    def duplicate_jobs(self) -> int:
        return self.total_jobs - self.unique_questions

    def count(self, status: Status) -> int:
        return sum(1 for v in self.verdicts.values() if v.status is status)

    def summary(self) -> str:
        return (f"{self.total_jobs} job(s): "
                f"{self.count(Status.PROVED)} proved, "
                f"{self.count(Status.DISPROVED)} disproved, "
                f"{self.count(Status.UNKNOWN)} unknown "
                f"[{self.unique_questions} unique, "
                f"{self.cache_hits} cache hit(s), "
                f"{self.computed} computed, "
                f"{self.workers} worker(s), "
                f"{self.wall_seconds * 1e3:.1f} ms]")


# ---------------------------------------------------------------------------
# Worker-side plumbing (module-level so it pickles under fork *and* spawn)
# ---------------------------------------------------------------------------

_WORKER_PIPELINE: Optional[Pipeline] = None


def _init_worker(config: PipelineConfig) -> None:
    global _WORKER_PIPELINE
    _WORKER_PIPELINE = Pipeline(config)


def _run_pair(payload) -> Tuple[str, Verdict]:
    alias, q1, q2, ctx_schema, hyps = payload
    verdict = _WORKER_PIPELINE.check(q1, q2, ctx_schema, hyps)
    return alias, verdict.strip_live()


def _run_rule(payload) -> Tuple[str, Verdict]:
    alias, rule_name = payload
    from ..rules.registry import get_rule  # deferred: rules import solver
    rule = get_rule(rule_name)
    verdict = _WORKER_PIPELINE.check_rule(rule)
    return alias, verdict.strip_live()


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------

class VerificationService:
    """A batch front end over a shared :class:`Pipeline`.

    The worker pool is created lazily on the first parallel batch and
    *kept* across batches (workers amortize interpreter start-up and warm
    their own pipeline caches); :meth:`close` — or using the service as a
    context manager — tears it down.  :class:`repro.session.Session` owns
    one of these and closes it on exit.
    """

    def __init__(self, pipeline: Optional[Pipeline] = None,
                 config: Optional[PipelineConfig] = None,
                 cache_path: Optional[str] = None,
                 workers: Optional[int] = None) -> None:
        self.pipeline = pipeline if pipeline is not None \
            else Pipeline(config, cache_path=cache_path)
        self.default_workers = workers
        self._pool = None
        self._pool_size = 0

    @property
    def cache(self):
        return self.pipeline.cache

    def save_cache(self, path: Optional[str] = None) -> str:
        return self.cache.save(path)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Tear down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_size = 0

    def __enter__(self) -> "VerificationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- batches of query pairs --------------------------------------------

    def check_batch(self, jobs: Sequence[Job],
                    workers: Optional[int] = None) -> BatchReport:
        """Answer every job, deduplicating and parallelizing."""
        started = time.perf_counter()
        groups: Dict[str, List[Job]] = {}
        order: List[str] = []
        for job in jobs:
            alias = job.alias()
            if alias not in groups:
                groups[alias] = []
                order.append(alias)
            groups[alias].append(job)

        answers: Dict[str, Verdict] = {}
        pending: List[Job] = []
        cache_hits = 0
        for alias in order:
            hit = self.cache.get_by_alias(alias)
            if hit is not None:
                answers[alias] = hit
                cache_hits += 1
            else:
                pending.append(groups[alias][0])

        worker_count = self._resolve_workers(workers, len(pending))
        if pending:
            if worker_count > 1:
                payloads = [(job.alias(), job.q1, job.q2, job.ctx_schema,
                             job.hyps) for job in pending]
                for alias, verdict in self._map(
                        _run_pair, payloads, worker_count):
                    answers[alias] = verdict
                    self._store(alias, verdict)
            else:
                for job in pending:
                    answers[job.alias()] = self.pipeline.check(
                        job.q1, job.q2, job.ctx_schema, job.hyps,
                        alias=job.alias())

        # Per-job orientation: a group may contain both (Q1, Q2) and its
        # mirror (Q2, Q1); counterexample side labels follow each job.
        verdicts = {
            job.job_id: answers[alias].oriented_for(
                repr_digest=query_side_digest(job.q1))
            for alias, group in groups.items() for job in group}
        return BatchReport(
            verdicts=verdicts, total_jobs=len(jobs),
            unique_questions=len(groups), cache_hits=cache_hits,
            computed=len(pending), workers=worker_count if pending else 0,
            wall_seconds=time.perf_counter() - started)

    # -- batches of library rules ------------------------------------------

    def check_rules(self, rules: Iterable,
                    workers: Optional[int] = None) -> BatchReport:
        """Verify a rule corpus; rules are shipped to workers by name."""
        started = time.perf_counter()
        rules = list(rules)
        answers: Dict[str, Verdict] = {}
        pending = []
        cache_hits = 0
        aliases: Dict[str, str] = {}
        for rule in rules:
            alias = syntactic_alias(rule.lhs, rule.rhs, rule.ctx_schema,
                                    rule.hypotheses)
            aliases[rule.name] = alias
            hit = self.cache.get_by_alias(alias)
            if hit is not None:
                answers[alias] = hit
                cache_hits += 1
            elif alias not in {a for a, _ in pending}:
                pending.append((alias, rule))

        worker_count = self._resolve_workers(workers, len(pending))
        if pending:
            if worker_count > 1:
                payloads = [(alias, rule.name) for alias, rule in pending]
                for alias, verdict in self._map(
                        _run_rule, payloads, worker_count):
                    answers[alias] = verdict
                    self._store(alias, verdict)
            else:
                for alias, rule in pending:
                    answers[alias] = self.pipeline.check(
                        rule.lhs, rule.rhs, rule.ctx_schema,
                        rule.hypotheses, factory=rule.instantiate,
                        alias=alias)

        verdicts = {rule.name: answers[aliases[rule.name]] for rule in rules}
        return BatchReport(
            verdicts=verdicts, total_jobs=len(rules),
            unique_questions=len({a for a in aliases.values()}),
            cache_hits=cache_hits, computed=len(pending),
            workers=worker_count if pending else 0,
            wall_seconds=time.perf_counter() - started)

    # -- pool plumbing ------------------------------------------------------

    def _store(self, alias: str, verdict: Verdict) -> None:
        """Fold a worker verdict into the cache (same policy as Pipeline)."""
        if verdict.status is not Status.UNKNOWN \
                or self.pipeline.config.cache_unknown:
            self.cache.put(verdict.fingerprint, verdict, alias=alias)

    def _resolve_workers(self, requested: Optional[int],
                         pending: int) -> int:
        if requested is None:
            requested = self.default_workers
        if requested is None:
            requested = min(4, os.cpu_count() or 1)
        return max(1, min(requested, max(pending, 1)))

    def _map(self, fn, payloads, worker_count):
        pool = self._ensure_pool(worker_count)
        if pool is None:
            # No fork/spawn available (restricted sandbox): degrade to
            # in-process execution on the service's own pipeline.  Only
            # pool *creation* is guarded — a job-level error must
            # propagate as itself, not trigger a bogus inline re-run.
            for payload in payloads:
                yield _run_inline(self.pipeline, fn, payload)
            return
        yield from pool.imap_unordered(fn, payloads)

    def _ensure_pool(self, worker_count: int):
        """The persistent pool, (re)built only when it must grow.

        A pool larger than this batch needs is reused as-is; returns None
        when the platform cannot create worker processes at all.
        """
        if self._pool is not None and self._pool_size < worker_count:
            self.close()
        if self._pool is None:
            ctx = self._pool_context()
            try:
                self._pool = ctx.Pool(processes=worker_count,
                                      initializer=_init_worker,
                                      initargs=(self.pipeline.config,))
            except (OSError, ValueError):
                return None
            self._pool_size = worker_count
        return self._pool

    @staticmethod
    def _pool_context():
        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            return multiprocessing.get_context("spawn")


def _run_inline(pipeline: Pipeline, fn, payload) -> Tuple[str, Verdict]:
    global _WORKER_PIPELINE
    previous = _WORKER_PIPELINE
    _WORKER_PIPELINE = pipeline
    try:
        return fn(payload)
    finally:
        _WORKER_PIPELINE = previous


__all__ = ["BatchReport", "Job", "VerificationService"]
