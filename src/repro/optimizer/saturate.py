"""Equality-saturation scheduler over the plan e-graph.

Applies the certified rewrite suite of :mod:`repro.optimizer.rewriter` at
*every e-class simultaneously* instead of one term at a time: each rule is
re-expressed over e-nodes (children are e-class ids, so one application
covers every plan sharing that subtree), matches are enumerated from a
per-iteration index keyed on the root constructor (a rule matching
``Where`` never scans ``Product`` nodes), and the e-graph is rebuilt once
per iteration in egg's deferred style.

Saturation runs until a fixpoint (no new nodes, no new unions — the rule
set is then *saturated* and the e-graph provably contains every plan the
rules can reach), or until the iteration / node budgets cut it off.  The
budgets are the search-space-expansion discipline the CHC literature uses
to keep saturation tractable (PAPERS.md: dependence-disjoint expansions):
an e-node budget bounds memory, an iteration budget bounds rule depth.

Soundness story, unchanged from the BFS path: every union performed here
is an instance of a rule the engine has verified, so any plan extracted
from the root e-class is equivalent to the input — and the planner still
re-certifies the winner end to end through the verification pipeline.

**Parallel matching** (opt-in, ``workers=N``): the match side of the
rules — conjunct flattening, projection-path analysis, pushability — is
a pure function of the predicate, so it fans out across a process pool
in egg's match/apply split.  Workers receive predicates (interned nodes
pickle by construction and re-intern on load) and return flat int
feature vectors; the apply phase stays serial on the parent's e-graph,
so parallel runs are bit-identical to serial ones.  Worth it for large
node budgets where match analysis dominates; the defaults stay serial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import ast
from ..obs.logs import get_logger
from ..obs.metrics import counter, histogram
from ..obs.trace import span
from .egraph import EGraph, ENode, Reason
from .rewriter import (
    flatten_conjuncts,
    predicate_paths,
    rewrite_predicate_paths,
)

_log = get_logger("optimizer.saturate")

#: e-node growth per iteration — the shape of the search-space expansion.
_ENODE_GROWTH = histogram("saturate.enodes_per_iteration.growth",
                          buckets=(0, 1, 2, 5, 10, 25, 50, 100, 250,
                                   500, 1000, 2500, 5000))
_ITERATIONS = counter("saturate.iterations_total")
_SECONDS = histogram("saturate.seconds")

__all__ = ["ERule", "ERULES", "SaturationBudget", "SaturationStats",
           "saturate"]


@dataclass(frozen=True)
class SaturationBudget:
    """Stop conditions for the saturation loop.

    ``max_nodes`` bounds the *total* e-nodes ever admitted (the e-graph
    analogue of the BFS planner's ``max_plans``); ``max_iterations``
    bounds rewrite depth — every iteration applies each rule at every
    class, so ``n`` iterations reach rule chains of length ``n``.
    """

    max_iterations: int = 12
    max_nodes: int = 5000

    def __post_init__(self) -> None:
        if self.max_iterations < 1 or self.max_nodes < 1:
            raise ValueError("saturation budgets must be positive, got "
                             f"{self!r}")


@dataclass
class SaturationStats:
    """What the saturation loop did and why it stopped."""

    iterations: int = 0
    matches: int = 0
    unions: int = 0
    congruences: int = 0
    nodes: int = 0
    classes: int = 0
    saturated: bool = False
    stop_reason: str = ""
    rules_fired: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class ERule:
    """A rewrite over e-nodes: fires on every e-node whose root
    constructor is in ``ops``; ``apply`` performs its adds/unions
    directly on the e-graph (recording provenance) and returns how many
    times it fired."""

    name: str
    ops: Tuple[type, ...]
    apply: Callable[[EGraph, int, ENode], int]


# ---------------------------------------------------------------------------
# Parallel match support: predicate → int feature vector
# ---------------------------------------------------------------------------

def _pred_features(pred: ast.Predicate) -> Tuple[int, int, int]:
    """Match-side analysis of one predicate as a flat int vector:
    ``(has_duplicate_conjuncts, pushable_left, pushable_right)``.

    Must agree exactly with the checks inside :func:`_dedup_conjuncts`
    and :func:`_push_where` — the rules consult a stashed vector as a
    precomputed fast path, so any disagreement would make parallel runs
    diverge from serial ones (the parity test pins this).
    """
    conjuncts = flatten_conjuncts(pred)
    dup = int(len(dict.fromkeys(conjuncts)) != len(conjuncts))
    paths = predicate_paths(pred)
    if paths is None:
        return (dup, 0, 0)
    left = int(all(p[:2] == ("R", "L") or p[:1] == ("L",) for p in paths))
    right = int(all(p[:2] == ("R", "R") or p[:1] == ("L",) for p in paths))
    return (dup, left, right)


def _match_features(preds: Sequence[ast.Predicate]
                    ) -> List[Tuple[int, int, int]]:
    """Worker entry point: feature vectors for a chunk of predicates.

    Runs in a pool process — predicates arrive pickled (re-interning on
    load), the result is a plain list of int triples.
    """
    return [_pred_features(pred) for pred in preds]


def _stash_features(snapshot, pool, workers: int) -> None:
    """Fan match analysis over the pool; stash results on the predicates.

    Only predicates not yet analysed (no ``_hc_mfeat`` stash) are
    shipped, deduplicated by interned identity, and chunked evenly
    across the workers.  The stash survives on the interned node, so
    across iterations (and optimizer calls) each distinct predicate is
    analysed exactly once process-wide.
    """
    todo = list(dict.fromkeys(
        node.label[0] for _cid, node in snapshot
        if node.op is ast.Where
        and "_hc_mfeat" not in node.label[0].__dict__))
    if not todo:
        return
    step = max(1, (len(todo) + workers - 1) // workers)
    chunks = [todo[i:i + step] for i in range(0, len(todo), step)]
    for chunk, feats in zip(chunks, pool.map(_match_features, chunks)):
        for pred, feat in zip(chunk, feats):
            object.__setattr__(pred, "_hc_mfeat", feat)


# ---------------------------------------------------------------------------
# The rewrite suite over e-nodes (same rules as rewriter.TRANSFORMATIONS)
# ---------------------------------------------------------------------------

def _fire(eg: EGraph, cid: int, new_cid: int, rule: str,
          src: ENode) -> int:
    eg.union(cid, new_cid, Reason(rule, src))
    return 1


def _split_where(eg: EGraph, cid: int, node: ENode) -> int:
    """Where(q, b1 AND b2) → Where(Where(q, b1), b2)  [rule sel_split]."""
    pred = node.label[0]
    if not isinstance(pred, ast.PredAnd):
        return 0
    qc = eg.find(node.children[0])
    fired = 0
    for b_inner, b_outer, name in (
            (pred.left, pred.right, "sel_split"),
            (pred.right, pred.left, "sel_split+sel_comm")):
        inner = eg.add(ast.Where, (b_inner,), (qc,),
                       reason=Reason(name, node))
        outer = eg.add(ast.Where, (b_outer,), (inner,),
                       reason=Reason(name, node))
        fired += _fire(eg, cid, outer, name, node)
    return fired


def _merge_where(eg: EGraph, cid: int, node: ENode) -> int:
    """Where(Where(q, b1), b2) → Where(q, b1 AND b2)  [sel_split⁻¹].

    The inner Where is an *e-node of the child class*, so the merge fires
    for every filtered shape the child class is known equal to.

    The merged conjunction is deduplicated at creation (sel_split⁻¹
    composed with sel_conj_dedup, both verified rules): without this the
    split/merge pair regenerates ever-larger ``b ∧ b ∧ …`` predicates
    and the system never saturates — the e-graph analogue of keeping AC
    operators canonical, cf. the kernel's sorted ``NProduct`` factors.
    """
    outer_pred = node.label[0]
    qc = eg.find(node.children[0])
    fired = 0
    for inner in list(eg.nodes_of(qc)):
        if inner.op is not ast.Where:
            continue
        conjuncts = list(dict.fromkeys(
            flatten_conjuncts(inner.label[0])
            + flatten_conjuncts(outer_pred)))
        merged = eg.add(
            ast.Where, (ast.and_(*conjuncts),),
            (eg.find(inner.children[0]),),
            reason=Reason("sel_split⁻¹", node))
        fired += _fire(eg, cid, merged, "sel_split⁻¹", node)
    return fired


def _push_where(eg: EGraph, cid: int, node: ENode) -> int:
    """Selection pushdown through Product / distribution over UnionAll."""
    pred = node.label[0]
    qc = eg.find(node.children[0])
    # The match-side analysis may have been done ahead of time by a pool
    # worker (``workers=N``); the stash is a pure function of the
    # predicate, so using it cannot change which rewrites fire.
    feat = pred.__dict__.get("_hc_mfeat")
    if feat is None:
        feat = _pred_features(pred)
        object.__setattr__(pred, "_hc_mfeat", feat)
    push_left, push_right = bool(feat[1]), bool(feat[2])
    fired = 0
    for child in list(eg.nodes_of(qc)):
        if child.op is ast.Product and (push_left or push_right):
            left, right = (eg.find(child.children[0]),
                           eg.find(child.children[1]))
            if push_left:
                pushed = rewrite_predicate_paths(pred, ("R", "L"), ("R",))
                filtered = eg.add(ast.Where, (pushed,), (left,),
                                  reason=Reason("sel_push_left", node))
                product = eg.add(ast.Product, (), (filtered, right),
                                 reason=Reason("sel_push_left", node))
                fired += _fire(eg, cid, product, "sel_push_left", node)
            if push_right:
                pushed = rewrite_predicate_paths(pred, ("R", "R"), ("R",))
                filtered = eg.add(ast.Where, (pushed,), (right,),
                                  reason=Reason("sel_push_right", node))
                product = eg.add(ast.Product, (), (left, filtered),
                                 reason=Reason("sel_push_right", node))
                fired += _fire(eg, cid, product, "sel_push_right", node)
        elif child.op is ast.UnionAll:
            left, right = (eg.find(child.children[0]),
                           eg.find(child.children[1]))
            fl = eg.add(ast.Where, (pred,), (left,),
                        reason=Reason("sel_union_distr", node))
            fr = eg.add(ast.Where, (pred,), (right,),
                        reason=Reason("sel_union_distr", node))
            union = eg.add(ast.UnionAll, (), (fl, fr),
                           reason=Reason("sel_union_distr", node))
            fired += _fire(eg, cid, union, "sel_union_distr", node)
    return fired


def _dedup_conjuncts(eg: EGraph, cid: int, node: ENode) -> int:
    """σ_{b ∧ b}(q) → σ_b(q)  [conjunct idempotence]."""
    pred = node.label[0]
    feat = pred.__dict__.get("_hc_mfeat")
    if feat is not None and not feat[0]:
        return 0
    conjuncts = flatten_conjuncts(pred)
    unique = list(dict.fromkeys(conjuncts))
    if len(unique) == len(conjuncts):
        return 0
    deduped = eg.add(ast.Where, (ast.and_(*unique),),
                     (eg.find(node.children[0]),),
                     reason=Reason("sel_conj_dedup", node))
    return _fire(eg, cid, deduped, "sel_conj_dedup", node)


def _collapse_distinct(eg: EGraph, cid: int, node: ENode) -> int:
    """DISTINCT DISTINCT q → DISTINCT q  [rule distinct_idem].

    A union-only rule: the child class already denotes ``DISTINCT q``
    (it contains a Distinct e-node), and ``DISTINCT`` is idempotent, so
    the outer class *is* the child class.  Provenance lands on the
    surviving inner node.
    """
    qc = eg.find(node.children[0])
    if eg.find(cid) == qc:
        return 0
    for inner in eg.nodes_of(qc):
        if inner.op is ast.Distinct:
            eg.reasons.setdefault(inner, Reason("distinct_idem", node))
            eg.union(cid, qc, Reason("distinct_idem", node))
            return 1
    return 0


#: The e-rule suite — one entry per transformation family in
#: ``rewriter.TRANSFORMATIONS``, indexed by root constructor.  Dedup
#: runs first so a deduplicated filter is attributed to
#: ``sel_conj_dedup`` rather than adopted as an anonymous split piece.
ERULES: Tuple[ERule, ...] = (
    ERule("sel_conj_dedup", (ast.Where,), _dedup_conjuncts),
    ERule("sel_split", (ast.Where,), _split_where),
    ERule("sel_split⁻¹", (ast.Where,), _merge_where),
    ERule("sel_push", (ast.Where,), _push_where),
    ERule("distinct_idem", (ast.Distinct,), _collapse_distinct),
)


def _rule_index(rules: Tuple[ERule, ...]) -> Dict[type, List[ERule]]:
    """Root-constructor match index: op → the rules that can fire there."""
    index: Dict[type, List[ERule]] = {}
    for rule in rules:
        for op in rule.ops:
            index.setdefault(op, []).append(rule)
    return index


def saturate(eg: EGraph, rules: Tuple[ERule, ...] = ERULES,
             budget: Optional[SaturationBudget] = None, *,
             workers: Optional[int] = None) -> SaturationStats:
    """Run the rule suite to fixpoint or budget exhaustion.

    Each iteration snapshots the current ``(class, e-node)`` population,
    fires every matching rule on it (writes go straight into the
    e-graph), then rebuilds congruence once.  The loop stops when an
    iteration changes nothing (``saturated=True``), when the node budget
    is spent, or when the iteration budget runs out.

    ``workers=N`` (N > 1) fans the match-side predicate analysis of each
    snapshot across a process pool before the serial apply phase; see
    the module docstring.  Results are identical to the serial run.
    """
    budget = budget if budget is not None else SaturationBudget()
    index = _rule_index(rules)
    stats = SaturationStats()
    pool = None
    if workers is not None and workers > 1:
        import concurrent.futures
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
    try:
        return _saturate_loop(eg, index, budget, stats, pool, workers)
    finally:
        if pool is not None:
            pool.shutdown()


def _saturate_loop(eg: EGraph, index, budget: SaturationBudget,
                   stats: SaturationStats, pool,
                   workers: Optional[int]) -> SaturationStats:
    with span("optimizer.saturate") as root:
        for _ in range(budget.max_iterations):
            with span("optimizer.saturate.iteration",
                      iteration=stats.iterations) as it_span:
                snapshot = [(cid, node) for cid, nodes in eg.classes()
                            for node in list(nodes)]
                if pool is not None:
                    _stash_features(snapshot, pool, workers)
                nodes_before, unions_before = eg.nodes_added, eg.unions
                out_of_nodes = False
                for cid, node in snapshot:
                    if eg.nodes_added >= budget.max_nodes:
                        out_of_nodes = True
                        break
                    for rule in index.get(node.op, ()):
                        fired = rule.apply(eg, eg.find(cid), node)
                        if fired:
                            stats.matches += fired
                            stats.rules_fired[rule.name] = \
                                stats.rules_fired.get(rule.name, 0) + fired
                stats.congruences += eg.rebuild()
                stats.iterations += 1
                growth = eg.nodes_added - nodes_before
                it_span.attrs["enode_growth"] = growth
                it_span.attrs["unions"] = eg.unions - unions_before
                _ENODE_GROWTH.observe(growth)
                _ITERATIONS.inc()
            if out_of_nodes or eg.nodes_added >= budget.max_nodes:
                stats.stop_reason = (f"node budget exhausted "
                                     f"({budget.max_nodes} e-nodes)")
                break
            if eg.nodes_added == nodes_before \
                    and eg.unions == unions_before:
                stats.saturated = True
                stats.stop_reason = "saturated (fixpoint)"
                break
        else:
            stats.stop_reason = (f"iteration budget exhausted "
                                 f"({budget.max_iterations} iterations)")
        stats.unions = eg.unions
        stats.nodes = eg.num_nodes
        stats.classes = eg.num_classes
        root.attrs["iterations"] = stats.iterations
        root.attrs["stop_reason"] = stats.stop_reason
    _SECONDS.observe(root.duration)
    # Flushed once per run rather than per fire: the hot loop stays
    # lock-free, the registry still sees exact per-rule totals.
    for name, fired in stats.rules_fired.items():
        counter(f"saturate.rules_fired.{name}").inc(fired)
    _log.debug("saturation: %s after %d iteration(s), %d node(s)",
               stats.stop_reason, stats.iterations, stats.nodes)
    return stats
