"""Regenerate the paper's Figure 8 table and headline results, standalone.

The benchmark suite (``pytest benchmarks/ --benchmark-only``) produces the
full set of figure artifacts with timing statistics; this script is the
no-dependencies entry point that prints the main results table directly.

Run:  python examples/reproduce_figures.py
"""

from repro.rules import (
    CATEGORY_ORDER,
    PAPER_FIGURE_8,
    all_buggy_rules,
    all_extended_rules,
    rules_by_category,
)

LABELS = {
    "basic": "Basic", "aggregation": "Aggregation", "subquery": "Subquery",
    "magic": "Magic Set", "index": "Index",
    "conjunctive": "Conjunctive Query",
}


def main() -> None:
    print("Figure 8 — Rewrite rules proved (paper vs. this reproduction)")
    print("=" * 72)
    print(f"{'Category':<20}{'rules':>7}{'paper':>7}{'avg steps':>11}"
          f"{'paper LOC':>11}{'status':>10}")
    print("-" * 72)
    total = 0
    for category in CATEGORY_ORDER:
        rules = rules_by_category()[category]
        proofs = [r.prove() for r in rules]
        paper_count, paper_loc = PAPER_FIGURE_8[category]
        avg = sum(p.engine_steps for p in proofs) / len(proofs)
        ok = all(p.verified for p in proofs)
        print(f"{LABELS[category]:<20}{len(rules):>7}{paper_count:>7}"
              f"{avg:>11.1f}{paper_loc:>11}"
              f"{'VERIFIED' if ok else 'FAILED':>10}")
        total += len(rules)
        assert ok and len(rules) == paper_count
    print("-" * 72)
    print(f"{'Total':<20}{total:>7}{23:>7}")
    print()

    print("Unsound optimizer rewrites (Sec. 1 motivation):")
    for rule in all_buggy_rules():
        proof = rule.prove()
        cex = rule.validate(trials=80)
        print(f"  {rule.name:<28} prover: "
              f"{'REJECTED' if not proof.verified else 'accepted?!':<10} "
              f"falsifier: {'counterexample found' if cex else 'none'}")
        assert not proof.verified and cex is not None
    print()

    extended = all_extended_rules()
    verified = sum(r.prove().verified for r in extended)
    print(f"Extended corpus beyond the paper: {verified}/{len(extended)} "
          f"verified")
    assert verified == len(extended)
    print()
    print("All reproduction targets hold.")


if __name__ == "__main__":
    main()
