"""A certified query optimizer in action.

The paper's motivation (Sec. 1): optimizers apply rewrite rules to find
cheaper plans, and unsound rules ship wrong answers.  This demo runs the
library's equality-saturation planner, whose transformations are
instances of the verified rule set, on a star-join workload:

1. parse a named SQL query,
2. saturate the rewrite space in an e-graph and extract by cost
   (then run the Volcano-style BFS fallback for comparison),
3. *certify* the chosen plan against the original with the prover,
4. execute both plans and compare results and operator cardinalities.

Run:  python examples/optimizer_demo.py
"""

from repro import Catalog, Database, INT, compile_sql
from repro.engine import run_query
from repro.optimizer import TableStats, explain, optimize, plan_cost
from repro.sql.pretty import query_to_str

QUERY = """
SELECT e.eid, e.sal
FROM Emp e, Dept d
WHERE e.did = d.did AND e.age < 30 AND d.budget > 100000
"""


def main() -> None:
    catalog = Catalog()
    catalog.add_table("Emp", [("eid", INT), ("did", INT), ("sal", INT),
                              ("age", INT)])
    catalog.add_table("Dept", [("did", INT), ("budget", INT)])

    db = Database()
    db.create_table(
        "Emp", catalog.schema_of("Emp"),
        [[i, i % 6, 1000 + 17 * i, 21 + (i % 25)] for i in range(60)])
    db.create_table(
        "Dept", catalog.schema_of("Dept"),
        [[d, 60000 + 25000 * d] for d in range(6)])

    resolved = compile_sql(QUERY, catalog)
    stats = TableStats.from_database(db)

    print("Certified optimization demo")
    print("=" * 64)
    print("query:", " ".join(QUERY.split()))
    print()
    print("initial plan:")
    print(explain(resolved.query, stats))
    print(f"  total estimated cost: {plan_cost(resolved.query, stats):.1f}")
    print()

    result = optimize(resolved.query, stats, max_plans=400)

    print("optimized plan (equality saturation):")
    print(explain(result.best_plan, stats))
    print(f"  estimated cost: {result.best_cost:.1f} "
          f"(was {result.original_cost:.1f})")
    print(f"  rewrite chain : {' → '.join(result.applied_rules)}")
    print(f"  plans explored: {result.plans_explored} "
          f"(in {result.saturation.nodes} e-nodes"
          f"{', saturated' if result.saturated else ''})")
    print(f"  certificate   : "
          f"{'prover VERIFIED equivalence' if result.certified else 'FAILED'}")
    assert result.certified

    bfs = optimize(resolved.query, stats, max_plans=400, strategy="bfs")
    print(f"  BFS fallback  : cost {bfs.best_cost:.1f} after enumerating "
          f"{bfs.plans_explored} plans (certified: {bfs.certified})")
    assert bfs.certified and result.best_cost <= bfs.best_cost

    interp = db.interpretation()
    before = run_query(resolved.query, interp)
    after = run_query(result.best_plan, interp)
    print(f"  both plans return {len(before)} rows — identical:",
          before == after)
    assert before == after


if __name__ == "__main__":
    main()
