"""Cross-validation of the two executable semantics.

Figure 7 is implemented twice: the engine evaluates the syntax tree, and
:mod:`repro.core.interp` evaluates its *denotation* literally (Σ as
enumeration).  These tests assert they agree on a corpus of query shapes
and on hypothesis-generated random instances — and that normalization
preserves the interpreted value of the denotation, validating every
rewrite the normalizer performs.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ast
from repro.core.denote import denote_closed
from repro.core.interp import eval_denotation, eval_uterm
from repro.core.normalize import normalize, nsum_to_uterm
from repro.core.schema import INT, Leaf, Node
from repro.engine.database import Interpretation
from repro.engine.eval import run_query
from repro.engine.random_instances import random_relation
from repro.semiring import BOOL, KRelation, NAT

#: Small domains keep the Σ enumerations fast.
DOMAINS = {"int": (0, 1), "bool": (False, True), "string": ("a",)}
SCHEMA = Node(Leaf(INT), Leaf(INT))

R = ast.Table("R", SCHEMA)
S = ast.Table("S", SCHEMA)

#: Query corpus covering every construct with concrete schemas.
QUERIES = [
    R,
    ast.Select(ast.path(ast.RIGHT, ast.LEFT), R),
    ast.Select(ast.Duplicate(ast.path(ast.RIGHT, ast.RIGHT),
                             ast.path(ast.RIGHT, ast.LEFT)), R),
    ast.Product(R, S),
    ast.Where(R, ast.PredEq(ast.P2E(ast.path(ast.RIGHT, ast.LEFT), INT),
                            ast.Const(1, INT))),
    ast.Where(R, ast.PredNot(ast.PredEq(
        ast.P2E(ast.path(ast.RIGHT, ast.LEFT), INT),
        ast.P2E(ast.path(ast.RIGHT, ast.RIGHT), INT)))),
    ast.UnionAll(R, S),
    ast.Except(R, S),
    ast.Distinct(ast.Select(ast.path(ast.RIGHT, ast.LEFT), R)),
    ast.Where(R, ast.Exists(ast.Where(S, ast.PredEq(
        ast.P2E(ast.path(ast.RIGHT, ast.LEFT), INT),
        ast.P2E(ast.path(ast.LEFT, ast.RIGHT, ast.LEFT), INT))))),
    ast.Where(R, ast.PredOr(
        ast.PredEq(ast.P2E(ast.path(ast.RIGHT, ast.LEFT), INT),
                   ast.Const(0, INT)),
        ast.PredEq(ast.P2E(ast.path(ast.RIGHT, ast.RIGHT), INT),
                   ast.Const(1, INT)))),
    ast.Select(ast.E2P(ast.Agg(
        "SUM", ast.Select(ast.path(ast.RIGHT, ast.LEFT), R), INT), INT), S),
]


def _random_interp(seed: int, semiring=NAT) -> Interpretation:
    rng = random.Random(seed)
    interp = Interpretation()
    for name in ("R", "S"):
        interp.relations[name] = random_relation(
            rng, SCHEMA, semiring, max_rows=3, max_multiplicity=2,
            domains=DOMAINS)
    return interp


def _restricted(rel: KRelation) -> KRelation:
    # enumerate_tuples only sees the domain; relations are generated over
    # it already, so no restriction is needed — kept as identity guard.
    return rel


@pytest.mark.parametrize("qi", range(len(QUERIES)))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_engine_agrees_with_denotation_interpreter(qi, seed):
    query = QUERIES[qi]
    interp = _random_interp(seed)
    by_engine = run_query(query, interp, NAT)
    denotation = denote_closed(query)
    # Aggregate outputs can escape the enumeration domain; probe the
    # engine's support as well so both sides cover the same tuples.
    by_interp = eval_denotation(denotation, interp, NAT, DOMAINS,
                                extra_tuples=sorted(by_engine.support(),
                                                    key=repr))
    assert by_engine == by_interp


@pytest.mark.parametrize("qi", range(len(QUERIES)))
def test_normalization_preserves_interpretation(qi):
    query = QUERIES[qi]
    interp = _random_interp(17 + qi)
    denotation = denote_closed(query)
    normalized = nsum_to_uterm(normalize(denotation.body))
    from repro.core.schema import enumerate_tuples
    for value in enumerate_tuples(denotation.schema, DOMAINS):
        env = {denotation.g: (), denotation.t: value}
        before = eval_uterm(denotation.body, env, interp, NAT, DOMAINS)
        after = eval_uterm(normalized, env, interp, NAT, DOMAINS)
        assert before == after, f"query {qi}, tuple {value}"


@pytest.mark.parametrize("qi", range(len(QUERIES)))
def test_set_semantics_agreement(qi):
    query = QUERIES[qi]
    if qi == len(QUERIES) - 1:
        pytest.skip("aggregates fold counts; BOOL collapses them")
    interp = _random_interp(23, BOOL)
    by_engine = run_query(query, interp, BOOL)
    by_interp = eval_denotation(denote_closed(query), interp, BOOL, DOMAINS)
    assert by_engine == by_interp


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10**6), st.integers(0, len(QUERIES) - 2))
def test_agreement_property(seed, qi):
    """Hypothesis-driven: engine ≡ denotation interpreter on random data."""
    interp = _random_interp(seed)
    query = QUERIES[qi]
    assert run_query(query, interp, NAT) == \
        eval_denotation(denote_closed(query), interp, NAT, DOMAINS)
