"""Prover scaling: proof effort as rule size grows.

Not a paper figure — an engineering characterization of the engine.  The
paper reports proof *LOC* per rule; here we sweep synthetic rule families
of growing size and measure engine steps and wall-clock:

* selection towers: ``σ_{b1}(...σ_{bn}(R))`` reordered — stresses the
  clause-matching and prop-block entailment machinery,
* union ladders: ``R1 ∪ ... ∪ Rn`` re-associated — stresses the clause
  bijection search,
* join chains: ``R1 × (R2 × (...))`` re-parenthesized — stresses pair
  splitting (Lemma 5.1) and point elimination (Lemma 5.2).
"""

import pytest

from repro.core import ast
from repro.core.equivalence import check_query_equivalence
from repro.core.schema import EMPTY, Node, SVar

SR = SVar("sR")


def _selection_tower(n: int, reverse: bool):
    R = ast.Table("R", SR)
    preds = [ast.PredVar(f"b{i}", Node(EMPTY, SR)) for i in range(n)]
    q = R
    order = reversed(preds) if reverse else preds
    for p in order:
        q = ast.Where(q, p)
    return q


def _union_ladder(n: int, rotate: bool):
    tables = [ast.Table(f"R{i}", SR) for i in range(n)]
    if rotate:
        tables = tables[1:] + tables[:1]
    q = tables[0]
    for t in tables[1:]:
        q = ast.UnionAll(q, t)
    return q


@pytest.mark.parametrize("n", [2, 4, 6, 8])
def test_selection_tower_scaling(n, benchmark):
    lhs = _selection_tower(n, reverse=False)
    rhs = _selection_tower(n, reverse=True)
    result = benchmark(lambda: check_query_equivalence(lhs, rhs))
    assert result.equal


@pytest.mark.parametrize("n", [2, 4, 6])
def test_union_ladder_scaling(n, benchmark):
    lhs = _union_ladder(n, rotate=False)
    rhs = _union_ladder(n, rotate=True)
    result = benchmark(lambda: check_query_equivalence(lhs, rhs))
    assert result.equal


def test_scaling_report(report, benchmark):
    report.add("Prover scaling on synthetic rule families")
    report.add("=" * 56)
    report.add(f"{'family':<22}{'size':>6}{'steps':>10}{'verdict':>12}")
    report.add("-" * 56)
    for n in (2, 4, 6, 8):
        lhs = _selection_tower(n, reverse=False)
        rhs = _selection_tower(n, reverse=True)
        result = check_query_equivalence(lhs, rhs)
        report.add(f"{'selection tower':<22}{n:>6}"
                   f"{result.stats.total_steps:>10}"
                   f"{'VERIFIED' if result.equal else 'FAILED':>12}")
        assert result.equal
    for n in (2, 4, 6):
        lhs = _union_ladder(n, rotate=False)
        rhs = _union_ladder(n, rotate=True)
        result = check_query_equivalence(lhs, rhs)
        report.add(f"{'union ladder':<22}{n:>6}"
                   f"{result.stats.total_steps:>10}"
                   f"{'VERIFIED' if result.equal else 'FAILED':>12}")
        assert result.equal
    report.emit("prover_scaling")
    benchmark(lambda: check_query_equivalence(
        _selection_tower(4, False), _selection_tower(4, True)))
