"""Certified application of generic rules to concrete queries."""

import pytest

from repro.core import ast
from repro.core.schema import INT
from repro.engine import Database, run_query
from repro.rules import get_rule
from repro.rules.apply import apply_rule_at_root, apply_rule_everywhere
from repro.semiring import NAT
from repro.sql import Catalog, compile_sql


@pytest.fixture
def setup():
    cat = Catalog()
    cat.add_table("R", [("a", INT), ("b", INT)])
    cat.add_table("S", [("a", INT), ("b", INT)])
    db = Database(NAT)
    db.create_table("R", cat.schema_of("R"), [[1, 10], [2, 20], [2, 21]])
    db.create_table("S", cat.schema_of("S"), [[1, 10], [3, 30]])
    return cat, db


class TestRootApplication:
    def test_figure1_rule_applies(self, setup):
        cat, db = setup
        concrete = compile_sql(
            "SELECT * FROM (SELECT * FROM R UNION ALL SELECT * FROM S) "
            "AS u WHERE u.a = 1", cat)
        rule = get_rule("sel_union_distr")
        app = apply_rule_at_root(rule, concrete.query)
        assert app is not None
        assert isinstance(app.rewritten, ast.UnionAll)
        interp = db.interpretation()
        assert run_query(app.rewritten, interp) == \
            run_query(concrete.query, interp)

    def test_bindings_recorded(self, setup):
        cat, _ = setup
        concrete = compile_sql(
            "SELECT * FROM (SELECT * FROM R UNION ALL SELECT * FROM S) "
            "AS u WHERE u.a = 1", cat)
        rule = get_rule("sel_union_distr")
        app = apply_rule_at_root(rule, concrete.query)
        assert set(app.bindings.tables) == {"R", "S"}
        assert "b" in app.bindings.predicates

    def test_no_match_returns_none(self, setup):
        cat, _ = setup
        concrete = compile_sql("SELECT a FROM R", cat)
        rule = get_rule("sel_union_distr")
        assert apply_rule_at_root(rule, concrete.query) is None

    def test_distinct_idem_applies(self, setup):
        cat, db = setup
        q = ast.Distinct(ast.Distinct(
            compile_sql("SELECT a FROM R", cat).query))
        rule = get_rule("distinct_idem")
        app = apply_rule_at_root(rule, q)
        assert app is not None
        interp = db.interpretation()
        assert run_query(app.rewritten, interp) == run_query(q, interp)

    def test_consistent_binding_enforced(self, setup):
        cat, _ = setup
        # union_comm's pattern R ∪ S binds two INDEPENDENT queries; the
        # self-union still matches (R and S bind to the same subquery).
        q = compile_sql("SELECT a FROM R UNION ALL SELECT a FROM R", cat)
        rule = get_rule("union_comm")
        app = apply_rule_at_root(rule, q.query)
        assert app is not None
        assert app.bindings.tables["R"] == app.bindings.tables["S"]


class TestCertification:
    def test_certification_rejects_correlated_binding(self, setup):
        cat, _ = setup
        # A subquery correlated with an outer scope cannot soundly bind a
        # relation metavariable.  Build σ_b(X ∪ X) where X is correlated:
        # inside an EXISTS whose context the metavariable pattern ignores.
        inner_corr = compile_sql(
            "SELECT b FROM R WHERE EXISTS "
            "(SELECT * FROM S WHERE S.a = R.a)", cat)
        # The EXISTS body mentions the outer row, but as a *top-level*
        # query this is closed — so the rule application is actually fine
        # and must certify.  (True correlation only arises inside an
        # enclosing query, where apply() is never offered the fragment.)
        q = ast.Where(
            ast.UnionAll(inner_corr.query, inner_corr.query),
            ast.PredFunc("lt", (
                ast.P2E(ast.RIGHT, INT), ast.Const(100, INT))))
        rule = get_rule("sel_union_distr")
        app = apply_rule_at_root(rule, q)
        assert app is not None    # certified sound

    def test_uncertified_mode(self, setup):
        cat, _ = setup
        q = compile_sql("SELECT a FROM R UNION ALL SELECT a FROM S", cat)
        rule = get_rule("union_comm")
        app = apply_rule_at_root(rule, q.query, certify=False)
        assert app is not None


class TestEverywhereApplication:
    def test_nested_position(self, setup):
        cat, db = setup
        q = ast.Distinct(compile_sql(
            "SELECT * FROM (SELECT * FROM R UNION ALL SELECT * FROM S) "
            "AS u WHERE u.a = 1", cat).query)
        rule = get_rule("sel_union_distr")
        apps = apply_rule_everywhere(rule, q)
        assert len(apps) == 1
        rewritten = apps[0].rewritten
        assert isinstance(rewritten, ast.Distinct)
        interp = db.interpretation()
        assert run_query(rewritten, interp) == run_query(q, interp)

    def test_multiple_positions(self, setup):
        cat, _ = setup
        u = compile_sql("SELECT a FROM R UNION ALL SELECT a FROM S", cat)
        q = ast.Distinct(ast.UnionAll(u.query, u.query))
        rule = get_rule("union_comm")
        apps = apply_rule_everywhere(rule, q)
        # Applies at the outer union and at each inner union.
        assert len(apps) == 3

    def test_all_extended_rules_roundtrip_on_matches(self, setup):
        cat, db = setup
        interp = db.interpretation()
        corpus = [
            ast.Distinct(ast.Distinct(
                compile_sql("SELECT a FROM R", cat).query)),
            compile_sql("SELECT a FROM R UNION ALL SELECT a FROM S",
                        cat).query,
            ast.Except(compile_sql("SELECT a FROM R", cat).query,
                       compile_sql("SELECT a FROM R", cat).query),
        ]
        from repro.rules import all_rules, all_extended_rules
        for rule in all_rules() + all_extended_rules():
            for q in corpus:
                for app in apply_rule_everywhere(rule, q):
                    assert run_query(app.rewritten, interp) == \
                        run_query(q, interp), (rule.name,)
