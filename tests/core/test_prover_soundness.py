"""Soundness fuzzing: the prover must never claim a false equivalence.

The equivalence engine is *incomplete* by design (Figure 9: the problem is
undecidable), but it must be *sound*: whenever it answers "equivalent",
the two queries agree on every instance.  These tests generate random
query pairs over a concrete schema and check every positive verdict
against the concrete evaluator on many random instances — and as a
byproduct measure that the prover's positive rate is non-trivial (it does
find the equivalent pairs hiding in the corpus).
"""

import random

import pytest

from repro.core import ast
from repro.core.equivalence import check_query_equivalence
from repro.core.schema import INT, Leaf, Node
from repro.core.typecheck import TypecheckError, infer_query
from repro.engine.database import Interpretation
from repro.engine.eval import run_query
from repro.engine.random_instances import random_relation
from repro.semiring import NAT

SCHEMA = Node(Leaf(INT), Leaf(INT))
TABLES = ("R", "S")


def _random_predicate(rng: random.Random, depth: int = 1) -> ast.Predicate:
    choice = rng.randrange(6 if depth > 0 else 4)
    col = lambda: ast.P2E(  # noqa: E731 - local shorthand
        ast.path(ast.RIGHT, rng.choice((ast.LEFT, ast.RIGHT))), INT)
    if choice == 0:
        return ast.PredEq(col(), ast.Const(rng.randrange(3), INT))
    if choice == 1:
        return ast.PredEq(col(), col())
    if choice == 2:
        return ast.PredTrue()
    if choice == 3:
        return ast.PredFunc("lt", (col(), ast.Const(rng.randrange(3), INT)))
    if choice == 4:
        return ast.PredAnd(_random_predicate(rng, depth - 1),
                           _random_predicate(rng, depth - 1))
    return ast.PredNot(_random_predicate(rng, depth - 1))


def _random_query(rng: random.Random, depth: int = 2) -> ast.Query:
    base = ast.Table(rng.choice(TABLES), SCHEMA)
    if depth == 0:
        return base
    choice = rng.randrange(6)
    if choice == 0:
        return base
    if choice == 1:
        return ast.Where(_random_query(rng, depth - 1),
                         _random_predicate(rng))
    if choice == 2:
        return ast.UnionAll(_random_query(rng, depth - 1),
                            _random_query(rng, depth - 1))
    if choice == 3:
        return ast.Except(_random_query(rng, depth - 1),
                          _random_query(rng, depth - 1))
    if choice == 4:
        return ast.Distinct(_random_query(rng, depth - 1))
    return ast.Select(
        ast.Duplicate(ast.path(ast.RIGHT, ast.RIGHT),
                      ast.path(ast.RIGHT, ast.LEFT)),
        _random_query(rng, depth - 1))


def _oracle_agrees(q1: ast.Query, q2: ast.Query, trials: int = 20) -> bool:
    rng = random.Random(99)
    for _ in range(trials):
        interp = Interpretation()
        for name in TABLES:
            interp.relations[name] = random_relation(rng, SCHEMA, NAT,
                                                     max_rows=4)
        if run_query(q1, interp) != run_query(q2, interp):
            return False
    return True


@pytest.mark.parametrize("seed", range(40))
def test_positive_verdicts_are_sound(seed):
    rng = random.Random(seed)
    q1 = _random_query(rng)
    q2 = _random_query(rng)
    try:
        if infer_query(q1, _ctx()) != infer_query(q2, _ctx()):
            return
    except TypecheckError:
        return
    result = check_query_equivalence(q1, q2)
    if result.equal:
        assert _oracle_agrees(q1, q2), \
            f"UNSOUND verdict on seed {seed}: {q1!r} vs {q2!r}"


def _ctx():
    from repro.core.schema import EMPTY
    return EMPTY


def test_prover_finds_planted_equivalences():
    """Random queries paired with a sound transformation of themselves
    must all verify (completeness on the easy fragment)."""
    found = 0
    for seed in range(25):
        rng = random.Random(1000 + seed)
        q = _random_query(rng)
        # Plant: wrap in a no-op transformation.
        planted = ast.Where(q, ast.PredTrue())
        result = check_query_equivalence(q, planted)
        assert result.equal, f"missed planted equivalence at seed {seed}"
        found += 1
    assert found == 25


def test_self_equivalence_always_proved():
    for seed in range(25):
        rng = random.Random(2000 + seed)
        q = _random_query(rng)
        assert check_query_equivalence(q, q).equal


def test_union_commutes_on_random_queries():
    for seed in range(15):
        rng = random.Random(3000 + seed)
        a = _random_query(rng, depth=1)
        b = _random_query(rng, depth=1)
        assert check_query_equivalence(ast.UnionAll(a, b),
                                       ast.UnionAll(b, a)).equal
