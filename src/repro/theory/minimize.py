"""Conjunctive-query minimization and concrete CQ evaluation.

Two classical companions to the Chandra–Merlin theorem:

* **Minimization** — every CQ has a unique *core*: a minimal equivalent
  subquery, computed by repeatedly deleting atoms whose removal preserves
  equivalence.  Optimizers use this to eliminate redundant joins — the
  semantic engine behind the paper's Q2 ≡ Q3 example.
* **Evaluation** — executing a CQ over a concrete instance by
  homomorphism enumeration, which lets the test suite validate the
  containment deciders *empirically*: if ``Q1 ⊆ Q2`` is claimed, then
  ``Q1(D) ⊆ Q2(D)`` must hold on every randomly generated database D.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .containment import CQ, Term, cq_set_equivalent, find_homomorphism

#: A concrete instance: relation name → set of constant tuples.
Instance = Dict[str, Set[Tuple[int, ...]]]


def minimize(query: CQ) -> CQ:
    """The core of a CQ: a minimal equivalent sub-query.

    Greedy atom deletion; by the Chandra–Merlin theory the result is
    unique up to isomorphism regardless of deletion order.
    """
    query.validate()
    body = list(query.body)
    changed = True
    while changed:
        changed = False
        for i in range(len(body)):
            if len(body) == 1:
                break
            candidate_body = tuple(body[:i] + body[i + 1:])
            head_vars = {t for t in query.head if isinstance(t, str)}
            remaining_vars = {a for atom in candidate_body
                              for a in atom.args if isinstance(a, str)}
            if not head_vars <= remaining_vars:
                continue     # deletion would make the head unsafe
            candidate = CQ(query.head, candidate_body)
            if cq_set_equivalent(query, candidate):
                body = list(candidate_body)
                changed = True
                break
    return CQ(query.head, tuple(body))


def is_minimal(query: CQ) -> bool:
    """True iff no single atom can be removed."""
    return len(minimize(query).body) == len(query.body)


def evaluate_cq(query: CQ, instance: Instance) -> Set[Tuple[int, ...]]:
    """All answers of a CQ on a concrete instance (set semantics).

    Implemented as the textbook join: enumerate assignments of the
    query's variables to constants, atom by atom.
    """
    answers: Set[Tuple[int, ...]] = set()
    atoms = sorted(query.body,
                   key=lambda a: len(instance.get(a.rel, ())))

    def extend(index: int, binding: Dict[str, int]) -> None:
        if index == len(atoms):
            try:
                answer = tuple(
                    binding[t] if isinstance(t, str) else t
                    for t in query.head)
            except KeyError:
                return
            answers.add(answer)
            return
        atom = atoms[index]
        for fact in instance.get(atom.rel, ()):
            if len(fact) != len(atom.args):
                continue
            added: List[str] = []
            ok = True
            for arg, value in zip(atom.args, fact):
                if isinstance(arg, str):
                    bound = binding.get(arg)
                    if bound is None:
                        binding[arg] = value
                        added.append(arg)
                    elif bound != value:
                        ok = False
                        break
                elif arg != value:
                    ok = False
                    break
            if ok:
                extend(index + 1, binding)
            for var in added:
                del binding[var]

    extend(0, {})
    return answers


def canonical_instance(query: CQ) -> Tuple[Instance, Tuple[int, ...]]:
    """The canonical (frozen) database of a CQ and its frozen head.

    Variables become fresh constants; by Chandra–Merlin, ``Q1 ⊆ Q2`` iff
    the frozen head of Q1 is an answer of Q2 on Q1's canonical instance.
    """
    variables = sorted(query.variables())
    encoding: Dict[str, int] = {v: 1000 + i for i, v in enumerate(variables)}

    def enc(term: Term) -> int:
        return encoding[term] if isinstance(term, str) else int(term)

    instance: Instance = {}
    for atom in query.body:
        instance.setdefault(atom.rel, set()).add(
            tuple(enc(a) for a in atom.args))
    frozen_head = tuple(enc(t) for t in query.head)
    return instance, frozen_head


def contained_via_canonical(q1: CQ, q2: CQ) -> bool:
    """``Q1 ⊆ Q2`` decided by the canonical-database criterion.

    An independent implementation of containment (evaluation on the
    frozen instance instead of explicit homomorphism search); the test
    suite checks it agrees with :func:`find_homomorphism`.
    """
    instance, frozen_head = canonical_instance(q1)
    return frozen_head in evaluate_cq(q2, instance)


__all__ = [
    "Instance",
    "canonical_instance",
    "contained_via_canonical",
    "evaluate_cq",
    "is_minimal",
    "minimize",
]
