"""Basic rewrite rules (paper Sec. 5.1.1, Figure 8 row "Basic": 8 rules).

The "fundamental building blocks of the rewriting system": selection
splitting/commuting, the Figure 1 selection/union distribution, join
commutativity and associativity, union laws, and DISTINCT idempotence.
"""

from __future__ import annotations

import random
from typing import Tuple

from ..core import ast
from .common import SR, SS, ST, standard_interpretation, table, where_pred
from .rule import RewriteRule

_R = table("R", SR)
_S = table("S", SR)          # same schema as R for union rules
_S2 = table("S", SS)         # independent schema for join rules
_T = table("T", ST)


def _two_table_factory(lhs: ast.Query, rhs: ast.Query,
                       tables: Tuple[str, ...], preds: Tuple[str, ...] = ()):
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, tables, preds=preds)
        return lhs, rhs, interp
    return factory


def _sel_union_distr() -> RewriteRule:
    b = where_pred("b", SR)
    lhs = ast.Where(ast.UnionAll(_R, _S), b)
    rhs = ast.UnionAll(ast.Where(_R, b), ast.Where(_S, b))
    return RewriteRule(
        name="sel_union_distr", category="basic",
        description="Selection distributes over UNION ALL (paper Figure 1): "
                    "(⟦R⟧t + ⟦S⟧t) × ⟦b⟧t = ⟦R⟧t×⟦b⟧t + ⟦S⟧t×⟦b⟧t.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "distribute_mul_over_add"),
        paper_ref="Figure 1",
        instantiate=_two_table_factory(lhs, rhs, ("R", "S"), ("b",)))


def _sel_split() -> RewriteRule:
    b1 = where_pred("b1", SR)
    b2 = where_pred("b2", SR)
    lhs = ast.Where(_R, ast.PredAnd(b1, b2))
    rhs = ast.Where(ast.Where(_R, b1), b2)
    return RewriteRule(
        name="sel_split", category="basic",
        description="Conjunctive selection splits into nested selections "
                    "(selection push down, paper Sec. 5.1.1).",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "mul_assoc"),
        paper_ref="Sec. 5.1.1",
        instantiate=_two_table_factory(lhs, rhs, ("R",), ("b1", "b2")))


def _sel_comm() -> RewriteRule:
    b1 = where_pred("b1", SR)
    b2 = where_pred("b2", SR)
    lhs = ast.Where(ast.Where(_R, b1), b2)
    rhs = ast.Where(ast.Where(_R, b2), b1)
    return RewriteRule(
        name="sel_comm", category="basic",
        description="Commutativity of selection — 65 lines of Coq under "
                    "list semantics, a product commutation here (Sec. 2).",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "mul_comm"),
        paper_ref="Sec. 2",
        instantiate=_two_table_factory(lhs, rhs, ("R",), ("b1", "b2")))


def _join_comm() -> RewriteRule:
    lhs = ast.Product(_R, _S2)
    rhs = ast.Select(
        ast.Duplicate(ast.path(ast.RIGHT, ast.RIGHT),
                      ast.path(ast.RIGHT, ast.LEFT)),
        ast.Product(_S2, _R))
    return RewriteRule(
        name="join_comm", category="basic",
        description="Commutativity of joins (paper Sec. 5.1.1): the SELECT "
                    "re-flips the tuple to match the original schema.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "sum_pair_split", "point_eliminate",
                       "mul_comm"),
        paper_ref="Sec. 5.1.1 (Lemmas 5.1, 5.2)",
        instantiate=_two_table_factory(lhs, rhs, ("R", "S")))


def _join_assoc() -> RewriteRule:
    lhs = ast.Product(ast.Product(_R, _S2), _T)
    reshape = ast.Duplicate(
        ast.Duplicate(ast.path(ast.RIGHT, ast.LEFT),
                      ast.path(ast.RIGHT, ast.RIGHT, ast.LEFT)),
        ast.path(ast.RIGHT, ast.RIGHT, ast.RIGHT))
    rhs = ast.Select(reshape, ast.Product(_R, ast.Product(_S2, _T)))
    return RewriteRule(
        name="join_assoc", category="basic",
        description="Associativity of joins, with the reshaping projection "
                    "aligning the nested-pair schemas.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "sum_pair_split", "point_eliminate",
                       "mul_assoc"),
        paper_ref="Sec. 5.1.1",
        instantiate=_two_table_factory(lhs, rhs, ("R", "S", "T")))


def _union_comm() -> RewriteRule:
    lhs = ast.UnionAll(_R, _S)
    rhs = ast.UnionAll(_S, _R)
    return RewriteRule(
        name="union_comm", category="basic",
        description="Commutativity of UNION ALL (addition commutes).",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "add_comm"),
        instantiate=_two_table_factory(lhs, rhs, ("R", "S")))


def _union_assoc() -> RewriteRule:
    t2 = table("T", SR)
    lhs = ast.UnionAll(ast.UnionAll(_R, _S), t2)
    rhs = ast.UnionAll(_R, ast.UnionAll(_S, t2))
    return RewriteRule(
        name="union_assoc", category="basic",
        description="Associativity of UNION ALL (addition associates).",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "add_assoc"),
        instantiate=_two_table_factory(lhs, rhs, ("R", "S", "T")))


def _distinct_idem() -> RewriteRule:
    lhs = ast.Distinct(ast.Distinct(_R))
    rhs = ast.Distinct(_R)
    return RewriteRule(
        name="distinct_idem", category="basic",
        description="DISTINCT is idempotent: ‖‖n‖‖ = ‖n‖.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "squash_idem"),
        instantiate=_two_table_factory(lhs, rhs, ("R",)))


def basic_rules() -> Tuple[RewriteRule, ...]:
    """The eight basic rules of Figure 8."""
    return (
        _sel_union_distr(),
        _sel_split(),
        _sel_comm(),
        _join_comm(),
        _join_assoc(),
        _union_comm(),
        _union_assoc(),
        _distinct_idem(),
    )
