#!/usr/bin/env python
"""All-pairs equivalence checking: Session memoization vs naive Pipeline.

The workload the Session front door exists for: N distinct SQL queries,
check every unordered pair.  The naive path calls
:meth:`Pipeline.check` per pair, which denotes + normalizes *both* sides
every time — N·(N−1) normalizations.  The session path compiles each
query into a :class:`QueryHandle` whose normal form is memoized, and
feeds the pre-normalized forms into :meth:`Pipeline.check_normalized` —
exactly N normalizations, counter-verified below.

The corpus is N syntactic variants of a three-way self join (tagged with
distinct no-op conjuncts, shuffled predicates, flipped equalities,
renamed aliases), so every pair is provably equivalent and the decision
tiers themselves stay cheap: the structural gap is the O(N²)→O(N)
normalization collapse.

Since the interned term kernel (PR 3), the naive path's redundant
normalizations resolve through the ``denote``/``normalize`` memo tables,
so the *wall-clock* gap between the two paths has largely closed — the
session path's structural advantage (N first-class normalizations, no
repeated fingerprint derivation) now shows up as counter invariants
rather than a large time ratio.  ``benchmarks/run_all.py`` tracks the
absolute wall-clock of both paths against the pre-kernel baseline in
``BENCH_pr3.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_session_all_pairs.py           # N=24
    PYTHONPATH=src python benchmarks/bench_session_all_pairs.py --smoke   # CI

Exit status is non-zero when the invariants fail (one normalize per
query in the session path; N·(N−1) normalize calls in the naive path;
session no slower than naive), so CI can run it directly.
"""

import argparse
import sys
import time

import repro.solver.pipeline as pipeline_mod
from repro import Session
from repro.solver.pipeline import Pipeline

TABLE = "R(a:int,b:int)"

#: Equivalent syntactic skeletons of the same three-way join; ``{i}``/
#: ``{j}`` tag each variant with a distinct (vacuous) conjunct so all N
#: queries are textually and structurally distinct.
_SKELETONS = [
    "SELECT x.a FROM R AS x, R AS y, R AS z "
    "WHERE x.a = y.b AND y.a = z.b AND {i} = {i}",
    "SELECT u.a FROM R AS u, R AS v, R AS w "
    "WHERE {i} = {i} AND u.a = v.b AND v.a = w.b",
    "SELECT x.a FROM R AS x, R AS y, R AS z "
    "WHERE y.b = x.a AND {j} = {j} AND z.b = y.a",
    "SELECT p.a FROM R AS p, R AS q, R AS s "
    "WHERE {j} = {j} AND q.b = p.a AND q.a = s.b",
]


def corpus(n):
    return [_SKELETONS[k % len(_SKELETONS)].format(i=k, j=k)
            for k in range(n)]


class NormalizeCounter:
    """Counts calls to the pipeline's ``normalize`` while active."""

    def __init__(self):
        self.calls = 0

    def __enter__(self):
        self._real = pipeline_mod.normalize

        def counting(u):
            self.calls += 1
            return self._real(u)

        pipeline_mod.normalize = counting
        return self

    def __exit__(self, *exc_info):
        pipeline_mod.normalize = self._real


def run_naive(texts):
    """Per-pair Pipeline.check on a cold cache (the pre-session idiom)."""
    with Session.from_tables(TABLE) as compile_session:
        queries = [compile_session.sql(t).query for t in texts]
    pipeline = Pipeline()  # cold cache
    with NormalizeCounter() as counter:
        started = time.perf_counter()
        verdicts = [pipeline.check(queries[i], queries[j])
                    for i in range(len(queries))
                    for j in range(i + 1, len(queries))]
        wall = time.perf_counter() - started
    return verdicts, counter.calls, wall


def run_session(texts):
    """The same pairs through Session handles (memoized normal forms)."""
    with Session.from_tables(TABLE) as session:
        handles = [session.sql(t) for t in texts]
        with NormalizeCounter() as counter:
            started = time.perf_counter()
            report = session.check_all_pairs(handles)
            wall = time.perf_counter() - started
    return [r.verdict for r in report], counter.calls, wall


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=24, metavar="N",
                        help="corpus size (default 24)")
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus, invariants only (CI mode)")
    args = parser.parse_args(argv)

    n = 8 if args.smoke else args.queries
    texts = corpus(n)
    n_pairs = n * (n - 1) // 2

    naive_verdicts, naive_norms, naive_wall = run_naive(texts)
    sess_verdicts, sess_norms, sess_wall = run_session(texts)

    agree = all(a.status is b.status
                for a, b in zip(naive_verdicts, sess_verdicts))
    proved = sum(v.proved for v in sess_verdicts)
    speedup = naive_wall / sess_wall if sess_wall else float("inf")

    print(f"all-pairs over {n} distinct queries ({n_pairs} pairs, "
          f"{proved} proved)")
    print(f"  naive per-pair Pipeline.check : "
          f"{naive_norms:5d} normalizations  {naive_wall * 1e3:8.1f} ms")
    print(f"  Session memoized handles      : "
          f"{sess_norms:5d} normalizations  {sess_wall * 1e3:8.1f} ms")
    print(f"  speedup: {speedup:.1f}x  "
          f"(normalizations {naive_norms}→{sess_norms})")

    failures = []
    if sess_norms != n:
        failures.append(f"expected exactly {n} normalizations in the "
                        f"session path, counted {sess_norms}")
    if naive_norms != 2 * n_pairs:
        failures.append(f"expected {2 * n_pairs} normalizations in the "
                        f"naive path, counted {naive_norms}")
    if not agree:
        failures.append("session and naive verdicts disagree")
    if proved != n_pairs:
        failures.append(f"expected all {n_pairs} pairs proved, got {proved}")
    if not args.smoke and speedup < 0.75:
        # The kernel's memo tables serve the naive path too, so the old
        # 3x wall gap is gone by design; the wall guard only catches the
        # session path genuinely losing to per-pair checking (the
        # normalization-count invariants above are the strict checks).
        failures.append(f"session path slower than naive ({speedup:.2f}x)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
