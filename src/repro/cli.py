"""Command-line interface.

Usage (``python -m repro <command>``):

* ``check --table 'R(a:int,b:int)' SQL1 SQL2`` — run the tiered decision
  pipeline on two SQL queries: PROVED / DISPROVED (with a replayable
  counterexample) / UNKNOWN (with a "no counterexample up to bound"
  guarantee),
* ``batch-check JOBS.json`` — verify a whole batch of query pairs through
  the caching, multiprocessing verification service,
* ``disprove RULE | SQL1 SQL2`` — bounded-exhaustive counterexample
  search only,
* ``optimize --table 'R(a:int,b:int)' SQL`` — certified plan search
  (equality saturation by default, ``--strategy bfs`` for the Volcano
  fallback): prints the winning rewrite chain, the cost tree, and the
  prover certificate,
* ``explain --table 'R(a:int,b:int)' SQL`` — the EXPLAIN cost tree of a
  query as written (no rewriting),
* ``prove RULE`` — run one library rule through the pipeline (by name),
* ``prove-all`` — verify the Figure 8 corpus through the batch service,
* ``rules`` — list every rule with category and status metadata,
* ``stats [--json]`` — dump the observability layer's metrics registry,
* ``serve --store-dir DIR`` — run the long-lived verification daemon
  (newline-delimited JSON over TCP, sharded on-disk proof store,
  in-flight dedup; see :mod:`repro.serve`),
* ``client [--addr HOST:PORT] check|batch-check|stats|ping|shutdown`` —
  talk to a running daemon.

Observability: every subcommand takes ``--log-level`` (the ``repro``
logging hierarchy; DEBUG logs span open/close), and ``check`` /
``batch-check`` / ``optimize`` take ``--trace-out FILE`` to export a
Chrome trace-event JSON of the run (loadable in ``chrome://tracing`` or
https://ui.perfetto.dev).

The CLI is a thin veneer over :class:`repro.session.Session` — each
command opens one session (catalog + pipeline + proof cache + worker
pool, persisted on exit when ``--cache`` is given) and returns a process
exit code (0 = equivalent/verified) so it can script into CI pipelines.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .errors import ReproError
from .obs.logs import configure_logging
from .obs.metrics import REGISTRY
from .obs.trace import trace_to_file
from .optimizer import STRATEGIES, TableStats
from .rules import (
    CATEGORY_ORDER,
    all_buggy_rules,
    all_extended_rules,
    all_rules,
    get_rule,
    rules_by_category,
)
from .session import (
    QueryHandle,
    Session,
    TableSpecError,
    parse_table_spec as _parse_table_spec,
)
from .solver import Bound, Job, PipelineConfig, Status, disprove_rule


class CLIError(ReproError):
    """Raised for malformed CLI input; rendered as an error message."""


def parse_table_spec(spec: str) -> tuple:
    """Parse ``R(a:int,b:int)`` into a (name, columns) pair."""
    try:
        return _parse_table_spec(spec)
    except TableSpecError as exc:
        raise CLIError(str(exc)) from exc


def _bound_from_args(args: argparse.Namespace) -> Bound:
    max_rows = getattr(args, "max_rows", 2)
    max_mult = getattr(args, "max_mult", 2)
    if max_rows < 1 or max_mult < 1:
        raise CLIError(f"disprover bounds must be positive, got "
                       f"--max-rows {max_rows} --max-mult {max_mult}")
    return Bound.of(max_rows=max_rows, max_multiplicity=max_mult)


def _workers_from_args(args: argparse.Namespace):
    workers = getattr(args, "workers", None)
    if workers is not None and workers < 1:
        raise CLIError(f"--workers must be at least 1, got {workers}")
    return workers


def _disprover_knobs_from_args(args: argparse.Namespace):
    """Validated (workers, batch_size) for the bounded disprover."""
    workers = getattr(args, "workers", None)
    if workers is None:
        workers = 1
    batch_size = getattr(args, "batch_size", None)
    if workers < 1:
        raise CLIError(f"--workers must be at least 1, got {workers}")
    if batch_size is not None and batch_size < 1:
        raise CLIError(f"--batch-size must be at least 1, got {batch_size}")
    return workers, batch_size


def _session_from_args(args: argparse.Namespace) -> Session:
    """One Session per command: catalog + pipeline + cache + workers."""
    config = PipelineConfig(disprover_bound=_bound_from_args(args))
    session = Session(config=config,
                      cache_path=getattr(args, "cache", None),
                      workers=_workers_from_args(args))
    for spec in (getattr(args, "table", None) or []):
        try:
            session.add_table(spec)
        except ReproError as exc:
            raise CLIError(str(exc)) from exc
    return session


def _handle(session: Session, sql: str) -> QueryHandle:
    try:
        return session.sql(sql)
    except ReproError as exc:  # lex/parse/resolve errors become CLI errors
        raise CLIError(f"cannot compile {sql!r}: {exc}") from exc


def _render_verdict(verdict) -> str:
    words = {
        Status.PROVED: "PROVED — queries are EQUIVALENT",
        Status.DISPROVED: "DISPROVED — queries are NOT equivalent",
        Status.UNKNOWN: "UNKNOWN — not proved, no counterexample found",
    }
    lines = [f"{words[verdict.status]}  (stage: {verdict.stage}"
             f"{', cached' if verdict.cached else ''}, "
             f"{verdict.engine_steps} engine steps, "
             f"{verdict.total_seconds * 1e3:.1f} ms)"]
    if verdict.detail:
        lines.append(verdict.detail)
    if verdict.counterexample is not None:
        lines.append(verdict.counterexample.describe())
    if verdict.status is Status.UNKNOWN:
        if verdict.bound is not None and verdict.bound.exhausted:
            lines.append("no counterexample up to bound "
                         + verdict.bound.describe())
        lines.append("note: the prover is sound but incomplete; "
                     "UNKNOWN is not a disproof")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------

def _render_verbose(verdict, session) -> str:
    """Stage timings + interned-kernel counters (``check --verbose``)."""
    lines = ["stage timings:"]
    for stage, seconds in verdict.timings.items():
        lines.append(f"  {stage:<12} {seconds * 1e3:8.3f} ms")
    lines.append("kernel counters:")
    for key, value in verdict.kernel_counters.items():
        lines.append(f"  {key:<18} {value}")
    stats = session.kernel_stats()
    lines.append("process-wide kernel:")
    for key in ("interned_nodes", "intern_hits", "intern_misses",
                "normalize_hits", "normalize_misses", "denote_hits",
                "denote_misses"):
        if key in stats:
            lines.append(f"  {key:<18} {stats[key]}")
    lines.append(f"  proof cache        {stats['proof_cache_entries']} "
                 f"entr{'y' if stats['proof_cache_entries'] == 1 else 'ies'}, "
                 f"hit rate {stats['proof_cache_hit_rate']:.0%}")
    return "\n".join(lines)


def cmd_check(args: argparse.Namespace) -> int:
    with _session_from_args(args) as session:
        lhs = _handle(session, args.sql1)
        rhs = _handle(session, args.sql2)
        try:
            verdict = lhs.equivalent_to(rhs)
        except ValueError as exc:
            # e.g. the two queries have different output schemas
            raise CLIError(str(exc)) from exc
        print(_render_verdict(verdict))
        if getattr(args, "verbose", False):
            print(_render_verbose(verdict, session))
        return 0 if verdict.proved else 1


def cmd_batch_check(args: argparse.Namespace) -> int:
    try:
        with open(args.jobs, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CLIError(f"cannot read jobs file {args.jobs!r}: {exc}") from exc
    if not isinstance(spec, dict) or "pairs" not in spec:
        raise CLIError('jobs file must be {"tables": [...], "pairs": '
                       '[[SQL1, SQL2], ...]}')
    args.table = spec.get("tables", [])
    with _session_from_args(args) as session:
        jobs = []
        for i, pair in enumerate(spec["pairs"]):
            if not (isinstance(pair, (list, tuple)) and len(pair) == 2):
                raise CLIError(f"pair #{i} is not a [SQL1, SQL2] list")
            q1 = _handle(session, pair[0]).query
            q2 = _handle(session, pair[1]).query
            jobs.append(Job(job_id=f"job{i}", q1=q1, q2=q2))
        try:
            report = session.check_batch(jobs)
        except ValueError as exc:
            # e.g. a pair whose two queries have different output schemas
            raise CLIError(f"batch failed: {exc}") from exc
        for i, pair in enumerate(spec["pairs"]):
            verdict = report.verdicts[f"job{i}"]
            flags = "cached" if verdict.cached else f"stage={verdict.stage}"
            print(f"{verdict.status.value:10s} [{flags}] "
                  f"{pair[0]}  ≟  {pair[1]}")
        print(report.summary())
        return 0 if all(v.proved for v in report.verdicts.values()) else 1


def _stats_from_args(args: argparse.Namespace) -> TableStats:
    """``--rows R=100`` declarations → the cost model's TableStats."""
    cardinalities = {}
    for spec in (getattr(args, "rows", None) or []):
        name, sep, value = spec.partition("=")
        name = name.strip()
        if not sep or not name:
            raise CLIError(f"malformed --rows {spec!r} "
                           f"(expected TABLE=CARDINALITY)")
        try:
            cardinalities[name] = float(value)
        except ValueError as exc:
            raise CLIError(f"malformed --rows {spec!r}: {exc}") from exc
        # NaN/inf would poison every cost comparison downstream (all
        # NaN comparisons are False, so Pareto pruning picks garbage).
        if not (0 <= cardinalities[name] < float("inf")):
            raise CLIError(f"--rows {spec!r}: cardinality must be a "
                           f"finite number >= 0")
    return TableStats(cardinalities)


def cmd_optimize(args: argparse.Namespace) -> int:
    if args.max_plans < 1:
        raise CLIError(f"--max-plans must be at least 1, got "
                       f"{args.max_plans}")
    for knob in ("iterations", "node_budget"):
        value = getattr(args, knob)
        if value is not None and value < 1:
            raise CLIError(f"--{knob.replace('_', '-')} must be at least 1, "
                           f"got {value}")
    with _session_from_args(args) as session:
        handle = _handle(session, args.sql)
        try:
            plan = handle.optimize(
                _stats_from_args(args), strategy=args.strategy,
                max_plans=args.max_plans, iterations=args.iterations,
                node_budget=args.node_budget, certify=not args.no_certify)
        except ReproError as exc:
            raise CLIError(str(exc)) from exc
        print(plan.explain())
        if args.sql_out:
            try:
                print(f"\noptimized SQL      : {plan.sql()}")
            except ReproError as exc:
                print(f"\noptimized SQL      : (not renderable: {exc})")
        # 0 = certified (or certification skipped on request); 1 = the
        # belt-and-braces proof failed, which should never happen.
        return 0 if plan.certified is not False else 1


def cmd_explain(args: argparse.Namespace) -> int:
    with _session_from_args(args) as session:
        handle = _handle(session, args.sql)
        print(handle.explain(_stats_from_args(args)))
        return 0


def cmd_disprove(args: argparse.Namespace) -> int:
    bound = _bound_from_args(args)
    workers, batch_size = _disprover_knobs_from_args(args)
    if len(args.target) == 1:
        try:
            rule = get_rule(args.target[0])
        except KeyError as exc:
            raise CLIError(str(exc)) from exc
        result = disprove_rule(rule, bound=bound,
                               workers=workers, batch_size=batch_size)
        label = f"rule {rule.name!r}"
    elif len(args.target) == 2:
        with _session_from_args(args) as session:
            q1 = _handle(session, args.target[0])
            result = q1.disprove(_handle(session, args.target[1]),
                                 bound=bound, max_instances=None,
                                 workers=workers, batch_size=batch_size)
        label = "query pair"
    else:
        raise CLIError("disprove takes a rule name or exactly two SQL "
                       "queries")
    if result.found:
        print(f"DISPROVED {label} "
              f"(instance #{result.instances_checked})")
        if result.record is not None:
            print(result.record.describe())
        else:
            print(result.counterexample.describe())
        return 0
    coverage = "exhausted" if result.exhausted else "budget hit"
    print(f"NO COUNTEREXAMPLE for {label} up to "
          f"{bound.max_rows} rows × {bound.max_multiplicity} multiplicity "
          f"({result.instances_checked} instances, {coverage})")
    return 1


def cmd_prove(args: argparse.Namespace) -> int:
    try:
        rule = get_rule(args.rule)
    except KeyError as exc:
        raise CLIError(str(exc)) from exc
    with _session_from_args(args) as session:
        verdict = session.pipeline.check_rule(rule)
        status = "VERIFIED" if verdict.proved else "REJECTED"
        print(f"{rule.name} [{rule.category}]: {status} "
              f"(stage: {verdict.stage}, {verdict.engine_steps} steps, "
              f"{verdict.total_seconds * 1e3:.1f} ms)")
        print(f"  {rule.description}")
        if verdict.counterexample is not None:
            print(verdict.counterexample.describe())
        return 0 if verdict.proved == rule.sound else 1


def cmd_prove_all(args: argparse.Namespace) -> int:
    with _session_from_args(args) as session:
        by_category = rules_by_category()
        ordered = [rule for category in CATEGORY_ORDER
                   for rule in by_category[category]]
        buggy = list(all_buggy_rules())
        report = session.check_rules(ordered + buggy)
        failures = 0
        for rule in ordered:
            verdict = report.verdicts[rule.name]
            status = "VERIFIED" if verdict.proved else "FAILED"
            print(f"{status:9s} {rule.category:12s} {rule.name:30s} "
                  f"{verdict.engine_steps:5d} steps  [{verdict.stage}]")
            failures += not verdict.proved
        for rule in buggy:
            verdict = report.verdicts[rule.name]
            status = "REJECTED" if not verdict.proved else "ACCEPTED?!"
            marker = ("counterexample found" if verdict.disproved
                      else verdict.status.value)
            print(f"{status:9s} {'buggy':12s} {rule.name:30s} [{marker}]")
            failures += verdict.proved
        print(f"\n{23 - failures if failures <= 23 else 0}/23 core rules "
              f"verified; unsound rules "
              f"{'all rejected' if failures == 0 else 'NOT all rejected'}")
        print(report.summary())
        return 0 if failures == 0 else 1


def cmd_stats(args: argparse.Namespace) -> int:
    """Dump the process-wide metrics registry (``repro stats``).

    A fresh process reports the metric families at zero — the command is
    primarily a schema reference and a scripting hook: run it after
    ``--trace-out``/batch work in the same process (the Python API), or
    use ``--json`` in CI to smoke-test that the registry serializes.
    """
    from .core.intern import kernel_stats
    # kernel_stats() first: reading the arena section refreshes the
    # ``kernel.arena.*`` gauges, so the registry snapshot taken after it
    # includes the arena occupancy/hit figures (CI smoke-asserts this).
    kernel = kernel_stats()
    snapshot = REGISTRY.snapshot()
    if args.json:
        print(json.dumps({"metrics": snapshot, "kernel": kernel},
                         indent=2, sort_keys=True))
        return 0
    print("counters:")
    for name in sorted(snapshot["counters"]):
        print(f"  {name:<44} {snapshot['counters'][name]:.0f}")
    print("gauges:")
    for name in sorted(snapshot["gauges"]):
        print(f"  {name:<44} {snapshot['gauges'][name]:g}")
    print("histograms:")
    for name in sorted(snapshot["histograms"]):
        data = snapshot["histograms"][name]
        mean = data["sum"] / data["count"] if data["count"] else 0.0
        print(f"  {name:<44} {data['count']:6d} obs, mean {mean:.6g}")
    print("kernel:")
    for key, value in sorted(kernel.items()):
        print(f"  {key:<44} {value}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the verification daemon until SIGTERM/SIGINT (``repro serve``)."""
    import signal
    import threading

    from .serve.server import ReproServer, ServeError

    try:
        server = ReproServer(
            host=args.host, port=args.port,
            tables=args.table or (),
            store_dir=args.store_dir, shards=args.shards,
            workers=args.workers, max_inflight=args.max_inflight,
            hot_size=args.hot_size,
            config=PipelineConfig(disprover_bound=_bound_from_args(args)))
    except (ServeError, OSError, ReproError) as exc:
        raise CLIError(f"cannot start serve daemon: {exc}") from exc

    def _drain(signum, frame):
        # shutdown() joins the serve loop, so it must not run on the
        # main thread that is inside serve_forever().
        threading.Thread(target=server.shutdown, kwargs={"drain": True},
                         name="repro-serve-signal", daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    host, port = server.address
    print(f"repro serve listening on {host}:{port}", flush=True)
    if args.store_dir:
        print(f"proof store: {args.store_dir} "
              f"({server.store.shards} shard(s))", flush=True)
    server.serve_forever()
    # serve_forever returns once shutdown() has stopped the accept loop;
    # shutdown() itself drains the worker pool before returning.
    server.shutdown(drain=True)
    print("repro serve stopped", flush=True)
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    """Talk to a running daemon (``repro client <verb>``)."""
    from .serve.client import ServeClient, ServeClientError

    try:
        with ServeClient(args.addr, timeout=args.timeout,
                         connect_retries=args.retries) as client:
            if args.verb == "ping":
                result = client.request("ping")
                print(f"pong from {args.addr} "
                      f"(uptime {result['uptime_seconds']:.1f}s)")
                return 0
            if args.verb == "check":
                detail = client.check_detail(args.sql1, args.sql2,
                                             tables=args.table)
                from .solver.verdict import Verdict
                verdict = Verdict.from_dict(detail["verdict"])
                verdict.cached = bool(detail.get("cached"))
                print(_render_verdict(verdict))
                print(f"dedup role: {detail['dedup']}, server wall "
                      f"{detail['wall_seconds'] * 1e3:.1f} ms")
                return 0 if verdict.proved else 1
            if args.verb == "batch-check":
                try:
                    with open(args.jobs, "r", encoding="utf-8") as handle:
                        spec = json.load(handle)
                except (OSError, json.JSONDecodeError) as exc:
                    raise CLIError(f"cannot read jobs file "
                                   f"{args.jobs!r}: {exc}") from exc
                if not isinstance(spec, dict) or "pairs" not in spec:
                    raise CLIError('jobs file must be {"tables": [...], '
                                   '"pairs": [[SQL1, SQL2], ...]}')
                verdicts = client.batch_check(
                    spec["pairs"], tables=spec.get("tables"))
                for pair, verdict in zip(spec["pairs"], verdicts):
                    flags = ("cached" if verdict.cached
                             else f"stage={verdict.stage}")
                    print(f"{verdict.status.value:10s} [{flags}] "
                          f"{pair[0]}  ≟  {pair[1]}")
                return 0 if all(v.proved for v in verdicts) else 1
            if args.verb == "stats":
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
                return 0
            if args.verb == "shutdown":
                client.shutdown()
                print("daemon is draining")
                return 0
            raise CLIError(f"unknown client verb {args.verb!r}")
    except ServeClientError as exc:
        raise CLIError(f"[{exc.code}] {exc}") from exc


def cmd_rules(args: argparse.Namespace) -> int:
    print(f"{'name':<32}{'category':<14}{'paper ref':<24}")
    print("-" * 70)
    for rule in all_rules() + all_extended_rules() + all_buggy_rules():
        marker = "" if rule.sound else "  [UNSOUND CONTROL]"
        print(f"{rule.name:<32}{rule.category:<14}"
              f"{rule.paper_ref:<24}{marker}")
    return 0


#: ``repro lint`` corpus selectors, in display order.
_LINT_CORPORA = (
    ("basic", all_rules),
    ("extended", all_extended_rules),
    ("buggy", all_buggy_rules),
)


def cmd_lint(args: argparse.Namespace) -> int:
    """Static rule-soundness linter over the rewrite corpora.

    Exit status is the CI contract: 0 iff every rule annotated with an
    ``expected_defect`` is flagged with that code, AND no *unannotated*
    rule draws an ERROR-severity diagnostic (warnings are allowed — the
    test suite pins their exact set).
    """
    from .analysis import lint_rules

    selected = [(name, factory) for name, factory in _LINT_CORPORA
                if args.corpus in ("all", name)]
    failures: List[str] = []
    payload = {}
    for name, factory in selected:
        rules = list(factory())
        report = lint_rules(rules)
        payload[name] = report.to_dict()
        for rule in rules:
            codes = set(report.codes_for(rule.name))
            error_codes = {d.code for d in report.errors
                           if d.rule == rule.name}
            expected = getattr(rule, "expected_defect", None)
            if expected is not None and expected.code not in codes:
                failures.append(
                    f"{rule.name}: expected {expected.code} "
                    f"({expected.reason}) but the linter reported "
                    f"{sorted(codes) or 'nothing'}")
            if expected is None and error_codes:
                failures.append(
                    f"{rule.name}: unexpected error diagnostics "
                    f"{sorted(error_codes)} on a rule not annotated "
                    f"as defective")
        if not args.json:
            print(f"corpus {name}: {report.rules_checked} rules, "
                  f"{len(report.errors)} errors, "
                  f"{len(report.warnings)} warnings")
            for diag in report.diagnostics:
                print(f"  {diag}")
    if args.json:
        print(json.dumps({"corpora": payload, "failures": failures},
                         indent=2, sort_keys=True))
    elif failures:
        print("lint contract violations:")
        for line in failures:
            print(f"  {line}")
    else:
        print("lint contract holds: every annotated defect reproduced, "
              "no stray errors")
    return 1 if failures else 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Infer static plan properties for a SQL query (``repro analyze``)."""
    from .analysis import AnalysisContext, infer_properties
    from .analysis.infer import supports_determined

    with _session_from_args(args) as session:
        handle = _handle(session, args.sql)
        ctx = AnalysisContext(keyed=tuple(sorted(set(args.key or ()))))
        props = infer_properties(handle.query, ctx)
        if args.json:
            out = props.to_dict()
            out["supports_determined"] = supports_determined(handle.query)
            out["keyed_tables"] = list(ctx.keyed)
            print(json.dumps(out, indent=2, sort_keys=True))
            return 0
        print(f"query: {args.sql}")
        if ctx.keyed:
            print(f"keyed tables: {', '.join(ctx.keyed)}")
        print(f"  set-valued (duplicate-free): {props.set_valued}")
        print(f"  statically empty:            {props.empty}")
        print(f"  keys:                        "
              f"{', '.join('.'.join(k) or '<row>' for k in sorted(props.keys)) or '-'}")
        print(f"  cardinality:                 {props.card}")
        print(f"  support-determined:          "
              f"{supports_determined(handle.query)}")
        return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def _add_cache_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache", metavar="FILE", default=None,
                        help="persist the proof cache to this JSON file "
                             "(loaded when it exists)")


def _add_obs_options(parser: argparse.ArgumentParser,
                     trace: bool = False) -> None:
    parser.add_argument("--log-level", metavar="LEVEL", default=None,
                        help="enable repro's logging hierarchy at this "
                             "level (DEBUG logs every span open/close)")
    if trace:
        parser.add_argument("--trace-out", metavar="FILE", default=None,
                            help="write a Chrome trace-event JSON of this "
                                 "run (load in chrome://tracing or "
                                 "ui.perfetto.dev)")


def _add_bound_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-rows", type=int, default=2, metavar="K",
                        help="disprover bound: max rows per table "
                             "(default 2)")
    parser.add_argument("--max-mult", type=int, default=2, metavar="M",
                        help="disprover bound: max multiplicity per row "
                             "(default 2)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HoTTSQL reproduction — prove SQL query rewrites.")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="decide equivalence of two "
                                         "SQL queries (tiered pipeline)")
    check.add_argument("--table", action="append", metavar="SPEC",
                       help="table declaration, e.g. 'R(a:int,b:int)' "
                            "(repeatable)")
    check.add_argument("sql1")
    check.add_argument("sql2")
    check.add_argument("--verbose", action="store_true",
                       help="print stage timings and interned-kernel "
                            "counters (normalize memo hits/misses, live "
                            "interned nodes) alongside the verdict")
    _add_cache_option(check)
    _add_bound_options(check)
    _add_obs_options(check, trace=True)
    check.set_defaults(fn=cmd_check)

    batch = sub.add_parser("batch-check",
                           help="verify a JSON batch of query pairs "
                                "through the parallel service")
    batch.add_argument("jobs", help='JSON file: {"tables": [...], '
                                    '"pairs": [[SQL1, SQL2], ...]}')
    batch.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: auto)")
    _add_cache_option(batch)
    _add_bound_options(batch)
    _add_obs_options(batch, trace=True)
    batch.set_defaults(fn=cmd_batch_check)

    optimize_p = sub.add_parser(
        "optimize", help="certified plan search: saturate the rewrite "
                         "space, extract the cheapest plan, prove it "
                         "equivalent")
    optimize_p.add_argument("sql", help="the SQL query to optimize")
    optimize_p.add_argument("--table", action="append", metavar="SPEC",
                            help="table declaration, e.g. 'R(a:int,b:int)' "
                                 "(repeatable)")
    optimize_p.add_argument("--strategy", choices=STRATEGIES,
                            default="saturation",
                            help="plan search strategy (default: "
                                 "saturation; bfs is the Volcano fallback)")
    optimize_p.add_argument("--max-plans", type=int, default=400,
                            metavar="N",
                            help="exploration budget: BFS plan cap and "
                                 "default saturation e-node budget "
                                 "(default 400)")
    optimize_p.add_argument("--iterations", type=int, default=None,
                            metavar="N",
                            help="saturation iteration budget (rewrite "
                                 "depth; default 12)")
    optimize_p.add_argument("--node-budget", type=int, default=None,
                            metavar="N",
                            help="saturation e-node budget (default: "
                                 "--max-plans)")
    optimize_p.add_argument("--rows", action="append", metavar="TABLE=N",
                            help="base-table cardinality for the cost "
                                 "model (repeatable; default 100)")
    optimize_p.add_argument("--no-certify", action="store_true",
                            help="skip the end-to-end proof of the chosen "
                                 "plan")
    optimize_p.add_argument("--sql-out", action="store_true",
                            help="also print the chosen plan decompiled "
                                 "back to SQL")
    _add_cache_option(optimize_p)
    _add_bound_options(optimize_p)
    _add_obs_options(optimize_p, trace=True)
    optimize_p.set_defaults(fn=cmd_optimize)

    explain_p = sub.add_parser(
        "explain", help="EXPLAIN cost tree of a query as written")
    explain_p.add_argument("sql", help="the SQL query to explain")
    explain_p.add_argument("--table", action="append", metavar="SPEC",
                           help="table declaration (repeatable)")
    explain_p.add_argument("--rows", action="append", metavar="TABLE=N",
                           help="base-table cardinality for the cost "
                                "model (repeatable; default 100)")
    _add_cache_option(explain_p)
    _add_bound_options(explain_p)
    _add_obs_options(explain_p)
    explain_p.set_defaults(fn=cmd_explain)

    disprove_p = sub.add_parser(
        "disprove", help="bounded-exhaustive counterexample search "
                         "for a rule or a SQL pair")
    disprove_p.add_argument("target", nargs="+",
                            help="a rule name, or two SQL queries")
    disprove_p.add_argument("--table", action="append", metavar="SPEC",
                            help="table declaration (SQL mode)")
    disprove_p.add_argument("--workers", type=int, default=1, metavar="N",
                            help="shard the instance space across N "
                                 "processes (default 1: in-process)")
    disprove_p.add_argument("--batch-size", type=int, default=None,
                            metavar="N", dest="batch_size",
                            help="instances per parallel shard (default: "
                                 "auto, ~8 batches per worker)")
    _add_bound_options(disprove_p)
    _add_obs_options(disprove_p)
    disprove_p.set_defaults(fn=cmd_disprove)

    prove = sub.add_parser("prove", help="prove one library rule by name")
    prove.add_argument("rule")
    _add_cache_option(prove)
    _add_obs_options(prove)
    prove.set_defaults(fn=cmd_prove)

    prove_all = sub.add_parser("prove-all",
                               help="verify the Figure 8 corpus through "
                                    "the batch service")
    prove_all.add_argument("--workers", type=int, default=1,
                           help="worker processes (default 1)")
    _add_cache_option(prove_all)
    _add_obs_options(prove_all, trace=True)
    prove_all.set_defaults(fn=cmd_prove_all)

    serve = sub.add_parser(
        "serve", help="run the long-lived verification daemon "
                      "(newline-delimited JSON over TCP)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7341,
                       help="TCP port (0 picks an ephemeral port; "
                            "default 7341)")
    serve.add_argument("--table", action="append", metavar="SPEC",
                       help="default table declaration used when a "
                            "request carries none (repeatable)")
    serve.add_argument("--store-dir", metavar="DIR", default=None,
                       help="directory of the sharded on-disk proof "
                            "store (shared across server processes; "
                            "omit for a purely in-memory cache)")
    serve.add_argument("--shards", type=int, default=16, metavar="N",
                       help="shard count when creating a new store "
                            "(an existing store's layout wins; "
                            "default 16)")
    serve.add_argument("--workers", type=int, default=4, metavar="N",
                       help="pipeline worker threads (default 4)")
    serve.add_argument("--max-inflight", type=int, default=64, metavar="N",
                       help="cap on distinct in-flight questions; beyond "
                            "it clients get 'overloaded' (default 64)")
    serve.add_argument("--hot-size", type=int, default=4096, metavar="N",
                       help="in-memory hot-tier LRU capacity "
                            "(default 4096)")
    _add_bound_options(serve)
    _add_obs_options(serve)
    serve.set_defaults(fn=cmd_serve)

    client = sub.add_parser(
        "client", help="talk to a running repro serve daemon")
    client.add_argument("--addr", default="127.0.0.1:7341",
                        metavar="HOST:PORT",
                        help="daemon address (default 127.0.0.1:7341)")
    client.add_argument("--timeout", type=float, default=60.0,
                        help="per-request timeout in seconds (default 60)")
    client.add_argument("--retries", type=int, default=20,
                        help="connection attempts while the daemon "
                             "starts (default 20)")
    client_sub = client.add_subparsers(dest="verb", required=True)
    c_ping = client_sub.add_parser("ping", help="liveness probe")
    c_check = client_sub.add_parser(
        "check", help="decide equivalence of two SQL queries remotely")
    c_check.add_argument("sql1")
    c_check.add_argument("sql2")
    c_check.add_argument("--table", action="append", metavar="SPEC",
                         help="table declaration (repeatable; falls back "
                              "to the daemon's --table defaults)")
    c_batch = client_sub.add_parser(
        "batch-check", help="verify a JSON batch of query pairs remotely")
    c_batch.add_argument("jobs", help='JSON file: {"tables": [...], '
                                      '"pairs": [[SQL1, SQL2], ...]}')
    c_stats = client_sub.add_parser(
        "stats", help="dump the daemon's server/cache/metrics stats")
    c_shutdown = client_sub.add_parser(
        "shutdown", help="ask the daemon to drain and exit")
    for sub_parser in (c_ping, c_check, c_batch, c_stats, c_shutdown):
        _add_obs_options(sub_parser)
    client.set_defaults(fn=cmd_client)

    rules = sub.add_parser("rules", help="list the rule library")
    rules.set_defaults(fn=cmd_rules)

    lint = sub.add_parser(
        "lint",
        help="statically lint the rewrite-rule corpora (soundness "
             "linter: metavariable containment, schema preservation, "
             "one-point countermodels, hypothesis sufficiency, cycles)")
    lint.add_argument("--corpus", choices=("all", "basic", "extended",
                                           "buggy"), default="all",
                      help="which corpus to lint (default: all three)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable diagnostics")
    _add_obs_options(lint)
    lint.set_defaults(fn=cmd_lint)

    analyze = sub.add_parser(
        "analyze",
        help="infer static plan properties for a query (set-ness, "
             "emptiness, keys, cardinality interval)")
    analyze.add_argument("sql", help="the SQL query to analyze")
    analyze.add_argument("--table", action="append", metavar="SPEC",
                         help="declare a table as NAME(col:type,...); "
                              "repeatable")
    analyze.add_argument("--key", action="append", metavar="TABLE",
                         help="assume TABLE carries a key constraint "
                              "(set-valued); repeatable")
    analyze.add_argument("--json", action="store_true",
                         help="machine-readable property record")
    _add_obs_options(analyze)
    analyze.set_defaults(fn=cmd_analyze)

    stats = sub.add_parser("stats",
                           help="dump the observability layer's metrics "
                                "registry (counters, gauges, histograms)")
    stats.add_argument("--json", action="store_true",
                       help="machine-readable snapshot (metrics + kernel "
                            "counters)")
    _add_obs_options(stats)
    stats.set_defaults(fn=cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        level = getattr(args, "log_level", None)
        if level is not None:
            try:
                configure_logging(level)
            except ValueError as exc:
                raise CLIError(str(exc)) from exc
        with trace_to_file(getattr(args, "trace_out", None)):
            return args.fn(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (head, grep -q) closed the pipe: the
        # conventional quiet exit, not a traceback.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141  # 128 + SIGPIPE


if __name__ == "__main__":
    sys.exit(main())
