"""Batch verification service: dedup, cache warm-up, worker pool."""

import pytest

from repro.core.schema import INT
from repro.rules import all_buggy_rules, all_rules
from repro.solver import Job, Status, VerificationService
from repro.sql import Catalog, compile_sql


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_table("R", [("a", INT), ("b", INT)])
    return cat


@pytest.fixture
def queries(catalog):
    def q(sql):
        return compile_sql(sql, catalog).query
    return q


def _jobs(queries, n=8):
    """n jobs over only three distinct questions (dedup fodder)."""
    pairs = [
        ("SELECT a FROM R", "SELECT a FROM R"),
        ("SELECT a FROM R", "SELECT b FROM R"),
        ("SELECT DISTINCT a FROM R",
         "SELECT DISTINCT x.a FROM R AS x, R AS y WHERE x.a = y.a"),
    ]
    return [Job(f"j{i}", queries(pairs[i % 3][0]), queries(pairs[i % 3][1]))
            for i in range(n)]


class TestBatch:
    def test_sequential_batch_answers_every_job(self, queries):
        service = VerificationService()
        report = service.check_batch(_jobs(queries), workers=1)
        assert set(report.verdicts) == {f"j{i}" for i in range(8)}
        assert report.verdicts["j0"].proved
        assert report.verdicts["j1"].disproved
        assert report.verdicts["j2"].proved

    def test_deduplication(self, queries):
        service = VerificationService()
        report = service.check_batch(_jobs(queries, 9), workers=1)
        assert report.total_jobs == 9
        assert report.unique_questions == 3
        assert report.duplicate_jobs == 6
        assert report.computed == 3

    def test_warm_batch_is_all_cache_hits(self, queries):
        service = VerificationService()
        service.check_batch(_jobs(queries), workers=1)
        warm = service.check_batch(_jobs(queries), workers=1)
        assert warm.cache_hits == warm.unique_questions
        assert warm.computed == 0
        assert all(v.cached for v in warm.verdicts.values())

    def test_symmetric_jobs_deduplicate(self, queries):
        q1 = queries("SELECT a FROM R")
        q2 = queries("SELECT b FROM R")
        service = VerificationService()
        report = service.check_batch(
            [Job("fwd", q1, q2), Job("bwd", q2, q1)], workers=1)
        assert report.unique_questions == 1
        assert report.verdicts["fwd"].disproved
        assert report.verdicts["bwd"].disproved

    def test_mirrored_jobs_get_mirrored_counterexamples(self, queries):
        # One computed verdict serves both orientations of a pair; each
        # job must see the multiplicity columns in its own order.
        q1 = queries("SELECT a FROM R")
        q2 = queries("SELECT a FROM R UNION ALL SELECT a FROM R")
        report = VerificationService().check_batch(
            [Job("fwd", q1, q2), Job("bwd", q2, q1)], workers=1)
        fwd = report.verdicts["fwd"].counterexample.disagreements
        bwd = report.verdicts["bwd"].counterexample.disagreements
        assert bwd == tuple((row, right, left) for row, left, right in fwd)
        assert fwd != bwd

    def test_alpha_equal_text_variant_keeps_orientation(self, queries):
        # An alpha-equal but textually different Q1 hits the fingerprint
        # cache; its unrecognized repr digest must NOT be read as "the
        # pair is reversed" (regression: false swap of cx side labels).
        q_small = queries("SELECT a FROM R")
        q_big = queries("SELECT a FROM R UNION ALL SELECT a FROM R")
        q_small_variant = queries("SELECT x.a FROM R AS x")
        service = VerificationService()
        first = service.check_batch([Job("j1", q_small, q_big)], workers=1)
        second = service.check_batch([Job("j2", q_small_variant, q_big)],
                                     workers=1)
        assert second.verdicts["j2"].counterexample.disagreements \
            == first.verdicts["j1"].counterexample.disagreements

    def test_unknown_worker_verdicts_not_cached(self, queries):
        # Same policy as Pipeline.check: a later run with a bigger budget
        # must not be short-circuited by a cached UNKNOWN.
        from repro.solver import Bound, PipelineConfig
        config = PipelineConfig(
            disprover_bound=Bound.of(max_rows=1, max_multiplicity=1))
        service = VerificationService(config=config)
        jobs = [Job("u", queries("SELECT a FROM R WHERE a = 2"),
                    queries("SELECT a FROM R WHERE a = 3"))]
        first = service.check_batch(jobs, workers=2)
        assert first.verdicts["u"].status is Status.UNKNOWN
        again = service.check_batch(jobs, workers=1)
        assert again.cache_hits == 0

    def test_parallel_batch_matches_sequential(self, queries):
        jobs = _jobs(queries)
        sequential = VerificationService().check_batch(jobs, workers=1)
        parallel = VerificationService().check_batch(jobs, workers=2)
        for job_id in sequential.verdicts:
            assert parallel.verdicts[job_id].status \
                is sequential.verdicts[job_id].status

    def test_summary_mentions_the_accounting(self, queries):
        report = VerificationService().check_batch(
            _jobs(queries), workers=1)
        text = report.summary()
        assert "unique" in text and "cache hit" in text


class TestRuleBatches:
    def test_rule_corpus_parallel(self):
        service = VerificationService()
        rules = list(all_rules()) + list(all_buggy_rules())
        report = service.check_rules(rules, workers=2)
        assert report.count(Status.PROVED) == 23
        assert report.count(Status.DISPROVED) == 5
        assert report.count(Status.UNKNOWN) == 0

    def test_rule_corpus_warm_cache(self):
        service = VerificationService()
        rules = list(all_rules())
        cold = service.check_rules(rules, workers=1)
        warm = service.check_rules(rules, workers=1)
        assert cold.computed == len(rules)
        assert warm.cache_hits == len(rules)
        assert warm.computed == 0
        # The acceptance bar is 2×; a pure cache pass clears it easily.
        assert warm.wall_seconds < cold.wall_seconds
