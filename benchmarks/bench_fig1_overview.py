"""Figure 1 — proving a rewrite rule end to end.

Regenerates the paper's opening example: the selection/UNION ALL
distribution rule, its HoTTSQL denotation, and the one-step proof by
distributivity of × over +.
"""

from repro.core.denote import denote_closed
from repro.core.equivalence import check_query_equivalence
from repro.rules import get_rule
from repro.sql.pretty import denotation_to_str, query_to_str


def test_figure1_report(report, benchmark):
    rule = get_rule("sel_union_distr")
    result = benchmark(lambda: check_query_equivalence(rule.lhs, rule.rhs))
    assert result.equal

    report.add("Figure 1 — Proving a rewrite rule using HoTTSQL")
    report.add("=" * 60)
    report.add("Rewrite rule:")
    report.add(f"  {query_to_str(rule.lhs)}")
    report.add("    ≡")
    report.add(f"  {query_to_str(rule.rhs)}")
    report.add("")
    report.add("HoTTSQL denotation:")
    report.add(f"  LHS: {denotation_to_str(denote_closed(rule.lhs))}")
    report.add(f"  RHS: {denotation_to_str(denote_closed(rule.rhs))}")
    report.add("")
    report.add("Proof: distributivity of × over + "
               f"(engine: {result.stats.total_steps} steps, VERIFIED)")
    report.emit("fig1_overview")


def test_figure1_distributivity_is_the_whole_proof(benchmark):
    # The normalized sides are literally identical clause multisets —
    # after distribution nothing is left to prove.
    rule = get_rule("sel_union_distr")
    result = benchmark(lambda: check_query_equivalence(rule.lhs, rule.rhs))
    assert result.equal
    assert len(result.lhs_normal.products) == 2
    assert len(result.rhs_normal.products) == 2
