"""``ServeClient`` — the library-side half of the serve protocol.

A thin, dependency-free socket client for the ``repro serve`` daemon:
connect with retry/backoff (daemons race their first clients in CI and
scripts), send one JSON line per request, read one JSON line per
response, and translate error responses into :class:`ServeClientError`.
Verdict payloads are rehydrated into real
:class:`~repro.solver.verdict.Verdict` objects, so remote answers are
interchangeable with local ones — which is what lets
:meth:`repro.session.Session.connect` route the fluent API over the
wire transparently.

The client is deliberately synchronous and single-connection: one
request in flight at a time per client.  Concurrency comes from using
many clients (one per thread/process), which is also how the server's
in-flight dedup is exercised.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..obs.logs import get_logger
from ..solver.verdict import Verdict
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    encode,
    parse_address,
    read_message,
)

_log = get_logger("serve.client")


class ServeClientError(ReproError):
    """A failed request: connection trouble or a server error response.

    ``code`` carries the protocol error code (``"connection"`` for
    client-side transport failures).
    """

    def __init__(self, message: str, code: str = "connection") -> None:
        super().__init__(message)
        self.code = code


class ServeClient:
    """One connection to a ``repro serve`` daemon.

    Args:
        address: ``"host:port"`` or a ``(host, port)`` pair.
        timeout: per-request socket timeout (seconds).
        connect_retries: connection attempts before giving up (the
            daemon may still be starting).
        retry_delay: initial delay between attempts (backs off ×1.5).
    """

    def __init__(self, address, *, timeout: float = 60.0,
                 connect_retries: int = 20,
                 retry_delay: float = 0.05) -> None:
        try:
            self.host, self.port = parse_address(address)
        except ProtocolError as exc:
            raise ServeClientError(str(exc), "bad-request") from exc
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.retry_delay = retry_delay
        self._sock: Optional[socket.socket] = None
        self._rfile = None

    # -- connection management ------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> "ServeClient":
        """Open the connection, retrying while the daemon comes up."""
        if self._sock is not None:
            return self
        delay = self.retry_delay
        last: Optional[Exception] = None
        for _ in range(max(1, self.connect_retries)):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
                sock.settimeout(self.timeout)
                self._sock = sock
                self._rfile = sock.makefile("rb")
                return self
            except OSError as exc:
                last = exc
                time.sleep(delay)
                delay = min(delay * 1.5, 2.0)
        raise ServeClientError(
            f"cannot connect to repro serve at "
            f"{self.host}:{self.port}: {last}")

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the request loop -----------------------------------------------------

    def request(self, op: str, **payload: Any) -> Any:
        """One round trip; returns the response's ``result`` payload.

        Every op the server exposes is idempotent, so a request that
        dies on a stale connection (daemon restarted, idle socket
        dropped) is retried once on a fresh one.
        """
        message = {"op": op, **{k: v for k, v in payload.items()
                                if v is not None}}
        try:
            return self._round_trip(message)
        except ServeClientError as exc:
            if exc.code != "connection":
                raise
            self.close()
            return self._round_trip(message)

    def _round_trip(self, message: Dict[str, Any]) -> Any:
        self.connect()
        assert self._sock is not None
        try:
            self._sock.sendall(encode(message))
            raw = read_message(self._rfile, MAX_LINE_BYTES)
        except ProtocolError as exc:
            self.close()
            raise ServeClientError(f"oversized response: {exc}",
                                   "too-large") from exc
        except OSError as exc:
            self.close()
            raise ServeClientError(
                f"connection to {self.host}:{self.port} failed: "
                f"{exc}") from exc
        if raw is None:
            self.close()
            raise ServeClientError(
                f"server at {self.host}:{self.port} closed the "
                f"connection mid-request")
        try:
            response = json.loads(raw)
        except ValueError as exc:
            self.close()
            raise ServeClientError(
                f"unparseable server response: {exc}") from exc
        if not isinstance(response, dict) or "ok" not in response:
            raise ServeClientError("malformed server response (no ok "
                                   "field)")
        if not response["ok"]:
            error = response.get("error") or {}
            raise ServeClientError(
                error.get("message", "unknown server error"),
                error.get("code", "internal"))
        return response.get("result")

    # -- typed verbs ----------------------------------------------------------

    @staticmethod
    def _rehydrate(result: Dict[str, Any]) -> Verdict:
        verdict = Verdict.from_dict(result["verdict"])
        verdict.cached = bool(result.get("cached", False))
        return verdict

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def check(self, sql1: str, sql2: str,
              tables: Optional[Sequence[str]] = None,
              disprover_workers: Optional[int] = None,
              disprover_batch_size: Optional[int] = None) -> Verdict:
        """Decide equivalence of two SQL texts on the server.

        ``disprover_workers`` / ``disprover_batch_size`` override the
        server's disprover parallelism for this request only; omitted
        (None) knobs use the server default, and servers predating the
        knobs ignore the extra keys.
        """
        result = self.request("check", sql1=sql1, sql2=sql2,
                              tables=list(tables) if tables is not None
                              else None,
                              disprover_workers=disprover_workers,
                              disprover_batch_size=disprover_batch_size)
        return self._rehydrate(result)

    def check_detail(self, sql1: str, sql2: str,
                     tables: Optional[Sequence[str]] = None,
                     disprover_workers: Optional[int] = None,
                     disprover_batch_size: Optional[int] = None
                     ) -> Dict[str, Any]:
        """Like :meth:`check` but returns the raw result (dedup role,
        wall seconds, verdict dict)."""
        return self.request("check", sql1=sql1, sql2=sql2,
                            tables=list(tables) if tables is not None
                            else None,
                            disprover_workers=disprover_workers,
                            disprover_batch_size=disprover_batch_size)

    def batch_check(self, pairs: Iterable[Tuple[str, str]],
                    tables: Optional[Sequence[str]] = None
                    ) -> List[Verdict]:
        result = self.request(
            "batch-check", pairs=[list(p) for p in pairs],
            tables=list(tables) if tables is not None else None)
        return [self._rehydrate(r) for r in result["results"]]

    def optimize(self, sql: str,
                 tables: Optional[Sequence[str]] = None,
                 rows: Optional[Dict[str, float]] = None,
                 **knobs: Any) -> Dict[str, Any]:
        return self.request("optimize", sql=sql,
                            tables=list(tables) if tables is not None
                            else None,
                            rows=rows, **knobs)

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> bool:
        """Ask the daemon to drain and exit."""
        result = self.request("shutdown")
        self.close()
        return bool(result.get("shutting_down"))

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return f"ServeClient({self.host}:{self.port}, {state})"


__all__ = ["ServeClient", "ServeClientError"]
