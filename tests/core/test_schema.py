"""Data model: schema trees and dependent tuples (paper Sec. 3.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.schema import (
    BOOL,
    EMPTY,
    INT,
    Leaf,
    Node,
    STRING,
    SVar,
    enumerate_tuples,
    leaf,
    node,
    schema_to_str,
    subschema,
    tuple_flatten,
    tuple_get,
    tuple_of,
    validate_tuple,
)

PERSON = Node(Leaf(STRING), Node(Leaf(INT), Leaf(BOOL)))


class TestTypes:
    def test_validate_int(self):
        assert INT.validate(5)
        assert not INT.validate(True)      # bools are not ints here
        assert not INT.validate("5")

    def test_validate_bool_and_string(self):
        assert BOOL.validate(True)
        assert not BOOL.validate(1)
        assert STRING.validate("x")

    def test_unknown_type_unconstrained(self):
        from repro.core.schema import SQLType
        assert SQLType("uuid").validate(object())


class TestSchemas:
    def test_figure_4_example(self):
        # node (leaf string) (node (leaf int) (leaf bool))
        assert PERSON.is_concrete
        assert PERSON.width == 3
        assert [ty for _, ty in PERSON.leaves()] == [STRING, INT, BOOL]
        assert [path for path, _ in PERSON.leaves()] == \
            [("L",), ("R", "L"), ("R", "R")]

    def test_node_builder_right_nests(self):
        assert node(Leaf(INT), Leaf(INT), Leaf(BOOL)) == \
            Node(Leaf(INT), Node(Leaf(INT), Leaf(BOOL)))
        assert node() == EMPTY
        assert leaf(INT) == Leaf(INT)

    def test_svar_not_concrete(self):
        assert not SVar("s").is_concrete
        assert not Node(SVar("s"), Leaf(INT)).is_concrete
        with pytest.raises(ValueError):
            SVar("s").leaves()

    def test_subschema(self):
        assert subschema(PERSON, ()) == PERSON
        assert subschema(PERSON, ("R", "L")) == Leaf(INT)
        with pytest.raises(ValueError):
            subschema(Leaf(INT), ("L",))

    def test_rendering(self):
        assert schema_to_str(EMPTY) == "empty"
        assert "leaf int" in schema_to_str(PERSON)
        assert schema_to_str(SVar("sR")) == "?sR"


class TestTuples:
    BOB = ("Bob", (52, True))

    def test_validate(self):
        assert validate_tuple(PERSON, self.BOB)
        assert not validate_tuple(PERSON, ("Bob", (52, 1)))
        assert validate_tuple(EMPTY, ())
        assert not validate_tuple(EMPTY, (1,))

    def test_tuple_get_figure_4(self):
        # The paper's Left.Right path retrieves 52 from Bob's tuple.
        assert tuple_get(self.BOB, ("R", "L")) == 52
        assert tuple_get(self.BOB, ()) == self.BOB

    def test_tuple_of_and_flatten_roundtrip(self):
        built = tuple_of(PERSON, ["Bob", 52, True])
        assert built == self.BOB
        assert tuple_flatten(PERSON, built) == ["Bob", 52, True]

    def test_tuple_of_errors(self):
        with pytest.raises(ValueError):
            tuple_of(PERSON, ["Bob", 52])
        with pytest.raises(ValueError):
            tuple_of(PERSON, ["Bob", 52, True, 9])
        with pytest.raises(ValueError):
            tuple_of(PERSON, ["Bob", "not int", True])


class TestEnumeration:
    def test_enumerate_empty(self):
        assert list(enumerate_tuples(EMPTY)) == [()]

    def test_enumerate_leaf(self):
        assert list(enumerate_tuples(Leaf(BOOL))) == [False, True]

    def test_enumerate_node_counts(self):
        schema = Node(Leaf(BOOL), Leaf(BOOL))
        assert len(list(enumerate_tuples(schema))) == 4

    def test_enumerate_respects_domains(self):
        out = list(enumerate_tuples(Leaf(INT), {"int": (7, 8)}))
        assert out == [7, 8]

    def test_enumerate_svar_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_tuples(SVar("s")))


@st.composite
def schemas(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return draw(st.sampled_from([EMPTY, Leaf(INT), Leaf(BOOL)]))
    return Node(draw(schemas(depth=depth - 1)),
                draw(schemas(depth=depth - 1)))


class TestProperties:
    @given(schemas())
    def test_enumerated_tuples_validate(self, schema):
        for value in enumerate_tuples(schema):
            assert validate_tuple(schema, value)

    @given(schemas())
    def test_flatten_inverts_build(self, schema):
        for value in list(enumerate_tuples(schema))[:8]:
            flat = tuple_flatten(schema, value)
            assert tuple_of(schema, flat) == value
            assert len(flat) == schema.width
