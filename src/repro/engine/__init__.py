"""Concrete evaluation engine: databases, Figure-7 evaluator, oracles."""

from .constraints import (
    build_index,
    index_query,
    key_characterization_queries,
    satisfies_fd,
    satisfies_key,
)
from .database import (
    DEFAULT_AGGREGATES,
    DEFAULT_FUNCTIONS,
    DEFAULT_PREDICATES,
    Database,
    Interpretation,
)
from .eval import (
    EvaluationError,
    eval_expression,
    eval_predicate,
    eval_projection,
    eval_query,
    relations_equal,
    run_query,
)
from .listsem import bags_equal, eval_query_list, sets_equal
from .random_instances import (
    Counterexample,
    agreement_rate,
    deterministic_expression,
    deterministic_predicate,
    find_counterexample,
    path_projection,
    random_keyed_relation,
    random_leaf_path,
    random_relation,
    random_tuple,
    random_value,
)

__all__ = [
    "Counterexample",
    "Database",
    "DEFAULT_AGGREGATES",
    "DEFAULT_FUNCTIONS",
    "DEFAULT_PREDICATES",
    "EvaluationError",
    "Interpretation",
    "agreement_rate",
    "bags_equal",
    "build_index",
    "deterministic_expression",
    "deterministic_predicate",
    "eval_expression",
    "eval_predicate",
    "eval_projection",
    "eval_query",
    "eval_query_list",
    "find_counterexample",
    "index_query",
    "key_characterization_queries",
    "path_projection",
    "random_keyed_relation",
    "random_leaf_path",
    "random_relation",
    "random_tuple",
    "random_value",
    "relations_equal",
    "run_query",
    "satisfies_fd",
    "satisfies_key",
    "sets_equal",
]
