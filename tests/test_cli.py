"""Command-line interface."""

import json

import pytest

from repro.cli import CLIError, main, parse_table_spec
from repro.core.schema import FLOAT, INT, STRING


class TestTableSpecs:
    def test_parse_basic(self):
        name, columns = parse_table_spec("R(a:int,b:string)")
        assert name == "R"
        assert columns == [("a", INT), ("b", STRING)]

    def test_whitespace_tolerated(self):
        name, columns = parse_table_spec(" Emp( eid : int , did : int ) ")
        assert name == "Emp"
        assert len(columns) == 2

    def test_float_columns(self):
        name, columns = parse_table_spec("M(score:float,n:int)")
        assert name == "M"
        assert columns[0] == ("score", FLOAT)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CLIError, match="duplicate column 'a'"):
            parse_table_spec("R(a:int,a:string)")

    @pytest.mark.parametrize("bad", [
        "R",
        "R()",
        "R(a)",
        "R(a:decimal)",
        "(a:int)",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(CLIError):
            parse_table_spec(bad)


class TestCheckCommand:
    def test_equivalent_pair_exits_zero(self, capsys):
        code = main([
            "check", "--table", "R(a:int,b:int)",
            "SELECT DISTINCT a FROM R",
            "SELECT DISTINCT x.a FROM R AS x, R AS y WHERE x.a = y.a",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PROVED" in out
        assert "EQUIVALENT" in out

    def test_inequivalent_pair_is_disproved(self, capsys):
        code = main([
            "check", "--table", "R(a:int,b:int)",
            "SELECT a FROM R",
            "SELECT b FROM R",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "DISPROVED" in out
        assert "counterexample instance" in out

    def test_bad_table_spec_is_cli_error(self, capsys):
        code = main(["check", "--table", "R(?)", "SELECT a FROM R",
                     "SELECT a FROM R"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_cache_file_roundtrip(self, capsys, tmp_path):
        cache = str(tmp_path / "proofs.json")
        argv = ["check", "--table", "R(a:int)", "--cache", cache,
                "SELECT a FROM R", "SELECT a FROM R"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "cached" in capsys.readouterr().out


class TestBatchCheckCommand:
    def _write_jobs(self, tmp_path):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps({
            "tables": ["R(a:int,b:int)"],
            "pairs": [
                ["SELECT a FROM R", "SELECT a FROM R"],
                ["SELECT a FROM R", "SELECT b FROM R"],
                ["SELECT a FROM R", "SELECT a FROM R"],
            ],
        }))
        return str(jobs)

    def test_batch_reports_each_pair(self, capsys, tmp_path):
        import re
        code = main(["batch-check", self._write_jobs(tmp_path),
                     "--workers", "1"])
        assert code == 1  # one pair is disproved
        out = capsys.readouterr().out
        # Line-anchored: "DISPROVED" contains "PROVED" as a substring.
        assert len(re.findall(r"^PROVED", out, re.M)) == 2
        assert len(re.findall(r"^DISPROVED", out, re.M)) == 1
        assert "2 unique" in out

    def test_malformed_jobs_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert main(["batch-check", str(bad)]) == 2


class TestDisproveCommand:
    def test_disprove_buggy_rule(self, capsys):
        assert main(["disprove", "bad_union_distinct"]) == 0
        out = capsys.readouterr().out
        assert "DISPROVED" in out

    def test_disprove_sql_pair(self, capsys):
        code = main(["disprove", "--table", "R(a:int)",
                     "SELECT a FROM R", "SELECT DISTINCT a FROM R"])
        assert code == 0
        assert "counterexample" in capsys.readouterr().out

    def test_no_counterexample_for_sound_pair(self, capsys):
        code = main(["disprove", "--table", "R(a:int)",
                     "SELECT a FROM R", "SELECT a FROM R"])
        assert code == 1
        assert "NO COUNTEREXAMPLE" in capsys.readouterr().out

    def test_unknown_rule_is_cli_error(self):
        assert main(["disprove", "no_such_rule"]) == 2


class TestProveCommands:
    def test_prove_single_rule(self, capsys):
        assert main(["prove", "join_comm"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_prove_buggy_rule_rejection_is_success(self, capsys):
        # For an unsound rule, REJECTED is the expected outcome → exit 0.
        assert main(["prove", "bad_union_distinct"]) == 0
        out = capsys.readouterr().out
        assert "REJECTED" in out
        assert "counterexample" in out

    def test_prove_unknown_rule(self, capsys):
        assert main(["prove", "no_such_rule"]) == 2

    def test_rules_listing(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "join_comm" in out
        assert "UNSOUND CONTROL" in out

    def test_prove_all(self, capsys):
        assert main(["prove-all"]) == 0
        out = capsys.readouterr().out
        assert "23/23 core rules verified" in out
        assert "all rejected" in out
