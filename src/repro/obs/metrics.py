"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the aggregation half of the observability layer (spans in
:mod:`repro.obs.trace` are the correlation half).  Three metric kinds,
deliberately Prometheus-shaped:

* :class:`Counter` — monotonically increasing totals (cache hits, rules
  fired, verdicts by status),
* :class:`Gauge` — last-written level samples (live interned nodes,
  proof-cache entries),
* :class:`Histogram` — fixed upper-bound buckets with ``sum``/``count``
  (per-tier latencies, e-node growth per saturation iteration).  A value
  lands in the first bucket whose upper bound is ``>=`` the value
  (inclusive edges); values above every edge land in the implicit
  ``+inf`` overflow bucket, so ``len(counts) == len(buckets) + 1``.

Everything interesting happens on *snapshots* — plain JSON-able dicts —
because the batch service's workers are separate processes: a worker
diffs its registry around each job (:func:`diff_snapshots`), ships the
delta back over the result queue, and the parent folds the deltas into
its own registry (:meth:`MetricsRegistry.absorb`) and into the batch
report (:func:`merge_snapshots`).  ``merge_snapshots`` is associative
with :func:`empty_snapshot` as identity — the property that makes
"aggregate across N workers" order-independent — and the test suite
checks it.

Merge semantics per kind: counters and histograms add; gauges take the
maximum (a level, not a total — the max is the only associative,
commutative choice that never fabricates a value neither process saw).

The module-level :data:`REGISTRY` is the process-wide instance every
instrumented module writes to; tests build private registries.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "diff_snapshots",
    "empty_snapshot",
    "gauge",
    "histogram",
    "merge_snapshots",
]

#: Default histogram edges for second-valued latencies: 100 µs .. 10 s.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc by {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A level that can move both ways (a sample, not a total)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-bucket histogram with inclusive upper-bound edges.

    ``observe(v)`` increments ``counts[i]`` for the first bucket with
    ``v <= buckets[i]``, or the trailing overflow slot when ``v`` exceeds
    every edge.  Bucket edges are fixed at creation so snapshots from
    different processes merge bucket-by-bucket.
    """

    __slots__ = ("name", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if list(edges) != sorted(set(edges)):
            raise ValueError(f"histogram {name!r} buckets must be strictly "
                             f"increasing, got {edges}")
        self.name = name
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0


class MetricsRegistry:
    """A named family of metrics with consistent snapshots.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the same object thereafter (asking for an existing name as a
    different kind — or a histogram with different buckets — raises,
    since the snapshots would stop merging).  :meth:`reset` zeroes
    values but keeps the metric objects, so module-level handles held by
    instrumented code stay valid across test isolation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- metric accessors ---------------------------------------------------

    def _check_unique(self, name: str, kind: str) -> None:
        kinds = {"counter": self._counters, "gauge": self._gauges,
                 "histogram": self._histograms}
        for other, table in kinds.items():
            if other != kind and name in table:
                raise ValueError(f"metric {name!r} already registered "
                                 f"as a {other}, not a {kind}")

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_unique(name, "counter")
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_unique(name, "gauge")
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_unique(name, "histogram")
                metric = self._histograms[name] = Histogram(
                    name, buckets if buckets is not None
                    else DEFAULT_LATENCY_BUCKETS)
            elif buckets is not None \
                    and tuple(float(b) for b in buckets) != metric.buckets:
                raise ValueError(
                    f"histogram {name!r} already registered with buckets "
                    f"{metric.buckets}, asked for {tuple(buckets)}")
            return metric

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data copy of every metric (JSON-able, picklable)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in counters.items()},
            "gauges": {n: g.value for n, g in gauges.items()},
            "histograms": {
                n: {"buckets": list(h.buckets), "counts": h.counts,
                    "sum": h.sum, "count": h.count}
                for n, h in histograms.items()},
        }

    def absorb(self, snapshot: Dict[str, Any]) -> None:
        """Fold a (delta) snapshot from another process into this
        registry — the parent-side half of cross-process aggregation."""
        for name, value in snapshot.get("counters", {}).items():
            if value:
                self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            metric = self.gauge(name)
            if value > metric.value:
                metric.set(value)
        for name, data in snapshot.get("histograms", {}).items():
            metric = self.histogram(name, data["buckets"])
            _check_buckets(name, metric.buckets, data["buckets"])
            with metric._lock:
                for i, n in enumerate(data["counts"]):
                    metric._counts[i] += n
                metric._sum += data["sum"]
                metric._count += data["count"]

    def reset(self) -> None:
        """Zero every metric (objects survive; handles stay valid)."""
        with self._lock:
            metrics = (list(self._counters.values())
                       + list(self._gauges.values())
                       + list(self._histograms.values()))
        for metric in metrics:
            metric._reset()


# ---------------------------------------------------------------------------
# Snapshot algebra (pure functions over plain dicts)
# ---------------------------------------------------------------------------

def empty_snapshot() -> Dict[str, Any]:
    """The identity element of :func:`merge_snapshots`."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


def _check_buckets(name: str, a, b) -> None:
    if list(a) != list(b):
        raise ValueError(f"histogram {name!r} bucket mismatch: "
                         f"{list(a)} vs {list(b)}")


def merge_snapshots(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Combine two snapshots: counters/histograms add, gauges take max.

    Associative and commutative with :func:`empty_snapshot` as identity,
    so folding N worker deltas gives the same aggregate in any order.
    Inputs are not mutated.
    """
    out = empty_snapshot()
    for snap in (a, b):
        for name, value in snap.get("counters", {}).items():
            out["counters"][name] = out["counters"].get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            current = out["gauges"].get(name)
            out["gauges"][name] = (value if current is None
                                   else max(current, value))
        for name, data in snap.get("histograms", {}).items():
            current = out["histograms"].get(name)
            if current is None:
                out["histograms"][name] = {
                    "buckets": list(data["buckets"]),
                    "counts": list(data["counts"]),
                    "sum": data["sum"], "count": data["count"]}
            else:
                _check_buckets(name, current["buckets"], data["buckets"])
                current["counts"] = [x + y for x, y in
                                     zip(current["counts"], data["counts"])]
                current["sum"] += data["sum"]
                current["count"] += data["count"]
    return out


def diff_snapshots(before: Dict[str, Any],
                   after: Dict[str, Any]) -> Dict[str, Any]:
    """What happened between two snapshots of one registry.

    Counters and histograms subtract (a metric born after ``before``
    passes through whole); gauges report their ``after`` level.  The
    result is itself a snapshot, so it merges and absorbs like any
    other — this is the per-job delta a batch worker ships home.
    """
    out = empty_snapshot()
    before_c = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        delta = value - before_c.get(name, 0.0)
        if delta:
            out["counters"][name] = delta
    out["gauges"] = dict(after.get("gauges", {}))
    before_h = before.get("histograms", {})
    for name, data in after.get("histograms", {}).items():
        prev = before_h.get(name)
        if prev is None:
            counts, total, count = (list(data["counts"]), data["sum"],
                                    data["count"])
        else:
            _check_buckets(name, prev["buckets"], data["buckets"])
            counts = [x - y for x, y in zip(data["counts"], prev["counts"])]
            total = data["sum"] - prev["sum"]
            count = data["count"] - prev["count"]
        if count:
            out["histograms"][name] = {"buckets": list(data["buckets"]),
                                       "counts": counts, "sum": total,
                                       "count": count}
    return out


#: The process-wide registry every instrumented module writes to.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """``REGISTRY.counter`` shorthand."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """``REGISTRY.gauge`` shorthand."""
    return REGISTRY.gauge(name)


def histogram(name: str,
              buckets: Optional[Sequence[float]] = None) -> Histogram:
    """``REGISTRY.histogram`` shorthand."""
    return REGISTRY.histogram(name, buckets)
