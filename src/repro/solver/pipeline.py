"""The tiered decision pipeline: cheap stages first, expensive ones later.

Query equivalence is undecidable (paper Figure 9), so a service answering
thousands of checks cannot afford to hand every pair to the full prover.
The pipeline escalates through stages in cost order, stopping at the first
definitive answer:

1. **normalize** — denote both queries (Figure 7) and normalize (Sec. 3.4
   + Lemmas 5.1/5.2); everything downstream works on normal forms.
2. **cache** — content-addressed lookup keyed on the alpha-canonical
   normal forms; repeated and alpha-equivalent questions are O(1).
3. **alpha-hash** — syntactic equality of canonical normal forms.  Proves
   every "same query modulo renaming/reassociation" pair without invoking
   the proof search at all.
4. **conjunctive** — the complete decision procedure for the CQ fragment
   (Sec. 5.2).  On closed concrete CQs a negative answer is itself a
   *disproof* (Chandra–Merlin completeness).
5. **prover** — the full engine, under a configurable recursion depth and
   step budget (:class:`~repro.core.equivalence.StepBudgetExceeded`).
6. **disprover** — bounded-exhaustive counterexample search, giving either
   a replayable DISPROVED or a quantified "no counterexample up to k".

The analog in the Horn-clause literature (PAPERS.md) is trying cheap
recursion-free expansions before general solving; the analog in Cosette is
the prover/disprover pair itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core import ast
from ..core.conjunctive import NotConjunctive, decide_cq, is_conjunctive_query
from ..core.denote import Denotation, denote_closed
from ..core.equivalence import (
    Hypotheses,
    MAX_DEPTH,
    NO_HYPOTHESES,
    ProofStats,
    StepBudgetExceeded,
    decide_nsums,
)
from ..core.intern import intern_stats
from ..core.normalize import NSum, normalize, normalize_stats, nsum_subst
from ..core.schema import EMPTY, Schema
from ..engine.eval import EvaluationError
from ..errors import SchemaMismatchError
from ..obs.logs import get_logger
from ..obs.metrics import counter, histogram
from ..obs.trace import span
from .cache import (
    ProofCache,
    digest_of_key,
    fingerprint_from_keys,
    nsum_alpha_repr,
    query_side_digest,
)
from .disprover import (
    Bound,
    disprove,
    disprove_factory,
    free_tables,
    has_metavariables,
)
from .verdict import Status, Verdict


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs for the pipeline's stages (picklable; shared with workers)."""

    #: recursion depth for the full prover (≤ engine MAX_DEPTH).
    prover_depth: int = MAX_DEPTH
    #: step budget for the full prover; None = unbounded.  The hardest
    #: Figure 8 rule needs ~200 steps, so the default is generous for
    #: real rewrites while still stopping runaway searches.
    prover_max_steps: Optional[int] = 50_000
    use_alpha_hash: bool = True
    use_conjunctive: bool = True
    use_prover: bool = True
    use_disprover: bool = True
    disprover_bound: Bound = Bound()
    #: instance budget per check; None = unbounded.
    disprover_max_instances: Optional[int] = 50_000
    #: metavariable instantiations tried when disproving via a factory.
    disprover_draws: int = 2
    #: processes the disprover shards its instance space across.  1 =
    #: in-process; the witness and accounting are identical either way.
    disprover_workers: int = 1
    #: instances per disprover shard; None sizes shards automatically.
    disprover_batch_size: Optional[int] = None
    #: cache inconclusive (UNKNOWN) verdicts too?  Off by default so a
    #: later run with a bigger budget is not short-circuited.
    cache_unknown: bool = False
    #: term-kernel backend this pipeline selects: ``"arena"`` (flat
    #: int-indexed arena tables), ``"object"`` (the historical interned
    #: object walkers), or ``None`` to leave the process-wide choice
    #: (``REPRO_KERNEL`` env, default arena) untouched.  The backend
    #: only changes *how* normal forms are computed, never the verdicts.
    kernel: Optional[str] = None


DEFAULT_CONFIG = PipelineConfig()

_log = get_logger("solver.pipeline")

#: Tier names in escalation order — the keys of ``Verdict.timings``, the
#: suffixes of the ``pipeline.<tier>`` spans, and the suffixes of the
#: ``pipeline.tier.<tier>.seconds`` histograms.
TIERS = ("normalize", "cache", "alpha-hash", "conjunctive", "prover",
         "disprover")

_CHECKS_TOTAL = counter("pipeline.checks_total")
_TIER_SECONDS = {tier: histogram(f"pipeline.tier.{tier}.seconds")
                 for tier in TIERS}


def _record_tier(timings: Dict[str, float], tier: str,
                 seconds: float) -> None:
    """One tier ran for ``seconds``: charge the verdict and the registry."""
    timings[tier] = seconds
    _TIER_SECONDS[tier].observe(seconds)


def _observe_verdict(verdict: Verdict) -> None:
    """Count a finished check by outcome and by deciding stage."""
    counter(f"pipeline.verdicts.{verdict.status.name.lower()}").inc()
    counter(f"pipeline.decided_by.{verdict.stage or 'unknown'}").inc()
    if verdict.cached:
        counter("pipeline.cached_verdicts_total").inc()


def _kernel_counters(norm_before: Dict[str, float]) -> Dict[str, int]:
    """Interned-kernel counters accrued since ``norm_before``.

    Both ends of the delta are :meth:`KernelLRU.snapshot` reads taken
    under the memo table's lock, so the pair (hits, misses) is coherent
    even while other threads normalize concurrently.  The delta is over
    the *lifetime* counters: a window ``reset()`` (metrics rotation)
    between the two snapshots would make window deltas go negative and
    under-report, while the lifetime counters are monotonic.
    """
    after = normalize_stats()
    return {
        "normalize_hits": int(
            after["lifetime_hits"] - norm_before["lifetime_hits"]),
        "normalize_misses": int(
            after["lifetime_misses"] - norm_before["lifetime_misses"]),
        "interned_nodes": intern_stats()["interned_nodes"],
    }


@dataclass(frozen=True)
class NormalizedQuery:
    """One query's memoizable share of an equivalence check.

    Everything :meth:`Pipeline.check` derives *per side* before the tiers
    run — denotation, normal form, canonical alpha key, orientation
    digests — computed once and reusable across every pair the query
    appears in.  This is what turns an all-pairs workload from O(N²) into
    O(N) normalizations: a :class:`~repro.session.QueryHandle` builds its
    ``NormalizedQuery`` lazily and hands it to
    :meth:`Pipeline.check_normalized` for each pairing.

    The handles it holds are *interned*: ``denotation`` and ``nsum`` are
    canonical hash-consed nodes (see :mod:`repro.core.intern`), so two
    memoized queries share every common sub-term, pointer comparisons
    short-circuit inside the engine, and ``alpha_key`` is rendered from
    the node's cached alpha-canonical key.
    """

    query: ast.Query
    ctx_schema: Schema
    denotation: Denotation
    nsum: NSum
    #: canonical textual key (free context/tuple vars labelled @ctx/@tup);
    #: pair fingerprints are hashes over two of these.
    alpha_key: str
    #: sha256 of :attr:`alpha_key` — the cache's orientation tag.
    norm_digest: str
    #: repr-level orientation tag of the raw query.
    repr_digest: str
    #: seconds spent denoting + normalizing (charged to one verdict).
    seconds: float = 0.0
    #: mutable once-flag so a memoized side's cost is not re-reported on
    #: every pair it appears in (timings must sum to ≤ wall-clock).
    _charged: list = field(default_factory=list, repr=False, compare=False)

    @classmethod
    def of(cls, query: ast.Query,
           ctx_schema: Optional[Schema] = None) -> "NormalizedQuery":
        """Denote and normalize one query (the O(N) part of a workload)."""
        ctx_schema = EMPTY if ctx_schema is None else ctx_schema
        with span("pipeline.normalize") as sp:
            d = denote_closed(query, ctx_schema)
            n = normalize(d.body)
            key = nsum_alpha_repr(n, {d.g: "@ctx", d.t: "@tup"})
        _TIER_SECONDS["normalize"].observe(sp.duration)
        return cls(query=query, ctx_schema=ctx_schema, denotation=d,
                   nsum=n, alpha_key=key, norm_digest=digest_of_key(key),
                   repr_digest=query_side_digest(query), seconds=sp.duration)

    def consume_seconds(self) -> float:
        """The normalization cost, the first time it is asked for; 0.0
        after — so a memoized side charges exactly one verdict."""
        if self._charged:
            return 0.0
        self._charged.append(True)
        return self.seconds

    def aligned_nsum(self, onto: "NormalizedQuery") -> NSum:
        """This side's normal form renamed into ``onto``'s variable space.

        A pure free-variable rename (the denotations' ``g``/``t`` are
        globally fresh, so no capture is possible) — O(term size), never a
        renormalization.
        """
        d, o = self.denotation, onto.denotation
        if d is o:
            return self.nsum
        return nsum_subst(self.nsum, {d.g: o.g, d.t: o.t})


class Pipeline:
    """A configured tiered decision pipeline with a proof cache."""

    def __init__(self, config: Optional[PipelineConfig] = None,
                 cache: Optional[ProofCache] = None,
                 cache_path: Optional[str] = None) -> None:
        self.config = config or DEFAULT_CONFIG
        if self.config.kernel is not None:
            from ..core.intern import set_kernel_backend
            set_kernel_backend(self.config.kernel)
        self.cache = cache if cache is not None \
            else ProofCache(path=cache_path)

    # -- public API ---------------------------------------------------------

    def check(self, q1: ast.Query, q2: ast.Query,
              ctx_schema: Optional[Schema] = None,
              hyps: Hypotheses = NO_HYPOTHESES, *,
              factory=None, alias: Optional[str] = None,
              prove_only: bool = False,
              config: Optional[PipelineConfig] = None) -> Verdict:
        """Run the tiers on one equivalence question.

        Args:
            q1, q2: the two HoTTSQL queries.
            ctx_schema: outer context schema (closed queries: EMPTY).
            hyps: integrity-constraint hypotheses.
            factory: optional instance factory for the disprover when the
                queries contain metavariables (a rule's instantiator).
            alias: optional syntactic cache alias to register.
            prove_only: stop after the prover stage (used for rewrite
                certification, where a counterexample search is wasted
                work — an uncertified rewrite is simply discarded).
            config: optional per-call config override (the serve daemon
                threads request-level disprover knobs through here).
                Must be verdict-neutral relative to ``self.config`` —
                the proof cache is shared across calls.
        """
        with span("pipeline.check"):
            # Stage 1: normalize --------------------------------------------
            pre1 = NormalizedQuery.of(q1, ctx_schema)
            pre2 = NormalizedQuery.of(q2, ctx_schema)
            return self.check_normalized(pre1, pre2, hyps, factory=factory,
                                         alias=alias, prove_only=prove_only,
                                         config=config)

    def check_normalized(self, pre1: NormalizedQuery, pre2: NormalizedQuery,
                         hyps: Hypotheses = NO_HYPOTHESES, *,
                         factory=None, alias: Optional[str] = None,
                         prove_only: bool = False,
                         config: Optional[PipelineConfig] = None) -> Verdict:
        """Run the tiers on two *pre-normalized* queries.

        The fast path behind :meth:`check` and the session layer's
        memoized handles: both sides arrive with their denotation, normal
        form, and canonical alpha key already computed (once per query,
        however many pairs it appears in), so this method performs no
        normalization — only fingerprinting, cache probes, and the
        decision tiers proper.
        """
        with span("pipeline.check_normalized"):
            return self._check_normalized(pre1, pre2, hyps, factory=factory,
                                          alias=alias, prove_only=prove_only,
                                          config=config)

    def _check_normalized(self, pre1: NormalizedQuery, pre2: NormalizedQuery,
                          hyps: Hypotheses = NO_HYPOTHESES, *,
                          factory=None, alias: Optional[str] = None,
                          prove_only: bool = False,
                          config: Optional[PipelineConfig] = None) -> Verdict:
        cfg = config if config is not None else self.config
        _CHECKS_TOTAL.inc()
        norm_before = normalize_stats()
        d1, d2 = pre1.denotation, pre2.denotation
        if d1.ctx != d2.ctx:
            raise SchemaMismatchError(
                f"context schemas differ: {d1.ctx} vs {d2.ctx}")
        if d1.schema != d2.schema:
            raise SchemaMismatchError(
                f"output schemas differ: {d1.schema} vs {d2.schema}")
        timings: Dict[str, float] = {
            "normalize": pre1.consume_seconds() + pre2.consume_seconds()}

        # Stage 2: cache ----------------------------------------------------
        with span("pipeline.cache") as sp:
            # The alpha keys already label the denotations' free
            # context/tuple variables canonically (@ctx/@tup), so the
            # fingerprint is stable across runs (and processes).
            fingerprint = fingerprint_from_keys(pre1.alpha_key,
                                                pre2.alpha_key, hyps)
            side_digest = pre1.norm_digest
            hit = self.cache.get(fingerprint)
            sp.attrs["hit"] = hit is not None
        _record_tier(timings, "cache", sp.duration)
        if hit is not None:
            # The fingerprint is symmetric; re-orient the stored
            # counterexample (if any) to this caller's (Q1, Q2) order,
            # then re-tag with *this* caller's digests so downstream
            # readers (the batch service) see a consistent orientation.
            hit = hit.oriented_for(norm_digest=side_digest)
            hit.lhs_norm_digest = side_digest
            hit.lhs_repr_digest = pre1.repr_digest
            hit.rhs_repr_digest = pre2.repr_digest
            hit.timings = dict(timings)
            hit.kernel_counters = _kernel_counters(norm_before)
            if alias is not None:
                self.cache.register_alias(alias, fingerprint)
            _observe_verdict(hit)
            return hit

        # Stage 3: alpha-hash — the memoized canonical keys decide alpha
        # equality directly (they label free context/tuple variables
        # canonically), so the common "same query modulo renaming /
        # reassociation" case never even aligns the normal forms.
        if cfg.use_alpha_hash:
            with span("pipeline.alpha-hash") as sp:
                same = pre1.alpha_key == pre2.alpha_key
                sp.attrs["equal"] = same
            _record_tier(timings, "alpha-hash", sp.duration)
            if same:
                verdict = Verdict(
                    status=Status.PROVED, stage="alpha-hash",
                    fingerprint=fingerprint, timings=dict(timings),
                    detail="normal forms are alpha-equal")
                return self._finish(verdict, pre1, pre2, fingerprint,
                                    alias, prove_only, norm_before)

        n1 = pre1.nsum
        n2 = pre2.aligned_nsum(pre1)
        verdict = self._decide(pre1.query, pre2.query, pre1.ctx_schema,
                               hyps, n1, n2, fingerprint, timings, factory,
                               prove_only, cfg)
        return self._finish(verdict, pre1, pre2, fingerprint, alias,
                            prove_only, norm_before)

    def _finish(self, verdict: Verdict, pre1: NormalizedQuery,
                pre2: NormalizedQuery, fingerprint: str,
                alias: Optional[str], prove_only: bool,
                norm_before: Dict[str, float]) -> Verdict:
        """Tag a fresh verdict with digests + kernel counters, cache it."""
        verdict.kernel_counters = _kernel_counters(norm_before)
        verdict.lhs_norm_digest = pre1.norm_digest
        verdict.lhs_repr_digest = pre1.repr_digest
        verdict.rhs_repr_digest = pre2.repr_digest
        # A prove_only UNKNOWN is partial (the disprover never ran), so it
        # is never cached — even under cache_unknown — lest it mask the
        # disproof a later full check would find.
        if verdict.status is not Status.UNKNOWN \
                or (self.config.cache_unknown and not prove_only):
            self.cache.put(fingerprint, verdict, alias=alias)
        _observe_verdict(verdict)
        _log.debug("verdict %s at stage %s (%.3f ms)", verdict.status.name,
                   verdict.stage, verdict.total_seconds * 1e3)
        return verdict

    def certify(self, q1: ast.Query, q2: ast.Query,
                ctx_schema: Optional[Schema] = None,
                hyps: Hypotheses = NO_HYPOTHESES) -> bool:
        """Prove-or-discard entry point for rewrite certification."""
        return self.check(q1, q2, ctx_schema, hyps, prove_only=True).proved

    def check_rule(self, rule) -> Verdict:
        """Check a :class:`~repro.rules.rule.RewriteRule` end to end."""
        return self.check(rule.lhs, rule.rhs, rule.ctx_schema,
                          rule.hypotheses, factory=rule.instantiate)

    # -- the tiers ----------------------------------------------------------

    def _decide(self, q1, q2, ctx_schema, hyps, n1, n2, fingerprint,
                timings, factory, prove_only,
                cfg: Optional[PipelineConfig] = None) -> Verdict:
        cfg = cfg if cfg is not None else self.config

        def verdict(status: Status, stage: str, **kw) -> Verdict:
            return Verdict(status=status, stage=stage,
                           fingerprint=fingerprint, timings=dict(timings),
                           **kw)

        # (Stage 3, alpha-hash, runs in check_normalized on the memoized
        # canonical keys — reaching this method means it did not decide.)

        # Stage 4: conjunctive-fragment decision ----------------------------
        cq_disproof = False
        if cfg.use_conjunctive and is_conjunctive_query(q1) \
                and is_conjunctive_query(q2):
            with span("pipeline.conjunctive") as sp:
                try:
                    decision = decide_cq(q1, q2, ctx_schema, hyps,
                                         require_fragment=False,
                                         normals=(n1, n2))
                except NotConjunctive:
                    decision = None
                sp.attrs["decided"] = decision is not None
            _record_tier(timings, "conjunctive", sp.duration)
            if decision is not None and decision.equivalent:
                return verdict(
                    Status.PROVED, "conjunctive", engine_steps=1,
                    detail="decided by the complete CQ procedure "
                           "(containment mappings in both directions)")
            # On *closed, concrete* CQs with no integrity constraints the
            # procedure is complete, so a failed mapping search is a
            # genuine disproof; the disprover stage then looks for a
            # concrete witness instance to attach.
            if decision is not None and ctx_schema == EMPTY \
                    and not hyps.keys and not hyps.fds \
                    and not has_metavariables(q1) \
                    and not has_metavariables(q2):
                cq_disproof = True

        # Stage 5: full prover under budget ---------------------------------
        budget_note = ""
        prover_steps = 0
        if cfg.use_prover and not cq_disproof:
            with span("pipeline.prover") as sp:
                stats = ProofStats(max_steps=cfg.prover_max_steps)
                try:
                    result = decide_nsums(n1, n2, hyps,
                                          depth=cfg.prover_depth,
                                          stats=stats)
                    equal = result.equal
                except StepBudgetExceeded:
                    equal = False
                    budget_note = (f"prover stopped at its "
                                   f"{cfg.prover_max_steps}-step budget")
                prover_steps = stats.total_steps
                sp.attrs["steps"] = prover_steps
                sp.attrs["equal"] = equal
            _record_tier(timings, "prover", sp.duration)
            counter("pipeline.prover_steps_total").inc(prover_steps)
            if equal:
                return verdict(Status.PROVED, "prover",
                               engine_steps=prover_steps)

        if prove_only:
            if cq_disproof:
                return verdict(
                    Status.DISPROVED, "conjunctive",
                    detail="CQ decision procedure is complete on this "
                           "fragment: no containment mapping exists")
            return verdict(Status.UNKNOWN, "prover",
                           engine_steps=prover_steps,
                           detail=budget_note or "prover found no proof "
                           "(sound but incomplete)")

        # Stage 6: bounded-exhaustive disprover -----------------------------
        bound_info = None
        if cfg.use_disprover:
            with span("pipeline.disprover") as sp:
                result = self._run_disprover(q1, q2, ctx_schema, hyps,
                                             factory, cfg)
                sp.attrs["found"] = bool(result is not None and result.found)
            _record_tier(timings, "disprover", sp.duration)
            if result is not None:
                bound_info = result.info()
                if result.found:
                    return verdict(
                        Status.DISPROVED, "disprover",
                        engine_steps=prover_steps,
                        counterexample=result.record, bound=bound_info,
                        live_counterexample=result.counterexample,
                        detail="concrete counterexample instance found")

        if cq_disproof:
            return verdict(
                Status.DISPROVED, "conjunctive", bound=bound_info,
                detail="CQ decision procedure is complete on this "
                       "fragment: no containment mapping exists"
                       + ("; no small witness within the disprover bound"
                          if bound_info is not None else ""))
        detail = budget_note or ("prover found no proof (sound but "
                                 "incomplete)")
        return verdict(Status.UNKNOWN,
                       "disprover" if bound_info is not None else "prover",
                       engine_steps=prover_steps,
                       bound=bound_info, detail=detail)

    def _run_disprover(self, q1, q2, ctx_schema, hyps, factory,
                       cfg: Optional[PipelineConfig] = None):
        cfg = cfg if cfg is not None else self.config
        if factory is not None:
            return disprove_factory(
                factory, bound=cfg.disprover_bound,
                draws=cfg.disprover_draws,
                max_instances=cfg.disprover_max_instances, hyps=hyps,
                workers=cfg.disprover_workers,
                batch_size=cfg.disprover_batch_size)
        if ctx_schema != EMPTY or has_metavariables(q1) \
                or has_metavariables(q2):
            return None  # nothing concrete to enumerate
        try:
            tables = dict(free_tables(q1))
            for name, schema in free_tables(q2).items():
                if tables.get(name, schema) != schema:
                    # The two queries read the same table at different
                    # schemas; no single instance interprets both.
                    return None
                tables[name] = schema
            return disprove(q1, q2, tables, bound=cfg.disprover_bound,
                            max_instances=cfg.disprover_max_instances,
                            hyps=hyps, workers=cfg.disprover_workers,
                            batch_size=cfg.disprover_batch_size)
        except (ValueError, EvaluationError):
            # Not concretely enumerable (schema conflict, or a symbol —
            # e.g. an uninterpreted scalar function — with no concrete
            # interpretation): the disprover abstains, it doesn't crash.
            return None


# ---------------------------------------------------------------------------
# Shared default pipeline (process-wide proof cache)
# ---------------------------------------------------------------------------

_DEFAULT: Optional[Pipeline] = None


def default_pipeline() -> Pipeline:
    """The process-wide pipeline used by certification call sites.

    Sharing one instance means every consumer — the rule applier, the
    plan rewriter, the planner's final certification — feeds and profits
    from the same proof cache.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Pipeline()
    return _DEFAULT


def reset_default_pipeline() -> None:
    """Drop the shared pipeline (tests use this to isolate cache state)."""
    global _DEFAULT
    _DEFAULT = None


__all__ = [
    "DEFAULT_CONFIG",
    "NormalizedQuery",
    "Pipeline",
    "PipelineConfig",
    "default_pipeline",
    "reset_default_pipeline",
]
