"""Content-addressed proof cache for equivalence verdicts.

Equivalence of two queries depends only on their *normal forms* modulo
alpha-renaming (plus the integrity-constraint hypotheses), so a verdict can
be cached under a fingerprint of exactly that data:

    fingerprint = sha256(sorted(alpha_key(NF₁), alpha_key(NF₂)) + hyps)

Sorting the two keys makes the fingerprint symmetric (equivalence is), and
using the *alpha* keys makes the cache hit on alpha-equivalent — not merely
textually identical — queries.  A secondary **alias index** maps cheap
syntactic keys (e.g. the SQL pair a batch job carries) onto fingerprints,
so a warm batch run answers without even normalizing.

The cache is a bounded in-memory LRU with optional JSON persistence, which
is what lets a long-running verification service amortize proof effort
across requests and restarts.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from typing import Dict, Optional

from ..core.equivalence import Hypotheses
from ..core.intern import KernelLRU
from ..core.normalize import NSum, nsum_alpha_key
from ..fslock import file_lock
from ..obs.logs import get_logger
from ..obs.metrics import counter, gauge
from ..obs.trace import span
from .verdict import Verdict

_log = get_logger("solver.cache")

_HITS = counter("proofcache.hits_total")
_MISSES = counter("proofcache.misses_total")
_EVICTIONS = counter("proofcache.evictions_total")
_PERSISTS = counter("proofcache.persists_total")
_LOADS = counter("proofcache.loaded_entries_total")
_ENTRIES = gauge("proofcache.entries")

#: Memo for :func:`nsum_alpha_repr`, keyed on the interned normal form
#: plus the (small) free-variable labelling.  Repeated fingerprinting of
#: a memoized normal form — every pair of an all-pairs workload — is a
#: table lookup instead of an O(term) key rendering.
_ALPHA_REPR_MEMO = KernelLRU(4096, "alpha-repr")


def nsum_alpha_repr(n: NSum, free_env: Optional[Dict] = None) -> str:
    """The canonical (alpha-invariant) textual key of one normal form.

    ``free_env`` maps the *free* variables of the normal form (the
    denotation's context/tuple variables, whose fresh names differ from run
    to run) onto canonical labels; without it the key would depend on a
    process-global fresh-name counter.  Everything in this module — pair
    fingerprints and side digests alike — is a hash of these keys, so a
    caller that memoizes the key per query (a :class:`~repro.session
    .QueryHandle`) can fingerprint any pair without renormalizing.
    """
    memo_key = (n, frozenset(free_env.items()) if free_env else None)
    hit = _ALPHA_REPR_MEMO.get(memo_key)
    if hit is not None:
        return hit
    rendered = repr(nsum_alpha_key(n, dict(free_env or {})))
    _ALPHA_REPR_MEMO.put(memo_key, rendered)
    return rendered


def fingerprint_from_keys(k1: str, k2: str,
                          hyps: Hypotheses = None) -> str:
    """Symmetric pair fingerprint over two precomputed alpha keys."""
    if k2 < k1:
        k1, k2 = k2, k1
    hyp_part = "" if not hyps or hyps == Hypotheses() else repr(hyps)
    digest = hashlib.sha256()
    digest.update(k1.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(k2.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(hyp_part.encode("utf-8"))
    return digest.hexdigest()


def nsum_fingerprint(n1: NSum, n2: NSum,
                     hyps: Hypotheses = None,
                     free_env: Optional[Dict] = None) -> str:
    """Symmetric content address of an equivalence question.

    Alpha-equivalent normal forms map to the same digest, and the (Q1, Q2)
    and (Q2, Q1) orders agree.  See :func:`nsum_alpha_repr` for the role
    of ``free_env``.
    """
    return fingerprint_from_keys(nsum_alpha_repr(n1, free_env),
                                 nsum_alpha_repr(n2, free_env), hyps)


def digest_of_key(key: str) -> str:
    """Digest of one precomputed alpha key (orientation tag)."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


def nsum_side_digest(n: NSum, free_env: Optional[Dict] = None) -> str:
    """Digest identifying one side of a question (orientation tag)."""
    return digest_of_key(nsum_alpha_repr(n, free_env))


#: Memo for :func:`query_side_digest` (entries hold the query, so ids are
#: stable while cached).
_QUERY_DIGEST_MEMO = KernelLRU(4096, "query-digest")


def query_side_digest(q) -> str:
    """Repr-level orientation tag for one query of a pair (memoized)."""
    key = id(q)
    hit = _QUERY_DIGEST_MEMO.get(key)
    if hit is not None and hit[0] is q:
        return hit[1]
    digest = hashlib.sha256(repr(q).encode("utf-8")).hexdigest()
    _QUERY_DIGEST_MEMO.put(key, (q, digest))
    return digest


def syntactic_alias(q1, q2, ctx_schema=None,
                    hyps: Hypotheses = None) -> str:
    """A cheap symmetric key over the *un-normalized* question.

    Distinct aliases may share a fingerprint (alpha-equivalent inputs);
    the alias index only ever short-circuits work, never changes answers.
    """
    k1, k2 = repr(q1), repr(q2)
    if k2 < k1:
        k1, k2 = k2, k1
    extra = f"|{ctx_schema!r}|{hyps!r}"
    return hashlib.sha256((k1 + "\x00" + k2 + extra)
                          .encode("utf-8")).hexdigest()


class ProofCache:
    """Bounded LRU of fingerprint → :class:`Verdict`, with persistence.

    Args:
        max_size: LRU capacity (entries beyond it evict oldest-used).
        path: optional JSON file; :meth:`load` pulls existing entries and
            :meth:`save` writes the current contents atomically.
    """

    def __init__(self, max_size: int = 4096,
                 path: Optional[str] = None) -> None:
        if max_size <= 0:
            raise ValueError("cache max_size must be positive")
        self.max_size = max_size
        self.path = path
        self._entries: "OrderedDict[str, Verdict]" = OrderedDict()
        self._aliases: Dict[str, str] = {}
        self.hits = 0
        self.misses = 0
        if path is not None and os.path.exists(path):
            # A persisted cache is an optimization, never a requirement: a
            # corrupt or incompatible file must not take the service down.
            try:
                self.load(path)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                _log.warning("ignoring unreadable proof cache %r: %s",
                             path, exc)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- lookups ------------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[Verdict]:
        """Cached verdict for a fingerprint (counts toward hit rate)."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            _MISSES.inc()
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        _HITS.inc()
        return self._copy_as_cached(entry)

    def get_by_alias(self, alias: str) -> Optional[Verdict]:
        """Cached verdict for a syntactic alias, if ever registered.

        Misses here are *not* counted: an alias miss normally precedes a
        fingerprint probe for the same question, and double-counting would
        understate the hit rate.
        """
        fingerprint = self._aliases.get(alias)
        if fingerprint is None:
            return None
        if fingerprint not in self._entries:
            del self._aliases[alias]  # lazily prune a dangling alias
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        _HITS.inc()
        return self._copy_as_cached(self._entries[fingerprint])

    @staticmethod
    def _copy_as_cached(entry: Verdict) -> Verdict:
        copy = Verdict.from_dict(entry.to_dict())
        copy.cached = True
        copy.stage = entry.stage
        return copy

    # -- insertion ----------------------------------------------------------

    def put(self, fingerprint: str, verdict: Verdict,
            alias: Optional[str] = None) -> None:
        """Store a verdict (serialization-safe part only) under its key."""
        stored = Verdict.from_dict(verdict.to_dict())
        stored.fingerprint = fingerprint
        self._entries[fingerprint] = stored
        self._entries.move_to_end(fingerprint)
        if alias is not None:
            self._aliases[alias] = fingerprint
        while len(self._entries) > self.max_size:
            self._entries.popitem(last=False)
            _EVICTIONS.inc()
        _ENTRIES.set(len(self._entries))
        # Dangling aliases are pruned lazily on lookup; a bulk sweep only
        # runs when the index has clearly outgrown the entries it serves.
        if len(self._aliases) > 2 * self.max_size:
            self._aliases = {a: f for a, f in self._aliases.items()
                             if f in self._entries}

    def register_alias(self, alias: str, fingerprint: str) -> None:
        if fingerprint in self._entries:
            self._aliases[alias] = fingerprint

    def clear(self) -> None:
        self._entries.clear()
        self._aliases.clear()
        self.hits = 0
        self.misses = 0
        _ENTRIES.set(0)

    # -- persistence --------------------------------------------------------

    def save(self, path: Optional[str] = None) -> str:
        """Persist entries + alias index to JSON — merge-on-save.

        Concurrent savers (two sessions, two processes, one cache file)
        used to race last-writer-wins: whichever ``os.replace`` landed
        second silently discarded the other's proofs.  Saving now runs
        under an advisory file lock and *merges* with whatever is already
        on disk: disk-only entries are kept (ranked colder than this
        process's own), this cache's entries win any fingerprint both
        sides hold, and the union is capped at ``max_size`` dropping the
        coldest — so the union of two concurrent savers survives, not a
        random one of them.
        """
        path = path or self.path
        if path is None:
            raise ValueError("no persistence path configured")
        with span("proofcache.save", entries=len(self._entries)):
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            with file_lock(path):
                disk_entries, disk_aliases = self._read_payload(path)
                merged: "OrderedDict[str, dict]" = OrderedDict(
                    (fp, data) for fp, data in disk_entries
                    if fp not in self._entries)
                for fp, verdict in self._entries.items():
                    merged[fp] = verdict.to_dict()
                while len(merged) > self.max_size:
                    merged.popitem(last=False)
                aliases = {a: f for a, f in disk_aliases.items()
                           if f in merged}
                aliases.update((a, f) for a, f in self._aliases.items()
                               if f in merged)
                payload = {
                    "version": 1,
                    "entries": [[fp, data] for fp, data in merged.items()],
                    "aliases": aliases,
                }
                fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as handle:
                        json.dump(payload, handle)
                    os.replace(tmp, path)
                finally:
                    if os.path.exists(tmp):
                        os.unlink(tmp)
        _PERSISTS.inc()
        _log.debug("persisted %d cache entries to %s", len(payload["entries"]),
                   path)
        return path

    @staticmethod
    def _read_payload(path: str):
        """Current (entries, aliases) on disk; empty when absent/corrupt.

        Used by merge-on-save, where an unreadable file must degrade to
        plain overwrite rather than failing the save.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return [], {}
        if not isinstance(payload, dict) or payload.get("version") != 1:
            return [], {}
        entries = payload.get("entries", [])
        aliases = payload.get("aliases", {})
        if not isinstance(entries, list) or not isinstance(aliases, dict):
            return [], {}
        return entries, aliases

    def load(self, path: Optional[str] = None) -> int:
        """Merge entries from a JSON file; returns how many were loaded.

        Loaded entries rank *colder* than anything already in memory: a
        warm in-memory verdict is never displaced (neither its value nor
        its LRU position) by a disk entry, and when the merge overflows
        ``max_size`` it is the loaded cold entries that evict first — a
        load into a warm cache used to do the opposite, evicting the warm
        working set to make room for disk history.  Hit/miss counters are
        untouched; loading is not a probe.
        """
        path = path or self.path
        if path is None:
            raise ValueError("no persistence path configured")
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != 1:
            raise ValueError(f"unsupported cache file version in {path!r}")
        loaded = 0
        fresh: "OrderedDict[str, Verdict]" = OrderedDict()
        for fingerprint, data in payload.get("entries", []):
            if fingerprint in self._entries:
                continue  # the warm in-memory verdict wins
            verdict = Verdict.from_dict(data)
            verdict.fingerprint = fingerprint
            fresh[fingerprint] = verdict
            loaded += 1
        # Disk history first (coldest), then the existing working set in
        # its current recency order (warmest last).
        fresh.update(self._entries)
        self._entries = fresh
        for alias, fingerprint in payload.get("aliases", {}).items():
            if fingerprint in self._entries:
                self._aliases.setdefault(alias, fingerprint)
        while len(self._entries) > self.max_size:
            self._entries.popitem(last=False)
            _EVICTIONS.inc()
        _ENTRIES.set(len(self._entries))
        _LOADS.inc(loaded)
        _log.debug("loaded %d cache entries from %s", loaded, path)
        return loaded


__all__ = ["ProofCache", "digest_of_key", "fingerprint_from_keys",
           "nsum_alpha_repr", "nsum_fingerprint", "nsum_side_digest",
           "query_side_digest", "syntactic_alias"]
