"""Concrete evaluation of HoTTSQL queries over an arbitrary semiring.

This is the executable image of the paper's Figure 7.  Where the
denotational semantics writes ``Σ_{t' : Tuple σ}``, the evaluator iterates
over the *support* of the inner K-relation — sound because tuples with
multiplicity 0 contribute nothing to the sum.  Supports stay finite even
when individual multiplicities are infinite (the ``NAT_INF`` semiring), so
this evaluator realizes the paper's infinite-bag semantics on finitely
presented instances.

The evaluator is completely generic in the semiring: the test suite runs
every rewrite rule under set semantics (``BOOL``), bag semantics (``NAT``),
cardinal semantics (``NAT_INF``), and provenance polynomials, exploiting
that ℕ[X] is the free commutative semiring.
"""

from __future__ import annotations

from typing import Any

from ..core import ast
from ..semiring.cardinal import Cardinal
from ..semiring.krelation import KRelation
from ..semiring.semirings import NAT, Semiring
from .database import Interpretation


class EvaluationError(Exception):
    """Raised when a query cannot be evaluated under an interpretation."""


def _lookup(getter, name: str):
    """Resolve a symbol through an interpretation accessor, converting
    the mapping's KeyError into a typed evaluation failure (the solver's
    disprover tier catches EvaluationError to mean "this query cannot be
    concretely enumerated", e.g. an uninterpreted function symbol)."""
    try:
        return getter(name)
    except KeyError as exc:
        raise EvaluationError(str(exc)) from exc


def eval_query(query: ast.Query, interp: Interpretation,
               g: Any = (), semiring: Semiring = NAT) -> KRelation:
    """Evaluate ``⟦q⟧ g`` to a K-relation (paper Figure 7, concretely)."""
    if isinstance(query, ast.Table):
        rel = interp.relation(query.name)
        if rel.semiring is not semiring:
            raise EvaluationError(
                f"table {query.name!r} is annotated over "
                f"{rel.semiring.name}, evaluation requested over "
                f"{semiring.name}")
        return rel

    if isinstance(query, ast.Select):
        inner = eval_query(query.query, interp, g, semiring)
        out = KRelation(semiring)
        for row, annot in inner.items():
            image = eval_projection(query.projection, interp, (g, row))
            out.add(image, annot)
        return out

    if isinstance(query, ast.Product):
        left = eval_query(query.left, interp, g, semiring)
        right = eval_query(query.right, interp, g, semiring)
        return left.cross(right)

    if isinstance(query, ast.Where):
        inner = eval_query(query.query, interp, g, semiring)
        return inner.select(
            lambda row: eval_predicate(query.predicate, interp, (g, row),
                                       semiring))

    if isinstance(query, ast.UnionAll):
        return eval_query(query.left, interp, g, semiring).union_all(
            eval_query(query.right, interp, g, semiring))

    if isinstance(query, ast.Except):
        return eval_query(query.left, interp, g, semiring).except_(
            eval_query(query.right, interp, g, semiring))

    if isinstance(query, ast.Distinct):
        return eval_query(query.query, interp, g, semiring).distinct()

    raise EvaluationError(f"cannot evaluate query node: {query!r}")


def eval_predicate(pred: ast.Predicate, interp: Interpretation, g: Any,
                   semiring: Semiring = NAT) -> bool:
    """Evaluate ``⟦b⟧ g`` to a truth value."""
    if isinstance(pred, ast.PredEq):
        return eval_expression(pred.left, interp, g, semiring) == \
            eval_expression(pred.right, interp, g, semiring)
    if isinstance(pred, ast.PredAnd):
        return eval_predicate(pred.left, interp, g, semiring) and \
            eval_predicate(pred.right, interp, g, semiring)
    if isinstance(pred, ast.PredOr):
        return eval_predicate(pred.left, interp, g, semiring) or \
            eval_predicate(pred.right, interp, g, semiring)
    if isinstance(pred, ast.PredNot):
        return not eval_predicate(pred.operand, interp, g, semiring)
    if isinstance(pred, ast.PredTrue):
        return True
    if isinstance(pred, ast.PredFalse):
        return False
    if isinstance(pred, ast.Exists):
        inner = eval_query(pred.query, interp, g, semiring)
        return len(inner) > 0
    if isinstance(pred, ast.CastPred):
        recast = eval_projection(pred.projection, interp, g)
        return eval_predicate(pred.predicate, interp, recast, semiring)
    if isinstance(pred, ast.PredVar):
        return bool(_lookup(interp.predicate, pred.name)(g))
    if isinstance(pred, ast.PredFunc):
        args = [eval_expression(a, interp, g, semiring) for a in pred.args]
        return bool(_lookup(interp.predicate, pred.name)(*args))
    raise EvaluationError(f"cannot evaluate predicate node: {pred!r}")


def eval_expression(expr: ast.Expression, interp: Interpretation, g: Any,
                    semiring: Semiring = NAT) -> Any:
    """Evaluate ``⟦e⟧ g`` to a scalar value."""
    if isinstance(expr, ast.P2E):
        return eval_projection(expr.projection, interp, g)
    if isinstance(expr, ast.Const):
        return expr.value
    if isinstance(expr, ast.Func):
        args = [eval_expression(a, interp, g, semiring) for a in expr.args]
        return _lookup(interp.function, expr.name)(*args)
    if isinstance(expr, ast.Agg):
        inner = eval_query(expr.query, interp, g, semiring)
        bag = [(row, _multiplicity_as_count(annot))
               for row, annot in inner.items()]
        return _lookup(interp.aggregate, expr.name)(bag)
    if isinstance(expr, ast.CastExpr):
        recast = eval_projection(expr.projection, interp, g)
        return eval_expression(expr.expression, interp, recast, semiring)
    if isinstance(expr, ast.ExprVar):
        return _lookup(interp.expression, expr.name)(g)
    raise EvaluationError(f"cannot evaluate expression node: {expr!r}")


def eval_projection(proj: ast.Projection, interp: Interpretation,
                    value: Any) -> Any:
    """Evaluate ``⟦p⟧ g`` — a structural function on nested tuples."""
    if isinstance(proj, ast.Star):
        return value
    if isinstance(proj, ast.LeftP):
        return value[0]
    if isinstance(proj, ast.RightP):
        return value[1]
    if isinstance(proj, ast.EmptyP):
        return ()
    if isinstance(proj, ast.Compose):
        middle = eval_projection(proj.first, interp, value)
        return eval_projection(proj.second, interp, middle)
    if isinstance(proj, ast.Duplicate):
        return (eval_projection(proj.left, interp, value),
                eval_projection(proj.right, interp, value))
    if isinstance(proj, ast.E2P):
        return eval_expression(proj.expression, interp, value)
    if isinstance(proj, ast.PVar):
        return _lookup(interp.projection, proj.name)(value)
    raise EvaluationError(f"cannot evaluate projection node: {proj!r}")


def _multiplicity_as_count(annot: Any) -> int:
    """Convert a semiring annotation to the count an aggregate folds over."""
    if isinstance(annot, bool):
        return 1 if annot else 0
    if isinstance(annot, int):
        return annot
    if isinstance(annot, Cardinal):
        if annot.is_infinite:
            raise EvaluationError(
                "cannot aggregate over a tuple with infinite multiplicity")
        return annot.finite_value()
    raise EvaluationError(
        f"aggregation is not defined over annotations of type "
        f"{type(annot).__name__}")


def run_query(query: ast.Query, interp: Interpretation,
              semiring: Semiring = NAT) -> KRelation:
    """Evaluate a closed query (empty outer context)."""
    return eval_query(query, interp, (), semiring)


def relations_equal(a: KRelation, b: KRelation) -> bool:
    """Pointwise equality of two K-relations (used by the oracle)."""
    return a == b


__all__ = [
    "EvaluationError",
    "eval_expression",
    "eval_predicate",
    "eval_projection",
    "eval_query",
    "relations_equal",
    "run_query",
]
