"""The executable Figure 7 semantics, across semirings."""

from fractions import Fraction

import pytest

from repro.core import ast
from repro.core.schema import EMPTY, INT, Leaf, Node
from repro.engine import Database, EvaluationError, Interpretation, run_query
from repro.semiring import BOOL, KRelation, NAT, NAT_INF, PROVENANCE
from repro.semiring.provenance import Polynomial

R_SCHEMA = Node(Leaf(INT), Leaf(INT))
R_ROWS = [[1, 40], [2, 40], [2, 50]]


@pytest.fixture
def db():
    database = Database(NAT)
    database.create_table("R", R_SCHEMA, R_ROWS)
    database.create_table("S", R_SCHEMA, [[2, 40], [3, 10]])
    return database


@pytest.fixture
def interp(db):
    return db.interpretation()


def table(name="R"):
    return ast.Table(name, R_SCHEMA)


class TestPaperRunningExample:
    """Sec. 2's Q1/Q2 over R(a, b) = {(1,40), (2,40), (2,50)}."""

    def test_q1_bag(self, interp):
        q1 = ast.Select(ast.path(ast.RIGHT, ast.LEFT), table())
        out = run_query(q1, interp)
        assert dict(out.items()) == {1: 1, 2: 2}

    def test_q2_set(self, interp):
        q2 = ast.Distinct(ast.Select(ast.path(ast.RIGHT, ast.LEFT), table()))
        out = run_query(q2, interp)
        assert dict(out.items()) == {1: 1, 2: 1}


class TestOperators:
    def test_product(self, interp):
        out = run_query(ast.Product(table(), table("S")), interp)
        assert out.annotation(((2, 40), (2, 40))) == 1
        assert len(out) == 6

    def test_where_with_comparison(self, interp):
        pred = ast.PredFunc("lt", (
            ast.P2E(ast.path(ast.RIGHT, ast.RIGHT), INT),
            ast.Const(45, INT)))
        out = run_query(ast.Where(table(), pred), interp)
        assert out.support() == frozenset({(1, 40), (2, 40)})

    def test_union_all(self, interp):
        out = run_query(ast.UnionAll(table(), table("S")), interp)
        assert out.annotation((2, 40)) == 2

    def test_except(self, interp):
        out = run_query(ast.Except(table(), table("S")), interp)
        assert out.support() == frozenset({(1, 40), (2, 50)})

    def test_exists_correlated(self, interp):
        # rows of R whose `a` appears in S
        pred = ast.Exists(ast.Where(table("S"), ast.PredEq(
            ast.P2E(ast.path(ast.RIGHT, ast.LEFT), INT),
            ast.P2E(ast.path(ast.LEFT, ast.RIGHT, ast.LEFT), INT))))
        out = run_query(ast.Where(table(), pred), interp)
        assert out.support() == frozenset({(2, 40), (2, 50)})

    def test_predicate_connectives(self, interp):
        t = ast.PredTrue()
        f = ast.PredFalse()
        assert len(run_query(ast.Where(table(), f), interp)) == 0
        assert run_query(ast.Where(table(), t), interp) == \
            interp.relation("R")
        both = ast.PredAnd(t, ast.PredNot(f))
        assert run_query(ast.Where(table(), both), interp) == \
            interp.relation("R")
        either = ast.PredOr(f, t)
        assert run_query(ast.Where(table(), either), interp) == \
            interp.relation("R")


class TestExpressions:
    def test_scalar_functions(self, interp):
        # SELECT add(a, b) FROM R
        expr = ast.Func("add", (
            ast.P2E(ast.path(ast.RIGHT, ast.LEFT), INT),
            ast.P2E(ast.path(ast.RIGHT, ast.RIGHT), INT)), INT)
        q = ast.Select(ast.E2P(expr, INT), table())
        out = run_query(q, interp)
        assert dict(out.items()) == {41: 1, 42: 1, 52: 1}

    def test_aggregate_sum(self, interp):
        inner = ast.Select(ast.path(ast.RIGHT, ast.RIGHT), table())
        agg = ast.Agg("SUM", inner, INT)
        q = ast.Select(ast.E2P(agg, INT), ast.Table("S", R_SCHEMA))
        out = run_query(q, interp)
        assert dict(out.items()) == {130: 2}

    def test_aggregate_catalog(self, interp):
        inner = ast.Select(ast.path(ast.RIGHT, ast.RIGHT), table())
        values = {
            "SUM": 130, "COUNT": 3, "MAX": 50, "MIN": 40,
            "AVG": Fraction(130, 3),
        }
        for name, expected in values.items():
            agg = ast.Agg(name, inner, INT)
            q = ast.Select(ast.E2P(agg, INT), ast.Table("S", R_SCHEMA))
            out = run_query(q, interp)
            assert out.annotation(expected) == 2, name

    def test_const_and_exprvar(self, interp):
        interp.expressions["l"] = lambda g: 7
        q = ast.Select(
            ast.E2P(ast.CastExpr(ast.EMPTYP, ast.ExprVar("l", EMPTY, INT)),
                    INT),
            table())
        out = run_query(q, interp)
        assert dict(out.items()) == {7: 3}


class TestSemiringGenericity:
    def test_bool_semantics_is_squash_of_nat(self, db, interp):
        bool_db = db.reannotate(BOOL)
        q = ast.Select(ast.path(ast.RIGHT, ast.LEFT), table())
        nat_out = run_query(q, interp, NAT)
        bool_out = run_query(q, bool_db.interpretation(), BOOL)
        assert bool_out == nat_out.map_annotations(lambda n: n > 0, BOOL)

    def test_provenance_tracks_derivations(self, db):
        prov_db = db.reannotate(
            PROVENANCE,
            lambda table_name, row: Polynomial.variable(
                f"{table_name}:{row}"))
        q = ast.Select(ast.path(ast.RIGHT, ast.LEFT), table())
        out = run_query(q, prov_db.interpretation(), PROVENANCE)
        # The tuple 2 has two derivations: R:(2,40) + R:(2,50).
        poly = out.annotation(2)
        assert len(poly.terms) == 2

    def test_semiring_mismatch_detected(self, interp):
        with pytest.raises(EvaluationError):
            run_query(table(), interp, BOOL)

    def test_aggregate_over_omega_rejected(self):
        interp = Interpretation()
        from repro.semiring import OMEGA
        interp.relations["V"] = KRelation(NAT_INF, {5: OMEGA})
        agg = ast.Agg("SUM", ast.Table("V", Leaf(INT)), INT)
        q = ast.Select(ast.E2P(agg, INT), ast.Table("V", Leaf(INT)))
        with pytest.raises(EvaluationError):
            run_query(q, interp, NAT_INF)


class TestDatabaseHelpers:
    def test_insert(self, db):
        db.insert("R", [9, 9])
        assert db.relation("R").annotation((9, (9))) in (0, 1)
        assert db.relation("R").annotation((9, 9)) == 1

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(ValueError):
            db.create_table("R", R_SCHEMA)

    def test_unknown_lookups(self, db, interp):
        with pytest.raises(KeyError):
            db.schema("missing")
        with pytest.raises(KeyError):
            interp.relation("missing")
        with pytest.raises(KeyError):
            interp.projection("missing")

    def test_with_relation_functional_update(self, interp):
        new_rel = KRelation(NAT, {(7, 7): 1})
        updated = interp.with_relation("R", new_rel)
        assert updated.relation("R") == new_rel
        assert interp.relation("R") != new_rel


class TestTotalDivision:
    """SQL ``/`` maps to the totalized ``div`` symbol: floor division on
    ints, true division on floats, 0 on zero divisors."""

    def test_int_floor_division(self):
        from repro.engine.database import DEFAULT_FUNCTIONS
        div = DEFAULT_FUNCTIONS["div"]
        assert div(7, 2) == 3
        assert div(7, 0) == 0

    def test_float_true_division(self):
        from repro.engine.database import DEFAULT_FUNCTIONS
        div = DEFAULT_FUNCTIONS["div"]
        assert div(5.0, 2.0) == 2.5
        assert div(5, 2.0) == 2.5
        assert div(5.0, 0.0) == 0
