"""An e-graph over the interned HoTTSQL query AST.

The BFS planner re-derives structurally equal plans over and over and
forgets the equalities it discovers; an e-graph (the data structure behind
egg-style equality saturation, and the same congruence-closure machinery
:mod:`repro.core.congruence` uses on denotations) stores *every* plan
reachable by the certified rewrites at once:

* an **e-class** is a set of e-nodes proved equal (by a rewrite, or by
  congruence);
* an **e-node** is one query constructor whose ``Query`` children are
  e-class ids — predicates, projections, and table names stay in the
  node's *label* (they are interned AST subtrees, so label hashing is
  O(1) via the hash-cons kernel);
* a **union-find** maps e-class ids to canonical representatives, and
  :meth:`EGraph.rebuild` restores the congruence invariant (equal
  children ⇒ merged parents) after a batch of unions, exactly the
  deferred-rebuild discipline of egg.

Because PR 3's kernel interns AST nodes (structural eq ⇒ pointer eq),
:meth:`EGraph.add_term` memoizes term→e-class on node *identity*: adding
the same subtree twice — from anywhere in any plan — is one dict hit,
and the hashcons key ``(op, label, child classes)`` hashes in O(1).

Provenance: every e-node added by a rewrite records the rule name and
the e-node it was derived from, and every union records its reason.
:func:`repro.optimizer.extract.rule_chain` reconstructs the winning rule
chain for ``PlanningResult.applied_rules`` / ``explain()`` from these
records.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from ..core import ast

__all__ = ["EGraph", "ENode", "Reason", "query_children", "enode_term"]


#: For every query constructor, the dataclass fields holding ``Query``
#: children (in order).  Everything else is label payload.
QUERY_FIELDS: Dict[type, Tuple[str, ...]] = {
    ast.Table: (),
    ast.Select: ("query",),
    ast.Product: ("left", "right"),
    ast.Where: ("query",),
    ast.UnionAll: ("left", "right"),
    ast.Except: ("left", "right"),
    ast.Distinct: ("query",),
}

#: Label fields per constructor (the dataclass fields that are not
#: Query children), derived once.
LABEL_FIELDS: Dict[type, Tuple[str, ...]] = {
    cls: tuple(f.name for f in dataclass_fields(cls)
               if f.name not in QUERY_FIELDS[cls])
    for cls in QUERY_FIELDS
}


def query_children(query: ast.Query) -> Tuple[ast.Query, ...]:
    """The direct ``Query`` children of a node (label subtrees excluded)."""
    return tuple(getattr(query, name)
                 for name in QUERY_FIELDS[type(query)])


class ENode(NamedTuple):
    """One query constructor over e-class children.

    ``op`` is the AST class, ``label`` the non-Query field values (interned
    AST subtrees / strings / schemas), ``children`` the e-class ids of the
    Query children.  An ENode is *canonical* when its children are
    canonical class ids; the hashcons only ever stores canonical nodes.
    """

    op: type
    label: tuple
    children: Tuple[int, ...]

    def describe(self) -> str:
        inner = ", ".join(f"c{c}" for c in self.children)
        return f"{self.op.__name__}({inner})"


@dataclass(frozen=True)
class Reason:
    """Why an e-node (or a union) exists: a rule applied to a source node."""

    rule: str
    source: ENode


def _label_of(query: ast.Query) -> tuple:
    return tuple(getattr(query, name)
                 for name in LABEL_FIELDS[type(query)])


class EGraph:
    """E-classes of query plans with congruence-closure rebuilding."""

    def __init__(self) -> None:
        #: union-find parent pointers (path-halving find).
        self._uf: List[int] = []
        #: canonical e-node → canonical class id.
        self._hashcons: Dict[ENode, int] = {}
        #: canonical class id → list of (possibly stale) e-nodes.
        self._classes: Dict[int, List[ENode]] = {}
        #: canonical class id → [(parent e-node, parent class)] for rebuild.
        self._parents: Dict[int, List[Tuple[ENode, int]]] = {}
        #: classes whose parents may have become incongruent.
        self._dirty: List[int] = []
        #: interned term (by identity) → class id memo.
        self._term_memo: Dict[int, int] = {}
        #: keeps memoized terms alive so their ids stay valid.
        self._term_refs: List[ast.Query] = []
        #: e-node → why it was first created by a rewrite (None: inserted).
        self.reasons: Dict[ENode, Reason] = {}
        #: nodes inserted verbatim from a source term — they never accept
        #: a late rule attribution (they were not *produced* by a rule).
        self.primordial: set = set()
        #: every union performed with a rule justification.
        self.union_log: List[Tuple[int, int, Reason]] = []
        #: total e-nodes ever admitted (the saturation node budget meter).
        self.nodes_added = 0
        self.unions = 0

    # -- union-find ---------------------------------------------------------

    def find(self, cid: int) -> int:
        uf = self._uf
        while uf[cid] != cid:
            uf[cid] = uf[uf[cid]]  # path halving
            cid = uf[cid]
        return cid

    def _new_class(self) -> int:
        cid = len(self._uf)
        self._uf.append(cid)
        self._classes[cid] = []
        self._parents[cid] = []
        return cid

    # -- sizes --------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Live canonical e-nodes (after dedup by congruence)."""
        return len(self._hashcons)

    @property
    def num_classes(self) -> int:
        """Live canonical e-classes."""
        return sum(1 for cid in self._classes if self.find(cid) == cid)

    def classes(self) -> Iterator[Tuple[int, List[ENode]]]:
        """Iterate canonical ``(class id, e-nodes)`` pairs."""
        for cid, nodes in self._classes.items():
            if self.find(cid) == cid:
                yield cid, nodes

    def nodes_of(self, cid: int) -> List[ENode]:
        """The e-nodes of a class (canonicalized view)."""
        return self._classes[self.find(cid)]

    # -- insertion ----------------------------------------------------------

    def canonicalize(self, node: ENode) -> ENode:
        children = tuple(self.find(c) for c in node.children)
        if children == node.children:
            return node
        return ENode(node.op, node.label, children)

    def class_of(self, node: ENode) -> Optional[int]:
        """Canonical class id currently holding ``node`` (None: unknown)."""
        cid = self._hashcons.get(self.canonicalize(node))
        return None if cid is None else self.find(cid)

    def add_enode(self, node: ENode,
                  reason: Optional[Reason] = None) -> int:
        """Admit an e-node; returns its (existing or fresh) class id.

        ``reason`` records rule provenance the first time the node is
        seen; a hashcons hit keeps the earlier derivation, except that a
        node created as an anonymous *piece* of some rewrite (no reason
        yet, not primordial) adopts the first rule that derives it as a
        whole.
        """
        node = self.canonicalize(node)
        existing = self._hashcons.get(node)
        if existing is not None:
            if (reason is not None and node not in self.reasons
                    and node not in self.primordial):
                self.reasons[node] = reason
            return self.find(existing)
        cid = self._new_class()
        self._hashcons[node] = cid
        self._classes[cid].append(node)
        for child in node.children:
            self._parents[child].append((node, cid))
        self.nodes_added += 1
        if reason is not None:
            self.reasons[node] = reason
        return cid

    def add(self, op: type, label: tuple, children: Tuple[int, ...],
            reason: Optional[Reason] = None) -> int:
        """Convenience: build + admit an :class:`ENode`."""
        return self.add_enode(
            ENode(op, label, tuple(self.find(c) for c in children)), reason)

    def add_term(self, query: ast.Query) -> int:
        """Insert a whole query tree; memoized on interned identity."""
        memo = self._term_memo.get(id(query))
        if memo is not None:
            return self.find(memo)
        node = self.canonicalize(ENode(
            type(query), _label_of(query),
            tuple(self.add_term(c) for c in query_children(query))))
        self.primordial.add(node)
        cid = self.add_enode(node)
        self._term_memo[id(query)] = cid
        self._term_refs.append(query)
        return cid

    # -- union + rebuild ----------------------------------------------------

    def union(self, a: int, b: int, reason: Optional[Reason] = None) -> int:
        """Merge two e-classes; marks the loser dirty for :meth:`rebuild`."""
        a, b = self.find(a), self.find(b)
        if a == b:
            return a
        # Merge the smaller class into the larger one.
        if (len(self._classes[a]) + len(self._parents[a])
                < len(self._classes[b]) + len(self._parents[b])):
            a, b = b, a
        self._uf[b] = a
        self._classes[a].extend(self._classes.pop(b))
        self._parents[a].extend(self._parents.pop(b))
        self._dirty.append(a)
        self.unions += 1
        if reason is not None:
            self.union_log.append((a, b, reason))
        return a

    def rebuild(self) -> int:
        """Restore congruence: re-canonicalize parents of merged classes
        and merge any that collide in the hashcons.  Returns the number
        of congruence unions performed.  Also deduplicates every class's
        e-node list, so match enumeration and plan counting never see a
        stale twin of a canonical node."""
        congruences = 0
        while self._dirty:
            todo = {self.find(cid) for cid in self._dirty}
            self._dirty = []
            for cid in todo:
                congruences += self._repair(self.find(cid))
        self._compact()
        return congruences

    def _repair(self, cid: int) -> int:
        merged = 0
        parents = self._parents.get(self.find(cid), [])
        self._parents[self.find(cid)] = []
        for node, pclass in parents:
            # The stored node may predate unions: re-canonicalize it and
            # migrate its hashcons entry (and provenance records).
            self._hashcons.pop(node, None)
            canon = self.canonicalize(node)
            self._migrate(node, canon)
            pclass = self.find(pclass)
            existing = self._hashcons.get(canon)
            if existing is not None and self.find(existing) != pclass:
                # Congruence: same constructor, equal children — the two
                # parents denote the same relation.
                pclass = self.union(existing, pclass)
                merged += 1
            self._hashcons[canon] = self.find(pclass)
            # Re-register under whatever class cid lives in *now* (it may
            # itself have been merged by the union above).
            self._parents[self.find(cid)].append((canon, self.find(pclass)))
        return merged

    def _migrate(self, node: ENode, canon: ENode) -> None:
        """Carry provenance records across a re-canonicalization."""
        if canon == node:
            return
        reason = self.reasons.pop(node, None)
        if reason is not None:
            self.reasons.setdefault(canon, reason)
        if node in self.primordial:
            self.primordial.discard(node)
            self.primordial.add(canon)

    def _compact(self) -> None:
        """Drop stale duplicates from every class's e-node list."""
        for cid, nodes in self._classes.items():
            seen: Dict[ENode, bool] = {}
            out: List[ENode] = []
            for node in nodes:
                canon = self.canonicalize(node)
                self._migrate(node, canon)
                if canon not in seen:
                    seen[canon] = True
                    out.append(canon)
            self._classes[cid] = out

    # -- reading terms back -------------------------------------------------

    def enode_term_shallow(self, node: ENode,
                           child_terms: Tuple[ast.Query, ...]) -> ast.Query:
        """Rebuild the AST node for ``node`` given its children's terms."""
        kwargs = dict(zip(LABEL_FIELDS[node.op], node.label))
        kwargs.update(zip(QUERY_FIELDS[node.op], child_terms))
        return node.op(**kwargs)

    def any_term(self, cid: int) -> ast.Query:
        """Some concrete term of a class (smallest-first; for debugging)."""
        return _any_term(self, self.find(cid), frozenset())


def _any_term(eg: EGraph, cid: int, on_stack: frozenset) -> ast.Query:
    if cid in on_stack:
        raise ValueError(f"cyclic e-class c{cid} has no finite term "
                         f"without extraction")
    on_stack = on_stack | {cid}
    errors: List[str] = []
    for node in sorted(eg.nodes_of(cid), key=lambda n: len(n.children)):
        try:
            children = tuple(_any_term(eg, eg.find(c), on_stack)
                             for c in node.children)
        except ValueError as exc:
            errors.append(str(exc))
            continue
        return eg.enode_term_shallow(node, children)
    raise ValueError(errors[0] if errors else f"empty e-class c{cid}")


def enode_term(eg: EGraph, node: ENode,
               child_terms: Tuple[ast.Query, ...]) -> ast.Query:
    """Module-level alias of :meth:`EGraph.enode_term_shallow`."""
    return eg.enode_term_shallow(node, child_terms)
