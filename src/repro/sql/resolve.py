"""Name resolution: compiling named SQL to the unnamed HoTTSQL core.

The paper's data model is *unnamed* — attributes are paths in a binary
schema tree (Sec. 3.1) — and its artifact expects users to write path
expressions by hand.  This module automates that translation: given a
catalog of named table schemas, it compiles the parser's named AST into
core HoTTSQL, turning ``alias.column`` references into ``Left``/``Right``
paths through the context tuple, threading correlated-subquery scopes
exactly as Figure 6 describes, and desugaring GROUP BY, scalar
aggregates, and HAVING per Sec. 4.2.

Two desugaring conventions to note:

* **Scalar aggregates** (``SELECT COUNT(b) FROM R`` without GROUP BY) are
  single-group aggregation: the whole FROM clause is one group, encoded
  exactly like GROUP BY over a constant key.  Like the paper's NULL-free
  semantics (and Cosette), the result is *empty* — not one NULL/zero
  row — when the (post-WHERE) input is empty.
* **Commutative arithmetic** (``+``/``*``) canonicalizes its operand
  order during resolution, so ``a+b`` and ``b+a`` compile to the same
  core term.  The core ``Func`` stays uninterpreted; the reordering is
  justified because the concrete evaluator always interprets these
  symbols as integer addition/multiplication.

Schema layout conventions:

* a table with columns ``c₀ ... c_{m-1}`` has the right-nested schema
  ``node (leaf τ₀) (node (leaf τ₁) ( ... (leaf τ_{m-1})))``,
* a FROM clause with items ``f₀ ... f_{k-1}`` is the right-nested product
  ``node σ₀ (node σ₁ ( ... σ_{k-1}))``,
* the context at depth *d* of nesting is ``node (node (... ) f_{d-1}) ...``
  — each enclosing scope is one ``Left`` step away (Figure 6).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core import ast
from ..core.schema import (
    BOOL,
    EMPTY,
    FLOAT,
    INT,
    Leaf,
    Node,
    SQLType,
    STRING,
    Schema,
)
from ..errors import ReproError
from . import nast

#: Core function symbol for each infix arithmetic operator.
_BINOP_FUNCS = {"+": "add", "-": "sub", "*": "mul", "/": "div"}

#: The inverse map — core symbols the decompiler and pretty-printer
#: render back as infix operators.
ARITHMETIC_FUNCS = {name: op for op, name in _BINOP_FUNCS.items()}

#: Operators whose operand order is canonicalized at resolution.
_COMMUTATIVE_FUNCS = frozenset({"add", "mul"})


class ResolutionError(ReproError):
    """Raised when names cannot be resolved against the catalog/scopes."""


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------

@dataclass
class Catalog:
    """Named table schemas: table → ordered (column, type) list."""

    tables: Dict[str, Tuple[Tuple[str, SQLType], ...]] = field(
        default_factory=dict)

    def add_table(self, name: str, columns: Sequence[Tuple[str, SQLType]]
                  ) -> None:
        """Declare a table."""
        if name in self.tables:
            raise ResolutionError(f"table {name!r} already declared")
        names = [c for c, _ in columns]
        if len(set(names)) != len(names):
            raise ResolutionError(f"duplicate column names in {name!r}")
        self.tables[name] = tuple(columns)

    def columns(self, name: str) -> Tuple[Tuple[str, SQLType], ...]:
        if name not in self.tables:
            raise ResolutionError(f"unknown table {name!r}")
        return self.tables[name]

    def schema_of(self, name: str) -> Schema:
        """The right-nested unnamed schema of a table."""
        return columns_to_schema(self.columns(name))


def columns_to_schema(columns: Sequence[Tuple[str, SQLType]]) -> Schema:
    """Right-nested schema tree for an ordered column list."""
    if not columns:
        return EMPTY
    leaves: List[Schema] = [Leaf(ty) for _, ty in columns]
    schema = leaves[-1]
    for leaf_schema in reversed(leaves[:-1]):
        schema = Node(leaf_schema, schema)
    return schema


def column_steps(count: int, index: int) -> Tuple[str, ...]:
    """Path to column ``index`` in a right-nested ``count``-column schema."""
    if not 0 <= index < count:
        raise ResolutionError(f"column index {index} out of range")
    if count == 1:
        return ()
    if index == count - 1:
        return ("R",) * (count - 1)
    return ("R",) * index + ("L",)


def _steps_to_projection(steps: Sequence[str]) -> ast.Projection:
    parts: List[ast.Projection] = [
        ast.LEFT if s == "L" else ast.RIGHT for s in steps]
    return ast.path(*parts) if parts else ast.STAR


# ---------------------------------------------------------------------------
# Scopes
# ---------------------------------------------------------------------------

@dataclass
class Binding:
    """One FROM item visible in a scope."""

    alias: str
    columns: Tuple[Tuple[str, SQLType], ...]
    steps: Tuple[str, ...]   # path from the frame tuple to this item's tuple


@dataclass
class Frame:
    """One query scope: its FROM tuple's schema and bindings."""

    bindings: List[Binding]
    schema: Schema


@dataclass
class Resolved:
    """A compiled query with its output description."""

    query: ast.Query
    schema: Schema
    columns: Tuple[Tuple[str, SQLType], ...]


def _frame_steps(count: int, index: int) -> Tuple[str, ...]:
    """Path to FROM item ``index`` in the right-nested product of ``count``."""
    if count == 1:
        return ()
    if index == count - 1:
        return ("R",) * (count - 1)
    return ("R",) * index + ("L",)


class Resolver:
    """Compiles named queries against a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._fresh = itertools.count()

    # -- queries -----------------------------------------------------------

    def resolve_query(self, query: nast.NQuery,
                      env: Tuple[Frame, ...] = ()) -> Resolved:
        """Compile a named query in an environment of enclosing scopes."""
        if isinstance(query, nast.NSelect):
            return self._resolve_select(query, env)
        if isinstance(query, nast.NUnionAll):
            left = self.resolve_query(query.left, env)
            right = self.resolve_query(query.right, env)
            self._check_compatible(left, right, "UNION ALL")
            return Resolved(ast.UnionAll(left.query, right.query),
                            left.schema, left.columns)
        if isinstance(query, nast.NExcept):
            left = self.resolve_query(query.left, env)
            right = self.resolve_query(query.right, env)
            self._check_compatible(left, right, "EXCEPT")
            return Resolved(ast.Except(left.query, right.query),
                            left.schema, left.columns)
        raise ResolutionError(f"unknown query node: {query!r}")

    def _check_compatible(self, left: Resolved, right: Resolved,
                          op: str) -> None:
        if left.schema != right.schema:
            raise ResolutionError(
                f"{op} branches have incompatible schemas: "
                f"{left.schema} vs {right.schema}")

    def _resolve_select(self, select: nast.NSelect,
                        env: Tuple[Frame, ...]) -> Resolved:
        if select.having is not None:
            select = desugar_having(select, self._fresh)
        if select.group_by is not None:
            select = desugar_group_by(select, self._fresh)
        elif any(isinstance(item.expr, nast.NAggCall)
                 for item in select.items):
            select = desugar_scalar_agg(select, self._fresh)
        # FROM clause: compile the items and build the frame.
        compiled_items: List[Resolved] = []
        bindings: List[Binding] = []
        aliases = [item.alias for item in select.from_items]
        if len(set(aliases)) != len(aliases):
            raise ResolutionError(f"duplicate FROM aliases: {aliases}")
        count = len(select.from_items)
        for index, item in enumerate(select.from_items):
            if isinstance(item.source, str):
                columns = self.catalog.columns(item.source)
                schema = self.catalog.schema_of(item.source)
                compiled = Resolved(ast.Table(item.source, schema), schema,
                                    columns)
            else:
                compiled = self.resolve_query(item.source, env)
            compiled_items.append(compiled)
            bindings.append(Binding(alias=item.alias,
                                    columns=compiled.columns,
                                    steps=_frame_steps(count, index)))
        from_query = ast.from_clauses(*[c.query for c in compiled_items])
        frame_schema = compiled_items[-1].schema
        for compiled in reversed(compiled_items[:-1]):
            frame_schema = Node(compiled.schema, frame_schema)
        frame = Frame(bindings=bindings, schema=frame_schema)
        inner_env = env + (frame,)

        body = from_query
        if select.where is not None:
            predicate = self._resolve_pred(select.where, inner_env)
            body = ast.Where(body, predicate)

        if select.items:
            projections: List[ast.Projection] = []
            out_columns: List[Tuple[str, SQLType]] = []
            for i, item in enumerate(select.items):
                proj, name, ty = self._resolve_select_item(item, i, inner_env)
                projections.append(proj)
                out_columns.append((name, ty))
            projection = ast.proj_tuple(*projections)
            body = ast.Select(projection, body)
            schema = columns_to_schema(out_columns)
            columns = tuple(out_columns)
        else:
            # SELECT *: keep the whole frame tuple; columns are the
            # concatenation of the bindings' columns.
            schema = frame_schema
            columns = tuple((f"{b.alias}.{c}", ty)
                            for b in bindings for c, ty in b.columns)

        if select.distinct:
            body = ast.Distinct(body)
        return Resolved(body, schema, columns)

    def _resolve_select_item(self, item: nast.NSelectItem, index: int,
                             env: Tuple[Frame, ...]
                             ) -> Tuple[ast.Projection, str, SQLType]:
        expr = item.expr
        if isinstance(expr, nast.NColumn):
            steps, ty = self._column_steps(expr, env)
            name = item.alias or expr.column
            return _steps_to_projection(steps), name, ty
        compiled, ty = self._resolve_expr(expr, env)
        name = item.alias or f"col{index}"
        return ast.E2P(compiled, ty), name, ty

    # -- predicates -----------------------------------------------------------

    def _resolve_pred(self, pred: nast.NPred,
                      env: Tuple[Frame, ...]) -> ast.Predicate:
        if isinstance(pred, nast.NComparison):
            left, lty = self._resolve_expr(pred.left, env)
            right, rty = self._resolve_expr(pred.right, env)
            if lty != rty:
                raise ResolutionError(
                    f"comparison between different types {lty} and {rty}")
            if pred.op == "=":
                return ast.PredEq(left, right)
            if pred.op in ("<>", "!="):
                return ast.PredNot(ast.PredEq(left, right))
            op_name = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge"}[pred.op]
            return ast.PredFunc(op_name, (left, right))
        if isinstance(pred, nast.NAnd):
            return ast.PredAnd(self._resolve_pred(pred.left, env),
                               self._resolve_pred(pred.right, env))
        if isinstance(pred, nast.NOr):
            return ast.PredOr(self._resolve_pred(pred.left, env),
                              self._resolve_pred(pred.right, env))
        if isinstance(pred, nast.NNot):
            return ast.PredNot(self._resolve_pred(pred.operand, env))
        if isinstance(pred, nast.NBoolLit):
            return ast.PredTrue() if pred.value else ast.PredFalse()
        if isinstance(pred, nast.NExists):
            resolved = self.resolve_query(pred.query, env)
            return ast.Exists(resolved.query)
        raise ResolutionError(f"unknown predicate node: {pred!r}")

    # -- expressions ------------------------------------------------------------

    def _resolve_expr(self, expr: nast.NExpr, env: Tuple[Frame, ...]
                      ) -> Tuple[ast.Expression, SQLType]:
        if isinstance(expr, nast.NColumn):
            steps, ty = self._column_steps(expr, env)
            return ast.P2E(_steps_to_projection(steps), ty), ty
        if isinstance(expr, nast.NLiteral):
            value = expr.value
            if isinstance(value, bool):
                return ast.Const(value, BOOL), BOOL
            if isinstance(value, int):
                return ast.Const(value, INT), INT
            if isinstance(value, str):
                return ast.Const(value, STRING), STRING
            raise ResolutionError(f"unsupported literal {value!r}")
        if isinstance(expr, nast.NFuncCall):
            args = []
            for arg in expr.args:
                compiled, _ = self._resolve_expr(arg, env)
                args.append(compiled)
            # Scalar functions are uninterpreted ints by convention.
            return ast.Func(expr.name, tuple(args), INT), INT
        if isinstance(expr, nast.NBinOp):
            left, lty = self._resolve_expr(expr.left, env)
            right, rty = self._resolve_expr(expr.right, env)
            if lty != rty:
                raise ResolutionError(
                    f"arithmetic {expr.op!r} between different types "
                    f"{lty} and {rty}")
            if lty not in (INT, FLOAT):
                raise ResolutionError(
                    f"arithmetic {expr.op!r} over non-numeric type {lty}")
            name = _BINOP_FUNCS[expr.op]
            args = (left, right)
            if name in _COMMUTATIVE_FUNCS and repr(right) < repr(left):
                args = (right, left)
            return ast.Func(name, args, lty), lty
        if isinstance(expr, nast.NAggQuery):
            resolved = self.resolve_query(expr.query, env)
            if not isinstance(resolved.schema, Leaf):
                raise ResolutionError(
                    f"aggregate {expr.name} needs a single-column subquery")
            return ast.Agg(expr.name, resolved.query, INT), INT
        if isinstance(expr, nast.NAggCall):
            raise ResolutionError(
                f"aggregate {expr.name} may only appear as a top-level "
                f"SELECT item (scalar aggregation) or under GROUP BY, "
                f"not nested inside an expression or predicate")
        raise ResolutionError(f"unknown expression node: {expr!r}")

    # -- column lookup -------------------------------------------------------------

    def _column_steps(self, column: nast.NColumn, env: Tuple[Frame, ...]
                      ) -> Tuple[Tuple[str, ...], SQLType]:
        """Full path from the current context tuple to the column."""
        depth = len(env)
        if depth == 0:
            raise ResolutionError(
                f"column {column.column!r} referenced outside any FROM scope")
        for frame_index in range(depth - 1, -1, -1):
            frame = env[frame_index]
            hit = self._lookup_in_frame(column, frame)
            if hit is None:
                continue
            binding, col_index, ty = hit
            # The context tuple is node (node (... outer ...) f_{d-1}); the
            # innermost frame is one Right step, each level outwards adds
            # a Left step (paper Figure 6).
            prefix = ("L",) * (depth - 1 - frame_index) + ("R",)
            col_path = column_steps(len(binding.columns), col_index)
            return prefix + binding.steps + col_path, ty
        where = f"{column.table}.{column.column}" if column.table \
            else column.column
        raise ResolutionError(f"cannot resolve column reference {where!r}")

    def _lookup_in_frame(self, column: nast.NColumn, frame: Frame):
        candidates = []
        for binding in frame.bindings:
            if column.table is not None and binding.alias != column.table:
                continue
            for index, (name, ty) in enumerate(binding.columns):
                if name == column.column or name.endswith("." + column.column):
                    candidates.append((binding, index, ty))
        if not candidates:
            return None
        if len(candidates) > 1:
            raise ResolutionError(
                f"ambiguous column reference {column.column!r}")
        return candidates[0]


# ---------------------------------------------------------------------------
# GROUP BY / scalar-aggregate / HAVING desugaring (paper Sec. 4.2) — at the
# named level
# ---------------------------------------------------------------------------

def _rename_from(select: nast.NSelect, fresh
                 ) -> Tuple[List[nast.NFromItem], Dict[str, str]]:
    """Fresh aliases for an inner (per-group) copy of the FROM clause."""
    rename: Dict[str, str] = {}
    inner_from = []
    for item in select.from_items:
        new_alias = f"{item.alias}${next(fresh)}"
        rename[item.alias] = new_alias
        inner_from.append(nast.NFromItem(source=item.source, alias=new_alias))
    return inner_from, rename


def _rename_expr(expr: nast.NExpr, rename: Dict[str, str]) -> nast.NExpr:
    if isinstance(expr, nast.NColumn):
        if expr.table is None:
            # Bare columns inside the subquery bind to the inner copy.
            return expr
        return nast.NColumn(rename.get(expr.table, expr.table), expr.column)
    if isinstance(expr, nast.NFuncCall):
        return nast.NFuncCall(expr.name, tuple(
            _rename_expr(a, rename) for a in expr.args))
    if isinstance(expr, nast.NBinOp):
        return nast.NBinOp(expr.op, _rename_expr(expr.left, rename),
                           _rename_expr(expr.right, rename))
    if isinstance(expr, nast.NAggCall):
        return nast.NAggCall(expr.name, _rename_expr(expr.arg, rename))
    if isinstance(expr, nast.NAggQuery):
        return nast.NAggQuery(expr.name, _rename_query(expr.query, rename))
    return expr


def _rename_pred(pred: nast.NPred, rename: Dict[str, str]) -> nast.NPred:
    if isinstance(pred, nast.NComparison):
        return nast.NComparison(pred.op, _rename_expr(pred.left, rename),
                                _rename_expr(pred.right, rename))
    if isinstance(pred, nast.NAnd):
        return nast.NAnd(_rename_pred(pred.left, rename),
                         _rename_pred(pred.right, rename))
    if isinstance(pred, nast.NOr):
        return nast.NOr(_rename_pred(pred.left, rename),
                        _rename_pred(pred.right, rename))
    if isinstance(pred, nast.NNot):
        return nast.NNot(_rename_pred(pred.operand, rename))
    if isinstance(pred, nast.NExists):
        # Correlated subqueries see the enclosing aliases, so the
        # per-group renaming must reach inside them — leaving ``R.a``
        # untouched here would re-correlate the EXISTS against the
        # *outer* row instead of the group member.
        return nast.NExists(_rename_query(pred.query, rename))
    return pred


def _rename_query(query: nast.NQuery, rename: Dict[str, str]) -> nast.NQuery:
    """Apply an alias renaming throughout a subquery.

    Aliases the subquery redefines in its own FROM clause shadow the
    enclosing ones, so they drop out of the renaming for that scope's
    items/WHERE/GROUP BY/HAVING (derived-table sources are still
    compiled in the enclosing scope and keep the full map).
    """
    if isinstance(query, nast.NUnionAll):
        return nast.NUnionAll(_rename_query(query.left, rename),
                              _rename_query(query.right, rename))
    if isinstance(query, nast.NExcept):
        return nast.NExcept(_rename_query(query.left, rename),
                            _rename_query(query.right, rename))
    if isinstance(query, nast.NSelect):
        from_items = tuple(
            nast.NFromItem(
                source=item.source if isinstance(item.source, str)
                else _rename_query(item.source, rename),
                alias=item.alias)
            for item in query.from_items)
        shadowed = {item.alias for item in query.from_items}
        inner = {old: new for old, new in rename.items()
                 if old not in shadowed}
        return nast.NSelect(
            distinct=query.distinct,
            items=tuple(nast.NSelectItem(_rename_expr(item.expr, inner),
                                         item.alias)
                        for item in query.items),
            from_items=from_items,
            where=(None if query.where is None
                   else _rename_pred(query.where, inner)),
            group_by=(None if query.group_by is None
                      else _rename_expr(query.group_by, inner)),
            having=(None if query.having is None
                    else _rename_pred(query.having, inner)))
    return query


def desugar_group_by(select: nast.NSelect, fresh=itertools.count()
                     ) -> nast.NSelect:
    """Rewrite GROUP BY into DISTINCT + correlated aggregate subqueries.

    ``SELECT k, SUM(g) FROM R GROUP BY k`` becomes::

        SELECT DISTINCT k, SUM((SELECT g FROM R AS R$i WHERE R$i.k = R.k))
        FROM R

    following the paper's Sec. 4.2 construction.  Non-aggregate select
    items must be the grouping column.
    """
    group = select.group_by
    assert group is not None
    if not select.items:
        raise ResolutionError("GROUP BY requires an explicit select list")

    inner_from, rename = _rename_from(select, fresh)

    def rn_expr(expr: nast.NExpr) -> nast.NExpr:
        return _rename_expr(expr, rename)

    def rn_pred(pred: nast.NPred) -> nast.NPred:
        return _rename_pred(pred, rename)

    # Qualify both sides of the correlation explicitly: a bare grouping
    # column would otherwise resolve to the inner scope on both sides.
    if group.table is None:
        if len(select.from_items) != 1:
            raise ResolutionError(
                "GROUP BY over multiple FROM items requires a qualified "
                "grouping column")
        outer_alias = select.from_items[0].alias
    else:
        outer_alias = group.table
    outer_group = nast.NColumn(outer_alias, group.column)
    inner_group = nast.NColumn(rename[outer_alias], group.column)
    correlation = nast.NComparison("=", inner_group, outer_group)
    inner_where: nast.NPred = correlation
    if select.where is not None:
        inner_where = nast.NAnd(rn_pred(select.where), correlation)

    items: List[nast.NSelectItem] = []
    for item in select.items:
        expr = item.expr
        if isinstance(expr, nast.NAggCall):
            subquery = nast.NSelect(
                distinct=False,
                items=(nast.NSelectItem(rn_expr(expr.arg), None),),
                from_items=tuple(inner_from),
                where=inner_where,
                group_by=None)
            items.append(nast.NSelectItem(
                nast.NAggQuery(expr.name, subquery), item.alias))
        elif isinstance(expr, nast.NColumn) and expr.column == group.column:
            items.append(item)
        else:
            raise ResolutionError(
                "non-aggregate select item under GROUP BY must be the "
                "grouping column")

    return nast.NSelect(distinct=True, items=tuple(items),
                        from_items=select.from_items, where=select.where,
                        group_by=None)


def desugar_scalar_agg(select: nast.NSelect, fresh=itertools.count()
                       ) -> nast.NSelect:
    """Rewrite ungrouped aggregates as single-group aggregation.

    ``SELECT COUNT(b) FROM R WHERE p`` becomes::

        SELECT DISTINCT COUNT((SELECT R$i.b FROM R AS R$i WHERE p$i))
        FROM R WHERE p

    — the Sec. 4.2 GROUP BY construction with the whole (filtered) FROM
    clause as the one group.  The subquery is uncorrelated, so DISTINCT
    collapses the per-row copies to a single output row; when no row
    survives ``p`` the result is empty (the paper's NULL-free semantics:
    no NULL/zero row is invented, matching Cosette rather than the SQL
    standard).
    """
    assert select.group_by is None
    for item in select.items:
        if not isinstance(item.expr, nast.NAggCall):
            raise ResolutionError(
                "mixing aggregate and non-aggregate select items "
                "requires GROUP BY")

    inner_from, rename = _rename_from(select, fresh)
    inner_where = None
    if select.where is not None:
        inner_where = _rename_pred(select.where, rename)

    items: List[nast.NSelectItem] = []
    for item in select.items:
        agg = item.expr
        subquery = nast.NSelect(
            distinct=False,
            items=(nast.NSelectItem(_rename_expr(agg.arg, rename), None),),
            from_items=tuple(inner_from),
            where=inner_where,
            group_by=None)
        items.append(nast.NSelectItem(
            nast.NAggQuery(agg.name, subquery), item.alias))

    return nast.NSelect(distinct=True, items=tuple(items),
                        from_items=select.from_items, where=select.where,
                        group_by=None)


def desugar_having(select: nast.NSelect, fresh=itertools.count()
                   ) -> nast.NSelect:
    """Rewrite HAVING as a filter over the grouped subquery (Sec. 4.2).

    ``SELECT k, SUM(b) AS s FROM R GROUP BY k HAVING h`` becomes::

        SELECT k, s FROM (SELECT k, SUM(b) AS s FROM R GROUP BY k) h$i
        WHERE h'

    where ``h'`` re-targets every aggregate call and grouping-column
    reference in ``h`` at the derived table's output columns.  Aggregates
    mentioned only in HAVING are added to the inner select list under
    fresh aliases (and projected away by the outer select).  Any other
    column reference is a resolution error: HAVING sees groups, not rows.
    """
    assert select.having is not None
    if not select.items:
        raise ResolutionError("HAVING requires an explicit select list")
    group = select.group_by

    inner_items = list(select.items)
    names: List[str] = []
    for index, item in enumerate(inner_items):
        if item.alias is not None:
            names.append(item.alias)
        elif isinstance(item.expr, nast.NColumn):
            names.append(item.expr.column)
        else:
            names.append(f"col{index}")
    outer_names = list(names)
    if len(set(names)) != len(names):
        raise ResolutionError(
            f"HAVING requires distinct output column names, got {names}")
    halias = f"h${next(fresh)}"

    def column_for_agg(agg: nast.NAggCall) -> nast.NColumn:
        for item, name in zip(inner_items, names):
            if item.expr == agg:
                return nast.NColumn(halias, name)
        name = f"agg${next(fresh)}"
        inner_items.append(nast.NSelectItem(agg, name))
        names.append(name)
        return nast.NColumn(halias, name)

    def column_for_group_key(column: nast.NColumn) -> nast.NColumn:
        for item, name in zip(inner_items, names):
            if isinstance(item.expr, nast.NColumn) \
                    and item.expr.column == group.column:
                return nast.NColumn(halias, name)
        name = f"grp${next(fresh)}"
        inner_items.append(nast.NSelectItem(
            nast.NColumn(group.table, group.column), name))
        names.append(name)
        return nast.NColumn(halias, name)

    def rw_expr(expr: nast.NExpr) -> nast.NExpr:
        if isinstance(expr, nast.NAggCall):
            return column_for_agg(expr)
        if isinstance(expr, nast.NColumn):
            if group is not None and expr.column == group.column \
                    and (expr.table is None or group.table is None
                         or expr.table == group.table):
                return column_for_group_key(expr)
            where = f"{expr.table}.{expr.column}" if expr.table \
                else expr.column
            raise ResolutionError(
                f"HAVING references non-grouped, non-aggregate column "
                f"{where!r} (only the GROUP BY column and aggregates may "
                f"appear in HAVING)")
        if isinstance(expr, nast.NBinOp):
            return nast.NBinOp(expr.op, rw_expr(expr.left),
                               rw_expr(expr.right))
        if isinstance(expr, nast.NFuncCall):
            return nast.NFuncCall(expr.name,
                                  tuple(rw_expr(a) for a in expr.args))
        return expr

    def rw_pred(pred: nast.NPred) -> nast.NPred:
        if isinstance(pred, nast.NComparison):
            return nast.NComparison(pred.op, rw_expr(pred.left),
                                    rw_expr(pred.right))
        if isinstance(pred, nast.NAnd):
            return nast.NAnd(rw_pred(pred.left), rw_pred(pred.right))
        if isinstance(pred, nast.NOr):
            return nast.NOr(rw_pred(pred.left), rw_pred(pred.right))
        if isinstance(pred, nast.NNot):
            return nast.NNot(rw_pred(pred.operand))
        if isinstance(pred, nast.NBoolLit):
            return pred
        raise ResolutionError(
            f"unsupported predicate in HAVING: {pred!r}")

    having = rw_pred(select.having)
    inner = nast.NSelect(distinct=select.distinct, items=tuple(inner_items),
                         from_items=select.from_items, where=select.where,
                         group_by=select.group_by, having=None)
    outer_items = tuple(
        nast.NSelectItem(nast.NColumn(halias, name), name)
        for name in outer_names)
    return nast.NSelect(distinct=False, items=outer_items,
                        from_items=(nast.NFromItem(inner, halias),),
                        where=having, group_by=None)


# ---------------------------------------------------------------------------
# Top-level convenience
# ---------------------------------------------------------------------------

def compile_sql(source: str, catalog: Catalog) -> Resolved:
    """Parse and resolve a SQL string against a catalog."""
    from .parser import parse
    resolver = Resolver(catalog)
    return resolver.resolve_query(parse(source))
