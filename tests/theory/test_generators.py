"""The CQ family generators behind the Figure 9 scaling study."""

from repro.theory import (
    Atom,
    CQ,
    chain_query,
    clique_query,
    cq_set_contained,
    cq_set_equivalent,
    cycle_query,
    rename_apart,
    star_query,
)


class TestChainQueries:
    def test_structure(self):
        q = chain_query(3)
        assert len(q.body) == 3
        assert q.head == ("x0",)
        q.validate()

    def test_both_endpoint_head(self):
        q = chain_query(2, head_first=False)
        assert q.head == ("x0", "x2")
        q.validate()


class TestCycleQueries:
    def test_structure(self):
        q = cycle_query(4)
        assert len(q.body) == 4
        assert q.head == ()
        # closes back to x0
        assert q.body[-1].args == ("x3", "x0")

    def test_divisibility_law(self):
        # C_a ⊆ C_b iff a | b for directed cycles.
        assert cq_set_contained(cycle_query(3), cycle_query(9))
        assert cq_set_contained(cycle_query(2), cycle_query(8))
        assert not cq_set_contained(cycle_query(3), cycle_query(8))
        assert not cq_set_contained(cycle_query(4), cycle_query(6))


class TestStarAndClique:
    def test_star_structure(self):
        q = star_query(3)
        assert len(q.body) == 3
        assert all(atom.args[0] == "c" for atom in q.body)

    def test_clique_structure(self):
        q = clique_query(3)
        assert len(q.body) == 6      # ordered pairs, no loops

    def test_clique_hierarchy(self):
        # A k-clique query is contained in the (k-1)-clique query (more
        # atoms → more constraints), strictly for directed cliques with a
        # self-loop-free canonical db... the containment direction:
        # hom from clique(2) into clique(3)'s canonical db exists.
        assert cq_set_contained(clique_query(3), clique_query(2))

    def test_clique_equivalence_to_edge_fails(self):
        # clique(3) requires a directed triangle; a single 2-clique
        # (edge pair) has none.
        assert not cq_set_equivalent(clique_query(3), clique_query(2))


class TestRenameApart:
    def test_alpha_variant(self):
        q = chain_query(3)
        r = rename_apart(q, "_z")
        assert r != q
        assert cq_set_equivalent(q, r)
        assert {a for atom in r.body for a in atom.args} == \
            {f"x{i}_z" for i in range(4)}

    def test_constants_untouched(self):
        q = CQ((), (Atom("R", ("x", 1)),))    # q() :- R(x, 1)
        r = rename_apart(q, "_z")
        assert r.body[0].args == ("x_z", 1)
