"""The equivalence engine: entailment, absorption, key axioms, negatives."""

import pytest

from repro.core import ast
from repro.core.equivalence import (
    FDConstraint,
    Hypotheses,
    KeyConstraint,
    NO_HYPOTHESES,
    check_query_equivalence,
    check_uterm_equivalence,
    queries_equivalent,
    uterms_equivalent,
)
from repro.core.schema import EMPTY, INT, Leaf, Node, SVar
from repro.core.uninomial import (
    TApp,
    TVar,
    UAdd,
    UEq,
    UMul,
    UNeg,
    UPred,
    URel,
    USquash,
    USum,
    fresh_var,
)

SR = SVar("sR")
T = TVar("t", SR)
R = ast.Table("R", SR)
S = ast.Table("S", SR)


class TestUTermEquivalence:
    def test_mul_commutes(self):
        a = URel("R", T)
        b = URel("S", T)
        assert uterms_equivalent(UMul(a, b), UMul(b, a))

    def test_add_commutes(self):
        a = URel("R", T)
        b = URel("S", T)
        assert uterms_equivalent(UAdd(a, b), UAdd(b, a))

    def test_distribution(self):
        a, b, c = URel("R", T), URel("S", T), UPred("p", (T,))
        assert uterms_equivalent(UMul(UAdd(a, b), c),
                                 UAdd(UMul(a, c), UMul(b, c)))

    def test_different_relations_not_equal(self):
        assert not uterms_equivalent(URel("R", T), URel("S", T))

    def test_multiplicity_matters_at_bag_level(self):
        a = URel("R", T)
        assert not uterms_equivalent(a, UMul(a, a))
        assert not uterms_equivalent(a, UAdd(a, a))

    def test_squash_kills_multiplicity(self):
        a = URel("R", T)
        assert uterms_equivalent(USquash(a), USquash(UMul(a, a)))
        assert uterms_equivalent(USquash(a), USquash(UAdd(a, a)))

    def test_sum_alpha_invariance(self):
        x = fresh_var(SR, "x")
        y = fresh_var(SR, "y")
        assert uterms_equivalent(USum(x, URel("R", x)),
                                 USum(y, URel("R", y)))

    def test_lemma_52_equivalence(self):
        x = fresh_var(SR, "x")
        lhs = USum(x, UMul(UEq(x, T), URel("R", x)))
        assert uterms_equivalent(lhs, URel("R", T))

    def test_absorption_lemma_53(self):
        # R t × ‖Σ x. (x = t) × R x‖ = R t
        x = fresh_var(SR, "x")
        guard = USquash(USum(x, UMul(UEq(x, T), URel("R", x))))
        assert uterms_equivalent(UMul(URel("R", T), guard), URel("R", T))

    def test_absorption_requires_entailment(self):
        # R t × ‖Σ x. S x‖ is NOT R t.
        x = fresh_var(SR, "x")
        guard = USquash(USum(x, URel("S", x)))
        assert not uterms_equivalent(UMul(URel("R", T), guard), URel("R", T))

    def test_neg_congruence(self):
        a = URel("R", T)
        assert uterms_equivalent(UMul(a, UNeg(URel("S", T))),
                                 UMul(UNeg(URel("S", T)), a))

    def test_stats_populated(self):
        # A pointer-identical question is answered by the interned kernel
        # in zero engine steps, so use a pair that needs Lemma 5.3
        # absorption to exercise the counters.
        x = fresh_var(SR, "x")
        guard = USquash(USum(x, UMul(UEq(x, T), URel("R", x))))
        result = check_uterm_equivalence(
            UMul(URel("R", T), guard), URel("R", T))
        assert result.equal
        assert result.stats.total_steps >= 1
        assert result.stats.trace

    def test_identical_terms_are_free(self):
        # Same interned term on both sides: proved with no engine steps.
        result = check_uterm_equivalence(URel("R", T), URel("R", T))
        assert result.equal
        assert result.stats.trace


class TestKeyAxioms:
    K = Leaf(INT)
    HYPS = Hypotheses(keys=(KeyConstraint("R", "k", Leaf(INT)),))

    def test_key_merges_tuples(self):
        # Σ x. R x × R t × (k x = k t) = R t under key(k, R).
        x = fresh_var(SR, "x")
        k_x = TApp("k", (x,), self.K)
        k_t = TApp("k", (T,), self.K)
        lhs = USum(x, UMul(URel("R", x),
                           UMul(URel("R", T), UEq(k_x, k_t))))
        assert uterms_equivalent(lhs, URel("R", T), self.HYPS)

    def test_without_key_not_equal(self):
        x = fresh_var(SR, "x")
        k_x = TApp("k", (x,), self.K)
        k_t = TApp("k", (T,), self.K)
        lhs = USum(x, UMul(URel("R", x),
                           UMul(URel("R", T), UEq(k_x, k_t))))
        assert not uterms_equivalent(lhs, URel("R", T), NO_HYPOTHESES)

    def test_fd_axiom(self):
        # Under fd a→b, two R-tuples with equal a have equal b.
        hyps = Hypotheses(fds=(FDConstraint("R", "a", Leaf(INT),
                                            "b", Leaf(INT)),))
        x = TVar("x", SR)
        y = TVar("y", SR)
        a_x = TApp("a", (x,), Leaf(INT))
        a_y = TApp("a", (y,), Leaf(INT))
        b_x = TApp("b", (x,), Leaf(INT))
        b_y = TApp("b", (y,), Leaf(INT))
        base = UMul(URel("R", x), UMul(URel("R", y), UEq(a_x, a_y)))
        with_conclusion = UMul(base, UEq(b_x, b_y))
        assert uterms_equivalent(base, with_conclusion, hyps)
        assert not uterms_equivalent(base, with_conclusion, NO_HYPOTHESES)


class TestQueryLevel:
    def test_figure_1(self):
        b = ast.PredVar("b", Node(EMPTY, SR))
        lhs = ast.Where(ast.UnionAll(R, S), b)
        rhs = ast.UnionAll(ast.Where(R, b), ast.Where(S, b))
        result = check_query_equivalence(lhs, rhs)
        assert result.equal

    def test_unsound_rewrite_rejected(self):
        lhs = ast.Distinct(ast.UnionAll(R, S))
        rhs = ast.UnionAll(ast.Distinct(R), ast.Distinct(S))
        assert not queries_equivalent(lhs, rhs)

    def test_schema_mismatch_raises(self):
        other = ast.Table("S", SVar("sS"))
        with pytest.raises(ValueError):
            check_query_equivalence(R, other)

    def test_empty_vs_false_where(self):
        lhs = ast.Where(R, ast.PredFalse())
        rhs = ast.Except(R, R)
        # σ_false(R) ≡ R EXCEPT R: both denote the empty relation?  No —
        # R EXCEPT R zeroes every tuple, so they are equal.
        assert queries_equivalent(lhs, rhs)

    def test_true_where_is_identity(self):
        assert queries_equivalent(ast.Where(R, ast.PredTrue()), R)
