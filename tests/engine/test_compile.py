"""Differential suite: compiled evaluator vs the Figure-7 interpreter.

The flat-program compiler (:mod:`repro.engine.compile`) is the
disprover's hot path, so it is pinned to :func:`repro.engine.eval.
run_query` on a corpus of SQL shapes × random instances × semirings ×
kernel backends.  Any disagreement here is a soundness bug: a compiled
disprover could report a phantom counterexample or miss a real one.
"""

import random

import pytest

from repro.core.intern import set_kernel_backend
from repro.core.schema import INT, Leaf, Node
from repro.engine import (
    COMPILED_SEMIRINGS,
    CompileError,
    Interpretation,
    compile_pair,
    compile_query,
    counts_to_relation,
    random_relation,
    relation_to_counts,
    run_query,
)
from repro.semiring import BOOL, NAT, NAT_INF
from repro.solver import Bound, disprove
from repro.sql import Catalog, compile_sql

ROW = Node(Leaf(INT), Leaf(INT))

# SQL shapes chosen to cover every compiled operator: projection,
# duplicate-elimination, selection predicates (=, AND, OR, NOT),
# products/joins, UNION ALL, EXCEPT, correlated EXISTS, constants, and
# aggregation (SUM/COUNT over GROUP BY).
CORPUS = [
    "SELECT a FROM R",
    "SELECT b, a FROM R",
    "SELECT DISTINCT a FROM R",
    "SELECT a FROM R WHERE a = 1",
    "SELECT a FROM R WHERE a = b",
    "SELECT a FROM R WHERE NOT a = 0",
    "SELECT r.a FROM R r, S s",
    "SELECT r.a, s.b FROM R r, S s WHERE r.a = s.a",
    "SELECT DISTINCT r.b FROM R r, S s WHERE r.a = s.a AND r.b = s.b",
    "SELECT a FROM R UNION ALL SELECT a FROM S",
    "SELECT a FROM R EXCEPT SELECT a FROM S",
    "SELECT DISTINCT a FROM R EXCEPT SELECT b FROM S",
    "SELECT a FROM R WHERE EXISTS (SELECT * FROM S WHERE S.a = R.a)",
]

# Aggregates desugar to bag-valued subqueries that the reference
# interpreter always evaluates under NAT, so they are pinned under NAT
# only (matching how the disprover uses them).
NAT_ONLY_CORPUS = [
    "SELECT a, SUM(b) FROM R GROUP BY a",
    "SELECT a, COUNT(b) FROM R GROUP BY a",
]


@pytest.fixture(scope="module")
def catalog():
    cat = Catalog()
    cat.add_table("R", [("a", INT), ("b", INT)])
    cat.add_table("S", [("a", INT), ("b", INT)])
    return cat


def _random_interp(seed, semiring):
    rng = random.Random(seed)
    return Interpretation(relations={
        name: random_relation(rng, ROW, semiring=semiring, max_rows=3,
                              max_multiplicity=2)
        for name in ("R", "S")})


def _assert_parity(query, interp, semiring):
    expected = run_query(query, interp, semiring)
    program = compile_query(query, ("R", "S"), semiring=semiring)
    rels = tuple(relation_to_counts(interp.relations[n], semiring)
                 for n in ("R", "S"))
    got = counts_to_relation(program(rels, ()), semiring)
    assert got == expected


@pytest.mark.parametrize("backend", ["arena", "object"])
@pytest.mark.parametrize("sql", CORPUS)
def test_compiled_matches_interpreter(backend, sql, catalog):
    previous = set_kernel_backend(backend)
    try:
        query = compile_sql(sql, catalog).query
        for semiring in COMPILED_SEMIRINGS:
            for seed in range(8):
                _assert_parity(query, _random_interp(seed, semiring),
                               semiring)
    finally:
        set_kernel_backend(previous)


@pytest.mark.parametrize("backend", ["arena", "object"])
@pytest.mark.parametrize("sql", NAT_ONLY_CORPUS)
def test_compiled_matches_interpreter_aggregates(backend, sql, catalog):
    previous = set_kernel_backend(backend)
    try:
        query = compile_sql(sql, catalog).query
        for seed in range(8):
            _assert_parity(query, _random_interp(seed, NAT), NAT)
    finally:
        set_kernel_backend(previous)


@pytest.mark.parametrize("backend", ["arena", "object"])
def test_exotic_semiring_raises_compile_error(backend, catalog):
    previous = set_kernel_backend(backend)
    try:
        query = compile_sql("SELECT a FROM R", catalog).query
        with pytest.raises(CompileError):
            compile_pair(query, query, ("R", "S"), semiring=NAT_INF)
    finally:
        set_kernel_backend(previous)


@pytest.mark.parametrize("backend", ["arena", "object"])
@pytest.mark.parametrize("semiring", [BOOL, NAT, NAT_INF],
                         ids=lambda s: s.name)
def test_disprover_verdict_independent_of_evaluator(backend, semiring,
                                                    catalog):
    """The full-search differential guarantee: on every semiring — the
    two compiled ones and the interpreter-fallback ``NAT_INF`` — forcing
    the interpreter and forcing (or auto-choosing) the compiled path
    must agree on witness index, accounting, and exhaustion."""
    previous = set_kernel_backend(backend)
    try:
        pairs = [
            ("SELECT a FROM R", "SELECT DISTINCT a FROM R"),
            ("SELECT a FROM R WHERE a = 1", "SELECT a FROM R WHERE a = 1"),
        ]
        for sql1, sql2 in pairs:
            q1 = compile_sql(sql1, catalog).query
            q2 = compile_sql(sql2, catalog).query
            interp = disprove(q1, q2, bound=Bound.of(2, 2),
                              use_compiled=False, semiring=semiring)
            auto = disprove(q1, q2, bound=Bound.of(2, 2),
                            semiring=semiring)
            assert auto.found == interp.found
            assert auto.instances_checked == interp.instances_checked
            assert auto.exhausted == interp.exhausted
            if auto.found:
                assert auto.counterexample.trial \
                    == interp.counterexample.trial
                assert auto.record == interp.record
            if semiring in COMPILED_SEMIRINGS:
                forced = disprove(q1, q2, bound=Bound.of(2, 2),
                                  use_compiled=True, semiring=semiring)
                assert forced.found == interp.found
                assert forced.instances_checked \
                    == interp.instances_checked
    finally:
        set_kernel_backend(previous)
