"""The property lattice the analysis computes per plan node.

Four facts per query, all *for-all-instances* guarantees (anything the
analysis cannot guarantee degrades to the unknown element, never the
other way — the soundness suite pins this against engine evaluation):

* **set-valuedness** — every output multiplicity is ≤ 1 on every
  instance (the paper's squash-elimination precondition: ``‖P‖ = P``
  when ``P`` is a mere proposition, Sec. 4.2);
* **guaranteed emptiness** — the output is the empty bag on every
  instance (a ``σ_FALSE`` somewhere upstream);
* **key paths** — projection paths whose value determines the whole
  row, seeded from :class:`~repro.core.equivalence.KeyConstraint`
  hypotheses (a key also forces set-valuedness, per
  :func:`repro.engine.constraints.satisfies_key`);
* **cardinality interval** — bounds on the total multiplicity
  ``Σ_t ⟦q⟧ t``, exact under ``Select`` (projection preserves the sum),
  multiplicative under ``Product``.

Predicate facts live in the three-point domain :class:`Sat`
(tautology / contradiction / unknown).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

__all__ = ["Interval", "PlanProperties", "Sat", "TOP", "UNBOUNDED"]


class Sat(enum.Enum):
    """Static satisfiability of a predicate: a three-point domain."""

    ALWAYS = "always"    #: tautology — holds for every row on every instance
    NEVER = "never"      #: contradiction — fails for every row
    UNKNOWN = "unknown"  #: no static guarantee

    def negate(self) -> "Sat":
        if self is Sat.ALWAYS:
            return Sat.NEVER
        if self is Sat.NEVER:
            return Sat.ALWAYS
        return Sat.UNKNOWN

    def and_(self, other: "Sat") -> "Sat":
        if Sat.NEVER in (self, other):
            return Sat.NEVER
        if self is Sat.ALWAYS and other is Sat.ALWAYS:
            return Sat.ALWAYS
        return Sat.UNKNOWN

    def or_(self, other: "Sat") -> "Sat":
        if Sat.ALWAYS in (self, other):
            return Sat.ALWAYS
        if self is Sat.NEVER and other is Sat.NEVER:
            return Sat.NEVER
        return Sat.UNKNOWN


@dataclass(frozen=True)
class Interval:
    """Total-multiplicity bounds ``lo ≤ Σ_t ⟦q⟧ t ≤ hi`` (``hi=None`` = ∞)."""

    lo: int = 0
    hi: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lo < 0 or (self.hi is not None and self.hi < self.lo):
            raise ValueError(f"malformed interval {self!r}")

    @property
    def is_zero(self) -> bool:
        return self.hi == 0

    def contains(self, n: int) -> bool:
        return self.lo <= n and (self.hi is None or n <= self.hi)

    def plus(self, other: "Interval") -> "Interval":
        hi = None if self.hi is None or other.hi is None \
            else self.hi + other.hi
        return Interval(self.lo + other.lo, hi)

    def times(self, other: "Interval") -> "Interval":
        hi = 0 if self.hi == 0 or other.hi == 0 else (
            None if self.hi is None or other.hi is None
            else self.hi * other.hi)
        return Interval(self.lo * other.lo, hi)

    def clamp_lo(self, lo: int = 0) -> "Interval":
        """Widen the lower bound down to ``lo`` (filters may drop rows)."""
        return Interval(min(self.lo, lo), self.hi)

    def truncate(self) -> "Interval":
        """After ``DISTINCT``: every multiplicity collapses to ≤ 1."""
        return Interval(min(self.lo, 1) if self.lo else 0, self.hi)

    def meet(self, other: "Interval") -> Optional["Interval"]:
        """Intersection — the *more precise* of two valid bounds."""
        lo = max(self.lo, other.lo)
        if self.hi is None:
            hi = other.hi
        elif other.hi is None:
            hi = self.hi
        else:
            hi = min(self.hi, other.hi)
        if hi is not None and hi < lo:
            return None
        return Interval(lo, hi)

    def __str__(self) -> str:
        return f"[{self.lo}, {'∞' if self.hi is None else self.hi}]"


#: The no-information interval.
UNBOUNDED = Interval(0, None)

#: A projection path inside the output row: steps of ``"L"`` / ``"R"``.
#: The empty path is the whole row (trivially a key of any set).
KeyPath = Tuple[str, ...]


@dataclass(frozen=True)
class PlanProperties:
    """The lattice element attached to one plan node (or e-class)."""

    #: every output multiplicity ≤ 1, on every instance.
    set_valued: bool = False
    #: the output is empty on every instance.
    empty: bool = False
    #: paths whose value determines the row (and forces set-ness).
    keys: FrozenSet[KeyPath] = frozenset()
    #: bounds on the total output multiplicity.
    card: Interval = field(default=UNBOUNDED)

    def __post_init__(self) -> None:
        # Normalization: emptiness is the bottom relation — it is a set,
        # every path is vacuously a key, and the cardinality is 0.
        if self.empty:
            object.__setattr__(self, "set_valued", True)
            object.__setattr__(
                self, "card", Interval(0, 0))
        elif self.card.is_zero:
            object.__setattr__(self, "empty", True)
            object.__setattr__(self, "set_valued", True)
        if self.keys and not self.set_valued:
            # A key forces multiplicities ≤ 1 (engine/constraints.py).
            object.__setattr__(self, "set_valued", True)

    def refine(self, other: "PlanProperties") -> "PlanProperties":
        """Combine two *valid* descriptions of the same bag, keeping the
        most precise fact from each — the e-class merge: every member of
        an e-class denotes the same bag, so guarantees accumulate."""
        card = self.card.meet(other.card)
        return PlanProperties(
            set_valued=self.set_valued or other.set_valued,
            empty=self.empty or other.empty,
            keys=self.keys | other.keys,
            card=card if card is not None else Interval(0, 0))

    def to_dict(self) -> dict:
        return {
            "set_valued": self.set_valued,
            "empty": self.empty,
            "keys": sorted("/".join(path) or "." for path in self.keys),
            "card": [self.card.lo, self.card.hi],
        }


#: No guarantees at all — the lattice top (safe default).
TOP = PlanProperties()
