"""Quickstart: prove a SQL rewrite, then watch it run.

This walks the full pipeline on the paper's Sec. 2 example:

1. declare a schema and parse two SQL queries,
2. denote them into the UniNomial algebra (paper Figure 7),
3. prove them equivalent with the engine (the paper's Q2 ≡ Q3),
4. evaluate both on a concrete database and compare,
5. show that an *unsound* variant is rejected and refuted.

Run:  python examples/quickstart.py
"""

from repro import Catalog, Database, INT, compile_sql, queries_equivalent
from repro.core.denote import denote_closed
from repro.core.equivalence import check_query_equivalence
from repro.engine import run_query
from repro.sql.pretty import denotation_to_str


def main() -> None:
    # 1. Schema + queries -------------------------------------------------
    catalog = Catalog()
    catalog.add_table("R", [("a", INT), ("b", INT)])

    q2 = compile_sql("SELECT DISTINCT a FROM R", catalog)
    q3 = compile_sql(
        "SELECT DISTINCT x.a FROM R AS x, R AS y WHERE x.a = y.a", catalog)

    print("Q2: SELECT DISTINCT a FROM R")
    print("Q3: SELECT DISTINCT x.a FROM R AS x, R AS y WHERE x.a = y.a")
    print()

    # 2. Denotations (the paper's Figure 2 displays) ----------------------
    print("Denotations into the UniNomial algebra:")
    print("  Q2 =", denotation_to_str(denote_closed(q2.query)))
    print("  Q3 =", denotation_to_str(denote_closed(q3.query)))
    print()

    # 3. The proof ---------------------------------------------------------
    result = check_query_equivalence(q3.query, q2.query)
    print(f"Prover verdict: {'EQUIVALENT' if result.equal else 'UNKNOWN'} "
          f"({result.stats.total_steps} reasoning steps)")
    assert result.equal
    print()

    # 4. Concrete execution -------------------------------------------------
    db = Database()
    db.create_table("R", catalog.schema_of("R"), [[1, 40], [2, 40], [2, 50]])
    interp = db.interpretation()
    out2 = run_query(q2.query, interp)
    out3 = run_query(q3.query, interp)
    print("On R = {(1,40), (2,40), (2,50)}:")
    print("  Q2 returns", sorted(out2.support()))
    print("  Q3 returns", sorted(out3.support()))
    assert out2 == out3
    print()

    # 5. The unsound variant (no DISTINCT) is caught ------------------------
    bag2 = compile_sql("SELECT a FROM R", catalog)
    bag3 = compile_sql(
        "SELECT x.a FROM R AS x, R AS y WHERE x.a = y.a", catalog)
    rejected = not queries_equivalent(bag2.query, bag3.query)
    lhs = dict(run_query(bag2.query, interp).items())
    rhs = dict(run_query(bag3.query, interp).items())
    print("Without DISTINCT the rule is unsound; prover rejects it:",
          rejected)
    print(f"  counterexample multiplicities: Q2 {lhs} vs Q3 {rhs}")
    assert rejected and lhs != rhs


if __name__ == "__main__":
    main()
