"""Normalization of UniNomial terms into sum-of-products normal form.

The paper's equational proofs (Figures 1 and 2, Sec. 5.1) all follow the
same plan: denote both sides, then rewrite with the semiring identities of
Sec. 3.4 plus three lemmas:

* **Lemma 5.1** — Σ over a product type splits into nested Σs
  (bound *pair variables* split into components),
* **Lemma 5.2** — ``Σ x. P(x) × (x = s)  =  P(s)``
  (*point elimination* of a bound variable pinned by an equality),
* squash laws — ``‖A×B‖ = ‖A‖×‖B‖``, ``‖A×P‖ = ‖A‖×P`` for props P,
  ``‖n×n‖ = ‖n‖``, ``‖‖A‖‖ = ‖A‖``.

This module performs those rewrites to a fixpoint, producing a structured
normal form:

    NSum  =  Π₁ + Π₂ + ...                 (a bag union of clauses)
    NProduct  =  Σ x̄. a₁ × a₂ × ...        (bound vars and atomic factors)

Atoms are relation applications, equalities, uninterpreted predicates, and
squashed/negated normal forms (for DISTINCT/EXISTS/OR and NOT/EXCEPT).
The equivalence checker (:mod:`repro.core.equivalence`) then decides
equality of normal forms by AC matching, congruence closure, and
homomorphism search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from .schema import Empty, Node
from .uninomial import (
    Substitution,
    TAgg,
    TConst,
    TPair,
    TVar,
    Term,
    UAdd,
    UEq,
    UMul,
    UNeg,
    UOne,
    UPred,
    URel,
    USquash,
    USum,
    UTerm,
    UZero,
    fresh_var,
    subst_term,
    term_free_vars,
    tfst,
    tpair,
    tsnd,
    ueq,
    umul_all,
    uneg,
    usquash,
    usum,
    uterm_free_vars,
)


# ---------------------------------------------------------------------------
# Normal-form data structures
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ARel:
    """Atom ``⟦R⟧ t``."""

    name: str
    arg: Term

    def __str__(self) -> str:
        return f"⟦{self.name}⟧ {self.arg}"


@dataclass(frozen=True)
class AEq:
    """Atom ``(left = right)`` — oriented deterministically."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} = {self.right})"


@dataclass(frozen=True)
class APred:
    """Atom ``⟦b⟧ (args)`` — an uninterpreted proposition."""

    name: str
    args: Tuple[Term, ...]

    def __str__(self) -> str:
        return f"⟦{self.name}⟧ ({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class ASquash:
    """Atom ``‖ inner ‖`` — a squashed existential (EXISTS/DISTINCT/OR)."""

    inner: "NSum"

    def __str__(self) -> str:
        return f"‖{self.inner}‖"


@dataclass(frozen=True)
class ANeg:
    """Atom ``inner → 0`` (NOT / EXCEPT)."""

    inner: "NSum"

    def __str__(self) -> str:
        return f"({self.inner} → 0)"


Atom = Union[ARel, AEq, APred, ASquash, ANeg]


@dataclass(frozen=True)
class NProduct:
    """A clause ``Σ vars. factor₁ × factor₂ × ...``."""

    vars: Tuple[TVar, ...]
    factors: Tuple[Atom, ...]

    @property
    def is_proposition(self) -> bool:
        """True iff the clause is certainly 0/1-valued: no Σ, only prop atoms."""
        return not self.vars and all(_atom_is_prop(a) for a in self.factors)

    @property
    def is_trivially_one(self) -> bool:
        """True iff the clause is literally the unit type."""
        return not self.vars and not self.factors

    def __str__(self) -> str:
        binder = "".join(f"Σ{v}:{v.var_schema}. " for v in self.vars)
        if not self.factors:
            return binder + "1"
        return binder + " × ".join(str(f) for f in self.factors)


@dataclass(frozen=True)
class NSum:
    """A bag union of clauses (the empty union is the type 0)."""

    products: Tuple[NProduct, ...]

    @property
    def is_zero(self) -> bool:
        return not self.products

    def __str__(self) -> str:
        if self.is_zero:
            return "0"
        return " + ".join(f"({p})" for p in self.products)


#: The normal form of 0 and of 1.
NSUM_ZERO = NSum(())
NPRODUCT_ONE = NProduct((), ())
NSUM_ONE = NSum((NPRODUCT_ONE,))


def _atom_is_prop(atom: Atom) -> bool:
    return isinstance(atom, (AEq, APred, ASquash, ANeg))


# ---------------------------------------------------------------------------
# Free variables and substitution on normal forms
# ---------------------------------------------------------------------------

def atom_free_vars(atom: Atom) -> FrozenSet[TVar]:
    """Free tuple variables of an atom."""
    if isinstance(atom, ARel):
        return term_free_vars(atom.arg)
    if isinstance(atom, AEq):
        return term_free_vars(atom.left) | term_free_vars(atom.right)
    if isinstance(atom, APred):
        out: FrozenSet[TVar] = frozenset()
        for a in atom.args:
            out |= term_free_vars(a)
        return out
    if isinstance(atom, (ASquash, ANeg)):
        return nsum_free_vars(atom.inner)
    raise TypeError(f"not an atom: {atom!r}")


def product_free_vars(product: NProduct) -> FrozenSet[TVar]:
    """Free variables of a clause (its own binders removed)."""
    out: FrozenSet[TVar] = frozenset()
    for f in product.factors:
        out |= atom_free_vars(f)
    return out - frozenset(product.vars)


def nsum_free_vars(nsum: NSum) -> FrozenSet[TVar]:
    """Free variables of a normal form."""
    out: FrozenSet[TVar] = frozenset()
    for p in nsum.products:
        out |= product_free_vars(p)
    return out


def atom_subst(atom: Atom, sub: Substitution) -> Atom:
    """Capture-avoiding substitution on an atom."""
    if isinstance(atom, ARel):
        return ARel(atom.name, subst_term(atom.arg, sub))
    if isinstance(atom, AEq):
        return _orient_eq(subst_term(atom.left, sub), subst_term(atom.right, sub))
    if isinstance(atom, APred):
        return APred(atom.name, tuple(subst_term(a, sub) for a in atom.args))
    if isinstance(atom, ASquash):
        return ASquash(nsum_subst(atom.inner, sub))
    if isinstance(atom, ANeg):
        return ANeg(nsum_subst(atom.inner, sub))
    raise TypeError(f"not an atom: {atom!r}")


def product_subst(product: NProduct, sub: Substitution) -> NProduct:
    """Substitute into a clause (binders are globally fresh, so no capture)."""
    inner = {v: t for v, t in sub.items() if v not in product.vars}
    if not inner:
        return product
    return NProduct(product.vars,
                    tuple(atom_subst(f, inner) for f in product.factors))


def nsum_subst(nsum: NSum, sub: Substitution) -> NSum:
    """Substitute into a normal form."""
    if not sub:
        return nsum
    return NSum(tuple(product_subst(p, sub) for p in nsum.products))


def _orient_eq(left: Term, right: Term) -> AEq:
    """Store equalities in a deterministic orientation."""
    if _term_order_key(right) < _term_order_key(left):
        left, right = right, left
    return AEq(left, right)


def _term_order_key(term: Term) -> Tuple[int, str]:
    return (0 if isinstance(term, TVar) else 1, str(term))


# ---------------------------------------------------------------------------
# Alpha-equivalence keys
#
# Binders are globally fresh, so two alpha-equivalent squash contents are
# never syntactically equal.  These functions compute canonical keys with
# positional (de Bruijn-style) labels for bound variables; comparing keys
# decides alpha-equivalence, which the engine uses for deduplication under
# truncations (``‖n × n‖ = ‖n‖``) and for matching negation atoms.
# ---------------------------------------------------------------------------

def term_alpha_key(term: Term, env: Dict[TVar, str] | None = None) -> Tuple:
    """Canonical structural key of a term under a bound-variable labelling."""
    env = env or {}
    if isinstance(term, TVar):
        return ("var", env.get(term, term.name), str(term.var_schema))
    from .uninomial import TApp, TFst, TSnd, TUnit
    if isinstance(term, TUnit):
        return ("unit",)
    if isinstance(term, TPair):
        return ("pair", term_alpha_key(term.left, env),
                term_alpha_key(term.right, env))
    if isinstance(term, TFst):
        return ("fst", term_alpha_key(term.arg, env))
    if isinstance(term, TSnd):
        return ("snd", term_alpha_key(term.arg, env))
    if isinstance(term, TConst):
        return ("const", term.ty.name, repr(term.value))
    if isinstance(term, TApp):
        return ("app", term.fn, str(term.result_schema),
                tuple(term_alpha_key(a, env) for a in term.args))
    if isinstance(term, TAgg):
        inner = dict(env)
        inner[term.var] = "@agg"
        return ("agg", term.name, term.ty.name,
                uterm_alpha_key(term.body, inner))
    raise TypeError(f"not a term: {term!r}")


def uterm_alpha_key(u: UTerm, env: Dict[TVar, str] | None = None) -> Tuple:
    """Canonical key of a raw UniNomial term (used inside aggregates)."""
    env = env or {}
    if isinstance(u, UZero):
        return ("zero",)
    if isinstance(u, UOne):
        return ("one",)
    if isinstance(u, UAdd):
        return ("add", uterm_alpha_key(u.left, env), uterm_alpha_key(u.right, env))
    if isinstance(u, UMul):
        return ("mul", uterm_alpha_key(u.left, env), uterm_alpha_key(u.right, env))
    if isinstance(u, USquash):
        return ("squash", uterm_alpha_key(u.arg, env))
    if isinstance(u, UNeg):
        return ("neg", uterm_alpha_key(u.arg, env))
    if isinstance(u, USum):
        inner = dict(env)
        inner[u.var] = f"@{len(env)}"
        return ("sum", str(u.var.var_schema), uterm_alpha_key(u.body, inner))
    if isinstance(u, UEq):
        return ("eq", term_alpha_key(u.left, env), term_alpha_key(u.right, env))
    if isinstance(u, URel):
        return ("rel", u.name, term_alpha_key(u.arg, env))
    if isinstance(u, UPred):
        return ("pred", u.name, tuple(term_alpha_key(a, env) for a in u.args))
    raise TypeError(f"not a UTerm: {u!r}")


def atom_alpha_key(atom: Atom, env: Dict[TVar, str] | None = None) -> Tuple:
    """Canonical key of a normal-form atom."""
    env = env or {}
    if isinstance(atom, ARel):
        return ("rel", atom.name, term_alpha_key(atom.arg, env))
    if isinstance(atom, AEq):
        keys = sorted((term_alpha_key(atom.left, env),
                       term_alpha_key(atom.right, env)))
        return ("eq", keys[0], keys[1])
    if isinstance(atom, APred):
        return ("pred", atom.name,
                tuple(term_alpha_key(a, env) for a in atom.args))
    if isinstance(atom, ASquash):
        return ("squash", nsum_alpha_key(atom.inner, env))
    if isinstance(atom, ANeg):
        return ("negsum", nsum_alpha_key(atom.inner, env))
    raise TypeError(f"not an atom: {atom!r}")


def product_alpha_key(product: NProduct,
                      env: Dict[TVar, str] | None = None) -> Tuple:
    """Canonical key of a clause: binders become positional labels."""
    env = dict(env) if env else {}
    for i, v in enumerate(product.vars):
        env[v] = f"@{len(env)}.{i}"
    schemas = tuple(sorted(str(v.var_schema) for v in product.vars))
    factor_keys = tuple(sorted(atom_alpha_key(f, env) for f in product.factors))
    return ("product", schemas, factor_keys)


def nsum_alpha_key(nsum: NSum, env: Dict[TVar, str] | None = None) -> Tuple:
    """Canonical key of a normal form (clause order irrelevant)."""
    return ("nsum", tuple(sorted(product_alpha_key(p, env)
                                 for p in nsum.products)))


def atoms_alpha_equal(a: Atom, b: Atom) -> bool:
    """Alpha-equivalence of two atoms."""
    return a is b or atom_alpha_key(a) == atom_alpha_key(b)


def nsums_alpha_equal(a: NSum, b: NSum) -> bool:
    """Alpha-equivalence of two normal forms."""
    return a is b or nsum_alpha_key(a) == nsum_alpha_key(b)


# ---------------------------------------------------------------------------
# Rebuilding UTerms (for display and for the proof-size metric)
# ---------------------------------------------------------------------------

def atom_to_uterm(atom: Atom) -> UTerm:
    """Render an atom back into the UniNomial language."""
    if isinstance(atom, ARel):
        return URel(atom.name, atom.arg)
    if isinstance(atom, AEq):
        return UEq(atom.left, atom.right)
    if isinstance(atom, APred):
        return UPred(atom.name, atom.args)
    if isinstance(atom, ASquash):
        return usquash(nsum_to_uterm(atom.inner))
    if isinstance(atom, ANeg):
        return uneg(nsum_to_uterm(atom.inner))
    raise TypeError(f"not an atom: {atom!r}")


def product_to_uterm(product: NProduct) -> UTerm:
    """Render a clause back into the UniNomial language."""
    body = umul_all([atom_to_uterm(f) for f in product.factors])
    for var in reversed(product.vars):
        body = usum(var, body)
    return body


def nsum_to_uterm(nsum: NSum) -> UTerm:
    """Render a normal form back into the UniNomial language."""
    if nsum.is_zero:
        return UZero()
    result: Optional[UTerm] = None
    for p in reversed(nsum.products):
        u = product_to_uterm(p)
        result = u if result is None else UAdd(u, result)
    assert result is not None
    return result


# ---------------------------------------------------------------------------
# The normalizer
# ---------------------------------------------------------------------------

def normalize(u: UTerm) -> NSum:
    """Normalize a UniNomial term to sum-of-products normal form."""
    return _refine_nsum(_translate(u))


def _translate(u: UTerm) -> NSum:
    """Structural translation; distributes × over + and hoists Σ."""
    if isinstance(u, UZero):
        return NSUM_ZERO
    if isinstance(u, UOne):
        return NSUM_ONE
    if isinstance(u, UAdd):
        left = _translate(u.left)
        right = _translate(u.right)
        return NSum(left.products + right.products)
    if isinstance(u, UMul):
        left = _translate(u.left)
        right = _translate(u.right)
        out: List[NProduct] = []
        for p in left.products:
            for q in right.products:
                q2 = _freshen(q)
                out.append(NProduct(p.vars + q2.vars, p.factors + q2.factors))
        return NSum(tuple(out))
    if isinstance(u, USum):
        inner = _translate(u.body)
        out = []
        for p in inner.products:
            renamed = fresh_var(u.var.var_schema, _hint(u.var))
            p2 = product_subst(p, {u.var: renamed})
            out.append(NProduct((renamed,) + p2.vars, p2.factors))
        return NSum(tuple(out))
    if isinstance(u, USquash):
        return _squash_nsum(_translate(u.arg))
    if isinstance(u, UNeg):
        return _neg_nsum(_translate(u.arg))
    if isinstance(u, UEq):
        factors = _eq_factors(u.left, u.right)
        if factors is None:
            return NSUM_ZERO
        return NSum((NProduct((), tuple(factors)),))
    if isinstance(u, URel):
        return NSum((NProduct((), (ARel(u.name, u.arg),)),))
    if isinstance(u, UPred):
        return NSum((NProduct((), (APred(u.name, u.args),)),))
    raise TypeError(f"not a UTerm: {u!r}")


def _squash_nsum(inner: NSum) -> NSum:
    """Wrap a normal form in a truncation atom (simplified during refinement)."""
    return NSum((NProduct((), (ASquash(inner),)),))


def _neg_nsum(inner: NSum) -> NSum:
    """Wrap a normal form in a negation atom (simplified during refinement)."""
    return NSum((NProduct((), (ANeg(inner),)),))


def _hint(var: TVar) -> str:
    return var.name.split("$")[0]


def _freshen(product: NProduct) -> NProduct:
    """Rename all binders of a clause to globally fresh variables."""
    if not product.vars:
        return product
    sub: Substitution = {}
    new_vars = []
    for v in product.vars:
        nv = fresh_var(v.var_schema, _hint(v))
        sub[v] = nv
        new_vars.append(nv)
    return NProduct(tuple(new_vars),
                    tuple(atom_subst(f, sub) for f in product.factors))


def _eq_factors(left: Term, right: Term) -> Optional[List[Atom]]:
    """Decompose an equality along the (concrete part of the) schema.

    Returns ``None`` when the equality is refutable (distinct constants),
    the empty list when it is trivially true, and a list of ``AEq`` atoms
    otherwise.  Pair-shaped equalities split component-wise:
    ``((a, b) = t)  =  (a = t.1) × (b = t.2)``.
    """
    if left == right:
        return []
    schema = left.schema
    if isinstance(schema, Empty):
        return []
    if isinstance(schema, Node) or isinstance(left, TPair) or isinstance(right, TPair):
        first = _eq_factors(tfst(left), tfst(right))
        if first is None:
            return None
        second = _eq_factors(tsnd(left), tsnd(right))
        if second is None:
            return None
        return first + second
    if isinstance(left, TConst) and isinstance(right, TConst):
        return [] if left.value == right.value else None
    return [_orient_eq(left, right)]


# ---------------------------------------------------------------------------
# Clause refinement: variable splitting, point elimination, squash laws
# ---------------------------------------------------------------------------

def _refine_nsum(nsum: NSum) -> NSum:
    out: List[NProduct] = []
    for p in nsum.products:
        refined = _refine_product(p)
        if refined is not None:
            out.append(refined)
    return NSum(tuple(out))


def _refine_product(product: NProduct) -> Optional[NProduct]:
    """Apply Lemmas 5.1/5.2 and squash simplification to a fixpoint.

    Returns ``None`` when the clause denotes the empty type.
    """
    vars_list = list(product.vars)
    factors = list(product.factors)

    changed = True
    while changed:
        changed = False

        # Lemma 5.1 — split bound pair variables; drop unit variables.
        for i, var in enumerate(vars_list):
            schema = var.var_schema
            if isinstance(schema, Empty):
                sub = {var: _unit_term()}
                del vars_list[i]
                factors = [atom_subst(f, sub) for f in factors]
                changed = True
                break
            if isinstance(schema, Node):
                v1 = fresh_var(schema.left, _hint(var))
                v2 = fresh_var(schema.right, _hint(var))
                sub = {var: tpair(v1, v2)}
                vars_list[i:i + 1] = [v1, v2]
                factors = [atom_subst(f, sub) for f in factors]
                changed = True
                break
        if changed:
            continue

        # Re-decompose equalities whose sides became pairs, detect refutation.
        new_factors: List[Atom] = []
        decomposed = False
        refuted = False
        for f in factors:
            if isinstance(f, AEq):
                pieces = _eq_factors(f.left, f.right)
                if pieces is None:
                    refuted = True
                    break
                if len(pieces) != 1 or pieces[0] != f:
                    decomposed = True
                new_factors.extend(pieces)
            else:
                new_factors.append(f)
        if refuted:
            return None
        if decomposed:
            factors = new_factors
            changed = True
            continue
        factors = new_factors

        # Lemma 5.2 — point elimination of pinned bound variables.
        eliminated = False
        for i, f in enumerate(factors):
            if not isinstance(f, AEq):
                continue
            pin = _pinned_var(f, vars_list)
            if pin is None:
                continue
            var, replacement = pin
            vars_list.remove(var)
            del factors[i]
            sub = {var: replacement}
            factors = [atom_subst(g, sub) for g in factors]
            eliminated = True
            break
        if eliminated:
            changed = True
            continue

        # Squash / negation simplification of nested normal forms.
        simplified, factors_or_none = _simplify_nested(factors)
        if factors_or_none is None:
            return None
        if simplified:
            factors = factors_or_none
            changed = True
            continue
        factors = factors_or_none

    factors.sort(key=_atom_sort_key)
    return NProduct(tuple(vars_list), tuple(factors))


def _unit_term() -> Term:
    from .uninomial import TUnit
    return TUnit()


def _pinned_var(atom: AEq, bound: Sequence[TVar]) -> Optional[Tuple[TVar, Term]]:
    """Find ``x = s`` with x bound and x not free in s (either orientation)."""
    for var_side, other in ((atom.left, atom.right), (atom.right, atom.left)):
        if isinstance(var_side, TVar) and var_side in bound \
                and var_side not in term_free_vars(other):
            return var_side, other
    return None


def _simplify_nested(factors: List[Atom]) -> Tuple[bool, Optional[List[Atom]]]:
    """Normalize squashed/negated sub-sums and apply the squash laws.

    Returns ``(changed, new_factors)``; ``new_factors is None`` marks the
    whole clause as the empty type.
    """
    changed = False
    out: List[Atom] = []
    for f in factors:
        if isinstance(f, ASquash):
            inner = _refine_nsum(_dedup_under_squash(f.inner))
            if inner.is_zero:
                return True, None
            if any(p.is_trivially_one for p in inner.products):
                changed = True  # ‖1 + ...‖ = 1: the factor vanishes
                continue
            pulled, remainder = _pull_props(inner)
            if pulled:
                changed = True
                out.extend(pulled)
                if remainder is not None:
                    out.append(ASquash(remainder))
                continue
            if inner != f.inner:
                changed = True
            out.append(ASquash(inner))
        elif isinstance(f, ANeg):
            inner = _refine_nsum(_dedup_under_squash(f.inner))
            if inner.is_zero:
                changed = True  # (0 → 0) = 1: the factor vanishes
                continue
            if any(p.is_trivially_one for p in inner.products):
                return True, None  # (1 → 0) = 0
            if inner != f.inner:
                changed = True
            out.append(ANeg(inner))
        else:
            out.append(f)
    return changed, out


def _dedup_under_squash(nsum: NSum) -> NSum:
    """Under ‖·‖ (or → 0), duplicates do not matter: ``‖n × n‖ = ‖n‖``.

    Deduplicates identical factors within each clause and identical clauses
    within the sum.  Only sound under a truncation, which is the only place
    this is called.
    """
    out_products = []
    seen_product_keys = set()
    for p in nsum.products:
        factor_keys = set()
        env: Dict[TVar, str] = {}
        for i, v in enumerate(p.vars):
            env[v] = f"@{i}"
        dedup_factors = []
        for f in p.factors:
            key = atom_alpha_key(f, env)
            if key in factor_keys:
                continue
            factor_keys.add(key)
            dedup_factors.append(f)
        q = NProduct(p.vars, tuple(dedup_factors))
        q_key = product_alpha_key(q)
        if q_key not in seen_product_keys:
            seen_product_keys.add(q_key)
            out_products.append(q)
    return NSum(tuple(out_products))


def _pull_props(inner: NSum) -> Tuple[List[Atom], Optional[NSum]]:
    """``‖A × P‖ = ‖A‖ × P`` — hoist prop factors out of a squash.

    Only applies when the squash wraps a single clause with no binders
    (otherwise the props may mention bound variables).  Returns the hoisted
    prop atoms and the residual squash content (``None`` when everything was
    hoisted or the remainder is a lone prop).
    """
    if len(inner.products) != 1:
        return [], inner
    product = inner.products[0]
    if product.vars:
        return [], inner
    props = [f for f in product.factors if _atom_is_prop(f)]
    rest = [f for f in product.factors if not _atom_is_prop(f)]
    if not props:
        return [], inner
    if not rest:
        return props, None
    return props, NSum((NProduct((), tuple(rest)),))


def _atom_sort_key(atom: Atom) -> Tuple[int, str]:
    order = {ARel: 0, APred: 1, AEq: 2, ASquash: 3, ANeg: 4}
    return (order[type(atom)], str(atom))


__all__ = [
    "AEq",
    "ANeg",
    "APred",
    "ARel",
    "ASquash",
    "Atom",
    "NProduct",
    "NSum",
    "NSUM_ONE",
    "NSUM_ZERO",
    "atom_free_vars",
    "atom_subst",
    "atom_to_uterm",
    "normalize",
    "nsum_free_vars",
    "nsum_subst",
    "nsum_to_uterm",
    "product_free_vars",
    "product_subst",
    "product_to_uterm",
]
