"""Decompilation: unnamed core plans back to named SQL.

The inverse of :mod:`repro.sql.resolve` for the fragment the certified
optimizer emits.  The resolver erases names — ``alias.column`` becomes a
``Left``/``Right`` path through the context tuple — so an optimized core
plan cannot be shown to users as SQL without reconstructing names.  This
module rebuilds a named AST by replaying the resolver's schema-layout
conventions in reverse:

* a FROM clause is the right-nested product of its items, so the right
  spine of a ``Product`` chain becomes the FROM list (fresh aliases
  ``t0, t1, ...``),
* a table's columns are a right-nested schema, so paths into a table's
  tuple index its catalog columns,
* the context at each scope is ``node Γ σ_frame``, so a path's leading
  ``Left`` steps select an enclosing scope (correlated subqueries) and
  the final ``Right`` enters that scope's frame.

Decompilation is *partial* by design: core constructs with no SQL
counterpart in the frontend grammar (projection/predicate metavariables,
tuple-valued select items in nested scopes, uninterpreted predicate
symbols beyond the comparison operators) raise
:class:`PlanRenderingError`.  On the supported fragment the round trip is
semantics-preserving: recompiling the rendered SQL yields a query the
equivalence engine proves equal to the input plan (the session test suite
checks exactly this).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from ..core import ast
from ..errors import ReproError
from . import nast
from .resolve import ARITHMETIC_FUNCS, Catalog
from .unparse import unparse


class PlanRenderingError(ReproError):
    """Raised when a core plan falls outside the SQL-renderable fragment."""


# ---------------------------------------------------------------------------
# Named schema trees
#
# A tree mirrors a core schema's node/leaf shape but stores names: leaves
# are (alias, column) pairs once placed in a FROM frame, bare column names
# before that.  Paths walk these trees exactly as projections walk schemas.
# ---------------------------------------------------------------------------

_EMPTY = ("empty",)


def _leaf(alias: Optional[str], column: str) -> tuple:
    return ("leaf", alias, column)


def _node(left: tuple, right: tuple) -> tuple:
    return ("node", left, right)


def _right_nested(trees: Sequence[tuple]) -> tuple:
    if not trees:
        return _EMPTY
    result = trees[-1]
    for tree in reversed(trees[:-1]):
        result = _node(tree, result)
    return result


def _columns_tree(columns: Sequence[str], alias: Optional[str]) -> tuple:
    return _right_nested([_leaf(alias, name) for name in columns])


def _tree_leaves(tree: tuple) -> List[Tuple[Optional[str], str]]:
    if tree[0] == "leaf":
        return [(tree[1], tree[2])]
    if tree[0] == "node":
        return _tree_leaves(tree[1]) + _tree_leaves(tree[2])
    return []


def _relabel(tree: tuple, alias: str) -> tuple:
    """Attach a FROM alias to every leaf of an item's output tree."""
    if tree[0] == "leaf":
        name = tree[2]
        if "." in name:
            raise PlanRenderingError(
                f"composite column name {name!r} cannot be re-aliased")
        return _leaf(alias, name)
    if tree[0] == "node":
        return _node(_relabel(tree[1], alias), _relabel(tree[2], alias))
    return tree


def _walk(tree: tuple, steps: Sequence[str], what: str) -> tuple:
    for step in steps:
        if tree[0] != "node":
            raise PlanRenderingError(
                f"{what}: path steps into a non-product schema")
        tree = tree[1] if step == "L" else tree[2]
    return tree


# ---------------------------------------------------------------------------
# Projection paths
# ---------------------------------------------------------------------------

def _path_steps(proj: ast.Projection) -> Optional[List[str]]:
    """Flatten a pure step path to L/R tokens; None if not a pure path."""
    if isinstance(proj, ast.Star):
        return []
    if isinstance(proj, ast.LeftP):
        return ["L"]
    if isinstance(proj, ast.RightP):
        return ["R"]
    if isinstance(proj, ast.Compose):
        first = _path_steps(proj.first)
        second = _path_steps(proj.second)
        if first is None or second is None:
            return None
        return first + second
    return None


def _flatten_items(proj: ast.Projection) -> List[ast.Projection]:
    """The right spine of a ``proj_tuple`` Duplicate tree, as a list."""
    if isinstance(proj, ast.Duplicate):
        return [proj.left] + _flatten_items(proj.right)
    return [proj]


# ---------------------------------------------------------------------------
# The decompiler
# ---------------------------------------------------------------------------

class Decompiler:
    """Rebuilds named SQL from core plans against a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._fresh = itertools.count()

    def _alias(self) -> str:
        return f"t{next(self._fresh)}"

    # -- queries -----------------------------------------------------------

    def decompile_query(self, query: ast.Query,
                        ctx_tree: tuple = _EMPTY
                        ) -> Tuple[nast.NQuery, tuple]:
        """Decompile one core query; returns (named AST, output tree)."""
        if isinstance(query, ast.UnionAll):
            left, tree = self.decompile_query(query.left, ctx_tree)
            right, _ = self.decompile_query(query.right, ctx_tree)
            return nast.NUnionAll(left, right), tree
        if isinstance(query, ast.Except):
            left, tree = self.decompile_query(query.left, ctx_tree)
            right, _ = self.decompile_query(query.right, ctx_tree)
            return nast.NExcept(left, right), tree
        if isinstance(query, ast.Distinct):
            inner, tree = self.decompile_query(query.query, ctx_tree)
            if isinstance(inner, nast.NSelect) and not inner.distinct:
                inner = nast.NSelect(True, inner.items, inner.from_items,
                                     inner.where, inner.group_by)
                return inner, tree
            alias = self._alias()
            return nast.NSelect(
                True, (), (nast.NFromItem(inner, alias),), None, None), \
                _relabel(tree, alias)
        return self._decompile_select(query, ctx_tree)

    def _decompile_select(self, query: ast.Query,
                          ctx_tree: tuple) -> Tuple[nast.NQuery, tuple]:
        projection = None
        if isinstance(query, ast.Select):
            projection = query.projection
            query = query.query
        predicates: List[ast.Predicate] = []
        while isinstance(query, ast.Where):
            predicates.append(query.predicate)
            query = query.query

        from_items, frame_tree = self._decompile_from(query)
        scope_tree = _node(ctx_tree, frame_tree)

        where = None
        for pred in reversed(predicates):  # innermost WHERE first
            named = self._decompile_pred(pred, scope_tree)
            where = named if where is None else nast.NAnd(where, named)

        if projection is None:
            # SELECT * — output tree is the frame itself, with the aliases
            # dropped (an enclosing scope re-aliases the leaves).
            out_tree = self._strip_aliases(frame_tree)
            return nast.NSelect(False, (), tuple(from_items), where, None), \
                out_tree
        items: List[nast.NSelectItem] = []
        names: List[tuple] = []
        for index, item in enumerate(_flatten_items(projection)):
            expr, name = self._decompile_item(item, scope_tree, index)
            items.append(nast.NSelectItem(expr, None))
            names.append(_leaf(None, name))
        return nast.NSelect(False, tuple(items), tuple(from_items), where,
                            None), _right_nested(names)

    def _strip_aliases(self, tree: tuple) -> tuple:
        if tree[0] == "leaf":
            return _leaf(None, tree[2])
        if tree[0] == "node":
            return _node(self._strip_aliases(tree[1]),
                         self._strip_aliases(tree[2]))
        return tree

    def _decompile_from(self, query: ast.Query
                        ) -> Tuple[List[nast.NFromItem], tuple]:
        """The right spine of a Product chain as a FROM list + frame tree."""
        items: List[ast.Query] = []
        while isinstance(query, ast.Product):
            items.append(query.left)
            query = query.right
        items.append(query)

        from_items: List[nast.NFromItem] = []
        trees: List[tuple] = []
        for item in items:
            alias = self._alias()
            if isinstance(item, ast.Table):
                if item.name not in self.catalog.tables:
                    raise PlanRenderingError(
                        f"table {item.name!r} is not in the catalog "
                        f"(relation metavariable?)")
                columns = [c for c, _ in self.catalog.columns(item.name)]
                from_items.append(nast.NFromItem(item.name, alias))
                trees.append(_columns_tree(columns, alias))
            else:
                sub, tree = self.decompile_query(item)
                leaves = _tree_leaves(tree)
                if len({name for _, name in leaves}) != len(leaves):
                    raise PlanRenderingError(
                        "subquery FROM item has duplicate column names")
                from_items.append(nast.NFromItem(sub, alias))
                trees.append(_relabel(tree, alias))
        return from_items, _right_nested(trees)

    # -- select items ------------------------------------------------------

    def _decompile_item(self, proj: ast.Projection, scope_tree: tuple,
                        index: int) -> Tuple[nast.NExpr, str]:
        steps = _path_steps(proj)
        if steps is not None:
            target = _walk(scope_tree, steps, "select item")
            if target[0] != "leaf":
                raise PlanRenderingError(
                    "tuple-valued select item has no SQL rendering")
            return nast.NColumn(target[1], target[2]), target[2]
        if isinstance(proj, ast.E2P):
            return self._decompile_expr(proj.expression, scope_tree), \
                f"col{index}"
        raise PlanRenderingError(
            f"unrenderable projection {proj!r} (metavariable?)")

    # -- predicates --------------------------------------------------------

    _COMPARISONS = {"lt": "<", "le": "<=", "gt": ">", "ge": ">="}

    def _decompile_pred(self, pred: ast.Predicate,
                        scope_tree: tuple) -> nast.NPred:
        if isinstance(pred, ast.PredEq):
            return nast.NComparison(
                "=", self._decompile_expr(pred.left, scope_tree),
                self._decompile_expr(pred.right, scope_tree))
        if isinstance(pred, ast.PredNot):
            inner = pred.operand
            if isinstance(inner, ast.PredEq):
                return nast.NComparison(
                    "<>", self._decompile_expr(inner.left, scope_tree),
                    self._decompile_expr(inner.right, scope_tree))
            return nast.NNot(self._decompile_pred(inner, scope_tree))
        if isinstance(pred, ast.PredAnd):
            return nast.NAnd(self._decompile_pred(pred.left, scope_tree),
                             self._decompile_pred(pred.right, scope_tree))
        if isinstance(pred, ast.PredOr):
            return nast.NOr(self._decompile_pred(pred.left, scope_tree),
                            self._decompile_pred(pred.right, scope_tree))
        if isinstance(pred, ast.PredTrue):
            return nast.NBoolLit(True)
        if isinstance(pred, ast.PredFalse):
            return nast.NBoolLit(False)
        if isinstance(pred, ast.PredFunc) \
                and pred.name in self._COMPARISONS and len(pred.args) == 2:
            return nast.NComparison(
                self._COMPARISONS[pred.name],
                self._decompile_expr(pred.args[0], scope_tree),
                self._decompile_expr(pred.args[1], scope_tree))
        if isinstance(pred, ast.Exists):
            sub, _ = self.decompile_query(pred.query, scope_tree)
            return nast.NExists(sub)
        raise PlanRenderingError(
            f"unrenderable predicate {pred!r} (metavariable or "
            f"uninterpreted symbol?)")

    # -- expressions -------------------------------------------------------

    #: Core function symbols rendered back as infix arithmetic.
    _ARITHMETIC = ARITHMETIC_FUNCS

    def _decompile_expr(self, expr: ast.Expression,
                        scope_tree: tuple) -> nast.NExpr:
        if isinstance(expr, ast.P2E):
            steps = _path_steps(expr.projection)
            if steps is None:
                raise PlanRenderingError(
                    f"unrenderable column path {expr.projection!r}")
            target = _walk(scope_tree, steps, "column reference")
            if target[0] != "leaf":
                raise PlanRenderingError(
                    "tuple-valued expression has no SQL rendering")
            return nast.NColumn(target[1], target[2])
        if isinstance(expr, ast.Const):
            return nast.NLiteral(expr.value)
        if isinstance(expr, ast.Func):
            if expr.name in self._ARITHMETIC and len(expr.args) == 2:
                return nast.NBinOp(
                    self._ARITHMETIC[expr.name],
                    self._decompile_expr(expr.args[0], scope_tree),
                    self._decompile_expr(expr.args[1], scope_tree))
            return nast.NFuncCall(
                expr.name, tuple(self._decompile_expr(a, scope_tree)
                                 for a in expr.args))
        if isinstance(expr, ast.Agg):
            sub, tree = self.decompile_query(expr.query, scope_tree)
            if tree[0] == "node":
                raise PlanRenderingError(
                    f"aggregate {expr.name} over a multi-column subquery")
            return nast.NAggQuery(expr.name, sub)
        raise PlanRenderingError(
            f"unrenderable expression {expr!r} (metavariable?)")


def decompile(query: ast.Query, catalog: Catalog) -> nast.NQuery:
    """Rebuild a named AST for a core plan (see module docstring)."""
    named, _ = Decompiler(catalog).decompile_query(query)
    return named


def plan_to_sql(query: ast.Query, catalog: Catalog) -> str:
    """Render a core plan as SQL text; :class:`PlanRenderingError` when the
    plan falls outside the renderable fragment."""
    return unparse(decompile(query, catalog))


__all__ = ["Decompiler", "PlanRenderingError", "decompile", "plan_to_sql"]
