"""The rewrite-rule library: Figure 8's 23 rules plus unsound controls."""

from .aggregation import aggregation_rules
from .apply import (
    Application,
    Bindings,
    apply_rule_at_root,
    apply_rule_everywhere,
)
from .basic import basic_rules
from .buggy import buggy_rules
from .common import groupby_agg, semijoin, semijoin_on
from .conjunctive import conjunctive_rules, fig10_queries, self_join_queries
from .extended import extended_rules
from .index import index_rules, index_view
from .magic import magic_rules
from .registry import (
    CATEGORY_ORDER,
    PAPER_FIGURE_8,
    all_buggy_rules,
    all_extended_rules,
    all_rules,
    get_rule,
    rules_by_category,
)
from .rule import Proof, RewriteRule
from .subquery import subquery_rules

__all__ = [
    "Application",
    "Bindings",
    "CATEGORY_ORDER",
    "PAPER_FIGURE_8",
    "Proof",
    "RewriteRule",
    "aggregation_rules",
    "apply_rule_at_root",
    "apply_rule_everywhere",
    "all_buggy_rules",
    "all_extended_rules",
    "all_rules",
    "basic_rules",
    "buggy_rules",
    "conjunctive_rules",
    "extended_rules",
    "fig10_queries",
    "get_rule",
    "groupby_agg",
    "index_rules",
    "index_view",
    "magic_rules",
    "rules_by_category",
    "self_join_queries",
    "semijoin",
    "semijoin_on",
    "subquery_rules",
]
