"""Cardinal arithmetic: the paper's infinite multiplicities."""

import pytest
from hypothesis import given, strategies as st

from repro.semiring.cardinal import (
    Cardinal,
    OMEGA,
    ONE,
    ZERO,
    cardinal_product,
    cardinal_sum,
)

finite = st.integers(min_value=0, max_value=50).map(Cardinal)
cardinals = st.one_of(finite, st.just(OMEGA))


class TestConstruction:
    def test_finite_value(self):
        assert Cardinal(3).finite_value() == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Cardinal(-1)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            Cardinal("three")

    def test_omega_has_no_finite_value(self):
        with pytest.raises(ValueError):
            OMEGA.finite_value()

    def test_predicates(self):
        assert ZERO.is_zero and ZERO.is_finite
        assert ONE.is_finite and not ONE.is_zero
        assert OMEGA.is_infinite and not OMEGA.is_finite


class TestArithmetic:
    def test_finite_addition(self):
        assert Cardinal(2) + Cardinal(3) == Cardinal(5)

    def test_finite_multiplication(self):
        assert Cardinal(2) * Cardinal(3) == Cardinal(6)

    def test_omega_absorbs_addition(self):
        assert OMEGA + Cardinal(5) == OMEGA
        assert Cardinal(5) + OMEGA == OMEGA
        assert OMEGA + OMEGA == OMEGA

    def test_omega_absorbs_multiplication(self):
        assert OMEGA * Cardinal(5) == OMEGA
        assert Cardinal(5) * OMEGA == OMEGA

    def test_zero_annihilates_omega(self):
        # The empty type times anything is empty — the key law making
        # selections on infinite relations behave.
        assert ZERO * OMEGA == ZERO
        assert OMEGA * ZERO == ZERO

    def test_int_coercion(self):
        assert Cardinal(2) + 3 == Cardinal(5)
        assert 2 * Cardinal(3) == Cardinal(6)

    def test_sum_and_product_helpers(self):
        assert cardinal_sum([1, 2, 3]) == Cardinal(6)
        assert cardinal_product([2, 3]) == Cardinal(6)
        assert cardinal_sum([]) == ZERO
        assert cardinal_product([]) == ONE
        assert cardinal_sum([1, OMEGA]) == OMEGA


class TestTruncationAndNegation:
    def test_squash(self):
        assert ZERO.squash() == ZERO
        assert Cardinal(7).squash() == ONE
        assert OMEGA.squash() == ONE

    def test_negate(self):
        assert ZERO.negate() == ONE
        assert Cardinal(7).negate() == ZERO
        assert OMEGA.negate() == ZERO

    def test_double_negation_is_squash(self):
        for c in (ZERO, ONE, Cardinal(4), OMEGA):
            assert c.negate().negate() == c.squash()


class TestOrderingAndHashing:
    def test_order(self):
        assert Cardinal(1) < Cardinal(2) < OMEGA
        assert not OMEGA < OMEGA

    def test_hash_consistent_with_eq(self):
        assert hash(Cardinal(4)) == hash(Cardinal(4))
        assert hash(OMEGA) == hash(OMEGA)
        assert len({Cardinal(2), Cardinal(2), OMEGA, OMEGA}) == 2

    def test_bool(self):
        assert not ZERO
        assert ONE and OMEGA

    def test_str(self):
        assert str(OMEGA) == "ω"
        assert str(Cardinal(3)) == "3"


class TestSemiringLawsProperty:
    @given(cardinals, cardinals, cardinals)
    def test_add_assoc_comm(self, a, b, c):
        assert (a + b) + c == a + (b + c)
        assert a + b == b + a

    @given(cardinals, cardinals, cardinals)
    def test_mul_assoc_comm(self, a, b, c):
        assert (a * b) * c == a * (b * c)
        assert a * b == b * a

    @given(cardinals, cardinals, cardinals)
    def test_distributivity(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(cardinals)
    def test_identities(self, a):
        assert a + ZERO == a
        assert a * ONE == a
        assert a * ZERO == ZERO
