"""Plan-property inference: transfer functions + the soundness suite.

The soundness suite is the empirical contract of the analysis: every
fact it infers must hold on *every* concrete instance, so we evaluate
random instances (from :mod:`repro.engine.random_instances`) and check
the inferred lattice element against the actual bag — under both term
kernels, since everything downstream of ``normalize`` must be
backend-agnostic.
"""

import random

import pytest

from repro.analysis.infer import (
    AnalysisContext,
    EMPTY_CONTEXT,
    infer_properties,
    pred_sat,
    supports_determined,
)
from repro.analysis.properties import Interval, Sat
from repro.core import ast
from repro.core.equivalence import Hypotheses, KeyConstraint
from repro.core.intern import set_kernel_backend
from repro.core.schema import INT, Leaf, Node
from repro.engine.database import Interpretation
from repro.engine.eval import run_query
from repro.engine.random_instances import (
    path_projection,
    random_keyed_relation,
    random_relation,
)
from repro.semiring import NAT

SCHEMA = Node(Leaf(INT), Leaf(INT))
R = ast.Table("R", SCHEMA)
S = ast.Table("S", SCHEMA)
A = ast.ExprVar("a", SCHEMA, INT)
TRUE = ast.PredTrue()
FALSE = ast.PredFalse()


def _eq(x, y):
    return ast.PredEq(x, y)


CONTRA = ast.PredAnd(_eq(A, ast.Const(0, INT)), _eq(A, ast.Const(1, INT)))


class TestPredSat:
    @pytest.mark.parametrize("pred, expected", [
        (TRUE, Sat.ALWAYS),
        (FALSE, Sat.NEVER),
        (ast.PredNot(FALSE), Sat.ALWAYS),
        (_eq(A, A), Sat.ALWAYS),
        (_eq(ast.Const(1, INT), ast.Const(1, INT)), Sat.ALWAYS),
        (_eq(ast.Const(0, INT), ast.Const(1, INT)), Sat.NEVER),
        (CONTRA, Sat.NEVER),
        (ast.PredAnd(ast.PredVar("b", SCHEMA), ast.PredNot(ast.PredVar("b", SCHEMA))),
         Sat.NEVER),
        (ast.PredOr(ast.PredVar("b", SCHEMA), ast.PredNot(ast.PredVar("b", SCHEMA))),
         Sat.ALWAYS),
        (ast.PredVar("b", SCHEMA), Sat.UNKNOWN),
        (_eq(A, ast.Const(0, INT)), Sat.UNKNOWN),
    ])
    def test_classification(self, pred, expected):
        assert pred_sat(pred) is expected

    def test_exists_over_static_empty(self):
        assert pred_sat(ast.Exists(ast.Where(R, FALSE))) is Sat.NEVER


class TestTransfer:
    def test_distinct_is_set_valued(self):
        assert infer_properties(ast.Distinct(R)).set_valued

    def test_contradiction_is_empty(self):
        props = infer_properties(ast.Where(R, CONTRA))
        assert props.empty
        assert props.card == Interval(0, 0)

    def test_tautology_is_transparent(self):
        assert infer_properties(ast.Where(R, TRUE)) == infer_properties(R)

    def test_emptiness_propagates_through_product(self):
        q = ast.Product(ast.Where(R, FALSE), S)
        assert infer_properties(q).empty

    def test_union_of_empties_is_empty(self):
        q = ast.UnionAll(ast.Where(R, FALSE), ast.Where(S, CONTRA))
        assert infer_properties(q).empty

    def test_union_of_sets_is_not_set(self):
        q = ast.UnionAll(ast.Distinct(R), ast.Distinct(R))
        assert not infer_properties(q).set_valued

    def test_except_keeps_left_setness(self):
        q = ast.Except(ast.Distinct(R), S)
        assert infer_properties(q).set_valued

    def test_product_of_sets_is_set(self):
        q = ast.Product(ast.Distinct(R), ast.Distinct(S))
        assert infer_properties(q).set_valued

    def test_key_hypothesis_makes_table_set_valued(self):
        hyps = Hypotheses(keys=(KeyConstraint("R", "k", Leaf(INT)),))
        ctx = AnalysisContext.from_hypotheses(hyps)
        assert infer_properties(R, ctx).set_valued
        assert not infer_properties(R, EMPTY_CONTEXT).set_valued
        assert not infer_properties(S, ctx).set_valued

    def test_table_cards_bound_cardinality(self):
        ctx = AnalysisContext(table_cards=(("R", Interval(0, 3)),))
        assert infer_properties(R, ctx).card == Interval(0, 3)
        q = ast.Product(R, R)
        assert infer_properties(q, ctx).card == Interval(0, 9)

    def test_supports_determined(self):
        assert supports_determined(ast.Distinct(R))
        assert supports_determined(ast.Distinct(ast.Product(R, S)))
        assert not supports_determined(R)
        assert not supports_determined(ast.UnionAll(R, R))


# ---------------------------------------------------------------------------
# The soundness suite: inferred facts vs. actual evaluation
# ---------------------------------------------------------------------------

#: Plans whose free tables are R and S at SCHEMA, paired with the key
#: hypothesis context they are analyzed under (None → no hypotheses).
_KEY_HYPS = Hypotheses(keys=(KeyConstraint("R", "k", Leaf(INT)),))

SOUNDNESS_PLANS = [
    (R, None),
    (ast.Distinct(R), None),
    (ast.Where(R, CONTRA), None),
    (ast.Where(R, _eq(A, A)), None),
    (ast.Product(ast.Distinct(R), ast.Distinct(S)), None),
    (ast.UnionAll(R, ast.Where(S, FALSE)), None),
    (ast.Except(ast.Distinct(R), S), None),
    (ast.Except(R, ast.Where(S, FALSE)), None),
    (ast.Distinct(ast.UnionAll(R, S)), None),
    (ast.Where(ast.Distinct(R), ast.PredVar("p", SCHEMA)), None),
    (R, _KEY_HYPS),
    (ast.Product(R, ast.Distinct(S)), _KEY_HYPS),
    (ast.Where(R, ast.PredVar("p", SCHEMA)), _KEY_HYPS),
]


def _first_leaf(value):
    while isinstance(value, tuple):
        value = value[0] if value else 0
    return 0 if value is None else value


def _random_interp(rng, keyed):
    interp = Interpretation()
    if keyed:
        interp.relations["R"] = random_keyed_relation(rng, SCHEMA, ("L",))
    else:
        interp.relations["R"] = random_relation(rng, SCHEMA)
    interp.relations["S"] = random_relation(rng, SCHEMA)
    interp.expressions["a"] = _first_leaf
    interp.projections["k"] = path_projection(("L",))
    interp.predicates["p"] = lambda row: True
    return interp


def _check_sound(plan, hyps, seed):
    ctx = (AnalysisContext.from_hypotheses(hyps) if hyps is not None
           else EMPTY_CONTEXT)
    rng = random.Random(seed)
    interp = _random_interp(rng, keyed=hyps is not None)
    # seed the analysis with the instance's actual total multiplicities:
    # the inferred interval must then contain the evaluated total
    cards = tuple(
        (name, Interval(0, sum(int(m) for _r, m in rel.items())))
        for name, rel in sorted(interp.relations.items()))
    ctx = AnalysisContext(keyed=ctx.keyed, key_paths=ctx.key_paths,
                          table_cards=cards)
    props = infer_properties(plan, ctx)
    result = run_query(plan, interp, NAT)
    total = sum(int(m) for _row, m in result.items())
    if props.set_valued:
        assert all(int(m) <= 1 for _row, m in result.items()), \
            f"{plan}: inferred set-valued but got duplicates"
    if props.empty:
        assert total == 0, f"{plan}: inferred empty but got rows"
    assert props.card.contains(total), \
        f"{plan}: total multiplicity {total} outside inferred {props.card}"


@pytest.mark.parametrize("backend", ["arena", "object"])
@pytest.mark.parametrize("case", range(len(SOUNDNESS_PLANS)))
def test_inference_sound_on_random_instances(backend, case):
    plan, hyps = SOUNDNESS_PLANS[case]
    previous = set_kernel_backend(backend)
    try:
        for seed in range(25):
            _check_sound(plan, hyps, seed)
    finally:
        set_kernel_backend(previous)
