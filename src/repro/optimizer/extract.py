"""Cost-based extraction from the plan e-graph, with rule provenance.

After saturation the root e-class represents every plan the certified
rules can reach; extraction picks the cheapest concrete tree under the
cost model of :mod:`repro.optimizer.cost`, evaluated compositionally per
e-node through :func:`~repro.optimizer.cost.compose` — exactly the tree
estimator, so the extracted plan's reported cost *is* its ``plan_cost``.

Extraction is a **Pareto dynamic program**, not a per-class greedy pick:
an operator's cost depends on its children's *cardinalities* as well as
their costs (a smaller-but-pricier input can make the parent cheaper —
e.g. a tighter filter below a product), so each e-class keeps a small
frontier of candidates undominated in ``(cost, cardinality, size)``
rather than a single winner.  ``size`` is the syntactic node count
(:func:`repro.optimizer.cost.plan_size`), the same tie-break the BFS
planner uses so a simplification the cost model is blind to still wins.

The frontier table is iterated to a fixpoint, which handles the cyclic
e-classes equality saturation creates routinely (``σ_b ∘ σ_b`` loops):
every candidate stores concrete references to the child candidates it
was built from, and since size strictly increases through composition,
rebuilding the winning tree always terminates.

The module also reconstructs the **winning rule chain** from the
e-graph's provenance records (each rewrite-created e-node remembers the
rule and source node that produced it) and counts the **distinct plans**
an e-graph represents — the honest "plans explored" figure the
benchmarks compare against BFS.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as _cartesian
from typing import Dict, List, Optional, Tuple

from ..core import ast
from ..obs.metrics import counter, histogram
from ..obs.trace import span
from .cost import Estimate, TableStats, compose, plan_size
from .egraph import EGraph, ENode, Reason

_EXTRACT_SECONDS = histogram("extract.seconds")
_EXTRACT_SWEEPS = histogram("extract.sweeps",
                            buckets=(1, 2, 3, 5, 8, 13, 21, 50, 100, 200))

__all__ = ["Candidate", "ExtractionResult", "PLAN_COUNT_LIMIT",
           "count_plans", "extract_best", "rule_chain"]

#: Default clamp for :func:`count_plans` — e-graphs with cyclic classes
#: represent unboundedly many syntactic plans.  A count equal to the
#: clamp must be rendered as "≥ clamp", never as an exact figure.
PLAN_COUNT_LIMIT = 10 ** 6

#: Frontier width per e-class.  Candidates are kept sorted by cost, so a
#: clamp only ever drops the most expensive undominated shapes; with the
#: textbook cost model frontiers stay far below this in practice.
FRONTIER_WIDTH = 8

#: Fixpoint sweep cap — a safety net against pathological cyclic
#: improvement chains, not a budget (real workloads converge in a few
#: sweeps ≈ the plan depth).
MAX_SWEEPS = 200


@dataclass(frozen=True)
class Candidate:
    """One concrete extractable tree for an e-class.

    Stores the chosen e-node and direct references to the child
    candidates it composes, so the tree (and its cost) can be rebuilt
    exactly even after the child class's frontier has moved on.
    """

    cost: float
    cardinality: float
    size: int
    node: ENode
    children: Tuple["Candidate", ...]

    @property
    def estimate(self) -> Estimate:
        return Estimate(self.cardinality, self.cost)

    @property
    def key(self) -> Tuple[float, float, int]:
        return (self.cost, self.cardinality, self.size)

    def build(self, eg: EGraph) -> ast.Query:
        """Materialize the candidate as an AST tree (size strictly
        decreases into children, so this terminates on cyclic graphs)."""
        return eg.enode_term_shallow(
            self.node, tuple(c.build(eg) for c in self.children))


@dataclass
class ExtractionResult:
    """The extracted plan plus the evidence that backs it."""

    plan: ast.Query
    estimate: Estimate
    size: int
    #: rule chain reconstructed from e-node provenance (first applied
    #: rule first); empty when the winner is the original plan.
    chain: Tuple[str, ...]
    #: the winning candidate (full choice tree, for diagnostics).
    winner: Candidate


class ExtractionError(ValueError):
    """Raised when the root class has no finite term (cannot happen for
    classes reachable from an inserted term; kept as a guard)."""


def _label_size(node: ENode) -> int:
    """Syntactic size contributed by the e-node itself: one for the query
    constructor plus the label's predicate/projection subtrees (which may
    embed aggregate subqueries — counted, exactly like the tree metric)."""
    size = 1
    for value in node.label:
        if isinstance(value, (ast.Query, ast.Predicate, ast.Expression,
                              ast.Projection)):
            size += plan_size(value)
    return size


def _prune(candidates: List[Candidate]) -> List[Candidate]:
    """Pareto-prune on (cost, cardinality, size), cheapest first."""
    candidates.sort(key=lambda c: c.key)
    kept: List[Candidate] = []
    for cand in candidates:
        dominated = any(
            k.cost <= cand.cost and k.cardinality <= cand.cardinality
            and k.size <= cand.size for k in kept)
        if not dominated:
            kept.append(cand)
            if len(kept) >= FRONTIER_WIDTH:
                break
    return kept


def extract_best(eg: EGraph, root: int,
                 stats: TableStats) -> ExtractionResult:
    """Pick the cheapest tree representable from ``root``."""
    root = eg.find(root)
    classes = list(eg.classes())
    label_sizes: Dict[ENode, int] = {}
    frontiers: Dict[int, List[Candidate]] = {cid: [] for cid, _ in classes}
    # Incremental fixpoint: per-node child classes and a reverse
    # dependency index are resolved once; each sweep then touches only
    # the *dirty* classes (those whose own or child frontiers moved last
    # sweep), and per e-node the generated candidate set is cached
    # against the child frontier versions it was built from.  Converged
    # regions of the e-graph cost nothing per sweep instead of re-running
    # the candidate cross-product.
    node_children: Dict[int, List[Tuple[ENode, Tuple[int, ...]]]] = {}
    dependents: Dict[int, set] = {}
    class_deps: Dict[int, Tuple[int, ...]] = {}
    for cid, nodes in classes:
        infos = []
        deps = set()
        for node in nodes:
            cids = tuple(eg.find(c) for c in node.children)
            infos.append((node, cids))
            deps.update(cids)
            for c in cids:
                dependents.setdefault(c, set()).add(cid)
        node_children[cid] = infos
        class_deps[cid] = tuple(deps)
    # Bottom-up (children-first) class order: on the acyclic portion of
    # the e-graph the frontier DP then converges in a single sweep
    # instead of one sweep per plan depth.  Iterative postorder; cycle
    # edges are simply skipped (the dirty-set sweeps converge them).
    order: List[int] = []
    mark: Dict[int, int] = {}
    for start, _ in classes:
        if start in mark:
            continue
        stack: List[Tuple[int, int]] = [(start, 0)]
        while stack:
            cid, idx = stack.pop()
            if idx == 0:
                if cid in mark:
                    continue
                mark[cid] = 1
            deps = class_deps[cid]
            if idx < len(deps):
                stack.append((cid, idx + 1))
                dep = deps[idx]
                if dep not in mark and dep in class_deps:
                    stack.append((dep, 0))
            else:
                order.append(cid)
    versions: Dict[int, int] = {cid: 0 for cid, _ in classes}
    node_cache: Dict[ENode, Tuple[Tuple[int, ...], List[Candidate]]] = {}
    dirty = {cid for cid, _ in classes}
    with span("optimizer.extract", classes=len(classes)) as sp:
        sweeps = 0
        for _ in range(MAX_SWEEPS):
            if not dirty:
                break
            sweeps += 1
            now, dirty = dirty, set()
            for cid in order:
                if cid not in now:
                    continue
                candidates = list(frontiers[cid])
                for node, cids in node_children[cid]:
                    vkey = tuple(versions.get(c, -1) for c in cids)
                    cached = node_cache.get(node)
                    if cached is not None and cached[0] == vkey:
                        candidates.extend(cached[1])
                        continue
                    child_fronts = [frontiers.get(c, ()) for c in cids]
                    if any(not front for front in child_fronts):
                        node_cache[node] = (vkey, [])
                        continue
                    own = label_sizes.get(node)
                    if own is None:
                        own = label_sizes.setdefault(node,
                                                     _label_size(node))
                    generated = []
                    for combo in _cartesian(*child_fronts):
                        est = compose(node.op, node.label,
                                      tuple(c.estimate for c in combo),
                                      stats)
                        generated.append(Candidate(
                            cost=est.cost, cardinality=est.cardinality,
                            size=own + sum(c.size for c in combo),
                            node=node, children=combo))
                    node_cache[node] = (vkey, generated)
                    candidates.extend(generated)
                pruned = _prune(candidates)
                if [c.key for c in pruned] \
                        != [c.key for c in frontiers[cid]]:
                    frontiers[cid] = pruned
                    versions[cid] += 1
                    dirty.update(dependents.get(cid, ()))
        sp.attrs["sweeps"] = sweeps
        if not frontiers.get(root):
            counter("extract.failures_total").inc()
            raise ExtractionError(f"no finite plan extractable from "
                                  f"e-class c{root}")
        winner = min(frontiers[root], key=lambda c: (c.cost, c.size))
        result = ExtractionResult(
            plan=winner.build(eg), estimate=winner.estimate,
            size=winner.size, chain=rule_chain(eg, winner), winner=winner)
    _EXTRACT_SECONDS.observe(sp.duration)
    _EXTRACT_SWEEPS.observe(sweeps)
    return result


# ---------------------------------------------------------------------------
# Provenance → rule chain
# ---------------------------------------------------------------------------

def rule_chain(eg: EGraph, winner: Candidate) -> Tuple[str, ...]:
    """The rules that produced the extracted tree, oldest first.

    Walks the chosen e-node of every position in the winning tree; each
    rewrite-created node carries ``(rule, source node)``, and following
    the source links yields that node's derivation history.  Union-only
    rewrites (licence merges that create no new node — the property-
    guarded rules are the main source) leave their provenance in the
    union log instead, so a chosen node without a creation record falls
    back to a logged union on its class, provided the union's source is
    a *different* node — that union is what licensed standing in for the
    source shape.  The result is a *witness chain*, not necessarily the
    only one — e-graphs merge derivations — but every name in it is a
    rule the saturation engine actually fired on the winning plan's
    ancestry.
    """
    chain: List[str] = []
    seen_nodes: set = set()
    union_reasons: Dict[int, List[Reason]] = {}
    for merged, _loser, reason in eg.union_log:
        union_reasons.setdefault(eg.find(merged), []).append(reason)

    def union_reason(node: ENode) -> Optional[Reason]:
        cid = eg.class_of(node)
        if cid is None:
            return None
        for reason in union_reasons.get(cid, ()):
            if eg.canonicalize(reason.source) != node:
                return reason
        return None

    def node_history(node: Optional[ENode]) -> List[str]:
        out: List[str] = []
        while node is not None:
            node = eg.canonicalize(node)  # reasons are keyed canonically
            if node in seen_nodes:
                break
            seen_nodes.add(node)
            reason = eg.reasons.get(node) or union_reason(node)
            if reason is None:
                break
            out.append(reason.rule)
            node = reason.source
        return list(reversed(out))

    def visit(cand: Candidate) -> None:
        for child in cand.children:
            visit(child)
        chain.extend(node_history(cand.node))

    visit(winner)
    return tuple(dict.fromkeys(chain))


# ---------------------------------------------------------------------------
# Distinct-plan counting
# ---------------------------------------------------------------------------

def count_plans(eg: EGraph, root: int,
                limit: int = PLAN_COUNT_LIMIT) -> int:
    """How many distinct concrete plans ``root`` represents (clamped).

    Exact while below ``limit``: the hashcons guarantees every concrete
    tree is representable in exactly one class and by exactly one e-node,
    so the count is the standard product-sum recurrence, iterated to a
    fixpoint with saturation at ``limit`` so cyclic classes (infinitely
    many syntactic plans) terminate.
    """
    classes = list(eg.classes())
    counts: Dict[int, int] = {}

    def sweep(pin_growth: bool) -> bool:
        changed = False
        for cid, nodes in classes:
            total = 0
            for node in nodes:
                prod = 1
                for child in node.children:
                    prod *= counts.get(eg.find(child), 0)
                    if prod >= limit:
                        prod = limit
                        break
                total += prod
                if total >= limit:
                    total = limit
                    break
            if total != counts.get(cid, 0):
                # A class still growing after #classes acyclic-depth
                # sweeps sits on a cycle: its true count is unbounded,
                # so pin it to the clamp instead of crawling there one
                # increment per sweep.
                counts[cid] = limit if pin_growth else total
                changed = True
        return changed

    for _ in range(len(classes) + 1):
        if not sweep(pin_growth=False):
            break
    else:
        while sweep(pin_growth=True):
            pass
    return counts.get(eg.find(root), 0)
