#!/usr/bin/env python
"""Run every benchmark and write machine-readable results (BENCH_pr10.json).

Two layers:

* **Tracked workloads** — deterministic, in-process runs of the
  kernel-critical workloads (the full prover-scaling grid and the
  all-pairs session workload), measured from cold kernel caches and
  compared against the pre-kernel baseline recorded in
  :data:`PRE_KERNEL_BASELINE` (the interned-kernel PR targets ≥3× on
  both), plus the optimizer's saturation-vs-BFS comparison at equal
  node budget (the equality-saturation PR requires ≥2× distinct plans,
  equal-or-cheaper extracted plans, and zero certification failures),
  plus the serve-layer throughput workload (the serving PR requires
  warm verdicts/sec ≥ 10× cold, exactly one pipeline run for two
  concurrent identical cold checks, and a restarted daemon serving the
  whole corpus from its shard store).
* **Sweep** — every ``bench_*.py`` in this directory, run in smoke form
  (scripts with ``--smoke``, pytest files with ``--benchmark-disable``)
  so CI can detect a benchmark that stops even importing.  Non-gating:
  the JSON records per-bench wall clock and exit status.

Each tracked entry also embeds the delta of the process-wide metrics
registry (:mod:`repro.obs.metrics`) accumulated during the run, and the
``tracing_overhead`` workload replays the prover-scaling grid through the
instrumented pipeline with the tracer off and on — in full mode the
traced pass must stay within 5% of the untraced one (the observability
PR's no-regression gate).

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # full tracked runs
    PYTHONPATH=src python benchmarks/run_all.py --smoke    # CI (small grids)
    PYTHONPATH=src python benchmarks/run_all.py --output out.json

Speedups are reported against **two** baselines: the pre-kernel seed
(:data:`PRE_KERNEL_BASELINE`, the original ≥3× gates) and the previous
PR's recordings (:data:`PR7_BASELINE`, from ``BENCH_pr7.json`` on the
same container) — the arena-kernel PR's own gates are ≥5× vs PR 7 on
``prover_scaling`` and ``optimizer_saturation_vs_bfs``.  Timed tracked
workloads take the best of three passes in full mode, the same protocol
the seed baseline was recorded under (cold kernel first pass, process
warm afterwards — so the best pass measures the steady state a session
or daemon actually runs in).

Exit status is non-zero only when a tracked workload regresses below a
speedup target against its recorded baseline (full mode) or a sweep
bench crashes.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import time

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_pr10.json"

sys.path.insert(0, str(BENCH_DIR))
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Pre-kernel baseline for the tracked workloads, recorded at commit
#: 8a178b2 (the PR 2 tree, before the interned kernel) on the reference
#: container: best of three passes of exactly the workloads measured
#: below.  Units: seconds.
PRE_KERNEL_BASELINE = {
    "prover_scaling": 0.428,
    "session_all_pairs": 0.275,
}

#: Wall-clock improvement the kernel PR promises on the tracked runs.
SPEEDUP_TARGET = 3.0

#: Previous-PR baseline: the tracked walls recorded in ``BENCH_pr7.json``
#: (full mode, this container) at commit 7d77fb3 — the tree immediately
#: before the arena-compiled kernel.  Units: seconds.
PR7_BASELINE = {
    "prover_scaling": 0.040267,
    "session_all_pairs": 0.062651,
    "optimizer_saturation_vs_bfs": 0.094489,
    "serve": 0.132433,
}

#: The arena-kernel PR's own promise vs the PR 7 recordings, enforced in
#: full mode on these workloads only (the others are reported, not gated).
KERNEL_SPEEDUP_TARGET = 5.0
KERNEL_GATED = ("prover_scaling", "optimizer_saturation_vs_bfs")


# ---------------------------------------------------------------------------
# Tracked workload A: prover scaling (full deterministic grid)
# ---------------------------------------------------------------------------

def _kjoin(k, perm, distinct=False):
    names = [f"x{i}" for i in range(k)]
    conds = [f"{names[i]}.a = {names[i + 1]}.b" for i in range(k - 1)]
    conds = [conds[j] for j in perm]
    return ("SELECT " + ("DISTINCT " if distinct else "") + "x0.a FROM "
            + ", ".join(f"R AS {n}" for n in names)
            + " WHERE " + " AND ".join(conds))


def _prover_pairs(smoke):
    from bench_prover_scaling import _selection_tower, _union_ladder
    from repro import Session

    towers = (2, 4) if smoke else (2, 4, 6, 8, 10, 12)
    ladders = (2, 4) if smoke else (2, 4, 6, 8)
    joins = (4,) if smoke else (4, 5, 6)
    distincts = (3,) if smoke else (3, 4, 5)
    pairs = []
    for n in towers:
        pairs.append((_selection_tower(n, False), _selection_tower(n, True)))
    for n in ladders:
        pairs.append((_union_ladder(n, False), _union_ladder(n, True)))
    with Session.from_tables("R(a:int,b:int)") as session:
        for k in joins:
            order = list(range(k - 1))
            pairs.append((session.sql(_kjoin(k, order)).query,
                          session.sql(_kjoin(k, order[::-1])).query))
        for k in distincts:
            order = list(range(k - 1))
            pairs.append((session.sql(_kjoin(k, order, True)).query,
                          session.sql(_kjoin(k, order[::-1], True)).query))
    return pairs


def run_prover_scaling(smoke):
    from repro.core.equivalence import check_query_equivalence
    from repro.core.intern import clear_kernel_caches, kernel_stats

    pairs = _prover_pairs(smoke)
    clear_kernel_caches()
    # Best of three passes — the protocol the seed baseline was recorded
    # under.  The first pass pays the cold denote/normalize misses; the
    # later passes measure the warm steady state (every pass re-proves
    # all pairs through the full prover, so engine_steps stays nonzero).
    pass_walls = []
    steps = 0
    for _ in range(1 if smoke else 3):
        steps = 0
        started = time.perf_counter()
        for lhs, rhs in pairs:
            result = check_query_equivalence(lhs, rhs)
            assert result.equal, \
                "prover-scaling pair unexpectedly non-equivalent"
            steps += result.stats.total_steps
        pass_walls.append(time.perf_counter() - started)
    stats = kernel_stats()
    return {
        "pairs": len(pairs),
        "wall_seconds": min(pass_walls),
        "pass_seconds": pass_walls,
        "engine_steps": steps,
        "normalize_hits": stats.get("normalize_hits", 0),
        "normalize_misses": stats.get("normalize_misses", 0),
        "interned_nodes": stats.get("interned_nodes", 0),
    }


# ---------------------------------------------------------------------------
# Tracked workload B: session all-pairs (naive vs memoized handles)
# ---------------------------------------------------------------------------

def run_session_all_pairs(smoke):
    import bench_session_all_pairs as bench
    from repro.core.intern import clear_kernel_caches, kernel_stats

    n = 8 if smoke else 24
    texts = bench.corpus(n)
    clear_kernel_caches()
    _, naive_norms, naive_wall = bench.run_naive(texts)
    _, sess_norms, sess_wall = bench.run_session(texts)
    stats = kernel_stats()
    return {
        "queries": n,
        "pairs": n * (n - 1) // 2,
        "naive_wall_seconds": naive_wall,
        "session_wall_seconds": sess_wall,
        "wall_seconds": naive_wall + sess_wall,
        "naive_normalize_calls": naive_norms,
        "session_normalize_calls": sess_norms,
        "normalize_hits": stats.get("normalize_hits", 0),
        "normalize_misses": stats.get("normalize_misses", 0),
        "normalize_hit_rate": stats.get("normalize_hit_rate", 0.0),
        "denote_hits": stats.get("denote_hits", 0),
        "interned_nodes": stats.get("interned_nodes", 0),
    }


# ---------------------------------------------------------------------------
# Tracked workload C: optimizer equality saturation vs BFS
# ---------------------------------------------------------------------------

#: The equality-saturation PR's gates, checked in both modes (the
#: workload is deterministic and takes ~1 s).
SATURATION_PLAN_RATIO_TARGET = 2.0


def run_saturation_vs_bfs(smoke=False):
    import bench_optimizer

    # Best of three passes, matching the prover-scaling protocol: the
    # first pass pays the cold e-graph search, later passes measure the
    # warm steady state (plan cache + rewrite memos) a resident session
    # runs in.  The comparison payload is identical across passes — the
    # search is deterministic — so the last one is recorded.
    pass_walls = []
    for _ in range(1 if smoke else 3):
        started = time.perf_counter()
        comparison = bench_optimizer.saturation_vs_bfs()
        pass_walls.append(time.perf_counter() - started)
    comparison["wall_seconds"] = min(pass_walls)
    comparison["pass_seconds"] = pass_walls
    return comparison


def check_saturation_vs_bfs(comparison):
    failures = []
    if comparison["plan_ratio"] < SATURATION_PLAN_RATIO_TARGET:
        failures.append(
            f"optimizer_saturation_vs_bfs: plan ratio "
            f"{comparison['plan_ratio']:.2f}x below the "
            f"{SATURATION_PLAN_RATIO_TARGET:.0f}x target")
    if not comparison["all_equal_or_cheaper"]:
        failures.append("optimizer_saturation_vs_bfs: saturation chose a "
                        "costlier plan than BFS on some workload")
    if comparison["certification_failures"]:
        failures.append(
            f"optimizer_saturation_vs_bfs: "
            f"{comparison['certification_failures']} certification "
            f"failure(s)")
    print(f"  {'saturation_vs_bfs':<22} "
          f"{comparison['wall_seconds'] * 1e3:9.1f} ms   "
          f"plans {comparison['total_sat_plans']} vs "
          f"{comparison['total_bfs_plans']} "
          f"({comparison['plan_ratio']:.1f}x), "
          f"{comparison['certification_failures']} certification "
          f"failure(s)")
    return failures


# ---------------------------------------------------------------------------
# Tracked workload D: tracing overhead on the instrumented pipeline
# ---------------------------------------------------------------------------

#: Enabling the tracer may cost at most this much wall clock on the
#: prover-scaling grid (full mode; best of three passes each way).
TRACING_OVERHEAD_TARGET = 1.05


def run_tracing_overhead(smoke):
    from repro.core.intern import clear_kernel_caches
    from repro.obs.trace import TRACER
    from repro.solver.pipeline import Pipeline

    pairs = _prover_pairs(smoke)

    def one_pass():
        # Fresh pipeline per pass so the proof cache never short-circuits
        # the later (traced) passes into an unfair comparison.
        pipe = Pipeline()
        clear_kernel_caches()
        started = time.perf_counter()
        for lhs, rhs in pairs:
            pipe.check(lhs, rhs)
        return time.perf_counter() - started

    passes = 1 if smoke else 3
    untraced = min(one_pass() for _ in range(passes))
    TRACER.clear()
    TRACER.enable()
    try:
        traced = min(one_pass() for _ in range(passes))
        events = len(TRACER.chrome_events())
    finally:
        TRACER.disable()
        TRACER.clear()
    return {
        "pairs": len(pairs),
        "passes": passes,
        "untraced_seconds": untraced,
        "traced_seconds": traced,
        "overhead_ratio": traced / untraced if untraced else 1.0,
        "trace_events": events,
    }


def check_tracing_overhead(result, smoke):
    ratio = result["overhead_ratio"]
    print(f"  {'tracing_overhead':<22} "
          f"{result['traced_seconds'] * 1e3:9.1f} ms traced vs "
          f"{result['untraced_seconds'] * 1e3:.1f} ms untraced "
          f"({(ratio - 1.0) * 100:+.1f}%, {result['trace_events']} events)")
    if not smoke and ratio > TRACING_OVERHEAD_TARGET:
        return [f"tracing_overhead: traced pass {ratio:.3f}x the untraced "
                f"one, above the {TRACING_OVERHEAD_TARGET:.2f}x ceiling"]
    return []


# ---------------------------------------------------------------------------
# Tracked workload E: serve-layer throughput (cold vs warm, dedup)
# ---------------------------------------------------------------------------

def run_serve(smoke):
    import bench_serve

    return bench_serve.run(smoke=smoke)


def check_serve(result, smoke):
    import bench_serve

    print(f"  {'serve':<22} "
          f"{result['wall_seconds'] * 1e3:9.1f} ms   "
          f"warm {result['warm_speedup']:5.1f}x cold "
          f"({result['warm_verdicts_per_second']:.0f} vs "
          f"{result['cold_verdicts_per_second']:.0f} verdicts/s), "
          f"dedup {result['dedup']['pipeline_runs']:.0f} run(s), "
          f"restart {result['restart_cached']}/{result['pairs']} cached")
    return bench_serve.check(result, smoke)


# ---------------------------------------------------------------------------
# Tracked workload F: term-kernel microbenchmarks (arena vs object)
# ---------------------------------------------------------------------------

def run_kernel_micro(smoke):
    import bench_kernel

    return bench_kernel.run(smoke=smoke)


# ---------------------------------------------------------------------------
# Tracked workload G: static-analysis tier (disprover pruning + guards)
# ---------------------------------------------------------------------------

def run_analysis(smoke):
    import bench_analysis

    return bench_analysis.run(smoke=smoke)


def check_analysis(result, smoke):
    import bench_analysis

    pruning, guarded = result["pruning"], result["guarded"]
    print(f"  {'analysis':<22} "
          f"{result['wall_seconds'] * 1e3:9.1f} ms   "
          f"pruning {pruning['instance_ratio']:.1f}x fewer instances "
          f"({pruning['speedup']:.1f}x wall), guarded "
          f"{guarded['improved']}/{guarded['workloads']} improved, "
          f"{guarded['certification_failures']} certification failure(s)")
    return bench_analysis.check(result, smoke)


# ---------------------------------------------------------------------------
# Tracked workload H: compiled, sharded bounded disprover
# ---------------------------------------------------------------------------

def run_disprover(smoke):
    import bench_disprover

    return bench_disprover.run(smoke=smoke)


def check_disprover(result, smoke):
    import bench_disprover

    for backend, row in result["backends"].items():
        print(f"  {'disprover[' + backend + ']':<22} "
              f"{row['interp_seconds'] * 1e3:9.1f} ms interp   "
              f"compiled {row['compiled_seconds'] * 1e3:.1f} ms "
              f"({row['compiled_speedup']:.1f}x), parallel(4) "
              f"{row['parallel_seconds'] * 1e3:.1f} ms "
              f"({row['parallel_speedup']:.1f}x), "
              f"{row['verdict_mismatches']} mismatch(es)")
    return bench_disprover.check(result, smoke)


def check_kernel_micro(result, smoke):
    import bench_kernel

    norm = result["normalize"]
    print(f"  {'kernel_micro':<22} "
          f"{result['wall_seconds'] * 1e3:9.1f} ms   "
          f"normalize arena {norm['arena']['terms_per_second']:.0f}/s "
          f"vs object {norm['object']['terms_per_second']:.0f}/s "
          f"({norm['speedup_arena_vs_object']:.1f}x), "
          f"alpha {result['alpha_key']['keys_per_second']:.0f}/s, "
          f"match {result['multiset_match']['pairs_per_second']:.0f}/s")
    return bench_kernel.check(result, smoke)


# ---------------------------------------------------------------------------
# Sweep: every bench_*.py in smoke form
# ---------------------------------------------------------------------------

#: Benches that are standalone scripts (everything else runs via pytest).
SCRIPT_BENCHES = {
    "bench_analysis.py": ["--smoke"],
    "bench_disprover.py": ["--smoke"],
    "bench_session_all_pairs.py": ["--smoke"],
    "bench_parse_resolve.py": ["--smoke"],
    "bench_serve.py": ["--smoke"],
    "bench_kernel.py": ["--smoke"],
}


def run_sweep():
    results = {}
    env_path = f"{REPO_ROOT / 'src'}"
    for bench in sorted(BENCH_DIR.glob("bench_*.py")):
        if bench.name in SCRIPT_BENCHES:
            cmd = [sys.executable, str(bench)] + SCRIPT_BENCHES[bench.name]
        else:
            cmd = [sys.executable, "-m", "pytest", str(bench), "-q",
                   "-p", "no:cacheprovider", "--benchmark-disable"]
        started = time.perf_counter()
        proc = subprocess.run(
            cmd, cwd=str(REPO_ROOT), capture_output=True, text=True,
            env={**__import__("os").environ, "PYTHONPATH": env_path})
        results[bench.name] = {
            "wall_seconds": time.perf_counter() - started,
            "returncode": proc.returncode,
            "ok": proc.returncode == 0,
        }
        if proc.returncode != 0:
            tail = (proc.stdout + proc.stderr).strip().splitlines()[-8:]
            results[bench.name]["tail"] = tail
    return results


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small grids + sweep only (CI mode; speedup "
                             "targets are not enforced)")
    parser.add_argument("--no-sweep", action="store_true",
                        help="skip the per-bench smoke sweep")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        metavar="FILE", help="JSON output path "
                        "(default: BENCH_pr7.json at the repo root)")
    args = parser.parse_args(argv)

    import bench_serve
    from repro.obs.metrics import REGISTRY, diff_snapshots

    def with_metrics(run, *run_args):
        """Attach the registry delta this workload produced to its row."""
        before = REGISTRY.snapshot()
        result = run(*run_args)
        result["metrics"] = diff_snapshots(before, REGISTRY.snapshot())
        return result

    mode = "smoke" if args.smoke else "full"
    print(f"tracked workloads ({mode} mode)")
    tracked = {
        "prover_scaling": with_metrics(run_prover_scaling, args.smoke),
        "session_all_pairs": with_metrics(run_session_all_pairs, args.smoke),
        "optimizer_saturation_vs_bfs": with_metrics(run_saturation_vs_bfs,
                                                    args.smoke),
        "tracing_overhead": with_metrics(run_tracing_overhead, args.smoke),
        "serve": with_metrics(run_serve, args.smoke),
        "kernel_micro": with_metrics(run_kernel_micro, args.smoke),
        "analysis": with_metrics(run_analysis, args.smoke),
        "disprover": with_metrics(run_disprover, args.smoke),
    }

    failures = []
    speedups = {}
    speedups_pr7 = {}
    failures.extend(check_saturation_vs_bfs(
        tracked["optimizer_saturation_vs_bfs"]))
    failures.extend(check_tracing_overhead(
        tracked["tracing_overhead"], args.smoke))
    failures.extend(check_serve(tracked["serve"], args.smoke))
    failures.extend(check_kernel_micro(tracked["kernel_micro"], args.smoke))
    failures.extend(check_analysis(tracked["analysis"], args.smoke))
    failures.extend(check_disprover(tracked["disprover"], args.smoke))
    for name, result in tracked.items():
        if name not in PRE_KERNEL_BASELINE and name not in PR7_BASELINE:
            continue
        wall = result["wall_seconds"]
        line = f"  {name:<22} {wall * 1e3:9.1f} ms"
        if not args.smoke:
            if name in PRE_KERNEL_BASELINE:
                baseline = PRE_KERNEL_BASELINE[name]
                speedup = baseline / wall if wall else float("inf")
                speedups[name] = speedup
                line += (f"   seed {baseline * 1e3:8.1f} ms "
                         f"({speedup:6.1f}x)")
                if speedup < SPEEDUP_TARGET:
                    failures.append(
                        f"{name}: {speedup:.2f}x below the "
                        f"{SPEEDUP_TARGET:.0f}x target vs the seed")
            if name in PR7_BASELINE:
                baseline = PR7_BASELINE[name]
                speedup = baseline / wall if wall else float("inf")
                speedups_pr7[name] = speedup
                line += (f"   pr7 {baseline * 1e3:8.1f} ms "
                         f"({speedup:6.1f}x)")
                if name in KERNEL_GATED \
                        and speedup < KERNEL_SPEEDUP_TARGET:
                    failures.append(
                        f"{name}: {speedup:.2f}x below the "
                        f"{KERNEL_SPEEDUP_TARGET:.0f}x target vs PR 7")
        print(line)

    sweep = {}
    if not args.no_sweep:
        print("bench sweep (smoke)")
        sweep = run_sweep()
        for name, result in sweep.items():
            status = "ok" if result["ok"] else f"FAIL ({result['returncode']})"
            print(f"  {name:<32} {result['wall_seconds'] * 1e3:9.1f} ms  "
                  f"{status}")
            if not result["ok"]:
                failures.append(f"sweep bench {name} failed")

    payload = {
        "schema": 3,
        "mode": mode,
        "baseline": {
            "note": "pre-kernel tree (commit 8a178b2), best of 3 passes",
            "seconds": PRE_KERNEL_BASELINE,
        },
        "baseline_pr7": {
            "note": "BENCH_pr7.json tracked walls (commit 7d77fb3, "
                    "full mode, this container)",
            "seconds": PR7_BASELINE,
        },
        "speedup_target": SPEEDUP_TARGET,
        "kernel_speedup_target": KERNEL_SPEEDUP_TARGET,
        "tracing_overhead_target": TRACING_OVERHEAD_TARGET,
        "serve_warm_speedup_target": bench_serve.WARM_SPEEDUP_TARGET,
        "tracked": tracked,
        "speedups": speedups,
        "speedups_vs_pr7": speedups_pr7,
        "sweep": sweep,
        "metrics": REGISTRY.snapshot(),
    }
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    print(f"wrote {output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
