"""Flat-program compilation of HoTTSQL queries for repeated evaluation.

The tree-walking evaluator in :mod:`repro.engine.eval` re-dispatches on
AST node classes for *every* row of *every* instance it evaluates — fine
for a single oracle run, ruinous for the bounded-exhaustive disprover,
which evaluates the same two queries on hundreds of thousands of
enumerated instances.

This module compiles a query **once** into a flat program: each
relational operator becomes a specialized Python function whose row-level
work — projections, predicates, scalar expressions — is *generated as
inline Python source* (pure tuple indexing and operator syntax) and
``exec``-ed into place.  A projection chain like
``Compose(LeftP, Duplicate(RightP, LeftP))`` evaluates as the expression
``(g[0][1], g[0][0])``, not as a tree of closure calls.  All per-query
decisions are made at compile time:

* node dispatch — relational operators call their pre-compiled children
  directly; row-level terms are inlined source, so the per-row cost is
  what CPython charges for the arithmetic itself;
* symbol resolution — scalar functions, aggregates, comparison
  predicates, and metavariable bindings (from a base
  :class:`~repro.engine.database.Interpretation`) are looked up once and
  bound as closure parameters of the generated code;
* semiring specialization — multiplicities evaluate by *counting*:
  plain ``int`` arithmetic under ``NAT``, native boolean operations
  under ``BOOL``.  Exotic semirings (``NAT_INF`` cardinals, tropical,
  provenance polynomials) raise :class:`CompileError` so callers fall
  back to the generic interpreter — the disprover's differential suite
  pins the two evaluators to each other on the supported semirings;
* relation representation — a relation is a plain ``dict`` mapping rows
  to non-zero counts (the disprover's cached instance batches build
  these dicts once per enumerated table instance and share them across
  every product combination), so evaluating one instance allocates no
  :class:`~repro.semiring.krelation.KRelation` objects at all.

Compiled signature convention: every query becomes
``f(rels, g) -> Dict[row, count]`` where ``rels`` is the tuple of
per-table instance dicts, positionally indexed by the table order fixed
at compile time, and ``g`` is the context tuple (``()`` for closed
queries).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..core import ast
from ..semiring.krelation import KRelation
from ..semiring.semirings import BOOL, NAT, Semiring
from .database import Interpretation
from .eval import EvaluationError

#: Semirings the counting compiler supports.  ``NAT`` counts with plain
#: ints, ``BOOL`` with native bools; everything else falls back to the
#: generic interpreter.
COMPILED_SEMIRINGS = (NAT, BOOL)

QueryFn = Callable[[Tuple[Dict[Any, Any], ...], Any], Dict[Any, Any]]


class CompileError(EvaluationError):
    """The query (or semiring) is outside the compiled evaluator's domain.

    Subclasses :class:`~repro.engine.eval.EvaluationError` so call sites
    that already treat "cannot evaluate concretely" as an abstention
    handle "cannot compile" the same way.  The disprover catches it and
    falls back to the tree-walking interpreter.
    """


class CompiledPair:
    """Two queries compiled against one shared table layout.

    ``differs(rels)`` is the disprover's hot call: evaluate both sides
    on one instance and report whether they disagree.
    """

    __slots__ = ("lhs", "rhs", "table_order", "semiring")

    def __init__(self, lhs: QueryFn, rhs: QueryFn,
                 table_order: Tuple[str, ...], semiring: Semiring) -> None:
        self.lhs = lhs
        self.rhs = rhs
        self.table_order = table_order
        self.semiring = semiring

    def differs(self, rels: Tuple[Dict[Any, Any], ...]) -> bool:
        return self.lhs(rels, ()) != self.rhs(rels, ())

    def evaluate(self, rels: Tuple[Dict[Any, Any], ...]
                 ) -> Tuple[Dict[Any, Any], Dict[Any, Any]]:
        return self.lhs(rels, ()), self.rhs(rels, ())


def relation_to_counts(rel: KRelation, semiring: Semiring) -> Dict[Any, Any]:
    """A K-relation as the plain count dict the compiled programs consume."""
    if rel.semiring is not semiring:
        raise CompileError(
            f"relation is annotated over {rel.semiring.name}, compilation "
            f"requested over {semiring.name}")
    return {row: annot for row, annot in rel.items()}


def counts_to_relation(counts: Dict[Any, Any],
                       semiring: Semiring) -> KRelation:
    """Rehydrate a compiled result into a K-relation (for records/tests)."""
    return KRelation(semiring, counts)


def compile_pair(q1: ast.Query, q2: ast.Query,
                 table_order: Sequence[str],
                 interp: Optional[Interpretation] = None,
                 semiring: Semiring = NAT) -> CompiledPair:
    """Compile two closed queries over one positional table layout.

    Args:
        q1, q2: the queries (may reference metavariables, provided
            ``interp`` binds them).
        table_order: the table names whose instances arrive positionally
            in ``rels``; any other table must be a constant relation in
            ``interp`` and is baked into the program.
        interp: metavariable bindings and constant relations, resolved
            **at compile time**.
        semiring: must be one of :data:`COMPILED_SEMIRINGS`.
    """
    compiler = _Compiler(table_order, interp, semiring)
    return CompiledPair(compiler.query(q1), compiler.query(q2),
                        tuple(table_order), semiring)


def compile_query(query: ast.Query, table_order: Sequence[str],
                  interp: Optional[Interpretation] = None,
                  semiring: Semiring = NAT) -> QueryFn:
    """Compile one query; see :func:`compile_pair` for the conventions."""
    return _Compiler(table_order, interp, semiring).query(query)


# ---------------------------------------------------------------------------
# Row-level code generation
# ---------------------------------------------------------------------------
#
# Row-level terms are represented as code fragments while compiling:
# ``("atom", text)`` is an opaque Python expression, ``("pair", a, b)``
# a tuple construction whose components are still addressable — so
# ``LeftP`` applied to a pair fragment selects the component *at compile
# time* instead of emitting ``(...)[0]``.  The fragments reference
# runtime objects (interpreter symbols, constants, compiled subqueries)
# through names bound by an :class:`_Env`, which become parameters of
# the generated factory function — closure variables at run time.

_Code = Tuple[Any, ...]


def _atom(text: str) -> _Code:
    return ("atom", text)


def _render(code: _Code) -> str:
    if code[0] == "atom":
        return code[1]
    return f"({_render(code[1])}, {_render(code[2])})"


def _component(code: _Code, index: int) -> _Code:
    if code[0] == "pair":
        return code[1 + index]
    return _atom(f"{_render(code)}[{index}]")


class _Env:
    """Runtime objects referenced from generated source, by fresh name."""

    def __init__(self) -> None:
        self.values: Dict[str, Any] = {}

    def bind(self, obj: Any) -> str:
        name = f"_b{len(self.values)}"
        self.values[name] = obj
        return name


def _build(source_body: str, env: _Env):
    """exec a factory around ``source_body`` and close over the env.

    ``source_body`` must define ``_fn`` at one level of indentation; the
    env's names are the factory's parameters, so references inside the
    generated code are fast closure loads, not globals.
    """
    names = list(env.values)
    source = (f"def _make({', '.join(names)}):\n"
              f"{source_body}"
              f"    return _fn\n")
    namespace: Dict[str, Any] = {}
    exec(source, namespace)  # noqa: S102 - source is generated right here
    return namespace["_make"](*(env.values[n] for n in names))


class _Compiler:
    """One compilation context: table slots + resolved symbols + mode."""

    def __init__(self, table_order: Sequence[str],
                 interp: Optional[Interpretation],
                 semiring: Semiring) -> None:
        if semiring not in COMPILED_SEMIRINGS:
            raise CompileError(
                f"semiring {semiring.name!r} is outside the counting "
                f"compiler's domain (supported: "
                f"{', '.join(s.name for s in COMPILED_SEMIRINGS)})")
        self.slots = {name: i for i, name in enumerate(table_order)}
        self.interp = interp if interp is not None else Interpretation()
        self.semiring = semiring
        self.nat = semiring is NAT

    def _lookup(self, getter: Callable[[str], Any], name: str) -> Any:
        try:
            return getter(name)
        except KeyError as exc:
            raise CompileError(str(exc)) from exc

    # -- queries (closures; one call per instance, not per row) -------------

    def query(self, q: ast.Query) -> QueryFn:
        if isinstance(q, ast.Table):
            slot = self.slots.get(q.name)
            if slot is not None:
                return lambda rels, g, _i=slot: rels[_i]
            rel = self._lookup(self.interp.relation, q.name)
            baked = relation_to_counts(rel, self.semiring)
            return lambda rels, g, _d=baked: _d

        if isinstance(q, ast.Select):
            child = self.query(q.query)
            env = _Env()
            row_ctx = ("pair", _atom("g"), _atom("_row"))
            image = _render(self.projection(q.projection, row_ctx, env))
            child_ref = env.bind(child)
            if self.nat:
                body = (
                    f"    def _fn(rels, g):\n"
                    f"        out = {{}}\n"
                    f"        _get = out.get\n"
                    f"        for _row, _annot in {child_ref}(rels, g)"
                    f".items():\n"
                    f"            _img = {image}\n"
                    f"            out[_img] = _get(_img, 0) + _annot\n"
                    f"        return out\n")
            else:
                body = (
                    f"    def _fn(rels, g):\n"
                    f"        return {{{image}: True "
                    f"for _row in {child_ref}(rels, g)}}\n")
            return _build(body, env)

        if isinstance(q, ast.Product):
            left, right = self.query(q.left), self.query(q.right)
            if self.nat:
                def product_nat(rels, g, _l=left, _r=right):
                    rhs = _r(rels, g)
                    # Row pairs are unique across both loops, so every
                    # output key is written exactly once.
                    return {(r1, r2): a1 * a2
                            for r1, a1 in _l(rels, g).items()
                            for r2, a2 in rhs.items()}
                return product_nat

            def product_bool(rels, g, _l=left, _r=right):
                rhs = _r(rels, g)
                return {(r1, r2): True for r1 in _l(rels, g) for r2 in rhs}
            return product_bool

        if isinstance(q, ast.Where):
            child = self.query(q.query)
            env = _Env()
            row_ctx = ("pair", _atom("g"), _atom("_row"))
            cond = _render(self.predicate(q.predicate, row_ctx, env))
            child_ref = env.bind(child)
            body = (
                f"    def _fn(rels, g):\n"
                f"        return {{_row: _annot for _row, _annot in "
                f"{child_ref}(rels, g).items() if {cond}}}\n")
            return _build(body, env)

        if isinstance(q, ast.UnionAll):
            left, right = self.query(q.left), self.query(q.right)
            if self.nat:
                def union_nat(rels, g, _l=left, _r=right):
                    out = dict(_l(rels, g))
                    get = out.get
                    for row, annot in _r(rels, g).items():
                        out[row] = get(row, 0) + annot
                    return out
                return union_nat

            def union_bool(rels, g, _l=left, _r=right):
                out = dict(_l(rels, g))
                out.update(_r(rels, g))
                return out
            return union_bool

        if isinstance(q, ast.Except):
            left, right = self.query(q.left), self.query(q.right)

            # R EXCEPT S = λt. R(t) × (‖S(t)‖ → 0): full multiplicity
            # iff absent from S — support membership, in every positive
            # semiring.
            def except_run(rels, g, _l=left, _r=right):
                rhs = _r(rels, g)
                return {row: annot for row, annot in _l(rels, g).items()
                        if row not in rhs}
            return except_run

        if isinstance(q, ast.Distinct):
            child = self.query(q.query)
            one = 1 if self.nat else True

            def distinct_run(rels, g, _c=child, _one=one):
                return dict.fromkeys(_c(rels, g), _one)
            return distinct_run

        raise CompileError(f"cannot compile query node: {q!r}")

    # -- predicates (generated source over the context fragment) ------------

    def predicate(self, p: ast.Predicate, var: _Code, env: _Env) -> _Code:
        if isinstance(p, ast.PredEq):
            left = _render(self.expression(p.left, var, env))
            right = _render(self.expression(p.right, var, env))
            return _atom(f"({left} == {right})")
        if isinstance(p, ast.PredAnd):
            left = _render(self.predicate(p.left, var, env))
            right = _render(self.predicate(p.right, var, env))
            return _atom(f"({left} and {right})")
        if isinstance(p, ast.PredOr):
            left = _render(self.predicate(p.left, var, env))
            right = _render(self.predicate(p.right, var, env))
            return _atom(f"({left} or {right})")
        if isinstance(p, ast.PredNot):
            operand = _render(self.predicate(p.operand, var, env))
            return _atom(f"(not {operand})")
        if isinstance(p, ast.PredTrue):
            return _atom("True")
        if isinstance(p, ast.PredFalse):
            return _atom("False")
        if isinstance(p, ast.Exists):
            ref = env.bind(self.query(p.query))
            return _atom(f"bool({ref}(rels, {_render(var)}))")
        if isinstance(p, ast.CastPred):
            recast = self.projection(p.projection, var, env)
            return self.predicate(p.predicate, recast, env)
        if isinstance(p, ast.PredVar):
            ref = env.bind(self._lookup(self.interp.predicate, p.name))
            return _atom(f"{ref}({_render(var)})")
        if isinstance(p, ast.PredFunc):
            ref = env.bind(self._lookup(self.interp.predicate, p.name))
            args = ", ".join(_render(self.expression(a, var, env))
                             for a in p.args)
            return _atom(f"{ref}({args})")
        raise CompileError(f"cannot compile predicate node: {p!r}")

    # -- expressions ---------------------------------------------------------

    def expression(self, e: ast.Expression, var: _Code, env: _Env) -> _Code:
        if isinstance(e, ast.P2E):
            return self.projection(e.projection, var, env)
        if isinstance(e, ast.Const):
            return _atom(env.bind(e.value))
        if isinstance(e, ast.Func):
            ref = env.bind(self._lookup(self.interp.function, e.name))
            args = ", ".join(_render(self.expression(a, var, env))
                             for a in e.args)
            return _atom(f"{ref}({args})")
        if isinstance(e, ast.Agg):
            fn_ref = env.bind(self._lookup(self.interp.aggregate, e.name))
            q_ref = env.bind(self.query(e.query))
            if self.nat:
                return _atom(
                    f"{fn_ref}(list({q_ref}(rels, {_render(var)}).items()))")
            return _atom(f"{fn_ref}([(_ar, 1) for _ar in "
                         f"{q_ref}(rels, {_render(var)})])")
        if isinstance(e, ast.CastExpr):
            recast = self.projection(e.projection, var, env)
            return self.expression(e.expression, recast, env)
        if isinstance(e, ast.ExprVar):
            ref = env.bind(self._lookup(self.interp.expression, e.name))
            return _atom(f"{ref}({_render(var)})")
        raise CompileError(f"cannot compile expression node: {e!r}")

    # -- projections ---------------------------------------------------------

    def projection(self, p: ast.Projection, var: _Code, env: _Env) -> _Code:
        if isinstance(p, ast.Star):
            return var
        if isinstance(p, ast.LeftP):
            return _component(var, 0)
        if isinstance(p, ast.RightP):
            return _component(var, 1)
        if isinstance(p, ast.EmptyP):
            return _atom("()")
        if isinstance(p, ast.Compose):
            return self.projection(p.second,
                                   self.projection(p.first, var, env), env)
        if isinstance(p, ast.Duplicate):
            return ("pair", self.projection(p.left, var, env),
                    self.projection(p.right, var, env))
        if isinstance(p, ast.E2P):
            return self.expression(p.expression, var, env)
        if isinstance(p, ast.PVar):
            ref = env.bind(self._lookup(self.interp.projection, p.name))
            return _atom(f"{ref}({_render(var)})")
        raise CompileError(f"cannot compile projection node: {p!r}")


__all__ = [
    "COMPILED_SEMIRINGS",
    "CompileError",
    "CompiledPair",
    "compile_pair",
    "compile_query",
    "counts_to_relation",
    "relation_to_counts",
]
