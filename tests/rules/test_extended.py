"""Extended rule corpus: every rule proves and survives the oracle."""

import pytest

from repro.rules import all_extended_rules, get_rule

EXTENDED = all_extended_rules()


class TestCorpus:
    def test_count(self):
        assert len(EXTENDED) == 11

    def test_all_in_extended_category(self):
        assert all(r.category == "extended" for r in EXTENDED)

    def test_registry_lookup(self):
        assert get_rule("distinct_product_distributes").category == \
            "extended"


@pytest.mark.parametrize("rule", EXTENDED, ids=lambda r: r.name)
class TestExtendedRules:
    def test_typechecks(self, rule):
        lhs_schema, rhs_schema = rule.typecheck()
        assert lhs_schema == rhs_schema

    def test_proved(self, rule):
        proof = rule.prove()
        assert proof.verified, f"prover rejected {rule.name}"

    def test_oracle_agrees(self, rule):
        assert rule.validate(trials=15) is None


class TestBagSetBoundary:
    """distinct_or_as_union is the canonical rule that is true under
    DISTINCT but FALSE at bag level — check the engine knows the
    difference."""

    def test_bag_version_rejected(self):
        from repro.core import ast
        from repro.core.equivalence import queries_equivalent
        rule = get_rule("distinct_or_as_union")
        # Strip the DISTINCTs: now double counting breaks it.
        bag_lhs = rule.lhs.query
        bag_rhs = rule.rhs.query
        assert not queries_equivalent(bag_lhs, bag_rhs)

    def test_distinct_product_bag_version_rejected(self):
        from repro.core.equivalence import queries_equivalent
        rule = get_rule("distinct_product_distributes")
        # DISTINCT(R × S) vs DISTINCT(R) × S — one-sided push is unsound.
        from repro.core import ast
        one_sided = ast.Product(ast.Distinct(rule.lhs.query.left),
                                rule.lhs.query.right)
        assert not queries_equivalent(rule.lhs, one_sided)
