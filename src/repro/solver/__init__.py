"""The verification service layer: prove-or-disprove at scale.

This package is the Cosette-shaped half of the reproduction: the paper's
prover is sound but incomplete (Figure 9), so production use pairs it with
a *disprover* and wraps both in infrastructure that can serve heavy
traffic:

* :mod:`repro.solver.pipeline` — tiered decision pipeline (alpha-hash →
  conjunctive decision → budgeted prover → bounded-exhaustive disprover),
* :mod:`repro.solver.disprover` — exhaustive small-instance counterexample
  search with "no counterexample up to bound k" guarantees,
* :mod:`repro.solver.cache` — content-addressed proof cache (LRU + JSON
  persistence) keyed on alpha-canonical normal forms,
* :mod:`repro.solver.service` — batch API deduplicating jobs and fanning
  out across a multiprocessing pool,
* :mod:`repro.solver.verdict` — the structured PROVED / DISPROVED /
  UNKNOWN answers everything above exchanges.
"""

from .cache import ProofCache, nsum_fingerprint, syntactic_alias
from .disprover import (
    Bound,
    DisproofResult,
    SMALL_DOMAINS,
    count_relations,
    disprove,
    disprove_factory,
    disprove_rule,
    enumerate_relations,
    free_tables,
    has_metavariables,
    replay,
)
from .pipeline import (
    DEFAULT_CONFIG,
    NormalizedQuery,
    Pipeline,
    PipelineConfig,
    default_pipeline,
    reset_default_pipeline,
)
from .service import BatchReport, Job, VerificationService
from .verdict import BoundInfo, CounterexampleRecord, Status, Verdict

__all__ = [
    "BatchReport",
    "Bound",
    "BoundInfo",
    "CounterexampleRecord",
    "DEFAULT_CONFIG",
    "DisproofResult",
    "Job",
    "NormalizedQuery",
    "Pipeline",
    "PipelineConfig",
    "ProofCache",
    "SMALL_DOMAINS",
    "Status",
    "Verdict",
    "VerificationService",
    "count_relations",
    "default_pipeline",
    "disprove",
    "disprove_factory",
    "disprove_rule",
    "enumerate_relations",
    "free_tables",
    "has_metavariables",
    "nsum_fingerprint",
    "replay",
    "reset_default_pipeline",
    "syntactic_alias",
]
