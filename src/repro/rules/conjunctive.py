"""Conjunctive-query rules (Figure 8 row "Conjunctive Query": 2 rules).

Both rules are proved *fully automatically* by the decision procedure of
paper Sec. 5.2 — the one-line proofs of Figure 8.  The first is the
redundant-self-join example the paper develops across Figure 2; the second
is the Sec. 5.2 example whose containment mappings Figure 10 visualizes.
"""

from __future__ import annotations

import random
from typing import Tuple

from ..core import ast
from ..core.schema import INT, Leaf, SVar
from .common import SR, standard_interpretation, table
from .rule import RewriteRule

_R = table("R", SR)


def self_join_queries() -> Tuple[ast.Query, ast.Query]:
    """The Figure 2 pair: Q3 (redundant self-join) and Q2."""
    p = ast.PVar("p", SR, Leaf(INT))
    q3 = ast.Distinct(ast.Select(
        ast.path(ast.RIGHT, ast.LEFT, p),
        ast.Where(
            ast.Product(_R, _R),
            ast.PredEq(ast.P2E(ast.path(ast.RIGHT, ast.LEFT, p), INT),
                       ast.P2E(ast.path(ast.RIGHT, ast.RIGHT, p), INT)))))
    q2 = ast.Distinct(ast.Select(ast.path(ast.RIGHT, p), _R))
    return q3, q2


def _self_join_dedup() -> RewriteRule:
    lhs, rhs = self_join_queries()
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R",), attrs=("p",))
        return lhs, rhs, interp
    return RewriteRule(
        name="cq_self_join_dedup", category="conjunctive",
        description="Redundant self-join under DISTINCT (paper Q2 ≡ Q3, "
                    "Figure 2) — decided automatically.",
        lhs=lhs, rhs=rhs, automatic=True,
        tactic_script=("cq_decide",),
        paper_ref="Figure 2 / Sec. 5.2",
        instantiate=factory)


def fig10_queries() -> Tuple[ast.Query, ast.Query]:
    """The Sec. 5.2 example whose mappings Figure 10 draws.

    ``SELECT DISTINCT x.c1 FROM R1 x, R2 y WHERE x.c2 = y.c3``  vs
    ``SELECT DISTINCT x.c1 FROM R1 x, R1 y, R2 z
      WHERE x.c1 = y.c1 AND x.c2 = z.c3``.
    """
    s1 = SVar("s1")
    s2 = SVar("s2")
    r1 = table("R1", s1)
    r2 = table("R2", s2)
    c1 = ast.PVar("c1", s1, Leaf(INT))
    c2 = ast.PVar("c2", s1, Leaf(INT))
    c3 = ast.PVar("c3", s2, Leaf(INT))

    lhs = ast.Distinct(ast.Select(
        ast.path(ast.RIGHT, ast.LEFT, c1),
        ast.Where(
            ast.Product(r1, r2),
            ast.PredEq(ast.P2E(ast.path(ast.RIGHT, ast.LEFT, c2), INT),
                       ast.P2E(ast.path(ast.RIGHT, ast.RIGHT, c3), INT)))))

    x = ast.path(ast.RIGHT, ast.LEFT, ast.LEFT)
    y = ast.path(ast.RIGHT, ast.LEFT, ast.RIGHT)
    z = ast.path(ast.RIGHT, ast.RIGHT)
    rhs = ast.Distinct(ast.Select(
        ast.Compose(x, c1),
        ast.Where(
            ast.Product(ast.Product(r1, r1), r2),
            ast.PredAnd(
                ast.PredEq(ast.P2E(ast.Compose(x, c1), INT),
                           ast.P2E(ast.Compose(y, c1), INT)),
                ast.PredEq(ast.P2E(ast.Compose(x, c2), INT),
                           ast.P2E(ast.Compose(z, c3), INT))))))
    return lhs, rhs


def _fig10_example() -> RewriteRule:
    lhs, rhs = fig10_queries()
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R1", "R2"),
                                         attrs=("c1", "c2", "c3"))
        return lhs, rhs, interp
    return RewriteRule(
        name="cq_fig10_example", category="conjunctive",
        description="The Sec. 5.2 equivalence decided by the procedure; its "
                    "two containment mappings are the paper's Figure 10.",
        lhs=lhs, rhs=rhs, automatic=True,
        tactic_script=("cq_decide",),
        paper_ref="Sec. 5.2 / Figure 10",
        instantiate=factory)


def conjunctive_rules() -> Tuple[RewriteRule, ...]:
    """The two automatically decided CQ rules of Figure 8."""
    return (_self_join_dedup(), _fig10_example())
