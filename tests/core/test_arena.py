"""Arena-native denotation: parity with the object denote pipeline.

The arena backend denotes queries directly into flat int ids
(``TermArena.denote_query``) instead of building interned UTerm objects
and encoding them afterwards.  These tests pin the contract: the
arena-denoted, arena-normalized result is alpha-equivalent to the object
route's, the per-query memos return identical objects, and the
query-level fast path raises on schema mismatches exactly like the
object route.
"""

import pytest

from repro.core.arena import arena, arena_denote_closed
from repro.core.denote import denote_closed
from repro.core.equivalence import check_query_equivalence
from repro.core.normalize import (
    normalize,
    normalize_arena_id,
    nsum_subst,
    nsums_alpha_equal,
)
from repro.core.schema import INT
from repro.errors import SchemaMismatchError
from repro.sql import Catalog, compile_sql


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_table("Emp", [("eid", INT), ("did", INT), ("age", INT)])
    cat.add_table("Dept", [("did", INT), ("budget", INT)])
    return cat


CORPUS = (
    "SELECT eid FROM Emp",
    "SELECT eid FROM Emp WHERE age < 30",
    "SELECT e.eid FROM Emp e, Dept d WHERE e.did = d.did",
    "SELECT DISTINCT eid FROM Emp WHERE eid = 1 AND eid = 1",
    "SELECT eid FROM Emp UNION ALL SELECT eid FROM Emp",
    "SELECT e.eid FROM Emp e, Dept d "
    "WHERE e.did = d.did AND d.budget > 100 AND e.age < 30",
    "SELECT u.eid FROM (SELECT eid FROM Emp UNION ALL "
    "SELECT eid FROM Emp) AS u WHERE u.eid = 1",
    "SELECT eid FROM Emp EXCEPT SELECT eid FROM Emp WHERE age < 30",
    "SELECT eid FROM Emp WHERE EXISTS "
    "(SELECT did FROM Dept WHERE budget > 100)",
)


class TestArenaDenoteParity:
    def test_arena_denotation_matches_object_route(self, catalog):
        """Arena-denote + arena-normalize alpha-equals object denote +
        normalize on every corpus query (after aligning the fresh
        lambda variables)."""
        ar = arena()
        for sql in CORPUS:
            query = compile_sql(sql, catalog).query
            schema, g, t, body = arena_denote_closed(query)
            arena_nsum = ar.normalize_uid(body)
            d = denote_closed(query)
            assert schema == d.schema
            object_nsum = nsum_subst(
                normalize(d.body),
                {d.g: ar.decode_term(g), d.t: ar.decode_term(t)})
            aligned = nsum_subst(
                arena_nsum,
                {ar.decode_term(g): ar.decode_term(g)})
            assert nsums_alpha_equal(arena_nsum, object_nsum) \
                or nsums_alpha_equal(aligned, object_nsum), \
                f"arena and object denotations diverge on {sql!r}"

    def test_arena_denote_closed_is_memoized(self, catalog):
        query = compile_sql(CORPUS[2], catalog).query
        first = arena_denote_closed(query)
        second = arena_denote_closed(query)
        assert first == second
        assert first[3] == second[3]  # same body id, not a re-denotation

    def test_normalize_uid_memoized_per_uid(self, catalog):
        ar = arena()
        query = compile_sql(CORPUS[1], catalog).query
        _, _, _, body = arena_denote_closed(query)
        assert ar.normalize_uid(body) is ar.normalize_uid(body)

    def test_normalize_arena_id_shares_normalize_memo(self, catalog):
        from repro.core.normalize import normalize_stats

        ar = arena()
        query = compile_sql(CORPUS[5], catalog).query
        _, _, _, body = arena_denote_closed(query)
        normalize_arena_id(ar, body)  # may miss (first sight)
        before = normalize_stats()
        normalize_arena_id(ar, body)
        after = normalize_stats()
        assert after["lifetime_hits"] == before["lifetime_hits"] + 1

    def test_align_body_identity_when_vars_match(self, catalog):
        ar = arena()
        query = compile_sql(CORPUS[0], catalog).query
        _, g, t, body = arena_denote_closed(query)
        assert ar.align_body(body, g, t, g, t) == body

    def test_align_body_renames_to_target_vars(self, catalog):
        ar = arena()
        q1 = compile_sql(CORPUS[0], catalog).query
        q2 = compile_sql("SELECT eid FROM Emp WHERE 1 = 1", catalog).query
        _, g1, t1, _ = arena_denote_closed(q1)
        _, g2, t2, b2 = arena_denote_closed(q2)
        renamed = ar.align_body(b2, g2, t2, g1, t1)
        mask = ar.var_mask(g2) | ar.var_mask(t2)
        assert not (ar.fv_of(renamed) & mask), \
            "the source lambda vars must not stay free after alignment"


class TestArenaQueryFastPath:
    def test_schema_mismatch_raises_like_object_route(self, catalog):
        q1 = compile_sql("SELECT eid FROM Emp", catalog).query
        q2 = compile_sql("SELECT eid, did FROM Emp", catalog).query
        with pytest.raises(SchemaMismatchError):
            check_query_equivalence(q1, q2)

    def test_verdicts_on_corpus(self, catalog):
        """The fast path proves the classic equivalences and refutes the
        non-equivalence, same as the object route always did."""
        dedup = compile_sql(
            "SELECT eid FROM Emp WHERE eid = 1 AND eid = 1", catalog).query
        plain = compile_sql(
            "SELECT eid FROM Emp WHERE eid = 1", catalog).query
        assert check_query_equivalence(dedup, plain).equal
        other = compile_sql("SELECT did FROM Emp", catalog).query
        assert not check_query_equivalence(plain, other).equal
