"""The paper's Sec. 7 discussion: finite vs. infinite semantics.

HoTTSQL interprets SQL over finite *and* infinite relations.  These tests
exercise the consequences executably:

* tuples with infinite multiplicity flow through every operator,
* DISTINCT normalizes ω to 1 (squash),
* a pair of queries that agree on every finite-multiplicity instance but
  are distinguished once multiplicities may be infinite, illustrating why
  infinite semantics changes which equivalences hold.
"""

from repro.core import ast
from repro.core.schema import INT, Leaf, Node
from repro.engine import Interpretation, run_query
from repro.semiring import Cardinal, KRelation, NAT_INF, OMEGA


_SCHEMA = Leaf(INT)


def _interp(annotations):
    interp = Interpretation()
    interp.relations["R"] = KRelation(NAT_INF, annotations)
    interp.schemas["R"] = _SCHEMA
    return interp


class TestOmegaThroughOperators:
    def test_distinct_squashes_omega(self):
        interp = _interp({1: OMEGA})
        out = run_query(ast.Distinct(ast.Table("R", _SCHEMA)), interp,
                        NAT_INF)
        assert out.annotation(1) == Cardinal(1)

    def test_union_all_with_omega(self):
        interp = _interp({1: OMEGA, 2: Cardinal(2)})
        q = ast.UnionAll(ast.Table("R", _SCHEMA), ast.Table("R", _SCHEMA))
        out = run_query(q, interp, NAT_INF)
        assert out.annotation(1) == OMEGA
        assert out.annotation(2) == Cardinal(4)

    def test_product_with_omega(self):
        interp = _interp({1: OMEGA, 2: Cardinal(3)})
        q = ast.Product(ast.Table("R", _SCHEMA), ast.Table("R", _SCHEMA))
        out = run_query(q, interp, NAT_INF)
        assert out.annotation((1, 2)) == OMEGA
        assert out.annotation((2, 2)) == Cardinal(9)

    def test_except_with_omega(self):
        interp = _interp({1: OMEGA, 2: OMEGA})
        empty = Interpretation()
        empty.relations["R"] = interp.relations["R"]
        empty.relations["S"] = KRelation(NAT_INF, {2: Cardinal(1)})
        q = ast.Except(ast.Table("R", _SCHEMA), ast.Table("S", _SCHEMA))
        out = run_query(q, empty, NAT_INF)
        assert out.annotation(1) == OMEGA
        assert out.annotation(2) == Cardinal(0)

    def test_projection_sums_to_omega(self):
        pair_schema = Node(Leaf(INT), Leaf(INT))
        interp = Interpretation()
        interp.relations["P"] = KRelation(
            NAT_INF, {(1, 10): OMEGA, (1, 20): Cardinal(1)})
        q = ast.Select(ast.path(ast.RIGHT, ast.LEFT),
                       ast.Table("P", pair_schema))
        out = run_query(q, interp, NAT_INF)
        assert out.annotation(1) == OMEGA


class TestFiniteVsInfiniteDistinction:
    """R and DISTINCT R agree whenever R happens to be duplicate-free;
    over instances with infinite multiplicities the gap is extreme: one
    side stays ω while the other collapses to 1.  This is the executable
    shadow of the paper's infinity-axiom discussion."""

    def test_agree_on_duplicate_free_instances(self):
        interp = _interp({1: Cardinal(1), 5: Cardinal(1)})
        plain = run_query(ast.Table("R", _SCHEMA), interp, NAT_INF)
        dedup = run_query(ast.Distinct(ast.Table("R", _SCHEMA)), interp,
                          NAT_INF)
        assert plain == dedup

    def test_distinguished_at_omega(self):
        interp = _interp({1: OMEGA})
        plain = run_query(ast.Table("R", _SCHEMA), interp, NAT_INF)
        dedup = run_query(ast.Distinct(ast.Table("R", _SCHEMA)), interp,
                          NAT_INF)
        assert plain.annotation(1) == OMEGA
        assert dedup.annotation(1) == Cardinal(1)
        assert plain != dedup

    def test_self_join_squares_omega(self):
        # The unsound bag-level self-join rule (buggy rule family) is
        # wrong at ω too: ω² = ω but ω ≠ finite squares elsewhere.
        interp = _interp({1: Cardinal(2)})
        q = ast.Product(ast.Table("R", _SCHEMA), ast.Table("R", _SCHEMA))
        out = run_query(q, interp, NAT_INF)
        assert out.annotation((1, 1)) == Cardinal(4)
        interp2 = _interp({1: OMEGA})
        out2 = run_query(q, interp2, NAT_INF)
        assert out2.annotation((1, 1)) == OMEGA
