"""Congruence closure over tuple terms.

The paper's deductive proofs (Sec. 2 "Deductive HoTTSQL Proof", Sec. 5.2)
"rewrite all equalities and try to discharge the proof by direct application
of hypotheses".  The engine that makes equality rewriting decidable is
congruence closure (Nelson & Oppen, JACM 1980 — cited by the paper in
Sec. 3.4); this module implements it for the term language of
:mod:`repro.core.uninomial`:

* uninterpreted function congruence — ``a = b ⟹ f(a) = f(b)``,
* pair/projection theory — ``t = (a, b) ⟹ t.1 = a`` and ``(t.1, t.2) = t``,
* constant disjointness — distinct literals are never equal (used to detect
  contradictory products, which denote the empty type).

The implementation favours clarity over asymptotics: products appearing in
rewrite rules have a handful of atoms, so the O(n²) propagation loop is
never the bottleneck (the benchmarks confirm this).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .schema import Node, Schema
from .uninomial import TAgg, TApp, TConst, TFst, TPair, TSnd, TUnit, TVar, Term


class Contradiction(Exception):
    """Raised when the closure would identify two distinct constants."""


class CongruenceClosure:
    """Union-find with congruence propagation over the term DAG."""

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}
        self._members: Dict[Term, Set[Term]] = {}
        self._canon_active: Set[Term] = set()
        self.contradictory = False

    # -- registration -------------------------------------------------------

    def ensure(self, term: Term) -> None:
        """Register a term and all of its sub-terms."""
        if term in self._parent:
            return
        self._parent[term] = term
        self._members[term] = {term}
        for child in _children(term):
            self.ensure(child)
        self._propagate()

    def terms(self) -> Iterable[Term]:
        """All registered terms."""
        return self._parent.keys()

    # -- union-find ----------------------------------------------------------

    def find(self, term: Term) -> Term:
        """Current class representative of ``term`` (registers it if new)."""
        self.ensure(term)
        root = term
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        node = term
        while self._parent[node] != node:
            self._parent[node], node = root, self._parent[node]
        return root

    def merge(self, a: Term, b: Term) -> None:
        """Assert ``a = b`` and close under congruence."""
        self.ensure(a)
        self.ensure(b)
        self._union(a, b)
        self._propagate()

    def _union(self, a: Term, b: Term) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if isinstance(ra, TConst) and isinstance(rb, TConst) \
                and ra.value != rb.value:
            self.contradictory = True
        if len(self._members[ra]) < len(self._members[rb]):
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._members[ra] |= self._members.pop(rb)

    def _propagate(self) -> None:
        """Close under congruence and the pair/projection theory."""
        changed = True
        while changed:
            changed = False
            signature: Dict[Tuple, Term] = {}
            for term in list(self._parent):
                sig = self._signature(term)
                if sig is None:
                    continue
                other = signature.get(sig)
                if other is None:
                    signature[sig] = term
                elif self.find(other) != self.find(term):
                    self._union(other, term)
                    changed = True
            if self._apply_pair_axioms():
                changed = True

    def _signature(self, term: Term) -> Optional[Tuple]:
        if isinstance(term, TApp):
            return ("app", term.fn, term.result_schema,
                    tuple(self.find(a) for a in term.args))
        if isinstance(term, TPair):
            return ("pair", self.find(term.left), self.find(term.right))
        if isinstance(term, TFst):
            return ("fst", self.find(term.arg))
        if isinstance(term, TSnd):
            return ("snd", self.find(term.arg))
        return None  # atoms: variables, constants, unit, aggregates

    def _apply_pair_axioms(self) -> bool:
        """If a class contains an explicit pair, project it onto Fst/Snd."""
        changed = False
        for term in list(self._parent):
            if isinstance(term, TFst):
                witness = self._pair_witness(term.arg)
                if witness is not None and \
                        self.find(term) != self.find(witness.left):
                    self._union(term, witness.left)
                    changed = True
            elif isinstance(term, TSnd):
                witness = self._pair_witness(term.arg)
                if witness is not None and \
                        self.find(term) != self.find(witness.right):
                    self._union(term, witness.right)
                    changed = True
        return changed

    def _pair_witness(self, term: Term) -> Optional[TPair]:
        root = self.find(term)
        for member in self._members[root]:
            if isinstance(member, TPair):
                return member
        return None

    # -- queries ---------------------------------------------------------------

    def equal(self, a: Term, b: Term) -> bool:
        """Does the closure entail ``a = b``?

        Tuples of ``Node`` schema are compared component-wise, so that
        ``x = (a, b)`` follows from ``x.1 = a`` and ``x.2 = b`` (surjective
        pairing).  Pointer-equal terms (the common case with the interned
        kernel) answer immediately, without registering anything.
        """
        if a is b:
            return True
        if self.find(a) == self.find(b):
            return True
        schema = _common_schema(a, b)
        if isinstance(schema, Node):
            return (self.equal(_fst(a), _fst(b))
                    and self.equal(_snd(a), _snd(b)))
        return False

    def canonical(self, term: Term) -> Term:
        """A deterministic representative of the term's class.

        Chooses the smallest member (by size, then by rendering) and
        canonicalizes recursively below it, producing a normal form that two
        different closures agree on whenever they prove the same equalities.
        """
        self.ensure(term)
        root = self.find(term)
        best = min(self._members[root], key=_term_key)
        if root in self._canon_active:
            return best  # cycle in the class graph: stop rebuilding
        self._canon_active.add(root)
        try:
            rebuilt = _rebuild(best, self)
        finally:
            self._canon_active.discard(root)
        return min((best, rebuilt), key=_term_key)

    def assume_all(self, equations: Iterable[Tuple[Term, Term]]) -> None:
        """Merge a batch of equations."""
        for a, b in equations:
            self.merge(a, b)

    def members(self, term: Term) -> Set[Term]:
        """All registered terms known equal to ``term``."""
        return set(self._members[self.find(term)])


def _children(term: Term) -> List[Term]:
    if isinstance(term, TPair):
        return [term.left, term.right]
    if isinstance(term, (TFst, TSnd)):
        return [term.arg]
    if isinstance(term, TApp):
        return list(term.args)
    return []  # TVar, TConst, TUnit, TAgg are leaves for the closure


def _fst(term: Term) -> Term:
    return term.left if isinstance(term, TPair) else TFst(term)


def _snd(term: Term) -> Term:
    return term.right if isinstance(term, TPair) else TSnd(term)


def _common_schema(a: Term, b: Term) -> Optional[Schema]:
    try:
        sa = a.schema
        sb = b.schema
    except TypeError:
        return None
    return sa if sa == sb else None


def _term_key(term: Term) -> Tuple[int, str]:
    # Both components are O(1) amortized on interned nodes: the kernel
    # caches node sizes and renderings.
    return (_size(term), str(term))


def _size(term: Term) -> int:
    """Closure-level term size (aggregates are leaves); cached per node."""
    cached = term.__dict__.get("_hc_ccsize")
    if cached is not None:
        return cached
    if isinstance(term, TPair):
        size = 1 + _size(term.left) + _size(term.right)
    elif isinstance(term, (TFst, TSnd)):
        size = 1 + _size(term.arg)
    elif isinstance(term, TApp):
        size = 1 + sum(_size(a) for a in term.args)
    else:
        return 1  # TVar, TConst, TUnit, TAgg (no slot needed for leaves)
    object.__setattr__(term, "_hc_ccsize", size)
    return size


def _rebuild(term: Term, cc: "CongruenceClosure") -> Term:
    """Canonicalize below the chosen representative (children first)."""
    if isinstance(term, TPair):
        left = cc.canonical(term.left)
        right = cc.canonical(term.right)
        if left is term.left and right is term.right:
            return term
        return TPair(left, right)
    if isinstance(term, TFst):
        arg = cc.canonical(term.arg)
        if isinstance(arg, TPair):
            return arg.left
        return TFst(arg) if arg is not term.arg else term
    if isinstance(term, TSnd):
        arg = cc.canonical(term.arg)
        if isinstance(arg, TPair):
            return arg.right
        return TSnd(arg) if arg is not term.arg else term
    if isinstance(term, TApp):
        args = tuple(cc.canonical(a) for a in term.args)
        return TApp(term.fn, args, term.result_schema)
    return term
