"""Property suite for the hash-consed term kernel (seeded random).

The interning invariants the kernel promises:

* **pointer ⇔ structural** — rebuilding any term through the public
  constructors returns the *same* object; structurally different terms
  are never pointer-equal, and canonical nodes compare/hash exactly like
  the structural dataclass semantics they replaced;
* **normalize idempotence** — re-normalizing a rendered normal form is
  alpha-equivalent to the normal form itself, and pointer-identical
  inputs hit the memo;
* **cached metadata = reference** — the per-node cached free-variable
  sets and alpha-canonical keys agree with straightforward uncached
  reference implementations (kept here, frozen at their pre-kernel
  form);
* **construction-time canonical factor order** — an ``NProduct`` stores
  its factors sorted by the interned order key, however they were
  passed;
* **pickling re-interns** — a pickle round-trip lands on the canonical
  node;
* **thread safety** — concurrent construction of one term yields one
  canonical node.
"""

import pickle
import random
import threading

import pytest

from repro.core.intern import intern_stats
from repro.core.normalize import (
    AEq,
    ANeg,
    APred,
    ARel,
    ASquash,
    NProduct,
    NSum,
    atom_alpha_key,
    atom_free_vars,
    normalize,
    nsum_alpha_key,
    nsum_free_vars,
    nsum_to_uterm,
    nsums_alpha_equal,
    product_alpha_key,
    term_alpha_key,
    uterm_alpha_key,
)
from repro.core.schema import BOOL, INT, Leaf, Node, SVar, Schema
from repro.core.uninomial import (
    TAgg,
    TApp,
    TConst,
    TFst,
    TPair,
    TSnd,
    TUnit,
    TVar,
    Term,
    UAdd,
    UEq,
    UMul,
    UNeg,
    UOne,
    UPred,
    URel,
    USquash,
    USum,
    UTerm,
    UZero,
    term_free_vars,
    uterm_free_vars,
)

N_SAMPLES = 60


# ---------------------------------------------------------------------------
# Seeded random generator
# ---------------------------------------------------------------------------

class Gen:
    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.leaf_schemas = [Leaf(INT), Leaf(BOOL), SVar("s1"), SVar("s2")]

    def schema(self, depth=2) -> Schema:
        if depth == 0 or self.rng.random() < 0.5:
            return self.rng.choice(self.leaf_schemas)
        return Node(self.schema(depth - 1), self.schema(depth - 1))

    def var(self, schema=None) -> TVar:
        name = f"v{self.rng.randrange(6)}"
        return TVar(name, schema if schema is not None else self.schema())

    def term(self, schema=None, depth=3) -> Term:
        """A well-typed term of the requested schema."""
        if schema is None:
            schema = self.schema()
        if depth > 0:
            pick = self.rng.randrange(5)
            if pick == 0 and isinstance(schema, Node):
                return TPair(self.term(schema.left, depth - 1),
                             self.term(schema.right, depth - 1))
            if pick == 1:
                return TFst(self.var(Node(schema, self.schema(1))))
            if pick == 2:
                return TSnd(self.var(Node(self.schema(1), schema)))
            if pick == 3:
                return TApp(f"f{self.rng.randrange(3)}",
                            tuple(self.term(None, depth - 1)
                                  for _ in range(self.rng.randrange(1, 3))),
                            schema)
            if pick == 4 and schema == Leaf(INT):
                var = self.var()
                return TAgg(f"agg{self.rng.randrange(2)}", var,
                            self.uterm(depth - 1), INT)
        if schema == Leaf(INT):
            return self.rng.choice([
                self.var(schema), TConst(self.rng.randrange(5), INT)])
        if schema == Leaf(BOOL):
            return self.rng.choice([
                self.var(schema), TConst(self.rng.random() < 0.5, BOOL)])
        return self.var(schema)

    def uterm(self, depth=3) -> UTerm:
        if depth == 0:
            return self.rng.choice([
                UZero(), UOne(), URel(f"R{self.rng.randrange(3)}",
                                      self.var())])
        pick = self.rng.randrange(8)
        if pick == 0:
            return UAdd(self.uterm(depth - 1), self.uterm(depth - 1))
        if pick == 1:
            return UMul(self.uterm(depth - 1), self.uterm(depth - 1))
        if pick == 2:
            return USquash(self.uterm(depth - 1))
        if pick == 3:
            return UNeg(self.uterm(depth - 1))
        if pick == 4:
            return USum(self.var(), self.uterm(depth - 1))
        if pick == 5:
            schema = self.schema()
            return UEq(self.term(schema, depth - 1),
                       self.term(schema, depth - 1))
        if pick == 6:
            return UPred(f"b{self.rng.randrange(3)}",
                         tuple(self.term(None, depth - 1)
                               for _ in range(self.rng.randrange(1, 3))))
        return URel(f"R{self.rng.randrange(3)}", self.term(None, depth - 1))


def _clone_term(t: Term) -> Term:
    """Rebuild a term bottom-up through the public constructors."""
    if isinstance(t, TVar):
        return TVar(str(t.name), t.var_schema)
    if isinstance(t, TUnit):
        return TUnit()
    if isinstance(t, TConst):
        return TConst(t.value, t.ty)
    if isinstance(t, TPair):
        return TPair(_clone_term(t.left), _clone_term(t.right))
    if isinstance(t, TFst):
        return TFst(_clone_term(t.arg))
    if isinstance(t, TSnd):
        return TSnd(_clone_term(t.arg))
    if isinstance(t, TApp):
        return TApp(str(t.fn), tuple(_clone_term(a) for a in t.args),
                    t.result_schema)
    if isinstance(t, TAgg):
        return TAgg(str(t.name), _clone_term(t.var), _clone_uterm(t.body),
                    t.ty)
    raise TypeError(t)


def _clone_uterm(u: UTerm) -> UTerm:
    if isinstance(u, UZero):
        return UZero()
    if isinstance(u, UOne):
        return UOne()
    if isinstance(u, UAdd):
        return UAdd(_clone_uterm(u.left), _clone_uterm(u.right))
    if isinstance(u, UMul):
        return UMul(_clone_uterm(u.left), _clone_uterm(u.right))
    if isinstance(u, USquash):
        return USquash(_clone_uterm(u.arg))
    if isinstance(u, UNeg):
        return UNeg(_clone_uterm(u.arg))
    if isinstance(u, USum):
        return USum(_clone_term(u.var), _clone_uterm(u.body))
    if isinstance(u, UEq):
        return UEq(_clone_term(u.left), _clone_term(u.right))
    if isinstance(u, URel):
        return URel(str(u.name), _clone_term(u.arg))
    if isinstance(u, UPred):
        return UPred(str(u.name), tuple(_clone_term(a) for a in u.args))
    raise TypeError(u)


# ---------------------------------------------------------------------------
# Reference (uncached) metadata implementations — frozen pre-kernel forms
# ---------------------------------------------------------------------------

def ref_term_free_vars(t):
    if isinstance(t, TVar):
        return frozenset({t})
    if isinstance(t, (TUnit, TConst)):
        return frozenset()
    if isinstance(t, TPair):
        return ref_term_free_vars(t.left) | ref_term_free_vars(t.right)
    if isinstance(t, (TFst, TSnd)):
        return ref_term_free_vars(t.arg)
    if isinstance(t, TApp):
        out = frozenset()
        for a in t.args:
            out |= ref_term_free_vars(a)
        return out
    if isinstance(t, TAgg):
        return ref_uterm_free_vars(t.body) - {t.var}
    raise TypeError(t)


def ref_uterm_free_vars(u):
    if isinstance(u, (UZero, UOne)):
        return frozenset()
    if isinstance(u, (UAdd, UMul)):
        return ref_uterm_free_vars(u.left) | ref_uterm_free_vars(u.right)
    if isinstance(u, (USquash, UNeg)):
        return ref_uterm_free_vars(u.arg)
    if isinstance(u, USum):
        return ref_uterm_free_vars(u.body) - {u.var}
    if isinstance(u, UEq):
        return ref_term_free_vars(u.left) | ref_term_free_vars(u.right)
    if isinstance(u, URel):
        return ref_term_free_vars(u.arg)
    if isinstance(u, UPred):
        out = frozenset()
        for a in u.args:
            out |= ref_term_free_vars(a)
        return out
    raise TypeError(u)


def ref_term_alpha_key(term, env=None):
    env = env or {}
    if isinstance(term, TVar):
        return ("var", env.get(term, term.name), str(term.var_schema))
    if isinstance(term, TUnit):
        return ("unit",)
    if isinstance(term, TPair):
        return ("pair", ref_term_alpha_key(term.left, env),
                ref_term_alpha_key(term.right, env))
    if isinstance(term, TFst):
        return ("fst", ref_term_alpha_key(term.arg, env))
    if isinstance(term, TSnd):
        return ("snd", ref_term_alpha_key(term.arg, env))
    if isinstance(term, TConst):
        return ("const", term.ty.name, repr(term.value))
    if isinstance(term, TApp):
        return ("app", term.fn, str(term.result_schema),
                tuple(ref_term_alpha_key(a, env) for a in term.args))
    if isinstance(term, TAgg):
        inner = dict(env)
        inner[term.var] = "@agg"
        return ("agg", term.name, term.ty.name,
                ref_uterm_alpha_key(term.body, inner))
    raise TypeError(term)


def ref_uterm_alpha_key(u, env=None):
    env = env or {}
    if isinstance(u, UZero):
        return ("zero",)
    if isinstance(u, UOne):
        return ("one",)
    if isinstance(u, UAdd):
        return ("add", ref_uterm_alpha_key(u.left, env),
                ref_uterm_alpha_key(u.right, env))
    if isinstance(u, UMul):
        return ("mul", ref_uterm_alpha_key(u.left, env),
                ref_uterm_alpha_key(u.right, env))
    if isinstance(u, USquash):
        return ("squash", ref_uterm_alpha_key(u.arg, env))
    if isinstance(u, UNeg):
        return ("neg", ref_uterm_alpha_key(u.arg, env))
    if isinstance(u, USum):
        inner = dict(env)
        inner[u.var] = f"@{len(env)}"
        return ("sum", str(u.var.var_schema),
                ref_uterm_alpha_key(u.body, inner))
    if isinstance(u, UEq):
        return ("eq", ref_term_alpha_key(u.left, env),
                ref_term_alpha_key(u.right, env))
    if isinstance(u, URel):
        return ("rel", u.name, ref_term_alpha_key(u.arg, env))
    if isinstance(u, UPred):
        return ("pred", u.name,
                tuple(ref_term_alpha_key(a, env) for a in u.args))
    raise TypeError(u)


def ref_atom_alpha_key(atom, env=None):
    env = env or {}
    if isinstance(atom, ARel):
        return ("rel", atom.name, ref_term_alpha_key(atom.arg, env))
    if isinstance(atom, AEq):
        keys = sorted((ref_term_alpha_key(atom.left, env),
                       ref_term_alpha_key(atom.right, env)))
        return ("eq", keys[0], keys[1])
    if isinstance(atom, APred):
        return ("pred", atom.name,
                tuple(ref_term_alpha_key(a, env) for a in atom.args))
    if isinstance(atom, ASquash):
        return ("squash", ref_nsum_alpha_key(atom.inner, env))
    if isinstance(atom, ANeg):
        return ("negsum", ref_nsum_alpha_key(atom.inner, env))
    raise TypeError(atom)


def ref_product_alpha_key(product, env=None):
    env = dict(env) if env else {}
    for i, v in enumerate(product.vars):
        env[v] = f"@{len(env)}.{i}"
    schemas = tuple(sorted(str(v.var_schema) for v in product.vars))
    factor_keys = tuple(sorted(ref_atom_alpha_key(f, env)
                               for f in product.factors))
    return ("product", schemas, factor_keys)


def ref_nsum_alpha_key(nsum, env=None):
    return ("nsum", tuple(sorted(ref_product_alpha_key(p, env)
                                 for p in nsum.products)))


# ---------------------------------------------------------------------------
# The properties
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(N_SAMPLES))
def test_intern_pointer_equality_iff_structural(seed):
    gen = Gen(seed)
    u = gen.uterm()
    clone = _clone_uterm(u)
    assert clone is u, "structurally equal construction must re-intern"
    assert clone == u and hash(clone) == hash(u)
    other = Gen(seed + 10_000).uterm()
    if other is not u:
        assert other != u, \
            "distinct canonical nodes must be structurally unequal"


@pytest.mark.parametrize("seed", range(0, N_SAMPLES, 3))
def test_term_clone_reinterns(seed):
    t = Gen(seed).term()
    assert _clone_term(t) is t


@pytest.mark.parametrize("seed", range(N_SAMPLES))
def test_cached_free_vars_match_reference(seed):
    gen = Gen(seed)
    u = gen.uterm()
    assert uterm_free_vars(u) == ref_uterm_free_vars(u)
    # Twice: the second read comes from the cache slot.
    assert uterm_free_vars(u) == ref_uterm_free_vars(u)
    t = gen.term()
    assert term_free_vars(t) == ref_term_free_vars(t)


@pytest.mark.parametrize("seed", range(N_SAMPLES))
def test_cached_alpha_keys_match_reference(seed):
    gen = Gen(seed)
    u = gen.uterm()
    assert uterm_alpha_key(u) == ref_uterm_alpha_key(u)
    t = gen.term()
    assert term_alpha_key(t) == ref_term_alpha_key(t)
    # Non-trivial environments exercise the binder-sensitivity fast path.
    env = {v: f"@L{i}" for i, v in enumerate(sorted(
        uterm_free_vars(u) | term_free_vars(t), key=str))}
    assert uterm_alpha_key(u, dict(env)) == ref_uterm_alpha_key(u, dict(env))
    assert term_alpha_key(t, dict(env)) == ref_term_alpha_key(t, dict(env))
    # A labelling that misses the term entirely (pure fast-path case).
    foreign = {TVar("zz", Leaf(INT)): "@Z"}
    assert term_alpha_key(t, dict(foreign)) == \
        ref_term_alpha_key(t, dict(foreign))


@pytest.mark.parametrize("seed", range(0, N_SAMPLES, 2))
def test_normal_form_alpha_keys_match_reference(seed):
    u = Gen(seed).uterm()
    n = normalize(u)
    assert nsum_alpha_key(n) == ref_nsum_alpha_key(n)
    for p in n.products:
        assert product_alpha_key(p) == ref_product_alpha_key(p)
        for f in p.factors:
            assert atom_alpha_key(f) == ref_atom_alpha_key(f)


@pytest.mark.parametrize("seed", range(0, N_SAMPLES, 2))
def test_normalize_idempotent(seed):
    u = Gen(seed).uterm()
    n = normalize(u)
    again = normalize(nsum_to_uterm(n))
    assert nsums_alpha_equal(n, again)
    # Pointer-identical input hits the memo and returns the same object.
    assert normalize(u) is n


@pytest.mark.parametrize("seed", range(0, N_SAMPLES, 4))
def test_normal_form_free_vars_match_reference(seed):
    u = Gen(seed).uterm()
    n = normalize(u)
    expected = frozenset()
    for p in n.products:
        got = frozenset()
        for f in p.factors:
            got |= atom_free_vars(f)
            # atom-level cache agrees with the raw term-level reference
            if isinstance(f, ARel):
                assert atom_free_vars(f) == ref_term_free_vars(f.arg)
        expected |= got - frozenset(p.vars)
    assert nsum_free_vars(n) == expected


def test_nproduct_factor_order_is_canonical():
    x = TVar("x", SVar("s"))
    rel = ARel("R", x)
    pred = APred("b", (x,))
    eq = AEq(x, TConst(1, INT))
    squash = ASquash(NSum((NProduct((), (rel,)),)))
    shuffled = (squash, eq, pred, rel)
    product = NProduct((), shuffled)
    kinds = [type(f) for f in product.factors]
    assert kinds == [ARel, APred, AEq, ASquash]
    # Any permutation interns onto the same node.
    assert NProduct((), (rel, pred, eq, squash)) is product
    assert NProduct((), (pred, squash, rel, eq)) is product


def test_distinct_constants_not_identified():
    assert TConst(1, INT) is not TConst(2, INT)
    assert TConst(1, INT) != TConst(2, INT)
    assert TConst(True, BOOL) is not TConst(1, INT)


def test_singletons():
    assert TUnit() is TUnit()
    assert UZero() is UZero()
    assert UOne() is UOne()


@pytest.mark.parametrize("seed", range(0, N_SAMPLES, 5))
def test_pickle_roundtrip_reinterns(seed):
    u = Gen(seed).uterm()
    assert pickle.loads(pickle.dumps(u)) is u
    n = normalize(u)
    assert pickle.loads(pickle.dumps(n)) is n


def test_concurrent_construction_single_node():
    results = []
    barrier = threading.Barrier(8)

    def build(i):
        barrier.wait()
        v = TVar("race", Node(Leaf(INT), Leaf(BOOL)))
        results.append(URel("Race", TPair(v, TConst(i % 2, INT))))

    threads = [threading.Thread(target=build, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(results) == 8
    assert len({id(r) for r in results}) == 2  # one canonical node per value
    assert all(a is b for a in results for b in results if a == b)


def test_intern_stats_shape():
    stats = intern_stats()
    assert set(stats) == {"intern_hits", "intern_misses", "interned_nodes"}
    assert all(isinstance(v, int) for v in stats.values())


# ---------------------------------------------------------------------------
# Differential suite: arena backend vs object backend (hypothesis)
# ---------------------------------------------------------------------------
#
# The arena-compiled kernel recomputes normal forms over flat int ids;
# the object backend is the frozen reference.  Both must agree — up to
# alpha-equivalence for normal forms, exactly for alpha keys, free
# variables, and equivalence verdicts.  The ``normalize`` memo is keyed
# per backend, so each example genuinely computes both sides.  Four
# properties x 80 examples = 320 differential cases per run.

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.equivalence import (
    check_query_equivalence,
    check_uterm_equivalence,
)
from repro.core.intern import set_kernel_backend

_DIFF_SETTINGS = settings(max_examples=80, deadline=None,
                          suppress_health_check=(HealthCheck.too_slow,))
_seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _on_backend(backend, fn):
    previous = set_kernel_backend(backend)
    try:
        return fn()
    finally:
        set_kernel_backend(previous)


@_DIFF_SETTINGS
@given(_seeds)
def test_differential_normalize_alpha_equal(seed):
    u = Gen(seed).uterm()
    arena = _on_backend("arena", lambda: normalize(u))
    obj = _on_backend("object", lambda: normalize(u))
    assert nsums_alpha_equal(arena, obj), \
        f"backends disagree on the normal form of {u}"


@_DIFF_SETTINGS
@given(_seeds)
def test_differential_alpha_keys(seed):
    u = Gen(seed).uterm()
    arena = _on_backend("arena", lambda: nsum_alpha_key(normalize(u)))
    obj = _on_backend("object", lambda: nsum_alpha_key(normalize(u)))
    assert arena == obj


@_DIFF_SETTINGS
@given(_seeds)
def test_differential_free_vars(seed):
    u = Gen(seed).uterm()
    arena = _on_backend("arena", lambda: nsum_free_vars(normalize(u)))
    obj = _on_backend("object", lambda: nsum_free_vars(normalize(u)))
    assert arena == obj, \
        "free variables are alpha-invariant and must match exactly"


@_DIFF_SETTINGS
@given(_seeds)
def test_differential_equivalence_verdicts(seed):
    gen = Gen(seed)
    u1 = gen.uterm()
    # Half alpha-variants (must be judged equal by both), half unrelated
    # terms (both must return the *same* verdict, whatever it is).
    u2 = _clone_uterm(u1) if seed % 2 else Gen(seed + 1).uterm()
    arena = _on_backend(
        "arena", lambda: check_uterm_equivalence(u1, u2).equal)
    obj = _on_backend(
        "object", lambda: check_uterm_equivalence(u1, u2).equal)
    assert arena == obj


def test_differential_query_verdicts_both_backends():
    """End-to-end: the query-level arena fast path and the object route
    return the same verdicts on equivalent and inequivalent pairs."""
    from repro import Session

    with Session.from_tables("R(a:int,b:int)") as s:
        pairs = [
            (s.sql("SELECT a FROM R WHERE a = 1 AND a = 1").query,
             s.sql("SELECT a FROM R WHERE a = 1").query),
            (s.sql("SELECT x.a FROM R x, R y WHERE x.a = y.b").query,
             s.sql("SELECT x.a FROM R x, R y WHERE y.b = x.a").query),
            (s.sql("SELECT DISTINCT a FROM R").query,
             s.sql("SELECT DISTINCT a FROM R WHERE a = a").query),
            (s.sql("SELECT a FROM R").query,
             s.sql("SELECT b FROM R").query),
        ]
    for q1, q2 in pairs:
        arena = _on_backend(
            "arena", lambda: check_query_equivalence(q1, q2).equal)
        obj = _on_backend(
            "object", lambda: check_query_equivalence(q1, q2).equal)
        assert arena == obj, f"backends disagree on {q1} vs {q2}"


def test_kernel_lru_reset_cannot_under_report_hits():
    """A metrics-window ``reset()`` racing a hitter thread must not lose
    hits: the lifetime counters are monotonic and the snapshot/reset
    pair is atomic, so the lifetime delta equals the hits the hitter
    actually observed — regardless of how many resets landed mid-run."""
    from repro.core.intern import KernelLRU

    lru = KernelLRU(64, "test-threaded-reset")
    for i in range(16):
        lru.put(i, i)

    observed = 0
    stop = threading.Event()

    before = lru.snapshot()

    def hitter():
        nonlocal observed
        for _ in range(200):
            for i in range(16):
                if lru.get(i) is not None:
                    observed += 1

    def resetter():
        while not stop.is_set():
            lru.reset()

    h = threading.Thread(target=hitter)
    r = threading.Thread(target=resetter)
    r.start()
    h.start()
    h.join()
    stop.set()
    r.join()

    after = lru.snapshot()
    delta = after["lifetime_hits"] - before["lifetime_hits"]
    assert delta == observed == 200 * 16, \
        (f"lifetime hit delta {delta} != observed {observed}: "
         f"a reset() lost hits")
    # The window counters, by contrast, were zeroed mid-run — which is
    # exactly why delta consumers must difference the lifetime counters.
    assert after["hits"] <= delta
