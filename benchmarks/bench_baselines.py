"""Baselines and ablations for the design choices DESIGN.md calls out.

1. **List semantics (prior work) vs UniNomial**: the paper argues list-
   based mechanization makes even trivial equivalences costly.  The
   executable analog: deciding Q2 ≡ Q3 by brute-force list evaluation over
   all small instances, versus one symbolic proof.  (The symbolic proof is
   also *complete* — enumeration never is.)

2. **Automatic CQ procedure vs generic engine** on the same goals — the
   value of the specialized Sec. 5.2 search.

3. **Congruence-closure ablation**: index rules fail without the key Horn
   axiom, demonstrating the hypotheses machinery is load-bearing.

4. **Absorption (Lemma 5.3) ablation**: magic-set rules need it.
"""

import itertools

from repro.core.conjunctive import decide_cq
from repro.core.equivalence import (
    NO_HYPOTHESES,
    check_query_equivalence,
)
from repro.core.schema import INT, Leaf, Node, enumerate_tuples
from repro.engine import Interpretation, eval_query_list, sets_equal
from repro.rules import get_rule
from repro.rules.conjunctive import self_join_queries
from repro.semiring import KRelation, NAT


def _enumerate_instances(schema, max_rows):
    """All bags over the tuple space with at most ``max_rows`` rows."""
    space = list(enumerate_tuples(schema, {"int": (0, 1)}))
    for size in range(max_rows + 1):
        for combo in itertools.combinations_with_replacement(space, size):
            yield combo


def _listsem_equivalence_check(q1, q2, schema, max_rows=3):
    """The prior-work route: evaluate on every small instance with the
    list evaluator and compare up to permutation + duplicates."""
    for rows in _enumerate_instances(schema, max_rows):
        interp = Interpretation()
        interp.relations["R"] = KRelation.from_bag(NAT, list(rows))
        interp.projections["p"] = lambda t: t[0]
        out1 = eval_query_list(q1, interp)
        out2 = eval_query_list(q2, interp)
        if not sets_equal(out1, out2):
            return False
    return True


SCHEMA2 = Node(Leaf(INT), Leaf(INT))


def test_baseline_list_semantics_enumeration(report, benchmark):
    q3, q2 = self_join_queries()
    verdict = benchmark(
        lambda: _listsem_equivalence_check(q3, q2, SCHEMA2, max_rows=3))
    assert verdict   # evidence only — not a proof

    import time
    start = time.perf_counter()
    symbolic = check_query_equivalence(q3, q2)
    symbolic_time = time.perf_counter() - start

    report.add("Baseline — list-semantics enumeration vs UniNomial proof")
    report.add("=" * 64)
    report.add("Goal: Q2 ≡ Q3 (Figure 2)")
    report.add("  list semantics, all instances ≤3 rows over {0,1}²: "
               "agrees (NOT a proof — finite evidence only)")
    report.add(f"  UniNomial symbolic proof: VERIFIED in "
               f"{symbolic.stats.total_steps} steps, "
               f"{symbolic_time * 1e3:.1f} ms, and holds for ALL instances")
    report.emit("baseline_listsem")
    assert symbolic.equal


def test_ablation_cq_procedure_vs_generic_engine(benchmark):
    """Both decide Figure 2; the specialized procedure in one step."""
    q3, q2 = self_join_queries()
    decision = benchmark(lambda: decide_cq(q3, q2))
    assert decision.equivalent
    generic = check_query_equivalence(q3, q2)
    assert generic.equal
    assert generic.stats.total_steps > 1     # the generic engine works more


def test_ablation_key_axiom_required(benchmark):
    """Index rules are invalid without the key hypothesis — the Horn
    axiom machinery is load-bearing, not decorative."""
    rule = get_rule("index_scan")
    with_hyp = benchmark(rule.prove)
    assert with_hyp.verified
    without = check_query_equivalence(rule.lhs, rule.rhs, None,
                                      NO_HYPOTHESES)
    assert not without.equal


def test_ablation_absorption_required(benchmark):
    """Magic-set semijoin introduction is exactly a Lemma 5.3 absorption;
    the engine proves it, and the two sides' raw normal forms differ
    (so AC-matching alone would fail)."""
    rule = get_rule("semijoin_intro")
    proof = benchmark(rule.prove)
    assert proof.verified
    detail = proof.detail
    from repro.core.normalize import nsum_alpha_key
    assert nsum_alpha_key(detail.lhs_normal) != \
        nsum_alpha_key(detail.rhs_normal)
