"""Integrity constraints: keys, FDs, indexes (paper Sec. 4.2)."""

import random


from repro.core import ast
from repro.core.schema import INT, Leaf, Node
from repro.engine import (
    Database,
    build_index,
    key_characterization_queries,
    run_query,
    satisfies_fd,
    satisfies_key,
)
from repro.engine.random_instances import (
    path_projection,
    random_keyed_relation,
    random_relation,
)
from repro.semiring import KRelation, NAT

SCHEMA = Node(Leaf(INT), Leaf(INT))
KEY = path_projection(("L",))
ATTR = path_projection(("R",))


class TestKeyChecking:
    def test_unique_key_accepted(self):
        rel = KRelation(NAT, {(1, 10): 1, (2, 10): 1})
        assert satisfies_key(rel, KEY)

    def test_duplicate_key_rejected(self):
        rel = KRelation(NAT, {(1, 10): 1, (1, 20): 1})
        assert not satisfies_key(rel, KEY)

    def test_multiplicity_above_one_rejected(self):
        # Keys force set-valued relations (paper's self-join equation).
        rel = KRelation(NAT, {(1, 10): 2})
        assert not satisfies_key(rel, KEY)

    def test_generator_respects_keys(self):
        rng = random.Random(7)
        for _ in range(20):
            rel = random_keyed_relation(rng, SCHEMA, ("L",), NAT)
            assert satisfies_key(rel, KEY)


class TestFDChecking:
    def test_fd_holds(self):
        rel = KRelation(NAT, {(1, 10): 1, (2, 10): 1, (1, 10): 1})
        assert satisfies_fd(rel, KEY, ATTR)

    def test_fd_violated(self):
        rel = KRelation(NAT, {(1, 10): 1, (1, 20): 1})
        assert not satisfies_fd(rel, KEY, ATTR)

    def test_key_implies_all_fds(self):
        rng = random.Random(3)
        for _ in range(10):
            rel = random_keyed_relation(rng, SCHEMA, ("L",), NAT)
            assert satisfies_fd(rel, KEY, ATTR)


class TestSemanticKeyCharacterization:
    """``key k R`` iff R equals its self-join on k (paper Sec. 4.2)."""

    def _both_sides(self, rel):
        db = Database(NAT)
        db._schemas["R"] = SCHEMA          # direct injection for the test
        db._relations["R"] = rel
        table = ast.Table("R", SCHEMA)
        plain, self_join = key_characterization_queries(table, ast.LEFT, INT)
        interp = db.interpretation()
        return run_query(plain, interp), run_query(self_join, interp)

    def test_characterization_positive(self):
        rel = KRelation(NAT, {(1, 10): 1, (2, 30): 1})
        plain, join = self._both_sides(rel)
        assert plain == join

    def test_characterization_negative_duplicates(self):
        rel = KRelation(NAT, {(1, 10): 2})
        plain, join = self._both_sides(rel)
        assert plain != join

    def test_characterization_negative_key_clash(self):
        rel = KRelation(NAT, {(1, 10): 1, (1, 20): 1})
        plain, join = self._both_sides(rel)
        assert plain != join

    def test_characterization_random(self):
        rng = random.Random(11)
        for _ in range(15):
            rel = random_keyed_relation(rng, SCHEMA, ("L",), NAT)
            plain, join = self._both_sides(rel)
            assert plain == join
        for _ in range(15):
            rel = random_relation(rng, SCHEMA, NAT)
            plain, join = self._both_sides(rel)
            assert (plain == join) == satisfies_key(rel, KEY)


class TestIndexes:
    def test_build_index(self):
        rel = KRelation(NAT, {(1, 10): 1, (2, 20): 1})
        index = build_index(rel, KEY, ATTR)
        assert index.support() == frozenset({(1, 10), (2, 20)})

    def test_index_matches_index_query(self):
        # The concrete index equals the paper's SELECT k, a FROM R view.
        from repro.rules.index import index_view
        from repro.engine.database import Interpretation
        rng = random.Random(5)
        for _ in range(10):
            rel = random_keyed_relation(rng, SCHEMA, ("L",), NAT)
            interp = Interpretation()
            interp.relations["R"] = rel
            interp.projections["k"] = KEY
            interp.projections["a"] = ATTR
            via_query = run_query(index_view(), interp)
            direct = build_index(rel, KEY, ATTR)
            assert via_query == direct
