"""The automated CQ decision procedure (paper Sec. 5.2)."""

import pytest

from repro.core import ast
from repro.core.conjunctive import (
    NotConjunctive,
    cq_equivalent,
    decide_cq,
    is_conjunctive_query,
)
from repro.core.schema import INT, Leaf, SVar
from repro.rules.conjunctive import fig10_queries, self_join_queries

SR = SVar("sR")
R = ast.Table("R", SR)
P = ast.PVar("p", SR, Leaf(INT))


def simple_cq():
    return ast.Distinct(ast.Select(ast.path(ast.RIGHT, P), R))


class TestFragmentRecognition:
    def test_accepts_canonical_cq(self):
        q3, q2 = self_join_queries()
        assert is_conjunctive_query(q3)
        assert is_conjunctive_query(q2)

    def test_rejects_missing_distinct(self):
        q = ast.Select(ast.path(ast.RIGHT, P), R)
        assert not is_conjunctive_query(q)

    def test_rejects_union(self):
        q = ast.Distinct(ast.UnionAll(R, R))
        assert not is_conjunctive_query(q)

    def test_rejects_disjunctive_predicate(self):
        pred = ast.PredOr(ast.PredTrue(), ast.PredTrue())
        q = ast.Distinct(ast.Select(ast.path(ast.RIGHT, P),
                                    ast.Where(R, pred)))
        assert not is_conjunctive_query(q)

    def test_rejects_negation(self):
        pred = ast.PredNot(ast.PredTrue())
        q = ast.Distinct(ast.Select(ast.path(ast.RIGHT, P),
                                    ast.Where(R, pred)))
        assert not is_conjunctive_query(q)

    def test_accepts_conjunction_of_equalities(self):
        e = ast.P2E(ast.path(ast.RIGHT, P), INT)
        pred = ast.PredAnd(ast.PredEq(e, e), ast.PredTrue())
        q = ast.Distinct(ast.Select(ast.path(ast.RIGHT, P),
                                    ast.Where(R, pred)))
        assert is_conjunctive_query(q)


class TestDecision:
    def test_figure_2_pair(self):
        q3, q2 = self_join_queries()
        decision = decide_cq(q3, q2)
        assert decision.equivalent
        assert decision.forward is not None
        assert decision.backward is not None

    def test_figure_10_pair_and_witnesses(self):
        lhs, rhs = fig10_queries()
        decision = decide_cq(lhs, rhs)
        assert decision.equivalent
        # Both homomorphisms must actually assign every bound variable.
        assert decision.forward.assignment
        assert decision.backward.assignment
        assert decision.forward.render()

    def test_reflexivity(self):
        q = simple_cq()
        assert cq_equivalent(q, q)

    def test_inequivalent_pair(self):
        # Projecting p from R vs from the self-join with a *different*
        # attribute equated: not equivalent.
        p2 = ast.PVar("p2", SR, Leaf(INT))
        q_other = ast.Distinct(ast.Select(
            ast.path(ast.RIGHT, ast.LEFT, P),
            ast.Where(
                ast.Product(R, R),
                ast.PredEq(ast.P2E(ast.path(ast.RIGHT, ast.LEFT, p2), INT),
                           ast.P2E(ast.path(ast.RIGHT, ast.RIGHT, P), INT)))))
        q_plain = simple_cq()
        decision = decide_cq(q_other, q_plain)
        assert not decision.equivalent
        # Containment still holds one way: every self-join answer is a
        # plain answer.
        assert decision.forward is not None

    def test_containment_only_one_direction(self):
        # σ_{p=p2}(R) ⊊ R as a CQ pair: DISTINCT p (R WHERE p=p2) vs
        # DISTINCT p R.
        p2 = ast.PVar("p2", SR, Leaf(INT))
        filtered = ast.Distinct(ast.Select(
            ast.path(ast.RIGHT, P),
            ast.Where(R, ast.PredEq(
                ast.P2E(ast.path(ast.RIGHT, P), INT),
                ast.P2E(ast.path(ast.RIGHT, p2), INT)))))
        plain = simple_cq()
        decision = decide_cq(filtered, plain)
        assert not decision.equivalent
        assert decision.forward is not None     # filtered ⊆ plain
        assert decision.backward is None        # plain ⊄ filtered

    def test_fragment_enforcement(self):
        not_cq = ast.Select(ast.path(ast.RIGHT, P), R)
        with pytest.raises(NotConjunctive):
            decide_cq(not_cq, simple_cq())

    def test_fragment_bypass_still_sound(self):
        q3, q2 = self_join_queries()
        decision = decide_cq(q3, q2, require_fragment=False)
        assert decision.equivalent
