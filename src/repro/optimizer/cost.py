"""A textbook cost model for plan selection.

The paper's optimizers pick among semantically equivalent plans by cost
(Sec. 1: "a plan selector that chooses the optimal plan ... based on a cost
model").  This is the standard cardinality-based model: every operator's
cost is the work to produce its output, estimated from base-table
cardinalities and fixed selectivities (Selinger-style).  It exists to give
the planner a preference order — its absolute numbers are not calibrated,
and do not need to be for the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import fields as _dataclass_fields
from typing import Dict

from ..core import ast

#: Estimated fraction of rows surviving a selection.
SELECTIVITY_EQ = 0.25
SELECTIVITY_OTHER = 0.5
#: Estimated fraction of distinct rows in a bag.
DISTINCT_RATIO = 0.7


@dataclass
class TableStats:
    """Base-table cardinalities feeding the estimator."""

    cardinalities: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_database(cls, db) -> "TableStats":
        """Collect support sizes from a concrete database."""
        return cls({name: float(len(db.relation(name)))
                    for name in db.table_names()})

    def cardinality(self, table: str) -> float:
        return self.cardinalities.get(table, 100.0)


@dataclass
class Estimate:
    """Estimated output cardinality and cumulative cost of a plan."""

    cardinality: float
    cost: float


def compose(op: type, label: tuple, child_estimates: tuple,
            stats: TableStats) -> Estimate:
    """One operator's estimate from its children's estimates.

    This is the cost model's compositional kernel, shared by the
    tree-walking :func:`estimate` and the e-graph extractor
    (:mod:`repro.optimizer.extract`), which evaluates it per e-node over
    the best estimates of the child e-classes.  ``op`` is the AST class
    and ``label`` its non-Query field values in dataclass order (see
    ``repro.optimizer.egraph.LABEL_FIELDS``).

    Cost is cumulative and non-negative, so an operator never costs less
    than any child — together with the strictly increasing syntactic
    size this makes cost-based extraction well-founded even on cyclic
    e-graphs.
    """
    if op is ast.Table:
        card = stats.cardinality(label[0])
        return Estimate(card, card)
    if op is ast.Select:
        (inner,) = child_estimates
        return Estimate(inner.cardinality, inner.cost + inner.cardinality)
    if op is ast.Product:
        left, right = child_estimates
        out = left.cardinality * right.cardinality
        return Estimate(out, left.cost + right.cost + out)
    if op is ast.Where:
        (inner,) = child_estimates
        sel = _selectivity(label[0])
        return Estimate(inner.cardinality * sel,
                        inner.cost + inner.cardinality)
    if op is ast.UnionAll:
        left, right = child_estimates
        out = left.cardinality + right.cardinality
        return Estimate(out, left.cost + right.cost + out)
    if op is ast.Except:
        left, right = child_estimates
        return Estimate(left.cardinality,
                        left.cost + right.cost
                        + left.cardinality + right.cardinality)
    if op is ast.Distinct:
        (inner,) = child_estimates
        return Estimate(inner.cardinality * DISTINCT_RATIO,
                        inner.cost + inner.cardinality)
    raise TypeError(f"cannot estimate query operator {op.__name__}")


def estimate(query: ast.Query, stats: TableStats) -> Estimate:
    """Bottom-up cardinality/cost estimation."""
    if isinstance(query, ast.Table):
        return compose(ast.Table, (query.name, query.schema), (), stats)
    if isinstance(query, ast.Select):
        return compose(ast.Select, (query.projection,),
                       (estimate(query.query, stats),), stats)
    if isinstance(query, ast.Product):
        return compose(ast.Product, (),
                       (estimate(query.left, stats),
                        estimate(query.right, stats)), stats)
    if isinstance(query, ast.Where):
        return compose(ast.Where, (query.predicate,),
                       (estimate(query.query, stats),), stats)
    if isinstance(query, ast.UnionAll):
        return compose(ast.UnionAll, (),
                       (estimate(query.left, stats),
                        estimate(query.right, stats)), stats)
    if isinstance(query, ast.Except):
        return compose(ast.Except, (),
                       (estimate(query.left, stats),
                        estimate(query.right, stats)), stats)
    if isinstance(query, ast.Distinct):
        return compose(ast.Distinct, (),
                       (estimate(query.query, stats),), stats)
    raise TypeError(f"cannot estimate query node {query!r}")


#: Field names per AST class, resolved once — ``dataclasses.fields`` per
#: call is the single hottest line of extraction otherwise.
_FIELD_NAMES: Dict[type, tuple] = {}


def plan_size(node: object, _seen_types=(ast.Query, ast.Predicate,
                                         ast.Expression, ast.Projection)
              ) -> int:
    """Node count of a plan tree (queries, predicates, expressions,
    projections) — the tie-break among equal-cost plans, for both the
    BFS planner and the e-graph extractor.

    Stash-memoized per node: plans are interned immutable trees, and the
    extractor sizes the same subplans across every e-class they appear
    in, so each distinct node is walked once per process.
    """
    cached = node.__dict__.get("_hc_psize")
    if cached is not None:
        return cached
    cls = node.__class__
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in _dataclass_fields(node))
        _FIELD_NAMES[cls] = names
    size = 1
    for name in names:
        value = getattr(node, name)
        children = value if isinstance(value, tuple) else (value,)
        for child in children:
            if isinstance(child, _seen_types):
                size += plan_size(child)
    object.__setattr__(node, "_hc_psize", size)
    return size


def _selectivity(pred: ast.Predicate) -> float:
    """Estimated surviving fraction for a predicate.

    Stash-memoized per (interned, immutable) predicate node — ``Where``
    re-estimation dominates e-graph extraction rounds otherwise.
    """
    cached = pred.__dict__.get("_hc_sel")
    if cached is not None:
        return cached
    sel = _selectivity_uncached(pred)
    object.__setattr__(pred, "_hc_sel", sel)
    return sel


def _selectivity_uncached(pred: ast.Predicate) -> float:
    # Static satisfiability decides the degenerate cases exactly: a
    # contradictory filter keeps nothing, a tautological one keeps
    # everything — tighter than the per-connective heuristics below
    # (e.g. ``a = 0 AND a = 1`` would otherwise estimate 0.0625).
    from ..analysis.infer import pred_sat
    from ..analysis.properties import Sat
    sat = pred_sat(pred)
    if sat is Sat.NEVER:
        return 0.0
    if sat is Sat.ALWAYS:
        return 1.0
    if isinstance(pred, ast.PredEq):
        return SELECTIVITY_EQ
    if isinstance(pred, ast.PredAnd):
        # Multiply over *distinct* conjuncts: a repeated conjunct filters
        # nothing the first copy didn't, so counting it again would
        # underestimate the output (and make σ_{b∧b} look cheaper
        # downstream than the equivalent σ_b).
        unique = list(dict.fromkeys(_conjuncts(pred)))
        sel = 1.0
        for conjunct in unique:
            sel *= _selectivity(conjunct)
        return sel
    if isinstance(pred, ast.PredOr):
        left = _selectivity(pred.left)
        right = _selectivity(pred.right)
        return min(1.0, left + right - left * right)
    if isinstance(pred, ast.PredNot):
        return 1.0 - _selectivity(pred.operand)
    if isinstance(pred, ast.PredTrue):
        return 1.0
    if isinstance(pred, ast.PredFalse):
        return 0.0
    return SELECTIVITY_OTHER


def _conjuncts(pred: ast.Predicate):
    if isinstance(pred, ast.PredAnd):
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return [pred]


def plan_cost(query: ast.Query, stats: TableStats) -> float:
    """Cumulative cost of a plan (the planner's objective)."""
    return estimate(query, stats).cost
