"""SQL frontend: lexer, parser, named→unnamed resolution, pretty-printing."""

from .desugar import (
    const_tuple_projection,
    inner_join,
    left_outer_join,
    right_outer_join,
)
from .lexer import LexError, Token, tokenize
from .nast import (
    NAggCall,
    NAggQuery,
    NAnd,
    NBoolLit,
    NColumn,
    NComparison,
    NExcept,
    NExists,
    NFromItem,
    NFuncCall,
    NLiteral,
    NNot,
    NOr,
    NQuery,
    NSelect,
    NSelectItem,
    NUnionAll,
)
from .parser import ParseError, parse
from .pretty import (
    denotation_to_str,
    expression_to_str,
    predicate_to_str,
    projection_to_str,
    query_to_str,
)
from .resolve import (
    Catalog,
    ResolutionError,
    Resolved,
    Resolver,
    column_steps,
    columns_to_schema,
    compile_sql,
    desugar_group_by,
    desugar_having,
    desugar_scalar_agg,
)
from .unparse import expr_to_sql, pred_to_sql, unparse

__all__ = [
    "Catalog",
    "LexError",
    "ParseError",
    "Resolved",
    "ResolutionError",
    "Resolver",
    "Token",
    "column_steps",
    "columns_to_schema",
    "compile_sql",
    "const_tuple_projection",
    "denotation_to_str",
    "desugar_group_by",
    "desugar_having",
    "desugar_scalar_agg",
    "expr_to_sql",
    "expression_to_str",
    "inner_join",
    "left_outer_join",
    "parse",
    "pred_to_sql",
    "predicate_to_str",
    "projection_to_str",
    "query_to_str",
    "right_outer_join",
    "tokenize",
    "unparse",
]
