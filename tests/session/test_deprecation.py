"""Deprecation shims: old free functions warn, everything else stays quiet."""

import warnings

import pytest

import repro
from repro import Catalog, INT, compile_sql


def _table():
    catalog = Catalog()
    catalog.add_table("R", [("a", INT), ("b", INT)])
    return catalog


def test_top_level_queries_equivalent_warns_and_works():
    catalog = _table()
    q = compile_sql("SELECT a FROM R", catalog).query
    with pytest.warns(DeprecationWarning, match="Session"):
        assert repro.queries_equivalent(q, q)


def test_top_level_check_query_equivalence_warns_and_works():
    catalog = _table()
    q = compile_sql("SELECT a FROM R", catalog).query
    with pytest.warns(DeprecationWarning, match="Session"):
        result = repro.check_query_equivalence(q, q)
    assert result.equal


def test_core_homes_do_not_warn():
    from repro.core.equivalence import (
        check_query_equivalence,
        queries_equivalent,
    )
    catalog = _table()
    q = compile_sql("SELECT a FROM R", catalog).query
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        assert queries_equivalent(q, q)
        assert check_query_equivalence(q, q).equal


def test_compile_sql_and_pipeline_do_not_warn():
    from repro.solver.pipeline import Pipeline
    catalog = _table()
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        q = compile_sql("SELECT a FROM R", catalog).query
        verdict = Pipeline().check(q, q)
    assert verdict.proved
