"""Bottom-up abstract interpretation over core plans.

One transfer function per operator the front end emits, factored so the
same kernel serves both consumers:

* :func:`infer_properties` — recursion over an AST plan (memoized per
  call), the shape the linter, the CLI, and the disprover use;
* :func:`transfer` — the ``(op, label, child properties)`` form, exactly
  the e-graph's decomposition, so the saturation-side e-class analysis
  (:mod:`repro.optimizer.eanalysis`) reuses the transfer functions
  verbatim (mirroring how :func:`repro.optimizer.cost.compose` serves
  both the tree estimator and the extractor).

Facts are seeded from :class:`~repro.core.equivalence.Hypotheses`: a
:class:`~repro.core.equivalence.KeyConstraint` on a table makes it
set-valued (``engine/constraints.py`` semantics — a key forces every
multiplicity ≤ 1), and callers that know the concrete key *path* (the
CLI, tests) can bind it so ``Select`` injectivity reasoning kicks in.

Everything here is conservative: a property is reported only when it
holds on **every** instance, which the soundness suite checks against
engine evaluation on random instances.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..core import ast
from ..core.equivalence import Hypotheses, NO_HYPOTHESES
from ..obs.metrics import counter
from .properties import Interval, KeyPath, PlanProperties, Sat, UNBOUNDED

__all__ = [
    "AnalysisContext",
    "EMPTY_CONTEXT",
    "infer_properties",
    "iter_ast",
    "pred_sat",
    "proj_path",
    "supports_determined",
    "transfer",
]

_QUERIES = counter("analysis.infer.queries")
_TAUT = counter("analysis.pred_sat.taut")
_CONTRA = counter("analysis.pred_sat.contra")


@dataclass(frozen=True)
class AnalysisContext:
    """Ambient facts the inference runs under (hashable, for memo keys).

    ``keyed`` — table names carrying a key hypothesis (set-valued);
    ``key_paths`` — ``(table, path)`` pairs binding the key to a concrete
    projection path inside the row, when the caller knows it;
    ``table_cards`` — ``(table, Interval)`` bounds on total multiplicity
    (the disprover seeds these from its enumeration
    :class:`~repro.solver.disprover.Bound`).
    """

    keyed: Tuple[str, ...] = ()
    key_paths: Tuple[Tuple[str, KeyPath], ...] = ()
    table_cards: Tuple[Tuple[str, Interval], ...] = ()

    @classmethod
    def from_hypotheses(
            cls, hyps: Hypotheses = NO_HYPOTHESES, *,
            key_paths: Sequence[Tuple[str, KeyPath]] = (),
            table_cards: Sequence[Tuple[str, Interval]] = (),
    ) -> "AnalysisContext":
        return cls(keyed=tuple(sorted({k.rel for k in hyps.keys})),
                   key_paths=tuple(sorted(key_paths)),
                   table_cards=tuple(sorted(table_cards)))

    def table_props(self, name: str) -> PlanProperties:
        keys = frozenset(path for rel, path in self.key_paths
                         if rel == name)
        card = UNBOUNDED
        for rel, bound in self.table_cards:
            if rel == name:
                card = bound
        return PlanProperties(set_valued=name in self.keyed,
                             keys=keys, card=card)


EMPTY_CONTEXT = AnalysisContext()


# ---------------------------------------------------------------------------
# Generic AST iteration (shared by the linter's metavariable walks)
# ---------------------------------------------------------------------------

_AST_BASES = (ast.Query, ast.Predicate, ast.Expression, ast.Projection)


def iter_ast(node: object) -> Iterator[object]:
    """Every AST node reachable from ``node`` (preorder, node included)."""
    if not isinstance(node, _AST_BASES):
        return
    yield node
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, _AST_BASES):
            yield from iter_ast(value)
        elif isinstance(value, tuple):
            for item in value:
                yield from iter_ast(item)


# ---------------------------------------------------------------------------
# Projections: path extraction and injectivity
# ---------------------------------------------------------------------------

def proj_path(proj: ast.Projection) -> Optional[Tuple[str, ...]]:
    """``proj`` as a pure access path (steps applied left to right), or
    ``None`` when it computes (``E2P``), duplicates, or is a metavariable."""
    if proj is ast.STAR:
        return ()
    if isinstance(proj, ast.LeftP):
        return ("L",)
    if isinstance(proj, ast.RightP):
        return ("R",)
    if isinstance(proj, ast.Compose):
        first = proj_path(proj.first)
        second = proj_path(proj.second)
        if first is None or second is None:
            return None
        return first + second
    return None


def _proj_injective(proj: ast.Projection,
                    child: PlanProperties) -> bool:
    """Is the ``Select`` projection injective *on input rows*?

    The projection receives the pair ``(g, row)`` (Figure 7): the whole
    row is at path ``("R",)``, so the identity and any ``("R",) + key``
    access are injective; ``Duplicate`` is injective when either half is.
    """
    if proj is ast.STAR:
        return True  # output is the whole (g, row) pair
    if isinstance(proj, ast.Duplicate):
        return (_proj_injective(proj.left, child)
                or _proj_injective(proj.right, child))
    path = proj_path(proj)
    if path is None:
        return False
    if path[:1] != ("R",):
        return False  # a pure-context projection merges all rows
    return path == ("R",) or path[1:] in child.keys


# ---------------------------------------------------------------------------
# Predicate satisfiability
# ---------------------------------------------------------------------------

def _conjuncts(pred: ast.Predicate) -> Tuple[ast.Predicate, ...]:
    if isinstance(pred, ast.PredAnd):
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return (pred,)


def _disjuncts(pred: ast.Predicate) -> Tuple[ast.Predicate, ...]:
    if isinstance(pred, ast.PredOr):
        return _disjuncts(pred.left) + _disjuncts(pred.right)
    return (pred,)


def _const_binding(pred: ast.Predicate) -> Optional[Tuple[object, object]]:
    """``e = c`` with ``c`` a constant: the pair ``(e, c.value)``."""
    if isinstance(pred, ast.PredEq):
        if isinstance(pred.right, ast.Const):
            return (pred.left, pred.right.value)
        if isinstance(pred.left, ast.Const):
            return (pred.right, pred.left.value)
    return None


def pred_sat(pred: ast.Predicate,
             ctx: AnalysisContext = EMPTY_CONTEXT) -> Sat:
    """Three-point satisfiability: tautology / contradiction / unknown.

    Detects reflexive and constant equalities, complementary literals
    inside one conjunction/disjunction (``b ∧ ¬b`` / ``b ∨ ¬b``), one
    expression pinned to two distinct constants, and ``EXISTS`` over a
    statically empty subquery.
    """
    result = _pred_sat(pred, ctx)
    if result is Sat.ALWAYS:
        _TAUT.inc()
    elif result is Sat.NEVER:
        _CONTRA.inc()
    return result


def _pred_sat(pred: ast.Predicate, ctx: AnalysisContext) -> Sat:
    if isinstance(pred, ast.PredTrue):
        return Sat.ALWAYS
    if isinstance(pred, ast.PredFalse):
        return Sat.NEVER
    if isinstance(pred, ast.PredNot):
        return _pred_sat(pred.operand, ctx).negate()
    if isinstance(pred, ast.PredEq):
        if pred.left == pred.right:
            return Sat.ALWAYS
        if isinstance(pred.left, ast.Const) \
                and isinstance(pred.right, ast.Const):
            return Sat.ALWAYS if pred.left.value == pred.right.value \
                else Sat.NEVER
        return Sat.UNKNOWN
    if isinstance(pred, ast.PredAnd):
        parts = _conjuncts(pred)
        verdict = Sat.ALWAYS
        for part in parts:
            verdict = verdict.and_(_pred_sat(part, ctx))
        if verdict is Sat.NEVER:
            return verdict
        if _has_complement(parts):
            return Sat.NEVER
        if _conflicting_constants(parts):
            return Sat.NEVER
        return verdict
    if isinstance(pred, ast.PredOr):
        parts = _disjuncts(pred)
        verdict = Sat.NEVER
        for part in parts:
            verdict = verdict.or_(_pred_sat(part, ctx))
        if verdict is Sat.ALWAYS:
            return verdict
        if _has_complement(parts):
            return Sat.ALWAYS
        return verdict
    if isinstance(pred, ast.Exists):
        if infer_properties(pred.query, ctx).empty:
            return Sat.NEVER
        return Sat.UNKNOWN
    if isinstance(pred, ast.CastPred):
        # Precomposition with a projection preserves taut/contra.
        return _pred_sat(pred.predicate, ctx)
    return Sat.UNKNOWN  # PredVar / PredFunc: opaque


def _has_complement(parts: Sequence[ast.Predicate]) -> bool:
    seen = set(parts)
    for part in parts:
        if isinstance(part, ast.PredNot) and part.operand in seen:
            return True
    return False


def _conflicting_constants(parts: Sequence[ast.Predicate]) -> bool:
    bound: Dict[object, object] = {}
    for part in parts:
        binding = _const_binding(part)
        if binding is None:
            continue
        expr, value = binding
        if expr in bound and bound[expr] != value:
            return True
        bound[expr] = value
    return False


# ---------------------------------------------------------------------------
# The transfer functions
# ---------------------------------------------------------------------------

def transfer(op: type, label: Tuple, children: Sequence[PlanProperties],
             ctx: AnalysisContext = EMPTY_CONTEXT) -> PlanProperties:
    """One abstract step: properties of ``op(label)(children)``.

    ``label`` carries the non-query payload exactly as the e-graph
    stores it (:data:`repro.optimizer.egraph.LABEL_FIELDS`): ``Table``
    → ``(name, schema)``, ``Select`` → ``(projection,)``, ``Where`` →
    ``(predicate,)``, everything else → ``()``.
    """
    if op is ast.Table:
        return ctx.table_props(label[0])
    if op is ast.Select:
        (child,) = children
        if proj_path(label[0]) == ("R",):
            return child  # identity on rows
        if _proj_injective(label[0], child):
            # Injective projections rename rows: everything transfers
            # (Select preserves total multiplicity in any case), but the
            # key *paths* live in the old row shape, so they are dropped.
            return PlanProperties(set_valued=child.set_valued,
                                 empty=child.empty, card=child.card)
        return PlanProperties(empty=child.empty, card=child.card)
    if op is ast.Product:
        left, right = children
        return PlanProperties(
            set_valued=left.set_valued and right.set_valued,
            empty=left.empty or right.empty,
            card=left.card.times(right.card))
    if op is ast.Where:
        (child,) = children
        sat = pred_sat(label[0], ctx)
        if sat is Sat.NEVER:
            return PlanProperties(empty=True)
        if sat is Sat.ALWAYS:
            return child
        return PlanProperties(set_valued=child.set_valued,
                             empty=child.empty, keys=child.keys,
                             card=child.card.clamp_lo())
    if op is ast.UnionAll:
        left, right = children
        return PlanProperties(
            set_valued=(left.empty and right.set_valued)
            or (right.empty and left.set_valued),
            empty=left.empty and right.empty,
            card=left.card.plus(right.card))
    if op is ast.Except:
        left, right = children
        # Multiplicities of the kept rows are the left side's
        # (eval: ``left.except_(right)`` keeps rows absent from right).
        return PlanProperties(set_valued=left.set_valued,
                             empty=left.empty, keys=left.keys,
                             card=left.card.clamp_lo())
    if op is ast.Distinct:
        (child,) = children
        return PlanProperties(set_valued=True, empty=child.empty,
                             keys=child.keys,
                             card=child.card.truncate())
    return PlanProperties()  # unknown operator: no guarantees


_QUERY_CHILDREN = {
    ast.Table: (),
    ast.Select: ("query",),
    ast.Product: ("left", "right"),
    ast.Where: ("query",),
    ast.UnionAll: ("left", "right"),
    ast.Except: ("left", "right"),
    ast.Distinct: ("query",),
}

_QUERY_LABELS = {
    ast.Table: ("name", "schema"),
    ast.Select: ("projection",),
    ast.Where: ("predicate",),
}


def infer_properties(query: ast.Query,
                     ctx: AnalysisContext = EMPTY_CONTEXT
                     ) -> PlanProperties:
    """Infer the property lattice element for ``query`` bottom-up."""
    memo: Dict[ast.Query, PlanProperties] = {}
    result = _infer(query, ctx, memo)
    _QUERIES.inc()
    return result


def _infer(query: ast.Query, ctx: AnalysisContext,
           memo: Dict[ast.Query, PlanProperties]) -> PlanProperties:
    cached = memo.get(query)
    if cached is not None:
        return cached
    op = type(query)
    children = tuple(_infer(getattr(query, name), ctx, memo)
                     for name in _QUERY_CHILDREN.get(op, ()))
    label = tuple(getattr(query, name)
                  for name in _QUERY_LABELS.get(op, ()))
    result = transfer(op, label, children, ctx)
    memo[query] = result
    return result


# ---------------------------------------------------------------------------
# Support determination (the disprover's multiplicity-clamp licence)
# ---------------------------------------------------------------------------

def supports_determined(query: ast.Query) -> bool:
    """Is ``⟦q⟧`` a function of the instance's *supports* alone?

    True for ``DISTINCT``-rooted plans containing no aggregate: every
    other construct's support (and, under the root ``DISTINCT``, its
    value) depends only on which rows are present, never on their
    multiplicities — so clamping enumeration to multiplicity 1 loses no
    counterexamples (see :mod:`repro.solver.disprover`).
    """
    if not isinstance(query, ast.Distinct):
        return False
    return not any(isinstance(node, ast.Agg) for node in iter_ast(query))
