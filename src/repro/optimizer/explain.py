"""EXPLAIN: render a physical plan tree with cost annotations.

The conventional optimizer affordance — a human-readable operator tree
with per-node cardinality and cost estimates — for inspecting what the
certified planner chose and why.
"""

from __future__ import annotations

from typing import List

from ..core import ast
from ..sql.pretty import predicate_to_str, projection_to_str
from .cost import Estimate, TableStats, estimate


def explain(query: ast.Query, stats: TableStats) -> str:
    """A multi-line EXPLAIN rendering of the plan."""
    lines: List[str] = []
    _explain(query, stats, 0, lines)
    return "\n".join(lines)


def _node(label: str, est: Estimate, depth: int, lines: List[str]) -> None:
    indent = "  " * depth
    lines.append(f"{indent}{label}  "
                 f"[rows≈{est.cardinality:.1f} cost≈{est.cost:.1f}]")


def _explain(query: ast.Query, stats: TableStats, depth: int,
             lines: List[str]) -> None:
    est = estimate(query, stats)
    if isinstance(query, ast.Table):
        _node(f"Scan {query.name}", est, depth, lines)
        return
    if isinstance(query, ast.Select):
        _node(f"Project {projection_to_str(query.projection)}", est,
              depth, lines)
        _explain(query.query, stats, depth + 1, lines)
        return
    if isinstance(query, ast.Product):
        _node("CrossJoin", est, depth, lines)
        _explain(query.left, stats, depth + 1, lines)
        _explain(query.right, stats, depth + 1, lines)
        return
    if isinstance(query, ast.Where):
        _node(f"Filter {predicate_to_str(query.predicate)}", est, depth,
              lines)
        _explain(query.query, stats, depth + 1, lines)
        return
    if isinstance(query, ast.UnionAll):
        _node("UnionAll", est, depth, lines)
        _explain(query.left, stats, depth + 1, lines)
        _explain(query.right, stats, depth + 1, lines)
        return
    if isinstance(query, ast.Except):
        _node("Except", est, depth, lines)
        _explain(query.left, stats, depth + 1, lines)
        _explain(query.right, stats, depth + 1, lines)
        return
    if isinstance(query, ast.Distinct):
        _node("Distinct", est, depth, lines)
        _explain(query.query, stats, depth + 1, lines)
        return
    raise TypeError(f"cannot explain query node {query!r}")


__all__ = ["explain"]
