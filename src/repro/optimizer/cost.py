"""A textbook cost model for plan selection.

The paper's optimizers pick among semantically equivalent plans by cost
(Sec. 1: "a plan selector that chooses the optimal plan ... based on a cost
model").  This is the standard cardinality-based model: every operator's
cost is the work to produce its output, estimated from base-table
cardinalities and fixed selectivities (Selinger-style).  It exists to give
the planner a preference order — its absolute numbers are not calibrated,
and do not need to be for the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core import ast

#: Estimated fraction of rows surviving a selection.
SELECTIVITY_EQ = 0.25
SELECTIVITY_OTHER = 0.5
#: Estimated fraction of distinct rows in a bag.
DISTINCT_RATIO = 0.7


@dataclass
class TableStats:
    """Base-table cardinalities feeding the estimator."""

    cardinalities: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_database(cls, db) -> "TableStats":
        """Collect support sizes from a concrete database."""
        return cls({name: float(len(db.relation(name)))
                    for name in db.table_names()})

    def cardinality(self, table: str) -> float:
        return self.cardinalities.get(table, 100.0)


@dataclass
class Estimate:
    """Estimated output cardinality and cumulative cost of a plan."""

    cardinality: float
    cost: float


def estimate(query: ast.Query, stats: TableStats) -> Estimate:
    """Bottom-up cardinality/cost estimation."""
    if isinstance(query, ast.Table):
        card = stats.cardinality(query.name)
        return Estimate(card, card)
    if isinstance(query, ast.Select):
        inner = estimate(query.query, stats)
        return Estimate(inner.cardinality, inner.cost + inner.cardinality)
    if isinstance(query, ast.Product):
        left = estimate(query.left, stats)
        right = estimate(query.right, stats)
        out = left.cardinality * right.cardinality
        return Estimate(out, left.cost + right.cost + out)
    if isinstance(query, ast.Where):
        inner = estimate(query.query, stats)
        sel = _selectivity(query.predicate)
        return Estimate(inner.cardinality * sel,
                        inner.cost + inner.cardinality)
    if isinstance(query, ast.UnionAll):
        left = estimate(query.left, stats)
        right = estimate(query.right, stats)
        out = left.cardinality + right.cardinality
        return Estimate(out, left.cost + right.cost + out)
    if isinstance(query, ast.Except):
        left = estimate(query.left, stats)
        right = estimate(query.right, stats)
        return Estimate(left.cardinality,
                        left.cost + right.cost
                        + left.cardinality + right.cardinality)
    if isinstance(query, ast.Distinct):
        inner = estimate(query.query, stats)
        return Estimate(inner.cardinality * DISTINCT_RATIO,
                        inner.cost + inner.cardinality)
    raise TypeError(f"cannot estimate query node {query!r}")


def _selectivity(pred: ast.Predicate) -> float:
    if isinstance(pred, ast.PredEq):
        return SELECTIVITY_EQ
    if isinstance(pred, ast.PredAnd):
        # Multiply over *distinct* conjuncts: a repeated conjunct filters
        # nothing the first copy didn't, so counting it again would
        # underestimate the output (and make σ_{b∧b} look cheaper
        # downstream than the equivalent σ_b).
        unique = list(dict.fromkeys(_conjuncts(pred)))
        sel = 1.0
        for conjunct in unique:
            sel *= _selectivity(conjunct)
        return sel
    if isinstance(pred, ast.PredOr):
        left = _selectivity(pred.left)
        right = _selectivity(pred.right)
        return min(1.0, left + right - left * right)
    if isinstance(pred, ast.PredNot):
        return 1.0 - _selectivity(pred.operand)
    if isinstance(pred, ast.PredTrue):
        return 1.0
    if isinstance(pred, ast.PredFalse):
        return 0.0
    return SELECTIVITY_OTHER


def _conjuncts(pred: ast.Predicate):
    if isinstance(pred, ast.PredAnd):
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return [pred]


def plan_cost(query: ast.Query, stats: TableStats) -> float:
    """Cumulative cost of a plan (the planner's objective)."""
    return estimate(query, stats).cost
