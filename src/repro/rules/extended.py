"""Extended verified rules — beyond the paper's 23.

The paper's Figure 8 evaluates a fixed corpus; a production rewriting
system carries many more laws of the same flavors.  This module adds a
further set of rules provable by the same engine (they do *not* count
toward the Figure 8 reproduction — the registry keeps them in their own
``extended`` category):

* projection/union interaction,
* annihilation and identity laws for the empty relation,
* truncation laws (OR as union under DISTINCT, double negation,
  DISTINCT through product),
* EXISTS distribution over UNION ALL,
* EXCEPT laws.

Each rule carries an instantiator, so the oracle validates all of them on
random instances like the core 23.
"""

from __future__ import annotations

import random
from typing import Tuple

from ..core import ast
from ..core.schema import EMPTY, Node, SVar
from .common import SR, SS, standard_interpretation, table, where_pred
from .rule import RewriteRule

_R = table("R", SR)
_S_SAME = table("S", SR)
_S = table("S", SS)


def _factory(lhs, rhs, tables, preds=()):
    def factory(rng: random.Random):
        return lhs, rhs, standard_interpretation(rng, tables, preds=preds)
    return factory


def _proj_union_distr() -> RewriteRule:
    p = ast.PVar("p", Node(EMPTY, SR), SVar("sOut"))
    lhs = ast.Select(p, ast.UnionAll(_R, _S_SAME))
    rhs = ast.UnionAll(ast.Select(p, _R), ast.Select(p, _S_SAME))
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R", "S"))
        interp.projections["p"] = lambda v: v[1][0]
        return lhs, rhs, interp
    return RewriteRule(
        name="proj_union_distr", category="extended",
        description="Projection distributes over UNION ALL "
                    "(Σ distributes over +).",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "distribute_sum_over_add"),
        instantiate=factory)


def _except_self_is_empty() -> RewriteRule:
    lhs = ast.Except(_R, _R)
    rhs = ast.Where(_R, ast.PredFalse())
    return RewriteRule(
        name="except_self_is_empty", category="extended",
        description="R EXCEPT R is the empty relation: R t × (R t → 0) = 0.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "neg_annihilates"),
        instantiate=_factory(lhs, rhs, ("R",)))


def _union_empty_identity() -> RewriteRule:
    lhs = ast.UnionAll(_R, ast.Where(_R, ast.PredFalse()))
    rhs = _R
    return RewriteRule(
        name="union_empty_identity", category="extended",
        description="Adding the empty relation is the identity: n + 0 = n.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "add_unit"),
        instantiate=_factory(lhs, rhs, ("R",)))


def _empty_annihilates_product() -> RewriteRule:
    lhs = ast.Product(ast.Where(_R, ast.PredFalse()), _S)
    rhs = ast.Where(ast.Product(_R, _S), ast.PredFalse())
    return RewriteRule(
        name="empty_annihilates_product", category="extended",
        description="An empty operand annihilates a product: 0 × n = 0.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "mul_zero"),
        instantiate=_factory(lhs, rhs, ("R", "S")))


def _distinct_union_absorbs() -> RewriteRule:
    lhs = ast.Distinct(ast.UnionAll(_R, _R))
    rhs = ast.Distinct(_R)
    return RewriteRule(
        name="distinct_union_absorbs", category="extended",
        description="Under DISTINCT a self-union collapses: ‖n + n‖ = ‖n‖.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "squash_dedup"),
        instantiate=_factory(lhs, rhs, ("R",)))


def _distinct_or_as_union() -> RewriteRule:
    b1 = where_pred("b1", SR)
    b2 = where_pred("b2", SR)
    lhs = ast.Distinct(ast.Where(_R, ast.PredOr(b1, b2)))
    rhs = ast.Distinct(ast.UnionAll(ast.Where(_R, b1), ast.Where(_R, b2)))
    return RewriteRule(
        name="distinct_or_as_union", category="extended",
        description="Under DISTINCT, a disjunctive selection is a union of "
                    "selections — false at bag level (double counting), "
                    "true under ‖·‖.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "squash_biimpl"),
        instantiate=_factory(lhs, rhs, ("R",), ("b1", "b2")))


def _distinct_product_distributes() -> RewriteRule:
    lhs = ast.Distinct(ast.Product(_R, _S))
    rhs = ast.Product(ast.Distinct(_R), ast.Distinct(_S))
    return RewriteRule(
        name="distinct_product_distributes", category="extended",
        description="DISTINCT distributes over cross product: "
                    "‖m × n‖ = ‖m‖ × ‖n‖.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "squash_mul"),
        instantiate=_factory(lhs, rhs, ("R", "S")))


def _exists_union_or() -> RewriteRule:
    b_inner = ast.PredVar("theta", Node(SR, SS))
    cast = ast.Duplicate(ast.path(ast.LEFT, ast.RIGHT), ast.RIGHT)
    guarded = ast.Where(_S, ast.CastPred(cast, b_inner))
    s2 = table("S2", SS)
    guarded2 = ast.Where(s2, ast.CastPred(cast, b_inner))
    lhs = ast.Where(_R, ast.Exists(ast.UnionAll(guarded, guarded2)))
    rhs = ast.Where(_R, ast.PredOr(ast.Exists(guarded),
                                   ast.Exists(guarded2)))
    def factory(rng: random.Random):
        interp = standard_interpretation(rng, ("R", "S", "S2"),
                                         preds=("theta",))
        return lhs, rhs, interp
    return RewriteRule(
        name="exists_union_or", category="extended",
        description="EXISTS over a union is a disjunction of EXISTS: "
                    "‖Σ(m + n)‖ = ‖‖Σm‖ + ‖Σn‖‖.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "squash_add"),
        instantiate=factory)


def _double_negation() -> RewriteRule:
    b = where_pred("b", SR)
    lhs = ast.Where(_R, ast.PredNot(ast.PredNot(b)))
    rhs = ast.Where(_R, b)
    return RewriteRule(
        name="double_negation", category="extended",
        description="Double negation on a decidable predicate: "
                    "(b → 0) → 0 = ‖b‖ = b for props.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "neg_neg"),
        instantiate=_factory(lhs, rhs, ("R",), ("b",)))


def _except_then_union_superset() -> RewriteRule:
    # (R EXCEPT S) WHERE b ≡ (R WHERE b) EXCEPT S
    b = where_pred("b", SR)
    lhs = ast.Where(ast.Except(_R, _S_SAME), b)
    rhs = ast.Except(ast.Where(_R, b), _S_SAME)
    return RewriteRule(
        name="sel_except_comm", category="extended",
        description="Selection commutes with EXCEPT on the kept side.",
        lhs=lhs, rhs=rhs,
        tactic_script=("extensionality", "mul_comm"),
        instantiate=_factory(lhs, rhs, ("R", "S"), ("b",)))


def extended_rules() -> Tuple[RewriteRule, ...]:
    """Verified rules beyond the paper's Figure 8 corpus."""
    from .aggregation import having_filter_pushdown
    return (
        _proj_union_distr(),
        _except_self_is_empty(),
        _union_empty_identity(),
        _empty_annihilates_product(),
        _distinct_union_absorbs(),
        _distinct_or_as_union(),
        _distinct_product_distributes(),
        _exists_union_or(),
        _double_negation(),
        _except_then_union_superset(),
        having_filter_pushdown(),
    )
