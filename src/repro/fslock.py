"""Advisory cross-process file locks.

One tiny primitive shared by every component that mutates files other
processes may be reading or writing concurrently: the proof cache's
merge-on-save (:meth:`repro.solver.cache.ProofCache.save`) and the serve
layer's sharded proof store (:mod:`repro.serve.store`).

The lock is a *sidecar* file (``<path>.lock``) so the protected file
itself can be replaced atomically (``os.replace``) while the lock
persists.  On POSIX the lock is ``flock``-based (crash-safe: the kernel
releases it when the process dies); where ``fcntl`` is unavailable the
fallback is an ``O_CREAT | O_EXCL`` spin lock with a staleness timeout.
"""

from __future__ import annotations

import contextlib
import os
import time

try:  # POSIX; absent on some exotic platforms
    import fcntl
except ImportError:  # pragma: no cover - exercised only off-POSIX
    fcntl = None


class LockTimeout(OSError):
    """Raised when the lock cannot be acquired within the timeout."""


@contextlib.contextmanager
def file_lock(path: str, timeout: float = 30.0, poll: float = 0.005):
    """Hold an exclusive advisory lock on ``path`` (via ``<path>.lock``).

    Not reentrant: a thread that already holds the lock and asks again
    deadlocks until ``timeout``.  Callers serialize at the file level —
    in-process data structures need their own locking.
    """
    lock_path = path + ".lock"
    directory = os.path.dirname(os.path.abspath(lock_path))
    os.makedirs(directory, exist_ok=True)
    if fcntl is not None:
        fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            deadline = time.monotonic() + timeout
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise LockTimeout(
                            f"could not lock {path!r} within {timeout:g}s")
                    time.sleep(poll)
            yield
            with contextlib.suppress(OSError):
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
    else:  # pragma: no cover - exercised only off-POSIX
        deadline = time.monotonic() + timeout
        while True:
            try:
                fd = os.open(lock_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
                break
            except FileExistsError:
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"could not lock {path!r} within {timeout:g}s")
                time.sleep(poll)
        try:
            os.close(fd)
            yield
        finally:
            with contextlib.suppress(OSError):
                os.unlink(lock_path)


__all__ = ["LockTimeout", "file_lock"]
