"""Provenance polynomials — the free commutative semiring ℕ[X].

Green et al. (PODS 2007) show that annotating base tuples with distinct
indeterminates and evaluating a positive relational query yields a
*provenance polynomial* describing exactly how each output tuple was derived.
Because ℕ[X] is the free commutative semiring, an identity of query
annotations that holds in ℕ[X] holds in **every** commutative semiring.

The test suite exploits this: a rewrite rule validated on provenance-annotated
instances is validated for set semantics, bag semantics, and the paper's
infinite-cardinal semantics simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from .semirings import Semiring

#: A monomial is a sorted tuple of (variable name, exponent) pairs with
#: positive exponents.  The empty tuple is the monomial 1.
Monomial = Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class Polynomial:
    """A multivariate polynomial with natural-number coefficients.

    Immutable and hashable; represented as a mapping from monomials to
    positive integer coefficients (zero coefficients are never stored).
    """

    terms: Tuple[Tuple[Monomial, int], ...]

    @staticmethod
    def _normalize(raw: Mapping[Monomial, int]) -> "Polynomial":
        cleaned = {m: c for m, c in raw.items() if c != 0}
        return Polynomial(tuple(sorted(cleaned.items())))

    @staticmethod
    def zero() -> "Polynomial":
        """The zero polynomial."""
        return Polynomial(())

    @staticmethod
    def one() -> "Polynomial":
        """The constant polynomial 1."""
        return Polynomial((((), 1),))

    @staticmethod
    def constant(n: int) -> "Polynomial":
        """The constant polynomial ``n`` (n ≥ 0)."""
        if n < 0:
            raise ValueError("provenance coefficients are natural numbers")
        return Polynomial.zero() if n == 0 else Polynomial((((), n),))

    @staticmethod
    def variable(name: str) -> "Polynomial":
        """The polynomial consisting of the single indeterminate ``name``."""
        return Polynomial(((((name, 1),), 1),))

    # -- semiring operations ----------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        acc: Dict[Monomial, int] = dict(self.terms)
        for mono, coeff in other.terms:
            acc[mono] = acc.get(mono, 0) + coeff
        return Polynomial._normalize(acc)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        acc: Dict[Monomial, int] = {}
        for m1, c1 in self.terms:
            for m2, c2 in other.terms:
                mono = _merge_monomials(m1, m2)
                acc[mono] = acc.get(mono, 0) + c1 * c2
        return Polynomial._normalize(acc)

    @property
    def is_zero(self) -> bool:
        """True iff this is the zero polynomial."""
        return not self.terms

    def variables(self) -> Tuple[str, ...]:
        """All indeterminates occurring in the polynomial, sorted."""
        names = {var for mono, _ in self.terms for var, _ in mono}
        return tuple(sorted(names))

    def evaluate(self, sr: Semiring, assignment: Mapping[str, object]) -> object:
        """Evaluate under the unique semiring homomorphism ℕ[X] → K.

        Args:
            sr: target semiring.
            assignment: value in K for every indeterminate of the polynomial.

        Returns:
            The image of this polynomial in ``sr``.
        """
        total = sr.zero
        for mono, coeff in self.terms:
            term = sr.from_int(coeff)
            for var, exp in mono:
                if var not in assignment:
                    raise KeyError(f"no assignment for provenance variable {var!r}")
                for _ in range(exp):
                    term = sr.mul(term, assignment[var])
            total = sr.add(total, term)
        return total

    def degree(self) -> int:
        """Total degree (0 for constants; -1 conventionally for zero)."""
        if self.is_zero:
            return -1
        return max(sum(exp for _, exp in mono) for mono, _ in self.terms)

    def __str__(self) -> str:
        if self.is_zero:
            return "0"
        rendered = []
        for mono, coeff in self.terms:
            factors = [f"{var}^{exp}" if exp > 1 else var for var, exp in mono]
            if coeff != 1 or not factors:
                factors.insert(0, str(coeff))
            rendered.append("·".join(factors))
        return " + ".join(rendered)


def _merge_monomials(m1: Monomial, m2: Monomial) -> Monomial:
    acc: Dict[str, int] = dict(m1)
    for var, exp in m2:
        acc[var] = acc.get(var, 0) + exp
    return tuple(sorted(acc.items()))


class ProvenanceSemiring(Semiring[Polynomial]):
    """ℕ[X], the free commutative semiring on countably many indeterminates."""

    name = "provenance"

    @property
    def zero(self) -> Polynomial:
        return Polynomial.zero()

    @property
    def one(self) -> Polynomial:
        return Polynomial.one()

    def add(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return a + b

    def mul(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return a * b

    def is_zero(self, a: Polynomial) -> bool:
        return a.is_zero

    def from_int(self, n: int) -> Polynomial:
        return Polynomial.constant(n)

    def fresh_variables(self, prefix: str, count: int) -> Tuple[Polynomial, ...]:
        """Convenience: ``count`` distinct indeterminates named ``prefix_i``."""
        return tuple(Polynomial.variable(f"{prefix}_{i}") for i in range(count))


#: Shared instance.
PROVENANCE = ProvenanceSemiring()


def annotate_distinctly(tuples: Iterable[object], prefix: str) -> Dict[object, Polynomial]:
    """Annotate each tuple with a fresh indeterminate, Green-et-al. style."""
    return {t: Polynomial.variable(f"{prefix}_{i}") for i, t in enumerate(tuples)}
