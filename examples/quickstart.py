"""Quickstart: prove a SQL rewrite, then watch it run.

This walks the full pipeline on the paper's Sec. 2 example through the
:class:`repro.Session` front door:

1. open a session over a schema and compile two SQL queries,
2. denote them into the UniNomial algebra (paper Figure 7),
3. prove them equivalent with the tiered pipeline (the paper's Q2 ≡ Q3),
4. evaluate both on a concrete database and compare,
5. show that an *unsound* variant is rejected and refuted.

Run:  python examples/quickstart.py
"""

from repro import Database, Session, run_query
from repro.sql.pretty import denotation_to_str


def main() -> None:
    # 1. Schema + queries -------------------------------------------------
    session = Session.from_tables("R(a:int,b:int)")

    q2 = session.sql("SELECT DISTINCT a FROM R")
    q3 = session.sql(
        "SELECT DISTINCT x.a FROM R AS x, R AS y WHERE x.a = y.a")

    print("Q2:", q2.text)
    print("Q3:", q3.text)
    print()

    # 2. Denotations (the paper's Figure 2 displays) ----------------------
    print("Denotations into the UniNomial algebra:")
    print("  Q2 =", denotation_to_str(q2.normalized.denotation))
    print("  Q3 =", denotation_to_str(q3.normalized.denotation))
    print()

    # 3. The proof ---------------------------------------------------------
    verdict = q3.equivalent_to(q2)
    print(f"Pipeline verdict: {verdict.status.value} "
          f"(stage: {verdict.stage}, {verdict.engine_steps} steps)")
    assert verdict.proved
    print()

    # 4. Concrete execution -------------------------------------------------
    db = Database()
    db.create_table("R", session.catalog.schema_of("R"),
                    [[1, 40], [2, 40], [2, 50]])
    interp = db.interpretation()
    out2 = run_query(q2.query, interp)
    out3 = run_query(q3.query, interp)
    print("On R = {(1,40), (2,40), (2,50)}:")
    print("  Q2 returns", sorted(out2.support()))
    print("  Q3 returns", sorted(out3.support()))
    assert out2 == out3
    print()

    # 5. The unsound variant (no DISTINCT) is caught ------------------------
    bag2 = session.sql("SELECT a FROM R")
    bag3 = session.sql("SELECT x.a FROM R AS x, R AS y WHERE x.a = y.a")
    refutation = bag2.disprove(bag3)
    lhs = dict(run_query(bag2.query, interp).items())
    rhs = dict(run_query(bag3.query, interp).items())
    print("Without DISTINCT the rule is unsound; disprover refutes it:",
          refutation.found)
    print(f"  counterexample multiplicities: Q2 {lhs} vs Q3 {rhs}")
    assert refutation.found and lhs != rhs
    session.close()


if __name__ == "__main__":
    main()
