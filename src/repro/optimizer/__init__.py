"""Certified query optimizer: e-graph, saturation, rewriter, cost, planner."""

from .cost import Estimate, TableStats, compose, estimate, plan_cost, plan_size
from .egraph import EGraph, ENode
from .explain import explain, explain_result
from .extract import (
    Candidate,
    ExtractionResult,
    count_plans,
    extract_best,
    rule_chain,
)
from .planner import PLAN_COUNT_LIMIT, PlanningResult, STRATEGIES, optimize
from .rewriter import (
    CertifiedCandidate,
    TRANSFORMATIONS,
    certified_rewrites,
    flatten_conjuncts,
    predicate_paths,
    proj_steps,
    rewrite_predicate_paths,
    rewrites,
    steps_to_proj,
)
from .saturate import (
    ERULES,
    ERule,
    SaturationBudget,
    SaturationStats,
    saturate,
)

__all__ = [
    "Candidate",
    "CertifiedCandidate",
    "EGraph",
    "ENode",
    "ERULES",
    "ERule",
    "Estimate",
    "ExtractionResult",
    "PlanningResult",
    "STRATEGIES",
    "SaturationBudget",
    "SaturationStats",
    "TRANSFORMATIONS",
    "TableStats",
    "certified_rewrites",
    "compose",
    "count_plans",
    "estimate",
    "explain",
    "explain_result",
    "extract_best",
    "flatten_conjuncts",
    "optimize",
    "plan_cost",
    "plan_size",
    "predicate_paths",
    "proj_steps",
    "rewrite_predicate_paths",
    "rewrites",
    "rule_chain",
    "saturate",
    "steps_to_proj",
]
