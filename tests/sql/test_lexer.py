"""Tokenizer tests."""

import pytest

from repro.sql.lexer import LexError, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)]


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("select Distinct FROM")[:3] == [
            ("keyword", "SELECT"), ("keyword", "DISTINCT"),
            ("keyword", "FROM")]

    def test_identifiers(self):
        assert kinds("emp dept_2 _x")[:3] == [
            ("ident", "emp"), ("ident", "dept_2"), ("ident", "_x")]

    def test_numbers_and_strings(self):
        assert kinds("42 'hello'")[:2] == [
            ("number", "42"), ("string", "hello")]

    def test_operators_longest_match(self):
        assert [t.text for t in tokenize("<= >= <> = < >")][:6] == \
            ["<=", ">=", "<>", "=", "<", ">"]

    def test_punctuation(self):
        assert [t.text for t in tokenize("(a, b.c)*")][:8] == \
            ["(", "a", ",", "b", ".", "c", ")", "*"]

    def test_comments_skipped(self):
        tokens = kinds("SELECT -- comment here\n a")
        assert ("ident", "a") in tokens
        assert not any("comment" in text for _, text in tokens)

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind == "eof"
        assert tokenize("a b")[-1].kind == "eof"

    def test_positions(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("SELECT 'oops")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("SELECT @")
