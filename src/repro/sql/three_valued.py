"""NULLs and three-valued logic (paper Sec. 7), as external operators.

The paper's discussion: NULL comparisons yield *unknown*, logic is
Kleene's (``0 = false, ½ = unknown, 1 = true`` with ``AND = min``,
``OR = max``, ``NOT x = 1 − x``), and a WHERE keeps a row only when the
predicate is *true*.  HoTTSQL can encode all of this "as external
functions that implement the 3-valued logic" — which is precisely what
this module provides:

* the truth values and Kleene connectives,
* NULL-aware comparison functions usable as ``PredFunc`` symbols
  (registered by :func:`register_three_valued`),
* the famous consequence, demonstrated executably in the test suite: the
  law of the excluded middle fails —
  ``SELECT * FROM R WHERE a = 5 OR a <> 5`` is **not** ``SELECT * FROM R``
  once ``a`` can be NULL.

A caveat the paper also makes: encoding comparisons as opaque external
functions hides the equality structure from the rewrite engine, so
equality-driven proofs do not see through 3VL predicates.  Native NULL
support is listed as the paper's future work, and is out of scope here
too; this module makes the *semantics* executable.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Dict

from ..core.schema import NULL

#: Kleene truth values.
FALSE = Fraction(0)
UNKNOWN = Fraction(1, 2)
TRUE = Fraction(1)


def kleene_and(a: Fraction, b: Fraction) -> Fraction:
    """``x AND y = min(x, y)``."""
    return min(a, b)


def kleene_or(a: Fraction, b: Fraction) -> Fraction:
    """``x OR y = max(x, y)``."""
    return max(a, b)


def kleene_not(a: Fraction) -> Fraction:
    """``NOT x = 1 − x``."""
    return TRUE - a


def _lift(op: Callable[[Any, Any], bool]) -> Callable[[Any, Any], Fraction]:
    """Lift a strict comparison to 3VL: any NULL argument → unknown."""

    def compare(a: Any, b: Any) -> Fraction:
        if a is NULL or b is NULL:
            return UNKNOWN
        return TRUE if op(a, b) else FALSE

    return compare


#: 3VL comparisons on values (returning Kleene truth values).
eq3 = _lift(lambda a, b: a == b)
neq3 = _lift(lambda a, b: a != b)
lt3 = _lift(lambda a, b: a < b)
le3 = _lift(lambda a, b: a <= b)
gt3 = _lift(lambda a, b: a > b)
ge3 = _lift(lambda a, b: a >= b)


def is_true(value: Fraction) -> bool:
    """The WHERE boundary: keep the row iff the predicate is *true*
    (not false **or unknown**)."""
    return value == TRUE


def _as_where_predicate(three_valued: Callable[..., Fraction]
                        ) -> Callable[..., bool]:
    """Adapt a 3VL comparison to the engine's boolean PredFunc interface,
    applying the WHERE truth boundary."""

    def predicate(*args: Any) -> bool:
        return is_true(three_valued(*args))

    return predicate


#: PredFunc-ready NULL-aware comparisons.
THREE_VALUED_PREDICATES: Dict[str, Callable[..., bool]] = {
    "eq3": _as_where_predicate(eq3),
    "neq3": _as_where_predicate(neq3),
    "lt3": _as_where_predicate(lt3),
    "le3": _as_where_predicate(le3),
    "gt3": _as_where_predicate(gt3),
    "ge3": _as_where_predicate(ge3),
    "is_null": lambda a: a is NULL,
    "is_not_null": lambda a: a is not NULL,
}


def register_three_valued(interp) -> None:
    """Install the NULL-aware comparison symbols into an interpretation."""
    interp.predicates.update(THREE_VALUED_PREDICATES)


__all__ = [
    "FALSE",
    "TRUE",
    "UNKNOWN",
    "THREE_VALUED_PREDICATES",
    "eq3",
    "ge3",
    "gt3",
    "is_true",
    "kleene_and",
    "kleene_not",
    "kleene_or",
    "le3",
    "lt3",
    "neq3",
    "register_three_valued",
]
