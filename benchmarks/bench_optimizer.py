"""Downstream workload: the certified optimizer on the paper's Sec. 5.1.3
motivating query (young employees in big departments).

Not a paper figure per se, but the paper's motivation (Sec. 1) is that
optimizers need verified rules; this benchmark shows the full pipeline —
parse named SQL, plan with certified rewrites, prove the chosen plan
equivalent, and execute both plans to identical results.

It also carries the **saturation-vs-BFS** comparison the equality-
saturation PR is judged on: at an equal node budget, the e-graph planner
must represent at least 2× the distinct plans BFS enumerates (in
aggregate over the corpus), extract equal-or-cheaper plans on every
workload, and re-certify every extracted plan through the verification
pipeline with zero failures.  ``run_all.py`` runs the same comparison via
:func:`saturation_vs_bfs` and records it in ``BENCH_pr6.json``.
"""

from repro.core.schema import INT
from repro.engine import Database, run_query
from repro.optimizer import PLAN_COUNT_LIMIT, TableStats, optimize, plan_cost
from repro.semiring import NAT
from repro.sql import Catalog, compile_sql


def _workload():
    cat = Catalog()
    cat.add_table("Emp", [("eid", INT), ("did", INT), ("sal", INT),
                          ("age", INT)])
    cat.add_table("Dept", [("did", INT), ("budget", INT)])
    db = Database(NAT)
    db.create_table("Emp", cat.schema_of("Emp"),
                    [[i, i % 5, 1000 + 13 * i, 22 + (i % 20)]
                     for i in range(40)])
    db.create_table("Dept", cat.schema_of("Dept"),
                    [[d, 50000 + 30000 * d] for d in range(5)])
    query = compile_sql(
        "SELECT e.eid, e.sal FROM Emp e, Dept d "
        "WHERE e.did = d.did AND e.age < 30 AND d.budget > 100000", cat)
    return db, query


def test_optimizer_report(report, benchmark):
    db, resolved = _workload()
    stats = TableStats.from_database(db)
    result = benchmark(lambda: optimize(resolved.query, stats,
                                        max_plans=400))
    interp = db.interpretation()
    before = run_query(resolved.query, interp)
    after = run_query(result.best_plan, interp)

    report.add("Certified optimization of the Sec. 5.1.3 workload")
    report.add("=" * 60)
    report.add("SELECT e.eid, e.sal FROM Emp e, Dept d")
    report.add("WHERE e.did = d.did AND e.age < 30 AND d.budget > 100000")
    report.add("")
    report.add(f"original plan cost : {result.original_cost:10.1f}")
    report.add(f"optimized plan cost: {result.best_cost:10.1f}")
    report.add(f"rewrite chain      : {' → '.join(result.applied_rules)}")
    report.add(f"plans explored     : {result.plans_explored}")
    report.add(f"prover certificate : "
               f"{'VERIFIED' if result.certified else 'FAILED'}")
    report.add(f"results identical  : {before == after}")
    report.emit("optimizer_workload")

    assert result.improved
    assert result.certified
    assert before == after


def test_optimizer_plan_cost_monotonicity(benchmark):
    db, resolved = _workload()
    stats = TableStats.from_database(db)
    result = benchmark(lambda: optimize(resolved.query, stats,
                                        max_plans=150))
    assert plan_cost(result.best_plan, stats) <= \
        plan_cost(resolved.query, stats)


# ---------------------------------------------------------------------------
# Saturation vs BFS at equal node budget
# ---------------------------------------------------------------------------

#: Equal exploration budget: BFS plan cap == saturation e-node budget.
EQUAL_BUDGET = 120

#: Workload corpus: every transformation family, shallow and deep chains.
SVB_CORPUS = (
    ("sec513", "SELECT e.eid FROM Emp e, Dept d "
               "WHERE e.did = d.did AND d.budget > 100 AND e.age < 30"),
    ("dup-conj", "SELECT eid FROM Emp WHERE eid = 1 AND eid = 1"),
    ("union-push", "SELECT u.eid FROM (SELECT eid FROM Emp UNION ALL "
                   "SELECT eid FROM Emp) AS u WHERE u.eid = 1"),
    ("selfjoin", "SELECT a.eid FROM Emp a, Emp b "
                 "WHERE a.did = b.did AND a.age < 30 AND b.age < 25"),
    ("deep-chain", "SELECT e.eid FROM Emp e, Dept d WHERE e.did = d.did "
                   "AND d.budget > 100 AND e.age < 30 AND e.eid > 2 "
                   "AND e.eid > 2"),
)


def _svb_catalog():
    cat = Catalog()
    cat.add_table("Emp", [("eid", INT), ("did", INT), ("age", INT)])
    cat.add_table("Dept", [("did", INT), ("budget", INT)])
    return cat


def saturation_vs_bfs(budget: int = EQUAL_BUDGET):
    """Run the corpus under both strategies at an equal node budget.

    Returns per-workload rows plus aggregate ratios; every plan is
    re-certified through the verification pipeline (``certify=True``),
    and a certification failure shows up as ``certified=False`` in the
    row.  Used by the pytest benchmark below and by ``run_all.py``.
    """
    cat = _svb_catalog()
    stats = TableStats({"Emp": 1000.0, "Dept": 20.0})
    rows = []
    for name, sql in SVB_CORPUS:
        query = compile_sql(sql, cat).query
        bfs = optimize(query, stats, max_plans=budget, strategy="bfs")
        sat = optimize(query, stats, max_plans=budget,
                       strategy="saturation")
        rows.append({
            "workload": name,
            "bfs_plans": bfs.plans_explored,
            "bfs_cost": bfs.best_cost,
            "bfs_certified": bfs.certified,
            "sat_plans": sat.plans_explored,
            "sat_cost": sat.best_cost,
            "sat_certified": sat.certified,
            "sat_saturated": sat.saturated,
            "sat_chain": list(sat.applied_rules),
        })
    total_bfs = sum(r["bfs_plans"] for r in rows)
    total_sat = sum(r["sat_plans"] for r in rows)
    return {
        "budget": budget,
        "rows": rows,
        "total_bfs_plans": total_bfs,
        "total_sat_plans": total_sat,
        "plan_ratio": total_sat / total_bfs if total_bfs else float("inf"),
        "all_equal_or_cheaper": all(
            r["sat_cost"] <= r["bfs_cost"] + 1e-6 for r in rows),
        "certification_failures": sum(
            (not r["sat_certified"]) + (not r["bfs_certified"])
            for r in rows),
    }


def test_saturation_vs_bfs_report(report, benchmark):
    comparison = benchmark(lambda: saturation_vs_bfs())

    report.add(f"Equality saturation vs BFS at equal node budget "
               f"({comparison['budget']})")
    report.add("=" * 72)
    report.add(f"{'workload':<12}{'BFS plans':>10}{'sat plans':>12}"
               f"{'BFS cost':>12}{'sat cost':>12}  certified")
    for r in comparison["rows"]:
        sat_plans = (f"≥{r['sat_plans']}"
                     if r["sat_plans"] >= PLAN_COUNT_LIMIT
                     else str(r["sat_plans"]))
        report.add(f"{r['workload']:<12}{r['bfs_plans']:>10}"
                   f"{sat_plans:>12}{r['bfs_cost']:>12.1f}"
                   f"{r['sat_cost']:>12.1f}  "
                   f"{'both' if r['sat_certified'] and r['bfs_certified'] else 'FAIL'}")
    report.add()
    report.add(f"distinct plans, corpus total : "
               f"{comparison['total_sat_plans']} vs "
               f"{comparison['total_bfs_plans']} "
               f"({comparison['plan_ratio']:.1f}x)")
    report.add(f"equal-or-cheaper everywhere  : "
               f"{comparison['all_equal_or_cheaper']}")
    report.add(f"certification failures       : "
               f"{comparison['certification_failures']}")
    report.emit("optimizer_saturation_vs_bfs")

    # The PR's acceptance criteria.
    assert comparison["plan_ratio"] >= 2.0
    assert comparison["all_equal_or_cheaper"]
    assert comparison["certification_failures"] == 0
