"""Property-guarded rewrites through the planner.

The acceptance contract: each guarded rewrite fires only when the
inferred facts license it, and every extraction it enables is still
re-proved by the verification pipeline (``certified`` is True) — the
analysis *guides*, the equivalence engine *decides*.
"""

import pytest

from repro.analysis.infer import AnalysisContext
from repro.core import ast
from repro.core.equivalence import Hypotheses, KeyConstraint
from repro.core.schema import EMPTY, INT, Leaf, Node
from repro.obs.metrics import counter
from repro.optimizer import TableStats
from repro.optimizer.eanalysis import EClassAnalysis, guarded_rules
from repro.optimizer.egraph import EGraph
from repro.optimizer.planner import _PLAN_MEMO, optimize

SCHEMA = Node(Leaf(INT), Leaf(INT))
R = ast.Table("R", SCHEMA)
S = ast.Table("S", SCHEMA)
#: metavariables scoped to a closed query's WHERE context (Γ, row)
PCTX = Node(EMPTY, SCHEMA)
A = ast.ExprVar("a", PCTX, INT)
KEY_R = Hypotheses(keys=(KeyConstraint("R", "k", Leaf(INT)),))
STATS = TableStats({"R": 100.0, "S": 100.0})


@pytest.fixture(autouse=True)
def _fresh_plan_memo():
    # plan search memoizes per (query, ..., analysis context); start each
    # test from a cold cache so counter assertions see the rule fire
    _PLAN_MEMO.clear()
    yield
    _PLAN_MEMO.clear()


def _fired(name):
    return counter(f"analysis.guarded.{name}").value


class TestDistinctElimUnderKey:
    def test_fires_and_certifies_under_key(self):
        before = _fired("distinct_elim_under_key")
        result = optimize(ast.Distinct(R), STATS, hypotheses=KEY_R)
        assert result.best_plan == R
        assert result.certified is True
        assert _fired("distinct_elim_under_key") > before

    def test_does_not_fire_without_key(self):
        result = optimize(ast.Distinct(R), STATS)
        assert result.best_plan == ast.Distinct(R)
        assert result.certified is True

    def test_does_not_fire_for_unkeyed_table(self):
        result = optimize(ast.Distinct(S), STATS, hypotheses=KEY_R)
        assert result.best_plan == ast.Distinct(S)

    def test_fires_structurally_without_hypotheses(self):
        # DISTINCT over a product of DISTINCTs is set-valued on shape
        # alone — no hypotheses needed
        q = ast.Product(ast.Distinct(R), ast.Distinct(S))
        result = optimize(ast.Distinct(q), STATS)
        assert result.best_plan == q
        assert result.certified is True


class TestWhereTautElim:
    def test_reflexive_equality_is_dropped(self):
        before = _fired("where_taut_elim")
        q = ast.Where(S, ast.PredEq(A, A))
        result = optimize(q, STATS)
        assert result.best_plan == S
        assert result.certified is True
        assert _fired("where_taut_elim") > before

    def test_unknown_predicate_is_kept(self):
        q = ast.Where(S, ast.PredVar("p", PCTX))
        result = optimize(q, STATS)
        assert result.best_plan == q


class TestWhereContraToEmpty:
    def test_contradiction_collapses_to_canonical_empty(self):
        before = _fired("where_contra_to_empty")
        contra = ast.PredAnd(ast.PredEq(A, ast.Const(0, INT)),
                             ast.PredEq(A, ast.Const(1, INT)))
        result = optimize(ast.Where(S, contra), STATS)
        assert result.best_plan == ast.Where(S, ast.PredFalse())
        assert result.certified is True
        assert _fired("where_contra_to_empty") > before


class TestExceptEmptyElim:
    def test_subtracting_statically_empty_is_identity(self):
        before = _fired("except_empty_elim")
        q = ast.Except(S, ast.Where(R, ast.PredFalse()))
        result = optimize(q, STATS)
        assert result.best_plan == S
        assert result.certified is True
        assert _fired("except_empty_elim") > before

    def test_nonempty_right_is_kept(self):
        q = ast.Except(S, R)
        result = optimize(q, STATS)
        assert result.best_plan == q


class TestEClassAnalysis:
    def test_members_refine_each_other(self):
        # union DISTINCT R with R: the class inherits set-valuedness
        # from its DISTINCT member
        eg = EGraph()
        d = eg.add_term(ast.Distinct(R))
        r = eg.add_term(R)
        eg.union(d, r, None)
        eg.rebuild()
        ana = EClassAnalysis(eg)
        assert ana.props(eg.find(r)).set_valued

    def test_context_keys_reach_tables(self):
        eg = EGraph()
        r = eg.add_term(R)
        eg.rebuild()
        ctx = AnalysisContext.from_hypotheses(KEY_R)
        assert EClassAnalysis(eg, ctx).props(r).set_valued
        assert not EClassAnalysis(eg).props(r).set_valued

    def test_cyclic_classes_are_safe(self):
        eg = EGraph()
        q = ast.Where(R, ast.PredTrue())
        w = eg.add_term(q)
        r = eg.add_term(R)
        eg.union(w, r, None)  # Where(R, b) ~ R: the class contains itself
        eg.rebuild()
        props = EClassAnalysis(eg).props(eg.find(r))
        assert props is not None  # terminates

    def test_guarded_rules_are_registered(self):
        names = {rule.name for rule in guarded_rules()}
        assert names == {"distinct_elim_under_key", "where_taut_elim",
                         "where_contra_to_empty", "except_empty_elim"}
