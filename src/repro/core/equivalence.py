"""The equivalence engine: deciding equality of UniNomial normal forms.

This is the reproduction of DOPCERT's lemma/tactic library (paper Sec. 5).
Given two normal forms (:class:`~repro.core.normalize.NSum`), the engine
decides equality using exactly the ingredients of the paper's proofs:

* **semiring matching** — clauses are compared modulo associativity and
  commutativity of ``+``/``×`` with a bound-variable bijection search,
* **congruence closure** — equalities inside a clause are saturated
  (Nelson–Oppen), including the Horn axioms induced by key and functional-
  dependency hypotheses (paper Sec. 4.2, used by the index rules of
  Sec. 5.1.4),
* **Lemma 5.3 absorption** — ``(T → P) ⟹ (T × P = T)``: any propositional
  factor entailed by the rest of its clause is dropped,
* **squash bi-implication** — equality of truncated types is proved by
  mutual implication, with existentials discharged by a backtracking
  instantiation search (the paper's Ltac backtracking, Sec. 5.2),
* **aggregate congruence** — ``agg`` terms are compared by recursively
  deciding bag-equivalence of their (context-rewritten) bodies, which is
  how the GROUP BY rule of Sec. 5.1.2 goes through.

The engine is *sound but incomplete* (query equivalence is undecidable —
paper Figure 9); for the conjunctive-query fragment the search is complete,
which is what :mod:`repro.core.conjunctive` exposes as the automated
decision procedure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .congruence import CongruenceClosure
from .normalize import (
    AEq,
    ANeg,
    APred,
    ARel,
    ASquash,
    Atom,
    NProduct,
    NSum,
    atom_alpha_key,
    atom_subst,
    normalize,
    nsums_alpha_equal,
    product_subst,
)
from .schema import Empty, Node, Schema
from .uninomial import (
    Substitution,
    TAgg,
    TApp,
    TPair,
    TUnit,
    TVar,
    Term,
    UTerm,
    fresh_var,
    iter_subterms,
    subst_term,
    subst_uterm,
    term_free_vars,
)
from ..errors import ReproError, SchemaMismatchError

#: Maximum nesting depth for the entailment search.  Each level of squash
#: opening, aggregate congruence, or witness instantiation consumes one
#: unit; the deepest paper rule (semijoin through aggregation — a squash
#: inside an aggregate body inside a squash) needs eight.
MAX_DEPTH = 9


# ---------------------------------------------------------------------------
# Hypotheses: integrity constraints as Horn axioms (paper Sec. 4.2)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KeyConstraint:
    """``key k R``: the projection ``proj`` is a key of relation ``rel``.

    Semantically (paper Sec. 4.2) this makes R set-valued and makes any two
    R-tuples with equal keys *equal*.  Both consequences are used: the
    closure merges R-tuples with congruent keys, and duplicate R-atoms in a
    clause collapse.
    """

    rel: str
    proj: str
    proj_schema: Schema


@dataclass(frozen=True)
class FDConstraint:
    """``fd a b R``: attribute ``source`` determines ``target`` in ``rel``."""

    rel: str
    source: str
    source_schema: Schema
    target: str
    target_schema: Schema


@dataclass(frozen=True)
class Hypotheses:
    """The integrity-constraint context a rewrite rule assumes."""

    keys: Tuple[KeyConstraint, ...] = ()
    fds: Tuple[FDConstraint, ...] = ()

    def keyed_relations(self) -> frozenset:
        return frozenset(k.rel for k in self.keys)


NO_HYPOTHESES = Hypotheses()


# ---------------------------------------------------------------------------
# Instrumentation — the proof-effort metric behind Figure 8
# ---------------------------------------------------------------------------

class StepBudgetExceeded(ReproError):
    """The engine consumed more reasoning steps than its caller allowed.

    Raised from inside the search when :attr:`ProofStats.max_steps` is set;
    callers that impose a budget (the tiered verification pipeline) catch
    it and treat the check as inconclusive rather than letting the
    undecidable search run away.
    """


#: ProofStats fields that count toward ``total_steps``.
_STEP_COUNTERS = frozenset({
    "cc_builds", "hom_searches", "absorptions", "product_matches",
    "agg_comparisons",
})


@dataclass
class ProofStats:
    """Counters for the engine's reasoning steps.

    ``total_steps`` is the effort metric reported by the Figure 8
    benchmark; it plays the role of the paper's "lines of Coq proof".
    ``max_steps``, when set, turns the stats object into a budget: the
    increment that crosses the limit raises :class:`StepBudgetExceeded`.
    """

    cc_builds: int = 0
    hom_searches: int = 0
    absorptions: int = 0
    product_matches: int = 0
    agg_comparisons: int = 0
    trace: List[str] = field(default_factory=list)
    max_steps: Optional[int] = None

    @property
    def total_steps(self) -> int:
        return (self.cc_builds + self.hom_searches + self.absorptions
                + self.product_matches + self.agg_comparisons)

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        # The max_steps guard only engages once __init__ has populated every
        # counter (getattr returns None for a half-initialized instance).
        if name in _STEP_COUNTERS \
                and getattr(self, "max_steps", None) is not None \
                and self.total_steps > self.max_steps:
            raise StepBudgetExceeded(
                f"proof search exceeded {self.max_steps} engine steps")

    def log(self, message: str) -> None:
        self.trace.append(message)


class _Ctx:
    """Internal search context: hypotheses + stats + recursion budget."""

    __slots__ = ("hyps", "stats")

    def __init__(self, hyps: Hypotheses, stats: ProofStats) -> None:
        self.hyps = hyps
        self.stats = stats


# ---------------------------------------------------------------------------
# Congruence-closure construction with Horn saturation
# ---------------------------------------------------------------------------

def _build_cc(factors: Sequence[Atom], ambient: Sequence[Atom],
              ctx: _Ctx) -> CongruenceClosure:
    """Closure of all equalities in ``factors``/``ambient`` + Horn axioms."""
    ctx.stats.cc_builds += 1
    cc = CongruenceClosure()
    for f in itertools.chain(factors, ambient):
        if isinstance(f, AEq):
            cc.merge(f.left, f.right)
    rel_atoms = [f for f in itertools.chain(factors, ambient)
                 if isinstance(f, ARel)]
    _saturate_horn(cc, rel_atoms, ctx.hyps)
    return cc


def _saturate_horn(cc: CongruenceClosure, rel_atoms: Sequence[ARel],
                   hyps: Hypotheses) -> None:
    """Apply key/FD axioms to a fixpoint."""
    changed = True
    while changed:
        changed = False
        for key in hyps.keys:
            atoms = [a for a in rel_atoms if a.name == key.rel]
            for a1, a2 in itertools.combinations(atoms, 2):
                if cc.equal(a1.arg, a2.arg):
                    continue
                k1 = TApp(key.proj, (a1.arg,), key.proj_schema)
                k2 = TApp(key.proj, (a2.arg,), key.proj_schema)
                if cc.equal(k1, k2):
                    cc.merge(a1.arg, a2.arg)
                    changed = True
        for fd in hyps.fds:
            atoms = [a for a in rel_atoms if a.name == fd.rel]
            for a1, a2 in itertools.combinations(atoms, 2):
                s1 = TApp(fd.source, (a1.arg,), fd.source_schema)
                s2 = TApp(fd.source, (a2.arg,), fd.source_schema)
                if not cc.equal(s1, s2):
                    continue
                t1 = TApp(fd.target, (a1.arg,), fd.target_schema)
                t2 = TApp(fd.target, (a2.arg,), fd.target_schema)
                if not cc.equal(t1, t2):
                    cc.merge(t1, t2)
                    changed = True


# ---------------------------------------------------------------------------
# Entailment of a single atom from a set of hypothesis factors
# ---------------------------------------------------------------------------

def _entails(factors: Sequence[Atom], cc: CongruenceClosure, atom: Atom,
             ambient: Sequence[Atom], ctx: _Ctx, depth: int) -> bool:
    """Do the hypothesis ``factors`` (with closure ``cc``) entail ``atom``?"""
    if cc.contradictory:
        return True  # the hypothesis denotes the empty type
    if depth <= 0:
        return False
    if isinstance(atom, AEq):
        if cc.equal(atom.left, atom.right):
            return True
        if _entails_eq_with_aggs(factors, cc, atom, ambient, ctx, depth):
            return True
        return _extract_from_squashes(factors, atom, ambient, ctx, depth)
    if isinstance(atom, APred):
        for f in factors:
            if isinstance(f, APred) and f.name == atom.name \
                    and len(f.args) == len(atom.args) \
                    and all(cc.equal(a, b) for a, b in zip(f.args, atom.args)):
                return True
        return _extract_from_squashes(factors, atom, ambient, ctx, depth)
    if isinstance(atom, ARel):
        for f in factors:
            if isinstance(f, ARel) and f.name == atom.name \
                    and cc.equal(f.arg, atom.arg):
                return True
        return False
    if isinstance(atom, ASquash):
        if _sum_entailed(factors, cc, atom.inner, ambient, ctx, depth):
            return True
        # ‖A‖ entails ‖B‖ whenever A entails B: open hypothesis squashes.
        # The opened factor is removed from the hypothesis list (its
        # content replaces it), so each truncation is opened at most once
        # along any search path.
        for f in factors:
            if not isinstance(f, ASquash):
                continue
            rest = [x for x in factors if x is not f]
            if _sum_implies_under(rest, f.inner, atom.inner, ambient, ctx,
                                  depth - 1):
                return True
        return False
    if isinstance(atom, ANeg):
        return _entails_neg(factors, cc, atom, ambient, ctx, depth)
    raise TypeError(f"not an atom: {atom!r}")


def _extract_from_squashes(factors: Sequence[Atom], atom: Atom,
                           ambient: Sequence[Atom], ctx: _Ctx,
                           depth: int) -> bool:
    """``F, ‖A‖ ⊢ P`` when every disjunct of A (with F) forces P.

    A truncated hypothesis is inhabited in every world where the clause is
    non-zero, so any proposition holding under *all* of its witnesses may
    be extracted — e.g. ``‖... × (k t = ℓ) × (k t = t.1)‖`` yields
    ``ℓ = t.1``.
    """
    if depth <= 1:
        return False
    target = NSum((NProduct((), (atom,)),))
    for f in factors:
        if not isinstance(f, ASquash):
            continue
        rest = [x for x in factors if x is not f]
        if _sum_implies_under(rest, f.inner, target, ambient, ctx, depth - 1):
            return True
    return False


def _entails_neg(factors: Sequence[Atom], cc: CongruenceClosure, atom: ANeg,
                 ambient: Sequence[Atom], ctx: _Ctx, depth: int) -> bool:
    """``F ⊢ (A → 0)`` — via some ``(B → 0)`` in F with ``F, A ⊢ B``."""
    for f in factors:
        if not isinstance(f, ANeg):
            continue
        if nsums_alpha_equal(f.inner, atom.inner):
            return True
        # It suffices that A implies B under F: then ¬B gives ¬A.
        if _sum_implies_under(factors, atom.inner, f.inner, ambient, ctx,
                              depth - 1):
            return True
    return False


def _sum_implies_under(hyp_factors: Sequence[Atom], antecedent: NSum,
                       consequent: NSum, ambient: Sequence[Atom], ctx: _Ctx,
                       depth: int) -> bool:
    """``F, A ⊢ B`` for truncated sums A, B — every disjunct of A yields B."""
    for p in antecedent.products:
        combined = list(hyp_factors) + list(p.factors)
        cc = _build_cc(combined, ambient, ctx)
        # Route through _entails so nested truncations in the opened
        # disjunct can themselves be opened (depth-bounded).
        if not _entails(combined, cc, ASquash(consequent), ambient, ctx,
                        depth):
            return False
    return True


# ---------------------------------------------------------------------------
# Existential instantiation (the paper's Ltac backtracking search)
# ---------------------------------------------------------------------------

def _sum_entailed(factors: Sequence[Atom], cc: CongruenceClosure,
                  target: NSum, ambient: Sequence[Atom], ctx: _Ctx,
                  depth: int) -> bool:
    """``F ⊢ ‖target‖`` — find a disjunct and a witness instantiation."""
    ctx.stats.hom_searches += 1
    pool = _candidate_pool(factors, ambient)
    for q in target.products:
        if _instantiate_product(factors, cc, q, pool, ambient, ctx, depth):
            return True
    return False


def _instantiate_product(factors: Sequence[Atom], cc: CongruenceClosure,
                         q: NProduct, pool: Dict[Schema, List[Term]],
                         ambient: Sequence[Atom], ctx: _Ctx,
                         depth: int) -> bool:
    """Backtracking search for witnesses of ``Σ q.vars. q.factors``."""
    variables = list(q.vars)

    def assign(index: int, sub: Substitution) -> bool:
        if index == len(variables):
            return all(
                _entails(factors, cc, atom_subst(f, sub), ambient, ctx,
                         depth - 1)
                for f in q.factors)
        var = variables[index]
        for candidate in _candidates_for(var.var_schema, pool):
            sub[var] = candidate
            if assign(index + 1, sub):
                return True
            del sub[var]
        return False

    return assign(0, {})


def implication_witness(source: NProduct, target: NSum,
                        hyps: Hypotheses = NO_HYPOTHESES
                        ) -> Optional[Tuple[NProduct, Substitution]]:
    """Find a witness for ``source ⊢ ‖target‖`` and return it.

    Returns the chosen disjunct of ``target`` and the instantiation of its
    bound variables by terms over ``source``'s variables — the containment
    mapping the paper visualizes in Figure 10.  ``None`` when the search
    fails.
    """
    ctx = _Ctx(hyps, ProofStats())
    factors = list(source.factors)
    cc = _build_cc(factors, (), ctx)
    pool = _candidate_pool(factors, ())
    for q in target.products:
        witness = _instantiation_witness(factors, cc, q, pool, (), ctx,
                                         MAX_DEPTH)
        if witness is not None:
            return q, witness
    return None


def _instantiation_witness(factors: Sequence[Atom], cc: CongruenceClosure,
                           q: NProduct, pool: Dict[Schema, List[Term]],
                           ambient: Sequence[Atom], ctx: _Ctx,
                           depth: int) -> Optional[Substitution]:
    variables = list(q.vars)

    def assign(index: int, sub: Substitution) -> Optional[Substitution]:
        if index == len(variables):
            ok = all(
                _entails(factors, cc, atom_subst(f, sub), ambient, ctx,
                         depth - 1)
                for f in q.factors)
            return dict(sub) if ok else None
        var = variables[index]
        for candidate in _candidates_for(var.var_schema, pool):
            sub[var] = candidate
            found = assign(index + 1, sub)
            if found is not None:
                return found
            del sub[var]
        return None

    return assign(0, {})


def _candidate_pool(factors: Sequence[Atom],
                    ambient: Sequence[Atom]) -> Dict[Schema, List[Term]]:
    """Ground terms available as witnesses, grouped by schema."""
    pool: Dict[Schema, List[Term]] = {}

    def add(term: Term) -> None:
        for sub in iter_subterms(term):
            try:
                schema = sub.schema
            except TypeError:
                continue
            bucket = pool.setdefault(schema, [])
            if sub not in bucket:
                bucket.append(sub)

    for f in itertools.chain(factors, ambient):
        if isinstance(f, ARel):
            add(f.arg)
        elif isinstance(f, AEq):
            add(f.left)
            add(f.right)
        elif isinstance(f, APred):
            for a in f.args:
                add(a)
        # Squash/neg contents are not valid witness sources: their variables
        # are bound strictly inside the truncation.
    return pool


def _candidates_for(schema: Schema, pool: Dict[Schema, List[Term]],
                    fuel: int = 2) -> Iterator[Term]:
    """Witness candidates of a given schema, including built pairs."""
    yielded: set = set()
    for term in pool.get(schema, ()):
        if term not in yielded:
            yielded.add(term)
            yield term
    if isinstance(schema, Empty):
        unit = TUnit()
        if unit not in yielded:
            yield unit
    elif isinstance(schema, Node) and fuel > 0:
        for left in _candidates_for(schema.left, pool, fuel - 1):
            for right in _candidates_for(schema.right, pool, fuel - 1):
                built = TPair(left, right)
                if built not in yielded:
                    yielded.add(built)
                    yield built


# ---------------------------------------------------------------------------
# Equalities that require aggregate congruence (paper Sec. 5.1.2)
# ---------------------------------------------------------------------------

def _entails_eq_with_aggs(factors: Sequence[Atom], cc: CongruenceClosure,
                          atom: AEq, ambient: Sequence[Atom], ctx: _Ctx,
                          depth: int) -> bool:
    """Try proving ``l = r`` where one side involves an aggregate.

    Looks for aggregate terms in the congruence classes of both sides and
    compares their bodies as bags, after exporting the clause's equalities
    into the bodies' ambient context — this is the step "it follows that
    ``⟦k⟧ t2 = ⟦l⟧`` inside SUM" in the paper's aggregation proof.
    """
    left_aggs = _agg_members(cc, atom.left)
    right_aggs = _agg_members(cc, atom.right)
    if not left_aggs or not right_aggs:
        return False
    inner_ambient = list(ambient) + list(factors)
    for a1 in left_aggs:
        for a2 in right_aggs:
            if _aggs_equal(a1, a2, inner_ambient, ctx, depth - 1):
                return True
    return False


def _agg_members(cc: CongruenceClosure, term: Term) -> List[TAgg]:
    members = [m for m in cc.members(term) if isinstance(m, TAgg)]
    if isinstance(term, TAgg) and term not in members:
        members.append(term)
    return members


def _aggs_equal(a1: TAgg, a2: TAgg, ambient: Sequence[Atom], ctx: _Ctx,
                depth: int) -> bool:
    """Aggregates are equal when their denoted bags are equivalent."""
    if a1.name != a2.name or a1.ty != a2.ty:
        return False
    if depth <= 0:
        return False
    ctx.stats.agg_comparisons += 1
    common = fresh_var(a1.var.var_schema, "a")
    body1 = subst_uterm(a1.body, {a1.var: common})
    body2 = subst_uterm(a2.body, {a2.var: common})
    return _nsum_equiv(normalize(body1), normalize(body2), ambient, ctx,
                       depth)


# ---------------------------------------------------------------------------
# Absorption (Lemma 5.3) and clause reduction
# ---------------------------------------------------------------------------

def _absorb(product: NProduct, ambient: Sequence[Atom], ctx: _Ctx,
            depth: int) -> Optional[NProduct]:
    """Reduce a clause to a fixpoint; ``None`` marks the empty type.

    Steps, each justified in the module docstring: congruence-derived point
    elimination, duplicate-prop collapse, Lemma 5.3 drops, keyed-relation
    deduplication.
    """
    vars_list = list(product.vars)
    factors = list(product.factors)
    changed = True
    while changed:
        changed = False
        ctx.stats.absorptions += 1
        cc = _build_cc(factors, ambient, ctx)
        if cc.contradictory:
            return None

        # A clause containing both A and (B → 0) with A ⊢ B is empty.
        for f in factors:
            if not isinstance(f, ANeg):
                continue
            others = [x for x in factors if x is not f] + list(ambient)
            if _entails(others, cc, ASquash(f.inner), ambient, ctx, depth):
                return None

        # Reflexive equalities vanish.
        cleaned = [f for f in factors
                   if not (isinstance(f, AEq) and f.left == f.right)]
        if len(cleaned) != len(factors):
            factors = cleaned
            changed = True
            continue

        # Duplicate propositional factors collapse (P × P = P).
        seen_keys = set()
        dedup: List[Atom] = []
        for f in factors:
            if isinstance(f, (AEq, APred, ASquash, ANeg)):
                key = atom_alpha_key(f)
                if key in seen_keys:
                    changed = True
                    continue
                seen_keys.add(key)
            dedup.append(f)
        if changed:
            factors = dedup
            continue

        # Congruence-derived point elimination (Lemma 5.2 modulo cc): a
        # bound variable equal to a term not mentioning it gets substituted.
        for var in vars_list:
            replacement = _class_replacement(cc, var)
            if replacement is None:
                continue
            vars_list.remove(var)
            sub = {var: replacement}
            factors = [atom_subst(f, sub) for f in factors]
            changed = True
            break
        if changed:
            continue

        # Keyed relations are set-valued: duplicate R-atoms collapse.  The
        # tuple equality that justified the collapse is recorded as an
        # explicit factor (it is a prop, so this preserves the value) —
        # otherwise the derived equality would be lost to later
        # congruence closures built from the reduced factor set.
        keyed = ctx.hyps.keyed_relations()
        for i, f in enumerate(factors):
            if not isinstance(f, ARel) or f.name not in keyed:
                continue
            for j in range(i + 1, len(factors)):
                g = factors[j]
                if isinstance(g, ARel) and g.name == f.name \
                        and cc.equal(f.arg, g.arg):
                    del factors[j]
                    if f.arg != g.arg:
                        factors.append(AEq(f.arg, g.arg))
                    changed = True
                    break
            if changed:
                break
        if changed:
            continue

        # Lemma 5.3: drop propositional factors entailed by the rest.
        for i, f in enumerate(factors):
            if not isinstance(f, (AEq, APred, ASquash, ANeg)):
                continue
            rest = factors[:i] + factors[i + 1:]
            rest_cc = _build_cc(rest, ambient, ctx)
            hyp = list(rest) + list(ambient)
            if _entails(hyp, rest_cc, f, ambient, ctx, depth):
                del factors[i]
                changed = True
                break

    factors.sort(key=lambda a: (type(a).__name__, str(a)))
    return NProduct(tuple(vars_list), tuple(factors))


def _class_replacement(cc: CongruenceClosure, var: TVar) -> Optional[Term]:
    """A term provably equal to ``var`` that does not mention it."""
    try:
        members = cc.members(var)
    except KeyError:
        return None
    best: Optional[Term] = None
    for m in members:
        if m == var or var in term_free_vars(m):
            continue
        if best is None or len(str(m)) < len(str(best)):
            best = m
    return best


# ---------------------------------------------------------------------------
# Clause and sum equivalence
# ---------------------------------------------------------------------------

def _products_equal(p1: NProduct, p2: NProduct, ambient: Sequence[Atom],
                    ctx: _Ctx, depth: int) -> bool:
    """Bag-level equality of two clauses."""
    ctx.stats.product_matches += 1
    a1 = _absorb(p1, ambient, ctx, depth)
    a2 = _absorb(p2, ambient, ctx, depth)
    if a1 is None or a2 is None:
        return a1 is None and a2 is None
    if sorted(str(v.var_schema) for v in a1.vars) != \
            sorted(str(v.var_schema) for v in a2.vars):
        return False
    for bijection in _var_bijections(a1.vars, a2.vars):
        renamed = NProduct(
            tuple(bijection[v] for v in a2.vars),
            tuple(atom_subst(f, dict(bijection)) for f in a2.factors))
        if _matched_clause_bodies(a1, renamed, ambient, ctx, depth):
            return True
    return False


def _var_bijections(vars1: Tuple[TVar, ...], vars2: Tuple[TVar, ...]
                    ) -> Iterator[Dict[TVar, TVar]]:
    """All schema-respecting bijections from ``vars2`` onto ``vars1``."""
    if len(vars1) != len(vars2):
        return
    for perm in itertools.permutations(vars1):
        if all(v2.var_schema == v1.var_schema
               for v2, v1 in zip(vars2, perm)):
            yield dict(zip(vars2, perm))


def _matched_clause_bodies(a1: NProduct, a2: NProduct,
                           ambient: Sequence[Atom], ctx: _Ctx,
                           depth: int) -> bool:
    """Factor comparison once the variable spaces are identified.

    Relation atoms must match bijectively (they carry multiplicity);
    propositional factors are compared as blocks by mutual entailment in
    the presence of the other side's full factor set.
    """
    rels1 = [f for f in a1.factors if isinstance(f, ARel)]
    rels2 = [f for f in a2.factors if isinstance(f, ARel)]
    if sorted(r.name for r in rels1) != sorted(r.name for r in rels2):
        return False
    cc1 = _build_cc(a1.factors, ambient, ctx)
    cc2 = _build_cc(a2.factors, ambient, ctx)
    if not _match_rel_multisets(rels1, rels2, cc1, cc2):
        return False
    props1 = [f for f in a1.factors if not isinstance(f, ARel)]
    props2 = [f for f in a2.factors if not isinstance(f, ARel)]
    hyp1 = list(a1.factors) + list(ambient)
    hyp2 = list(a2.factors) + list(ambient)
    return (
        all(_entails(hyp1, cc1, f, ambient, ctx, depth) for f in props2)
        and all(_entails(hyp2, cc2, f, ambient, ctx, depth) for f in props1))


def _match_rel_multisets(rels1: List[ARel], rels2: List[ARel],
                         cc1: CongruenceClosure,
                         cc2: CongruenceClosure) -> bool:
    """Perfect matching between relation atoms (names + congruent args)."""
    if len(rels1) != len(rels2):
        return False
    remaining = list(rels2)

    def compatible(x: ARel, y: ARel) -> bool:
        if x.name != y.name:
            return False
        if x.arg == y.arg:
            return True
        return cc1.equal(x.arg, y.arg) and cc2.equal(x.arg, y.arg)

    def match(index: int) -> bool:
        if index == len(rels1):
            return True
        for j, y in enumerate(remaining):
            if y is not None and compatible(rels1[index], y):
                remaining[j] = None
                if match(index + 1):
                    return True
                remaining[j] = y
        return False

    return match(0)


def _nsum_equiv(n1: NSum, n2: NSum, ambient: Sequence[Atom], ctx: _Ctx,
                depth: int) -> bool:
    """Bag-level equality of two normal forms: clause bijection."""
    if depth <= 0:
        return False
    # Reduce clauses first so that semantically empty ones (contradictory
    # equalities, X × ¬X patterns) do not break the bijection count.
    products1 = [p for p in (_absorb(q, ambient, ctx, depth)
                             for q in n1.products) if p is not None]
    products2 = [p for p in (_absorb(q, ambient, ctx, depth)
                             for q in n2.products) if p is not None]
    if len(products1) != len(products2):
        return False
    remaining: List[Optional[NProduct]] = list(products2)

    def match(index: int) -> bool:
        if index == len(products1):
            return True
        for j, q in enumerate(remaining):
            if q is not None and _products_equal(products1[index], q,
                                                 ambient, ctx, depth):
                remaining[j] = None
                if match(index + 1):
                    return True
                remaining[j] = q
        return False

    return match(0)


def _nsum_iff(n1: NSum, n2: NSum, ambient: Sequence[Atom], ctx: _Ctx,
              depth: int) -> bool:
    """Prop-level equivalence ``‖n1‖ = ‖n2‖`` by mutual implication."""
    return (_sum_implies_under((), n1, n2, ambient, ctx, depth)
            and _sum_implies_under((), n2, n1, ambient, ctx, depth))


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check, with the effort trace."""

    equal: bool
    stats: ProofStats
    lhs_normal: NSum
    rhs_normal: NSum


def decide_nsums(n1: NSum, n2: NSum, hyps: Hypotheses = NO_HYPOTHESES, *,
                 depth: int = MAX_DEPTH,
                 stats: Optional[ProofStats] = None) -> EquivalenceResult:
    """Decide equality of two already-normalized forms.

    The workhorse behind :func:`check_uterm_equivalence`, exposed so
    callers that normalize once and stage several decision attempts (the
    verification pipeline) do not pay for re-normalization.  ``depth``
    bounds the nesting of the entailment search and ``stats`` may carry a
    step budget (see :class:`ProofStats`), in which case the search raises
    :class:`StepBudgetExceeded` instead of completing.
    """
    if stats is None:
        stats = ProofStats()
    ctx = _Ctx(hyps, stats)
    equal = _nsum_equiv(n1, n2, (), ctx, depth)
    stats.log("clause matching " + ("succeeded" if equal else "failed"))
    return EquivalenceResult(equal=equal, stats=stats, lhs_normal=n1,
                             rhs_normal=n2)


def check_uterm_equivalence(lhs: UTerm, rhs: UTerm,
                            hyps: Hypotheses = NO_HYPOTHESES, *,
                            depth: int = MAX_DEPTH,
                            stats: Optional[ProofStats] = None
                            ) -> EquivalenceResult:
    """Decide equality of two UniNomial terms (sound, incomplete)."""
    if stats is None:
        stats = ProofStats()
    n1 = normalize(lhs)
    n2 = normalize(rhs)
    stats.log(f"normalized LHS to {len(n1.products)} clause(s)")
    stats.log(f"normalized RHS to {len(n2.products)} clause(s)")
    return decide_nsums(n1, n2, hyps, depth=depth, stats=stats)


def uterms_equivalent(lhs: UTerm, rhs: UTerm,
                      hyps: Hypotheses = NO_HYPOTHESES) -> bool:
    """Boolean shorthand for :func:`check_uterm_equivalence`."""
    return check_uterm_equivalence(lhs, rhs, hyps).equal


def align_denotations(d1, d2):
    """Rename the second denotation's ``g``/``t`` onto the first's.

    Both denotations must have the same context and output schemas (this is
    checked); returns the pair of bodies over a shared variable space.
    """
    if d1.ctx != d2.ctx:
        raise SchemaMismatchError(
            f"context schemas differ: {d1.ctx} vs {d2.ctx}")
    if d1.schema != d2.schema:
        raise SchemaMismatchError(
            f"output schemas differ: {d1.schema} vs {d2.schema}")
    sub = {d2.g: d1.g, d2.t: d1.t}
    return d1.body, subst_uterm(d2.body, sub)


def check_query_equivalence(q1, q2, ctx_schema=None,
                            hyps: Hypotheses = NO_HYPOTHESES, *,
                            depth: int = MAX_DEPTH,
                            stats: Optional[ProofStats] = None
                            ) -> EquivalenceResult:
    """Denote two HoTTSQL queries and decide their equivalence.

    This is the end-to-end entry point reproducing the paper's workflow:
    denote (Figure 7), normalize (Sec. 3.4 identities + Lemmas 5.1/5.2),
    then decide (tactics + Ltac-style search).
    """
    from .denote import denote_closed
    from .schema import EMPTY

    ctx_schema = EMPTY if ctx_schema is None else ctx_schema
    d1 = denote_closed(q1, ctx_schema)
    d2 = denote_closed(q2, ctx_schema)
    lhs, rhs = align_denotations(d1, d2)
    return check_uterm_equivalence(lhs, rhs, hyps, depth=depth, stats=stats)


def queries_equivalent(q1, q2, ctx_schema=None,
                       hyps: Hypotheses = NO_HYPOTHESES) -> bool:
    """Boolean shorthand for :func:`check_query_equivalence`."""
    return check_query_equivalence(q1, q2, ctx_schema, hyps).equal
