"""HoTTSQL reproduction: proving SQL query rewrites with semiring semantics.

A from-scratch Python reproduction of *HoTTSQL: Proving Query Rewrites with
Univalent SQL Semantics* (Chu, Weitz, Cheung, Suciu — PLDI 2017) and its
system DOPCERT:

* :mod:`repro.core` — the HoTTSQL data model, syntax, denotational
  semantics into the UniNomial algebra, and the equivalence prover
  (normalization, congruence closure, Lemma 5.1–5.3 tactics, the automated
  conjunctive-query decision procedure).
* :mod:`repro.semiring` — K-relations over commutative semirings, with the
  paper's generalization to infinite cardinal multiplicities.
* :mod:`repro.engine` — the executable semantics (Figure 7 over any
  semiring) and the random-instance falsifier.
* :mod:`repro.rules` — the 23 rewrite rules of the paper's Figure 8, plus
  deliberately unsound optimizer rewrites the system must reject.
* :mod:`repro.sql` — a named SQL frontend compiling to the unnamed model.
* :mod:`repro.optimizer` — a certified cost-based plan rewriter.
* :mod:`repro.theory` — the decidability landscape of Figure 9.

Quickstart::

    from repro import Catalog, INT, compile_sql, queries_equivalent

    catalog = Catalog()
    catalog.add_table("R", [("a", INT), ("b", INT)])
    q2 = compile_sql("SELECT DISTINCT a FROM R", catalog)
    q3 = compile_sql(
        "SELECT DISTINCT x.a FROM R AS x, R AS y WHERE x.a = y.a", catalog)
    assert queries_equivalent(q2.query, q3.query)
"""

from .core import (
    BOOL,
    EMPTY,
    INT,
    STRING,
    Hypotheses,
    KeyConstraint,
    FDConstraint,
    SVar,
    Schema,
    ast,
    check_query_equivalence,
    cq_equivalent,
    decide_cq,
    denote_closed,
    queries_equivalent,
)
from .engine import Database, Interpretation, run_query
from .rules import all_rules, get_rule, rules_by_category
from .semiring import NAT, NAT_INF, PROVENANCE, KRelation
from .sql import Catalog, compile_sql, query_to_str

__version__ = "1.0.0"

__all__ = [
    "BOOL",
    "Catalog",
    "Database",
    "EMPTY",
    "FDConstraint",
    "Hypotheses",
    "INT",
    "Interpretation",
    "KRelation",
    "KeyConstraint",
    "NAT",
    "NAT_INF",
    "PROVENANCE",
    "STRING",
    "SVar",
    "Schema",
    "__version__",
    "all_rules",
    "ast",
    "check_query_equivalence",
    "compile_sql",
    "cq_equivalent",
    "decide_cq",
    "denote_closed",
    "get_rule",
    "queries_equivalent",
    "query_to_str",
    "rules_by_category",
    "run_query",
]
