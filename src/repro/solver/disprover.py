"""Bounded-exhaustive disprover: Cosette-style counterexample search.

Random testing (:mod:`repro.engine.random_instances`) gives *evidence*;
this module gives *guarantees*.  It systematically enumerates **every**
database instance in which each table holds at most ``max_rows`` distinct
tuples over a small finite domain, each with multiplicity at most
``max_multiplicity``, evaluates both queries under the paper's semiring
semantics, and reports the first disagreement.  When the enumeration
completes without one, the result is a quantified negative: *no
counterexample exists up to the bound* — the small-model half of Cosette's
prove-or-disprove loop.

The search engine is built for compile-once/evaluate-many throughput:

* the tuple space and the per-table instance descriptors (support index
  combination + multiplicity vector) are computed once per
  (schema, bound) and cached process-wide;
* under ``NAT``/``BOOL`` both queries are compiled to closures
  (:mod:`repro.engine.compile`) evaluated over plain count dicts — no
  per-instance AST dispatch, no :class:`KRelation` allocation; exotic
  semirings fall back to the tree-walking interpreter;
* the instance space is a mixed-radix index over per-table descriptor
  lists, so it shards by index ranges across a ``ProcessPoolExecutor``
  (``disprove(..., workers=N)``) with a deterministic smallest-index
  witness, early cancellation of shards past the first hit, and exact
  ``instances_checked`` accounting folded from per-shard reports;
* every witness — compiled or not, sharded or not — is re-evaluated
  through the reference interpreter before being reported, so a
  DISPROVED verdict never rests on the compiled evaluator alone.

Two entry points:

* :func:`disprove` — for closed queries over concrete table schemas
  (everything the SQL frontend produces),
* :func:`disprove_rule` — for generic rewrite rules: the rule's own
  instantiator fixes the metavariables (attribute paths, predicates), and
  the table contents are then enumerated exhaustively instead of sampled.
"""

from __future__ import annotations

import itertools
import random
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from ..analysis.infer import (AnalysisContext, EMPTY_CONTEXT,
                              infer_properties, supports_determined)
from ..core import ast
from ..core.equivalence import Hypotheses
from ..core.schema import Schema, enumerate_tuples, tuple_flatten, tuple_of
from ..engine.compile import CompileError, compile_pair
from ..engine.database import Interpretation
from ..engine.eval import run_query
from ..engine.random_instances import Counterexample
from ..obs.metrics import counter, histogram
from ..semiring.krelation import KRelation
from ..semiring.semirings import BOOL, NAT, NAT_INF, Semiring, TROPICAL
from .verdict import BoundInfo, CounterexampleRecord

#: Domains intentionally smaller than the random falsifier's defaults: the
#: instance count is exponential in |domain|, and two distinguishable
#: values per type already separate every rewrite in the corpus.
SMALL_DOMAINS: Dict[str, Tuple[Any, ...]] = {
    "int": (0, 1),
    "bool": (False, True),
    "string": ("a", "b"),
    "float": (0.0, 1.0),
}

#: Semiring singletons by name — parallel shards ship the *name* and
#: re-resolve it worker-side, because pickling a semiring instance would
#: produce a copy that breaks the ``is``-identity checks in the engine.
_SEMIRINGS_BY_NAME: Dict[str, Semiring] = {
    s.name: s for s in (BOOL, NAT, NAT_INF, TROPICAL)}


@dataclass(frozen=True)
class Bound:
    """The instance space to exhaust, hashable and picklable."""

    max_rows: int = 2
    max_multiplicity: int = 2
    domains: Tuple[Tuple[str, Tuple[Any, ...]], ...] = tuple(
        sorted(SMALL_DOMAINS.items()))

    @staticmethod
    def of(max_rows: int = 2, max_multiplicity: int = 2,
           domains: Optional[Dict[str, Tuple[Any, ...]]] = None) -> "Bound":
        return Bound(max_rows, max_multiplicity,
                     tuple(sorted((domains or SMALL_DOMAINS).items())))

    def domain_dict(self) -> Dict[str, Tuple[Any, ...]]:
        return dict(self.domains)

    def info(self, instances_checked: int, exhausted: bool) -> BoundInfo:
        return BoundInfo(max_rows=self.max_rows,
                         max_multiplicity=self.max_multiplicity,
                         domains=self.domains,
                         instances_checked=instances_checked,
                         exhausted=exhausted)


@dataclass
class DisproofResult:
    """Outcome of a bounded-exhaustive search."""

    counterexample: Optional[Counterexample]
    record: Optional[CounterexampleRecord]
    bound: Bound
    instances_checked: int
    exhausted: bool

    @property
    def found(self) -> bool:
        return self.counterexample is not None

    def info(self) -> BoundInfo:
        return self.bound.info(self.instances_checked, self.exhausted)


# ---------------------------------------------------------------------------
# Query analysis: what would we have to enumerate?
# ---------------------------------------------------------------------------

def free_tables(query: ast.Query) -> Dict[str, Schema]:
    """All base tables of a query, name → schema (conflicts are errors)."""
    out: Dict[str, Schema] = {}
    for node in _walk_queries(query):
        if isinstance(node, ast.Table):
            known = out.get(node.name)
            if known is not None and known != node.schema:
                raise ValueError(
                    f"table {node.name!r} used at two schemas: "
                    f"{known} vs {node.schema}")
            out[node.name] = node.schema
    return out


def has_metavariables(query: ast.Query) -> bool:
    """True when the query quantifies over schemas/predicates/attributes.

    Such queries describe *families* of concrete queries; they cannot be
    enumerated directly and need an instantiator (see
    :func:`disprove_rule`).
    """
    for node in _walk_queries(query):
        if isinstance(node, ast.Table) and not node.schema.is_concrete:
            return True
    for pred in _walk_predicates(query):
        if isinstance(pred, ast.PredVar):
            return True
    for expr in _walk_expressions(query):
        if isinstance(expr, ast.ExprVar):
            return True
    for proj in _walk_projections(query):
        if isinstance(proj, ast.PVar):
            return True
    return False


def _walk_queries(query: ast.Query) -> Iterator[ast.Query]:
    yield query
    if isinstance(query, (ast.Select, ast.Where, ast.Distinct)):
        yield from _walk_queries(query.query)
    elif isinstance(query, (ast.Product, ast.UnionAll, ast.Except)):
        yield from _walk_queries(query.left)
        yield from _walk_queries(query.right)
    if isinstance(query, ast.Where):
        for sub in _predicate_subqueries(query.predicate):
            yield from _walk_queries(sub)
    if isinstance(query, ast.Select):
        for sub in _projection_subqueries(query.projection):
            yield from _walk_queries(sub)


def _predicate_subqueries(pred: ast.Predicate) -> Iterator[ast.Query]:
    if isinstance(pred, (ast.PredAnd, ast.PredOr)):
        yield from _predicate_subqueries(pred.left)
        yield from _predicate_subqueries(pred.right)
    elif isinstance(pred, ast.PredNot):
        yield from _predicate_subqueries(pred.operand)
    elif isinstance(pred, ast.Exists):
        yield pred.query
    elif isinstance(pred, ast.CastPred):
        yield from _predicate_subqueries(pred.predicate)
    elif isinstance(pred, (ast.PredEq, ast.PredFunc)):
        for expr in _pred_expressions(pred):
            yield from _expression_subqueries(expr)


def _pred_expressions(pred: ast.Predicate) -> Iterator[ast.Expression]:
    if isinstance(pred, ast.PredEq):
        yield pred.left
        yield pred.right
    elif isinstance(pred, ast.PredFunc):
        yield from pred.args


def _expression_subqueries(expr: ast.Expression) -> Iterator[ast.Query]:
    if isinstance(expr, ast.Agg):
        yield expr.query
    elif isinstance(expr, ast.Func):
        for arg in expr.args:
            yield from _expression_subqueries(arg)
    elif isinstance(expr, ast.CastExpr):
        yield from _expression_subqueries(expr.expression)
    elif isinstance(expr, ast.P2E):
        yield from _projection_subqueries(expr.projection)


def _projection_subqueries(proj: ast.Projection) -> Iterator[ast.Query]:
    if isinstance(proj, ast.Compose):
        yield from _projection_subqueries(proj.first)
        yield from _projection_subqueries(proj.second)
    elif isinstance(proj, ast.Duplicate):
        yield from _projection_subqueries(proj.left)
        yield from _projection_subqueries(proj.right)
    elif isinstance(proj, ast.E2P):
        yield from _expression_subqueries(proj.expression)


def _walk_predicates(query: ast.Query) -> Iterator[ast.Predicate]:
    for node in _walk_queries(query):
        if isinstance(node, ast.Where):
            yield from _all_predicates(node.predicate)


def _all_predicates(pred: ast.Predicate) -> Iterator[ast.Predicate]:
    yield pred
    if isinstance(pred, (ast.PredAnd, ast.PredOr)):
        yield from _all_predicates(pred.left)
        yield from _all_predicates(pred.right)
    elif isinstance(pred, ast.PredNot):
        yield from _all_predicates(pred.operand)
    elif isinstance(pred, ast.CastPred):
        yield from _all_predicates(pred.predicate)


def _walk_expressions(query: ast.Query) -> Iterator[ast.Expression]:
    for node in _walk_queries(query):
        if isinstance(node, ast.Where):
            for pred in _all_predicates(node.predicate):
                for expr in _pred_expressions(pred):
                    yield from _all_expressions(expr)
        if isinstance(node, ast.Select):
            for expr in _projection_expressions(node.projection):
                yield from _all_expressions(expr)


def _all_expressions(expr: ast.Expression) -> Iterator[ast.Expression]:
    yield expr
    if isinstance(expr, ast.Func):
        for arg in expr.args:
            yield from _all_expressions(arg)
    elif isinstance(expr, ast.CastExpr):
        yield from _all_expressions(expr.expression)


def _projection_expressions(proj: ast.Projection) -> Iterator[ast.Expression]:
    if isinstance(proj, ast.Compose):
        yield from _projection_expressions(proj.first)
        yield from _projection_expressions(proj.second)
    elif isinstance(proj, ast.Duplicate):
        yield from _projection_expressions(proj.left)
        yield from _projection_expressions(proj.right)
    elif isinstance(proj, ast.E2P):
        yield proj.expression


def _walk_projections(query: ast.Query) -> Iterator[ast.Projection]:
    for node in _walk_queries(query):
        if isinstance(node, ast.Select):
            yield from _all_projections(node.projection)
        if isinstance(node, ast.Where):
            for pred in _all_predicates(node.predicate):
                if isinstance(pred, ast.CastPred):
                    yield from _all_projections(pred.projection)
                for expr in _pred_expressions(pred):
                    for sub in _all_expressions(expr):
                        if isinstance(sub, ast.P2E):
                            yield from _all_projections(sub.projection)


def _all_projections(proj: ast.Projection) -> Iterator[ast.Projection]:
    yield proj
    if isinstance(proj, ast.Compose):
        yield from _all_projections(proj.first)
        yield from _all_projections(proj.second)
    elif isinstance(proj, ast.Duplicate):
        yield from _all_projections(proj.left)
        yield from _all_projections(proj.right)


# ---------------------------------------------------------------------------
# Instance enumeration
# ---------------------------------------------------------------------------
#
# The instance space of one table is described *symbolically* once per
# (schema, bound): the tuple space becomes an indexable array, and each
# instance becomes a descriptor — (support tuple-indices, multiplicity
# vector) — in a fixed canonical order (support size ascending, index
# combinations lexicographic, multiplicity assignments in product order).
# Everything downstream (K-relation enumeration, count-dict batches for
# the compiled evaluator, mixed-radix sharding, witness reconstruction)
# indexes into these cached arrays instead of re-materializing them.

@lru_cache(maxsize=256)
def _tuple_space(schema: Schema,
                 domains: Tuple[Tuple[str, Tuple[Any, ...]], ...]
                 ) -> Tuple[Any, ...]:
    """The enumerated tuple space of a schema, cached per (schema, domains)."""
    return tuple(enumerate_tuples(schema, dict(domains)))


@lru_cache(maxsize=128)
def _instance_descriptors(
        schema: Schema, bound: Bound
) -> Tuple[Tuple[Tuple[int, ...], Tuple[int, ...]], ...]:
    """Every instance of ``schema`` within ``bound`` as (support, mults).

    Supports are index-combinations into :func:`_tuple_space`; each
    support row independently takes each multiplicity in
    ``1..max_multiplicity``.  The order is canonical and shared by every
    consumer — position ``i`` here *is* instance ``i`` of the table.
    """
    n = len(_tuple_space(schema, bound.domains))
    mults = tuple(range(1, bound.max_multiplicity + 1))
    out: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    for size in range(0, bound.max_rows + 1):
        for support in itertools.combinations(range(n), size):
            for assignment in itertools.product(mults, repeat=size):
                out.append((support, assignment))
    return tuple(out)


@lru_cache(maxsize=64)
def _count_batches(schema: Schema, bound: Bound,
                   nat: bool) -> Tuple[Dict[Any, Any], ...]:
    """The table's instances as the count dicts the compiled closures eat.

    ``nat=True`` → ``{row: multiplicity}``; ``nat=False`` (BOOL) →
    ``{row: True}``.  One dict per descriptor, shared and cached — the
    compiled evaluator never mutates its inputs, so the whole batch is
    built once per (schema, bound, mode) for the life of the process.
    """
    tuples = _tuple_space(schema, bound.domains)
    out: List[Dict[Any, Any]] = []
    for support, mults in _instance_descriptors(schema, bound):
        if nat:
            out.append({tuples[t]: m for t, m in zip(support, mults)})
        else:
            out.append({tuples[t]: True for t in support})
    return tuple(out)


def _relation_from_descriptor(schema: Schema, bound: Bound,
                              desc: Tuple[Tuple[int, ...], Tuple[int, ...]],
                              semiring: Semiring) -> KRelation:
    tuples = _tuple_space(schema, bound.domains)
    support, mults = desc
    rel = KRelation(semiring)
    for t, m in zip(support, mults):
        rel.add(tuples[t], semiring.from_int(m))
    return rel


def enumerate_relations(schema: Schema, bound: Bound,
                        semiring: Semiring = NAT) -> Iterator[KRelation]:
    """Every K-relation over ``schema`` within ``bound``, smallest first.

    Supports are subsets (no permutations) of the tuple space; every
    support row independently takes each multiplicity in
    ``1..max_multiplicity``.  The tuple space and the descriptor list are
    cached per (schema, bound), so multi-table products and repeated
    searches no longer re-materialize them.
    """
    for desc in _instance_descriptors(schema, bound):
        yield _relation_from_descriptor(schema, bound, desc, semiring)


def count_relations(schema: Schema, bound: Bound) -> int:
    """Size of :func:`enumerate_relations`'s space (sanity/reporting)."""
    n = len(_tuple_space(schema, bound.domains))
    m = bound.max_multiplicity
    total = 0
    for size in range(0, bound.max_rows + 1):
        total += _choose(n, size) * (m ** size)
    return total


def _choose(n: int, k: int) -> int:
    if k > n:
        return 0
    out = 1
    for i in range(k):
        out = out * (n - i) // (i + 1)
    return out


# ---------------------------------------------------------------------------
# The disprover proper
# ---------------------------------------------------------------------------

def disprove(q1: ast.Query, q2: ast.Query,
             tables: Optional[Dict[str, Schema]] = None,
             bound: Bound = Bound(),
             semiring: Semiring = NAT,
             base_interp: Optional[Interpretation] = None,
             max_instances: Optional[int] = None,
             hyps: Optional[Hypotheses] = None,
             analyze: bool = True,
             workers: int = 1,
             batch_size: Optional[int] = None,
             use_compiled: Optional[bool] = None) -> DisproofResult:
    """Exhaust all instances within ``bound`` looking for a disagreement.

    Args:
        q1, q2: the two (closed) queries.
        tables: name → concrete schema of the relations to enumerate;
            inferred from the queries when omitted.
        bound: the instance space (rows × multiplicities × domains).
        semiring: the multiplicity semiring to evaluate under.
        base_interp: an interpretation providing metavariable bindings
            (predicates, projections, ...); its *relations* are replaced
            by the enumeration.
        max_instances: optional safety valve; when hit, the result is
            marked non-exhausted.
        hyps: integrity constraints the rewrite assumes; enumerated
            instances that violate them are not counterexamples and are
            skipped.  When a constraint cannot be evaluated concretely
            (its key projection is not bound in ``base_interp``) the
            search aborts empty rather than report a spurious witness.
        analyze: consult the static analysis tier
            (:mod:`repro.analysis`) to prune the instance space before
            enumerating.  Both prunes are lossless: queries proved empty
            on *every* instance cannot disagree anywhere, and when both
            sides are support-determined (``DISTINCT``-rooted,
            aggregate-free) multiplicities above 1 cannot create a
            disagreement that multiplicity 1 misses.  Off switch exists
            for benchmarking the unpruned search.
        workers: shard the search across this many processes.  Takes
            effect only for searches with no ``base_interp`` (callables
            do not pickle); the witness and ``instances_checked`` are
            bit-identical to ``workers=1`` regardless of scheduling.
        batch_size: instances per shard (default: sized so each worker
            gets ~8 shards, clamped to [512, 100000]).
        use_compiled: ``None`` (default) compiles under NAT/BOOL and
            falls back to the interpreter elsewhere; ``False`` forces
            the interpreter (the benchmark baseline); ``True`` demands
            compilation and lets :class:`CompileError` propagate.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    started = time.perf_counter()
    counter("disprover.searches_total").inc()
    if tables is None:
        tables = dict(free_tables(q1))
        for name, schema in free_tables(q2).items():
            known = tables.get(name)
            if known is not None and known != schema:
                raise ValueError(f"table {name!r} used at two schemas")
            tables[name] = schema
    for name, schema in tables.items():
        if not schema.is_concrete:
            raise ValueError(
                f"cannot enumerate instances of table {name!r} with "
                f"non-concrete schema {schema}")
    if analyze:
        ctx = AnalysisContext.from_hypotheses(hyps) if hyps is not None \
            else EMPTY_CONTEXT
        if infer_properties(q1, ctx).empty and infer_properties(q2, ctx).empty:
            # Both sides denote the empty bag on *every* instance
            # satisfying ``hyps`` — no instance can tell them apart, so
            # the whole bound is exhausted without enumerating at all.
            counter("analysis.disprover.static_equal").inc()
            return DisproofResult(None, None, bound, 0, exhausted=True)
        if bound.max_multiplicity > 1 and supports_determined(q1) \
                and supports_determined(q2):
            # Support-determined outputs (DISTINCT-rooted, aggregate-
            # free) are functions of which rows each table holds, never
            # of their multiplicities, so any disagreement visible at
            # multiplicity ≤ k is already visible at multiplicity 1.
            # Clamping shrinks the product space exponentially and — by
            # that argument — loses no counterexamples; the reported
            # bound is the clamped one actually searched, with the
            # original covered by implication.
            counter("analysis.disprover.mult_clamped").inc()
            bound = replace(bound, max_multiplicity=1)
    names = sorted(tables)

    pair = None
    if use_compiled is None or use_compiled:
        try:
            pair = compile_pair(q1, q2, tuple(names), base_interp, semiring)
        except CompileError:
            if use_compiled:
                raise
    counter("disprover.compiled_total" if pair is not None
            else "disprover.interpreted_total").inc()

    # Per-table evaluation spaces.  ``valid[i]`` maps a position in the
    # searched space back to the canonical descriptor index (None = the
    # identity, i.e. no constraint filtered anything).
    spaces: List[Sequence[Any]] = []
    valid: List[Optional[List[int]]] = []
    for name in names:
        schema = tables[name]
        checkers = _constraint_checkers(name, hyps, base_interp, semiring)
        if checkers is None:
            return DisproofResult(None, None, bound, 0, exhausted=False)
        if pair is not None:
            space: Sequence[Any] = _count_batches(schema, bound,
                                                  semiring is NAT)
        else:
            space = list(enumerate_relations(schema, bound, semiring))
        if checkers:
            keep = [i for i, rel in enumerate(space)
                    if all(check(rel) for check in checkers)]
            space = [space[i] for i in keep]
            valid.append(keep)
        else:
            valid.append(None)
        spaces.append(space)

    radices = [len(space) for space in spaces]
    total = 1
    for r in radices:
        total *= r
    search_n = total if max_instances is None else min(total, max_instances)

    # Sharding requires a picklable worker spec: no base interpretation
    # (metavariable bindings are callables) and no constraint filtering
    # (checkers need the base interpretation anyway, so with
    # ``base_interp is None`` nothing was filtered).
    parallel = (workers > 1 and names and base_interp is None
                and all(v is None for v in valid) and search_n > 1)
    if parallel:
        counter("disprover.parallel_total").inc()
        spec = (q1, q2, tuple(names), tuple(tables[n] for n in names),
                bound, semiring.name, pair is not None)
        witness, checked = _search_parallel(spec, search_n, workers,
                                            batch_size)
        exhausted = witness is None and search_n == total
    else:
        if pair is not None:
            evaluate: Callable[[Tuple[Any, ...]], bool] = pair.differs
        else:
            def evaluate(combo: Tuple[Any, ...]) -> bool:
                interp = _with_relations(base_interp, names, combo, tables)
                return (run_query(q1, interp, semiring)
                        != run_query(q2, interp, semiring))
        witness, checked, exhausted = _search_serial(evaluate, spaces,
                                                     max_instances)

    if witness is not None:
        cx, record = _witness_at(q1, q2, names, tables, bound, semiring,
                                 base_interp, valid, radices, witness)
        result = DisproofResult(cx, record, bound, witness + 1,
                                exhausted=False)
        counter("disprover.witnesses_total").inc()
    else:
        result = DisproofResult(None, None, bound, checked, exhausted)
    counter("disprover.instances_total").inc(result.instances_checked)
    histogram("disprover.search.seconds").observe(
        time.perf_counter() - started)
    return result


def _search_serial(evaluate: Callable[[Tuple[Any, ...]], bool],
                   spaces: Sequence[Sequence[Any]],
                   max_instances: Optional[int]
                   ) -> Tuple[Optional[int], int, bool]:
    """In-process scan; returns (witness index, instances checked, exhausted)."""
    checked = 0
    for combo in itertools.product(*spaces):
        if max_instances is not None and checked >= max_instances:
            return None, checked, False
        checked += 1
        if evaluate(combo):
            return checked - 1, checked, False
    return None, checked, True


# -- sharded search ----------------------------------------------------------

def _default_batch(search_n: int, workers: int) -> int:
    # ~8 shards per worker: coarse enough to amortize task dispatch,
    # fine enough that cancelling shards past a witness saves real work.
    return max(512, min(100_000, -(-search_n // (workers * 8))))


def _search_parallel(spec: Tuple[Any, ...], search_n: int, workers: int,
                     batch_size: Optional[int]
                     ) -> Tuple[Optional[int], int]:
    """Shard ``[0, search_n)`` across processes; smallest witness wins.

    Each shard reports (found index | None, instances examined).  The
    fold is deterministic no matter how the pool schedules: the witness
    is the *minimum* found index, shards starting past the current best
    are cancelled, and the accounting mirrors the serial scan exactly —
    ``witness + 1`` when found, the sum of full shard counts
    (= ``search_n``) when not.
    """
    batch = batch_size if batch_size is not None \
        else _default_batch(search_n, workers)
    shards = [(start, min(batch, search_n - start))
              for start in range(0, search_n, batch)]
    counter("disprover.shards_total").inc(len(shards))
    best: Optional[int] = None
    examined = 0
    with ProcessPoolExecutor(max_workers=min(workers, len(shards))) as pool:
        futures = {pool.submit(_shard_worker, spec, start, count): start
                   for start, count in shards}
        try:
            for future in as_completed(futures):
                if future.cancelled():
                    continue
                found, count = future.result()
                examined += count
                if found is not None and (best is None or found < best):
                    best = found
                    for other, start in futures.items():
                        if start > best:
                            other.cancel()
        except BaseException:
            for other in futures:
                other.cancel()
            raise
    if best is not None:
        return best, best + 1
    return None, examined


def _shard_worker(spec: Tuple[Any, ...], start: int,
                  count: int) -> Tuple[Optional[int], int]:
    """Scan global instance indices ``[start, start + count)``.

    Runs in a pool process; everything expensive (compilation, the
    per-table instance batches) is memoized per spec via
    :func:`_prepare_spec`, so a worker pays the setup once and then
    streams shards.
    """
    evaluate, spaces = _prepare_spec(spec)
    index = start
    for combo in _iter_combos(spaces, start, count):
        if evaluate(combo):
            return index, index - start + 1
        index += 1
    return None, count


@lru_cache(maxsize=32)
def _prepare_spec(spec: Tuple[Any, ...]):
    """Worker-side spec → (evaluate closure, per-table instance spaces)."""
    q1, q2, names, schemas, bound, semiring_name, compiled = spec
    semiring = _SEMIRINGS_BY_NAME[semiring_name]
    if compiled:
        pair = compile_pair(q1, q2, names, None, semiring)
        spaces = tuple(_count_batches(schema, bound, semiring is NAT)
                       for schema in schemas)
        return pair.differs, spaces
    tables = dict(zip(names, schemas))
    spaces = tuple(tuple(enumerate_relations(schema, bound, semiring))
                   for schema in schemas)

    def evaluate(combo: Tuple[Any, ...]) -> bool:
        interp = _with_relations(None, list(names), combo, tables)
        return (run_query(q1, interp, semiring)
                != run_query(q2, interp, semiring))
    return evaluate, spaces


def _iter_combos(spaces: Sequence[Sequence[Any]], start: int,
                 count: int) -> Iterator[Tuple[Any, ...]]:
    """``itertools.product(*spaces)`` sliced to ``[start, start+count)``.

    Decodes ``start`` once via mixed radix (leftmost space most
    significant, matching ``product``), then runs an odometer — O(1)
    amortized per instance, so late shards cost the same as early ones.
    """
    width = len(spaces)
    radices = [len(space) for space in spaces]
    idxs = [0] * width
    rem = start
    for k in range(width - 1, -1, -1):
        rem, idxs[k] = divmod(rem, radices[k])
    current = [spaces[k][idxs[k]] for k in range(width)]
    for _ in range(count):
        yield tuple(current)
        for k in range(width - 1, -1, -1):
            idxs[k] += 1
            if idxs[k] < radices[k]:
                current[k] = spaces[k][idxs[k]]
                break
            idxs[k] = 0
            current[k] = spaces[k][0]


def _decode(index: int, radices: Sequence[int]) -> List[int]:
    out = [0] * len(radices)
    for k in range(len(radices) - 1, -1, -1):
        index, out[k] = divmod(index, radices[k])
    return out


def _witness_at(q1: ast.Query, q2: ast.Query, names: List[str],
                tables: Dict[str, Schema], bound: Bound, semiring: Semiring,
                base_interp: Optional[Interpretation],
                valid: Sequence[Optional[List[int]]],
                radices: Sequence[int], witness: int
                ) -> Tuple[Counterexample, CounterexampleRecord]:
    """Reconstruct instance ``witness`` and certify it with the interpreter.

    This is the differential parity guarantee in production: no matter
    which evaluator or how many shards found the disagreement, the
    reported counterexample is re-derived by the reference interpreter.
    A compiled hit the interpreter cannot confirm is a hard error, never
    a verdict.
    """
    positions = _decode(witness, radices)
    combo = []
    for name, keep, pos in zip(names, valid, positions):
        schema = tables[name]
        desc_index = pos if keep is None else keep[pos]
        desc = _instance_descriptors(schema, bound)[desc_index]
        combo.append(_relation_from_descriptor(schema, bound, desc, semiring))
    interp = _with_relations(base_interp, names, tuple(combo), tables)
    lhs = run_query(q1, interp, semiring)
    rhs = run_query(q2, interp, semiring)
    if lhs == rhs:
        raise RuntimeError(
            f"disprover parity violation: instance #{witness + 1} separated "
            f"the queries under the compiled evaluator but not under the "
            f"reference interpreter")
    cx = Counterexample(
        trial=witness, lhs_query=q1, rhs_query=q2,
        interpretation=interp, lhs_result=lhs, rhs_result=rhs)
    record = counterexample_record(cx, tables, note=(
        f"found by bounded-exhaustive search, instance #{witness + 1}"))
    return cx, record


def _constraint_checkers(name: str, hyps: Optional[Hypotheses],
                         interp: Optional[Interpretation],
                         semiring: Semiring):
    """Predicates enforcing ``hyps`` on table ``name``'s instances.

    Key semantics (paper Sec. 4.2): a keyed relation is set-valued and its
    key projection is injective on the support.  An FD ``a → b`` requires
    equal ``a``-projections to force equal ``b``-projections.  Returns
    ``None`` when a relevant constraint's projection cannot be resolved —
    the caller must then refuse to enumerate rather than produce
    constraint-violating "counterexamples".  The checkers only touch
    ``rel.items()``, so they accept K-relations and plain count dicts
    alike.
    """
    if hyps is None:
        return []
    checkers = []
    for key in hyps.keys:
        if key.rel != name:
            continue
        proj = _resolve_projection(interp, key.proj)
        if proj is None:
            return None

        def key_ok(rel, proj=proj):
            seen: Dict[Any, Any] = {}
            for row, mult in rel.items():
                if mult != semiring.one:
                    return False
                k = proj(row)
                if k in seen and seen[k] != row:
                    return False
                seen[k] = row
            return True

        checkers.append(key_ok)
    for fd in hyps.fds:
        if fd.rel != name:
            continue
        source = _resolve_projection(interp, fd.source)
        target = _resolve_projection(interp, fd.target)
        if source is None or target is None:
            return None

        def fd_ok(rel, source=source, target=target):
            seen: Dict[Any, Any] = {}
            for row, _ in rel.items():
                s, t = source(row), target(row)
                if s in seen and seen[s] != t:
                    return False
                seen[s] = t
            return True

        checkers.append(fd_ok)
    return checkers


def _resolve_projection(interp: Optional[Interpretation], name: str):
    if interp is None:
        return None
    try:
        return interp.projection(name)
    except KeyError:
        return None


def _with_relations(base: Optional[Interpretation], names: List[str],
                    relations: Tuple[KRelation, ...],
                    schemas: Dict[str, Schema]) -> Interpretation:
    interp = Interpretation()
    if base is not None:
        interp.predicates.update(base.predicates)
        interp.projections.update(base.projections)
        interp.expressions.update(base.expressions)
        interp.functions.update(base.functions)
        interp.aggregates.update(base.aggregates)
        interp.relations.update(base.relations)
        interp.schemas.update(base.schemas)
    for name, rel in zip(names, relations):
        interp.relations[name] = rel
        interp.schemas[name] = schemas[name]
    return interp


def disprove_factory(factory, bound: Bound = Bound(), draws: int = 3,
                     seed: int = 0, semiring: Semiring = NAT,
                     max_instances: Optional[int] = None,
                     hyps: Optional[Hypotheses] = None,
                     workers: int = 1,
                     batch_size: Optional[int] = None,
                     use_compiled: Optional[bool] = None) -> DisproofResult:
    """Bounded-exhaustive search driven by an instance factory.

    The factory (a rule's instantiator) fixes schemas and metavariable
    bindings — attribute paths, predicate functions; for each of ``draws``
    instantiations the table contents are then enumerated exhaustively
    instead of sampled (restricted to instances satisfying ``hyps``).
    The budget ``max_instances`` is shared across draws.  Instantiated
    searches still use the compiled evaluator (the bindings resolve at
    compile time) but run in-process — the callables do not pickle, so
    ``workers`` only applies when an instantiation needs none.
    """
    total_checked = 0
    exhausted_all = True
    for draw in range(draws):
        lhs, rhs, interp = factory(random.Random(seed + draw))
        tables = {name: interp.schemas[name] for name in interp.relations}
        remaining = (None if max_instances is None
                     else max(0, max_instances - total_checked))
        if remaining == 0:
            exhausted_all = False
            break
        result = disprove(lhs, rhs, tables, bound, semiring,
                          base_interp=interp, max_instances=remaining,
                          hyps=hyps, workers=workers, batch_size=batch_size,
                          use_compiled=use_compiled)
        total_checked += result.instances_checked
        if result.found:
            return replace(result, instances_checked=total_checked)
        exhausted_all = exhausted_all and result.exhausted
    return DisproofResult(None, None, bound, total_checked,
                          exhausted=exhausted_all)


def disprove_rule(rule, bound: Bound = Bound(), draws: int = 3,
                  seed: int = 0, semiring: Semiring = NAT,
                  max_instances: Optional[int] = None,
                  workers: int = 1,
                  batch_size: Optional[int] = None,
                  use_compiled: Optional[bool] = None) -> DisproofResult:
    """Bounded-exhaustive refutation of a generic rewrite rule.

    The rule's integrity-constraint hypotheses restrict the instance
    space: a keyed relation only ranges over key-respecting instances.
    """
    if rule.instantiate is None:
        raise ValueError(f"rule {rule.name!r} has no instantiator")
    return disprove_factory(rule.instantiate, bound, draws, seed, semiring,
                            max_instances, hyps=rule.hypotheses,
                            workers=workers, batch_size=batch_size,
                            use_compiled=use_compiled)


# ---------------------------------------------------------------------------
# Records and replay
# ---------------------------------------------------------------------------

def counterexample_record(cx: Counterexample,
                          schemas: Dict[str, Schema],
                          note: str = "") -> CounterexampleRecord:
    """Serialize an engine counterexample into replayable plain data."""
    tables = []
    for name in sorted(cx.interpretation.relations):
        rel = cx.interpretation.relations[name]
        schema = schemas.get(name, cx.interpretation.schemas.get(name))
        rows = []
        for row, mult in sorted(rel.items(), key=lambda kv: repr(kv[0])):
            flat = (tuple(tuple_flatten(schema, row))
                    if schema is not None else (row,))
            rows.append((flat, _as_int(mult)))
        tables.append((name, tuple(rows)))
    disagreements = []
    all_rows = set(cx.lhs_result.support()) | set(cx.rhs_result.support())
    for row in sorted(all_rows, key=repr):
        left = cx.lhs_result.annotation(row)
        right = cx.rhs_result.annotation(row)
        if left != right:
            disagreements.append((repr(row), repr(left), repr(right)))
    extra = ("" if not _has_callables(cx.interpretation)
             else "metavariable bindings fixed by the instantiator are "
                  "not serialized; replay via the live counterexample")
    full_note = "; ".join(p for p in (note, extra) if p)
    return CounterexampleRecord(tables=tuple(tables),
                                disagreements=tuple(disagreements),
                                note=full_note)


def _as_int(mult: Any) -> int:
    try:
        return int(mult)
    except (TypeError, ValueError):
        return 1


def _has_callables(interp: Interpretation) -> bool:
    return bool(interp.predicates or interp.projections
                or interp.expressions)


def replay(record: CounterexampleRecord, q1: ast.Query, q2: ast.Query,
           schemas: Dict[str, Schema],
           semiring: Semiring = NAT) -> Tuple[KRelation, KRelation]:
    """Re-evaluate both queries on a recorded instance.

    Only meaningful for closed queries (no metavariable callables); the
    pipeline and CLI use it to demonstrate that a DISPROVED verdict's
    instance really separates the queries.
    """
    interp = Interpretation()
    for name, rows in record.tables:
        schema = schemas[name]
        rel = KRelation(semiring)
        for flat, mult in rows:
            rel.add(tuple_of(schema, list(flat)), semiring.from_int(mult))
        interp.relations[name] = rel
        interp.schemas[name] = schema
    return run_query(q1, interp, semiring), run_query(q2, interp, semiring)


__all__ = [
    "Bound",
    "DisproofResult",
    "SMALL_DOMAINS",
    "count_relations",
    "counterexample_record",
    "disprove",
    "disprove_factory",
    "disprove_rule",
    "enumerate_relations",
    "free_tables",
    "has_metavariables",
    "replay",
]
