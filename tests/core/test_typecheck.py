"""Schema inference and rejection of ill-formed HoTTSQL trees."""

import pytest

from repro.core import ast
from repro.core.schema import EMPTY, INT, Leaf, Node, STRING, SVar
from repro.core.typecheck import (
    TypecheckError,
    check_predicate,
    infer_expression,
    infer_projection,
    infer_query,
    well_formed_query,
)

SR = SVar("sR")
SS = SVar("sS")
R = ast.Table("R", SR)
S = ast.Table("S", SS)
R2 = ast.Table("R2", SR)
CONCRETE = Node(Leaf(INT), Leaf(INT))


class TestQueries:
    def test_table(self):
        assert infer_query(R, EMPTY) == SR

    def test_product(self):
        assert infer_query(ast.Product(R, S), EMPTY) == Node(SR, SS)

    def test_from_clauses_nests_right(self):
        q = ast.from_clauses(R, S, R2)
        assert infer_query(q, EMPTY) == Node(SR, Node(SS, SR))

    def test_from_requires_argument(self):
        with pytest.raises(ValueError):
            ast.from_clauses()

    def test_union_all_same_schema(self):
        assert infer_query(ast.UnionAll(R, R2), EMPTY) == SR

    def test_union_all_mismatch(self):
        with pytest.raises(TypecheckError):
            infer_query(ast.UnionAll(R, S), EMPTY)

    def test_except_mismatch(self):
        with pytest.raises(TypecheckError):
            infer_query(ast.Except(R, S), EMPTY)

    def test_where_extends_context(self):
        b = ast.PredVar("b", Node(EMPTY, SR))
        assert infer_query(ast.Where(R, b), EMPTY) == SR

    def test_select_projection_context(self):
        p = ast.PVar("p", Node(EMPTY, SR), Leaf(INT))
        assert infer_query(ast.Select(p, R), EMPTY) == Leaf(INT)

    def test_distinct(self):
        assert infer_query(ast.Distinct(R), EMPTY) == SR

    def test_well_formed_entrypoint(self):
        assert well_formed_query(ast.Distinct(R)) == SR


class TestPredicates:
    def test_predvar_context_mismatch_needs_cast(self):
        b = ast.PredVar("b", Node(EMPTY, SR))
        # Used under a product, the context is node empty (node sR sS):
        # direct use must be rejected, CASTPRED must fix it.
        with pytest.raises(TypecheckError):
            infer_query(ast.Where(ast.Product(R, S), b), EMPTY)
        b_on_pair = ast.PredVar("b", Node(SR, SS))
        q = ast.Where(ast.Product(R, S), ast.CastPred(ast.RIGHT, b_on_pair))
        assert infer_query(q, EMPTY) == Node(SR, SS)

    def test_equality_requires_same_type(self):
        c_int = ast.Const(1, INT)
        c_str = ast.Const("x", STRING)
        with pytest.raises(TypecheckError):
            check_predicate(ast.PredEq(c_int, c_str), EMPTY)
        check_predicate(ast.PredEq(c_int, c_int), EMPTY)

    def test_exists_checks_inner_query(self):
        check_predicate(ast.Exists(R), EMPTY)

    def test_connectives(self):
        t = ast.PredTrue()
        check_predicate(ast.and_(t, ast.PredFalse(), ast.PredNot(t)), EMPTY)
        check_predicate(ast.or_(t, t), EMPTY)
        assert ast.and_() == ast.PredTrue()
        assert ast.or_() == ast.PredFalse()

    def test_predfunc_args_checked(self):
        bad = ast.PredFunc("lt", (ast.Const("x", INT),))
        with pytest.raises(TypecheckError):
            check_predicate(bad, EMPTY)


class TestExpressions:
    def test_const_type_checked(self):
        with pytest.raises(TypecheckError):
            infer_expression(ast.Const("x", INT), EMPTY)
        assert infer_expression(ast.Const(4, INT), EMPTY) == INT

    def test_p2e_requires_leaf(self):
        with pytest.raises(TypecheckError):
            infer_expression(ast.P2E(ast.STAR, INT), CONCRETE)
        expr = ast.P2E(ast.LEFT, INT)
        assert infer_expression(expr, CONCRETE) == INT

    def test_p2e_type_mismatch(self):
        with pytest.raises(TypecheckError):
            infer_expression(ast.P2E(ast.LEFT, STRING), CONCRETE)

    def test_agg_requires_single_column(self):
        with pytest.raises(TypecheckError):
            infer_expression(ast.Agg("SUM", R, INT), EMPTY)
        single = ast.Table("V", Leaf(INT))
        assert infer_expression(ast.Agg("SUM", single, INT), EMPTY) == INT

    def test_exprvar_scoping(self):
        v = ast.ExprVar("l", EMPTY, INT)
        assert infer_expression(v, EMPTY) == INT
        with pytest.raises(TypecheckError):
            infer_expression(v, CONCRETE)
        cast = ast.CastExpr(ast.EMPTYP, v)
        assert infer_expression(cast, CONCRETE) == INT

    def test_func(self):
        f = ast.Func("add", (ast.Const(1, INT), ast.Const(2, INT)), INT)
        assert infer_expression(f, EMPTY) == INT


class TestProjections:
    def test_star_left_right(self):
        assert infer_projection(ast.STAR, CONCRETE) == CONCRETE
        assert infer_projection(ast.LEFT, CONCRETE) == Leaf(INT)
        assert infer_projection(ast.RIGHT, CONCRETE) == Leaf(INT)

    def test_left_on_leaf_rejected(self):
        with pytest.raises(TypecheckError):
            infer_projection(ast.LEFT, Leaf(INT))

    def test_empty(self):
        assert infer_projection(ast.EMPTYP, CONCRETE) == EMPTY

    def test_compose_and_duplicate(self):
        two_deep = Node(CONCRETE, Leaf(INT))
        p = ast.Compose(ast.LEFT, ast.RIGHT)
        assert infer_projection(p, two_deep) == Leaf(INT)
        dup = ast.Duplicate(ast.RIGHT, ast.LEFT)
        assert infer_projection(dup, CONCRETE) == CONCRETE

    def test_path_builder(self):
        assert ast.path() == ast.STAR
        p = ast.path(ast.LEFT, ast.RIGHT)
        assert infer_projection(p, Node(CONCRETE, Leaf(INT))) == Leaf(INT)

    def test_pvar_source_checked(self):
        p = ast.PVar("p", SR, Leaf(INT))
        assert infer_projection(p, SR) == Leaf(INT)
        with pytest.raises(TypecheckError):
            infer_projection(p, SS)

    def test_e2p(self):
        proj = ast.E2P(ast.Const(1, INT), INT)
        assert infer_projection(proj, CONCRETE) == Leaf(INT)

    def test_proj_tuple_builder(self):
        p = ast.proj_tuple(ast.LEFT, ast.RIGHT, ast.LEFT)
        assert infer_projection(p, CONCRETE) == \
            Node(Leaf(INT), Node(Leaf(INT), Leaf(INT)))
        with pytest.raises(ValueError):
            ast.proj_tuple()
