"""Command-line interface."""

import json

import pytest

from repro.cli import CLIError, main, parse_table_spec
from repro.core.schema import FLOAT, INT, STRING


class TestTableSpecs:
    def test_parse_basic(self):
        name, columns = parse_table_spec("R(a:int,b:string)")
        assert name == "R"
        assert columns == [("a", INT), ("b", STRING)]

    def test_whitespace_tolerated(self):
        name, columns = parse_table_spec(" Emp( eid : int , did : int ) ")
        assert name == "Emp"
        assert len(columns) == 2

    def test_float_columns(self):
        name, columns = parse_table_spec("M(score:float,n:int)")
        assert name == "M"
        assert columns[0] == ("score", FLOAT)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CLIError, match="duplicate column 'a'"):
            parse_table_spec("R(a:int,a:string)")

    @pytest.mark.parametrize("bad", [
        "R",
        "R()",
        "R(a)",
        "R(a:decimal)",
        "(a:int)",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(CLIError):
            parse_table_spec(bad)


class TestCheckCommand:
    def test_equivalent_pair_exits_zero(self, capsys):
        code = main([
            "check", "--table", "R(a:int,b:int)",
            "SELECT DISTINCT a FROM R",
            "SELECT DISTINCT x.a FROM R AS x, R AS y WHERE x.a = y.a",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PROVED" in out
        assert "EQUIVALENT" in out

    def test_inequivalent_pair_is_disproved(self, capsys):
        code = main([
            "check", "--table", "R(a:int,b:int)",
            "SELECT a FROM R",
            "SELECT b FROM R",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "DISPROVED" in out
        assert "counterexample instance" in out

    def test_bad_table_spec_is_cli_error(self, capsys):
        code = main(["check", "--table", "R(?)", "SELECT a FROM R",
                     "SELECT a FROM R"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_cache_file_roundtrip(self, capsys, tmp_path):
        cache = str(tmp_path / "proofs.json")
        argv = ["check", "--table", "R(a:int)", "--cache", cache,
                "SELECT a FROM R", "SELECT a FROM R"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "cached" in capsys.readouterr().out


class TestBatchCheckCommand:
    def _write_jobs(self, tmp_path):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps({
            "tables": ["R(a:int,b:int)"],
            "pairs": [
                ["SELECT a FROM R", "SELECT a FROM R"],
                ["SELECT a FROM R", "SELECT b FROM R"],
                ["SELECT a FROM R", "SELECT a FROM R"],
            ],
        }))
        return str(jobs)

    def test_batch_reports_each_pair(self, capsys, tmp_path):
        import re
        code = main(["batch-check", self._write_jobs(tmp_path),
                     "--workers", "1"])
        assert code == 1  # one pair is disproved
        out = capsys.readouterr().out
        # Line-anchored: "DISPROVED" contains "PROVED" as a substring.
        assert len(re.findall(r"^PROVED", out, re.M)) == 2
        assert len(re.findall(r"^DISPROVED", out, re.M)) == 1
        assert "2 unique" in out

    def test_malformed_jobs_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert main(["batch-check", str(bad)]) == 2


class TestDisproveCommand:
    def test_disprove_buggy_rule(self, capsys):
        assert main(["disprove", "bad_union_distinct"]) == 0
        out = capsys.readouterr().out
        assert "DISPROVED" in out

    def test_disprove_sql_pair(self, capsys):
        code = main(["disprove", "--table", "R(a:int)",
                     "SELECT a FROM R", "SELECT DISTINCT a FROM R"])
        assert code == 0
        assert "counterexample" in capsys.readouterr().out

    def test_no_counterexample_for_sound_pair(self, capsys):
        code = main(["disprove", "--table", "R(a:int)",
                     "SELECT a FROM R", "SELECT a FROM R"])
        assert code == 1
        assert "NO COUNTEREXAMPLE" in capsys.readouterr().out

    def test_unknown_rule_is_cli_error(self):
        assert main(["disprove", "no_such_rule"]) == 2

    def test_parallel_search_same_witness(self, capsys):
        code = main(["disprove", "--table", "R(a:int)", "--max-rows", "3",
                     "SELECT a FROM R", "SELECT DISTINCT a FROM R"])
        serial = capsys.readouterr().out
        assert code == 0
        code = main(["disprove", "--table", "R(a:int)", "--max-rows", "3",
                     "--workers", "2", "--batch-size", "16",
                     "SELECT a FROM R", "SELECT DISTINCT a FROM R"])
        assert code == 0
        assert capsys.readouterr().out == serial

    def test_bad_workers_is_cli_error(self, capsys):
        code = main(["disprove", "--workers", "0", "bad_union_distinct"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_bad_batch_size_is_cli_error(self, capsys):
        code = main(["disprove", "--batch-size", "0",
                     "bad_union_distinct"])
        assert code == 2
        assert "--batch-size" in capsys.readouterr().err


class TestProveCommands:
    def test_prove_single_rule(self, capsys):
        assert main(["prove", "join_comm"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_prove_buggy_rule_rejection_is_success(self, capsys):
        # For an unsound rule, REJECTED is the expected outcome → exit 0.
        assert main(["prove", "bad_union_distinct"]) == 0
        out = capsys.readouterr().out
        assert "REJECTED" in out
        assert "counterexample" in out

    def test_prove_unknown_rule(self, capsys):
        assert main(["prove", "no_such_rule"]) == 2

    def test_rules_listing(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "join_comm" in out
        assert "UNSOUND CONTROL" in out

    def test_prove_all(self, capsys):
        assert main(["prove-all"]) == 0
        out = capsys.readouterr().out
        assert "23/23 core rules verified" in out
        assert "all rejected" in out


class TestOptimizeCommand:
    WORKLOAD = [
        "optimize",
        "--table", "Emp(eid:int,did:int,age:int)",
        "--table", "Dept(did:int,budget:int)",
        "--rows", "Emp=1000", "--rows", "Dept=20",
        "SELECT e.eid FROM Emp e, Dept d "
        "WHERE e.did = d.did AND d.budget > 100 AND e.age < 30",
    ]

    def test_optimize_certifies_and_explains(self, capsys):
        code = main(self.WORKLOAD)
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy           : saturation" in out
        assert "rewrite chain" in out
        assert "prover certificate : VERIFIED" in out
        assert "Scan Emp" in out
        # The pushed-down filter sits below the join in the cost tree.
        assert "sel_push" in out

    def test_bfs_strategy_flag(self, capsys):
        code = main(self.WORKLOAD + ["--strategy", "bfs"])
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy           : bfs" in out
        assert "plans enumerated" in out

    def test_sql_out_renders_plan(self, capsys):
        code = main(self.WORKLOAD + ["--sql-out"])
        assert code == 0
        assert "optimized SQL" in capsys.readouterr().out

    def test_no_certify_skips_proof(self, capsys):
        code = main(self.WORKLOAD + ["--no-certify"])
        assert code == 0
        assert "prover certificate : skipped" in capsys.readouterr().out

    def test_budget_knobs(self, capsys):
        code = main(self.WORKLOAD + ["--node-budget", "50",
                                     "--iterations", "2"])
        assert code == 0

    @pytest.mark.parametrize("bad", [
        ["--max-plans", "0"],
        ["--iterations", "0"],
        ["--node-budget", "-3"],
        ["--rows", "Emp"],
        ["--rows", "Emp=lots"],
        ["--rows", "Emp=-5"],
        ["--rows", "Emp=nan"],
        ["--rows", "Emp=inf"],
    ])
    def test_bad_knobs_are_cli_errors(self, capsys, bad):
        assert main(self.WORKLOAD + bad) == 2
        assert "error:" in capsys.readouterr().err

    def test_uncompilable_sql_is_cli_error(self, capsys):
        code = main(["optimize", "--table", "R(a:int)", "SELECT FROM"])
        assert code == 2
        assert "cannot compile" in capsys.readouterr().err


class TestExplainCommand:
    def test_explain_renders_cost_tree(self, capsys):
        code = main([
            "explain", "--table", "R(a:int,b:int)", "--rows", "R=500",
            "SELECT a FROM R WHERE a = 1 AND b = 2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scan R" in out
        assert "rows≈500.0" in out
        assert "Filter" in out

    def test_explain_handles_having_shapes(self, capsys):
        code = main([
            "explain", "--table", "R(a:int,b:int)",
            "SELECT a FROM R GROUP BY a HAVING SUM(b) > 10",
        ])
        assert code == 0
        assert "Aggregate SUM" in capsys.readouterr().out


class TestLintCommand:
    def test_all_corpora_satisfy_the_contract(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "corpus basic:" in out
        assert "corpus buggy:" in out
        assert "lint contract holds" in out

    def test_buggy_corpus_reports_every_annotated_defect(self, capsys):
        assert main(["lint", "--corpus", "buggy"]) == 0
        out = capsys.readouterr().out
        for code in ("RS110", "RS111", "RS112"):
            assert code in out

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failures"] == []
        assert payload["corpora"]["extended"]["errors"] == 0
        assert payload["corpora"]["buggy"]["errors"] == 5


class TestAnalyzeCommand:
    def test_reports_set_valuedness(self, capsys):
        code = main(["analyze", "--table", "R(a:int,b:int)",
                     "SELECT DISTINCT a FROM R"])
        assert code == 0
        out = capsys.readouterr().out
        assert "set-valued (duplicate-free): True" in out

    def test_detects_static_emptiness(self, capsys):
        code = main(["analyze", "--table", "R(a:int,b:int)", "--json",
                     "SELECT * FROM R WHERE a = 0 AND a = 1"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["empty"] is True
        assert payload["card"] == [0, 0]

    def test_key_flag_seeds_the_context(self, capsys):
        code = main(["analyze", "--table", "R(a:int,b:int)",
                     "--key", "R", "--json", "SELECT * FROM R"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["set_valued"] is True
        assert payload["keyed_tables"] == ["R"]

    def test_uncompilable_sql_is_cli_error(self, capsys):
        code = main(["analyze", "--table", "R(a:int)", "SELECT FROM"])
        assert code == 2
        assert "cannot compile" in capsys.readouterr().err
