"""Normalization: Lemmas 5.1/5.2, squash laws, sum-of-products form."""

from repro.core.normalize import (
    AEq,
    ANeg,
    APred,
    ARel,
    ASquash,
    NSUM_ONE,
    NSUM_ZERO,
    NSum,
    atom_alpha_key,
    normalize,
    nsum_alpha_key,
    nsum_to_uterm,
    nsums_alpha_equal,
    product_free_vars,
)
from repro.core.schema import EMPTY, INT, Leaf, Node, SVar
from repro.core.uninomial import (
    ONE,
    TConst,
    TPair,
    TVar,
    UAdd,
    UEq,
    UMul,
    UNeg,
    UPred,
    URel,
    USquash,
    USum,
    ZERO,
    fresh_var,
)

SR = SVar("sR")
S2 = Node(Leaf(INT), Leaf(INT))
T = TVar("t", SR)
P = TVar("p", S2)


def single_product(nsum: NSum):
    assert len(nsum.products) == 1
    return nsum.products[0]


class TestBasicForms:
    def test_zero_and_one(self):
        assert normalize(ZERO) == NSUM_ZERO
        assert normalize(ONE) == NSUM_ONE

    def test_rel_atom(self):
        p = single_product(normalize(URel("R", T)))
        assert p.factors == (ARel("R", T),)
        assert p.vars == ()

    def test_add_concatenates(self):
        n = normalize(UAdd(URel("R", T), URel("S", T)))
        assert len(n.products) == 2

    def test_mul_distributes_over_add(self):
        # (R + S) × P -> R×P + S×P  — the Figure 1 proof step.
        u = UMul(UAdd(URel("R", T), URel("S", T)), UPred("b", (T,)))
        n = normalize(u)
        assert len(n.products) == 2
        for p in n.products:
            kinds = {type(f) for f in p.factors}
            assert kinds == {ARel, APred}

    def test_mul_zero_annihilates(self):
        assert normalize(UMul(URel("R", T), ZERO)) == NSUM_ZERO


class TestLemma51PairSplitting:
    def test_bound_pair_variable_splits(self):
        x = fresh_var(S2, "x")
        u = USum(x, URel("R", x))
        p = single_product(normalize(u))
        assert len(p.vars) == 2
        assert all(v.var_schema == Leaf(INT) for v in p.vars)

    def test_unit_variable_dropped(self):
        x = fresh_var(EMPTY, "x")
        u = USum(x, URel("R", x))
        p = single_product(normalize(u))
        assert p.vars == ()

    def test_svar_variable_kept_opaque(self):
        x = fresh_var(SR, "x")
        u = USum(x, URel("R", x))
        p = single_product(normalize(u))
        assert len(p.vars) == 1
        assert p.vars[0].var_schema == SR


class TestLemma52PointElimination:
    def test_pinned_variable_eliminated(self):
        x = fresh_var(SR, "x")
        u = USum(x, UMul(UEq(x, T), URel("R", x)))
        p = single_product(normalize(u))
        assert p.vars == ()
        assert p.factors == (ARel("R", T),)

    def test_elimination_respects_occurs_check(self):
        # Σ x. (x.1 = f(x)) × ... cannot eliminate x; here simulate with
        # an equality whose other side mentions x.
        x = fresh_var(SR, "x")
        from repro.core.uninomial import TApp
        u = USum(x, UMul(UEq(x, TApp("f", (x,), SR)), URel("R", x)))
        p = single_product(normalize(u))
        assert len(p.vars) == 1

    def test_chain_elimination(self):
        x = fresh_var(SR, "x")
        y = fresh_var(SR, "y")
        u = USum(x, USum(y, UMul(UEq(x, y),
                                 UMul(UEq(y, T), URel("R", x)))))
        p = single_product(normalize(u))
        assert p.vars == ()
        assert p.factors == (ARel("R", T),)


class TestEqualityDecomposition:
    def test_pair_equality_splits(self):
        a = TVar("a", Leaf(INT))
        b = TVar("b", Leaf(INT))
        u = UEq(TPair(a, b), P)
        p = single_product(normalize(u))
        assert len(p.factors) == 2
        assert all(isinstance(f, AEq) for f in p.factors)

    def test_constant_conflict_is_zero(self):
        u = UEq(TConst(1, INT), TConst(2, INT))
        assert normalize(u) == NSUM_ZERO

    def test_reflexivity_is_one(self):
        assert normalize(UEq(T, T)) == NSUM_ONE


class TestSquashLaws:
    def test_squash_of_props_inlines(self):
        u = USquash(UMul(UPred("b", (T,)), UPred("c", (T,))))
        p = single_product(normalize(u))
        assert {type(f) for f in p.factors} == {APred}

    def test_props_pull_out_of_squash(self):
        # ‖R t × b t‖ = ‖R t‖ × b t
        u = USquash(UMul(URel("R", T), UPred("b", (T,))))
        p = single_product(normalize(u))
        kinds = sorted(type(f).__name__ for f in p.factors)
        assert kinds == ["APred", "ASquash"]

    def test_duplicates_collapse_under_squash(self):
        # ‖R t × R t‖ = ‖R t‖
        u = USquash(UMul(URel("R", T), URel("R", T)))
        p = single_product(normalize(u))
        squash = p.factors[0]
        assert isinstance(squash, ASquash)
        inner = single_product(squash.inner)
        assert inner.factors == (ARel("R", T),)

    def test_squash_of_zero_is_zero(self):
        assert normalize(USquash(ZERO)) == NSUM_ZERO

    def test_squash_containing_one_vanishes(self):
        u = UMul(URel("R", T), USquash(UAdd(ONE, URel("S", T))))
        p = single_product(normalize(u))
        assert p.factors == (ARel("R", T),)


class TestNegation:
    def test_neg_of_zero_vanishes(self):
        u = UMul(URel("R", T), UNeg(ZERO))
        p = single_product(normalize(u))
        assert p.factors == (ARel("R", T),)

    def test_neg_of_one_kills_product(self):
        u = UMul(URel("R", T), UNeg(ONE))
        assert normalize(u) == NSUM_ZERO

    def test_except_shape(self):
        u = UMul(URel("R", T), UNeg(URel("S", T)))
        p = single_product(normalize(u))
        kinds = sorted(type(f).__name__ for f in p.factors)
        assert kinds == ["ANeg", "ARel"]


class TestAlphaKeys:
    def test_alpha_equivalent_sums_share_keys(self):
        x = fresh_var(SR, "x")
        y = fresh_var(SR, "y")
        n1 = normalize(USum(x, UMul(URel("R", x), UPred("b", (x,)))))
        n2 = normalize(USum(y, UMul(URel("R", y), UPred("b", (y,)))))
        assert nsums_alpha_equal(n1, n2)
        assert nsum_alpha_key(n1) == nsum_alpha_key(n2)

    def test_different_relations_differ(self):
        x = fresh_var(SR, "x")
        y = fresh_var(SR, "y")
        n1 = normalize(USum(x, URel("R", x)))
        n2 = normalize(USum(y, URel("S", y)))
        assert not nsums_alpha_equal(n1, n2)

    def test_eq_atom_key_symmetric(self):
        a = TVar("a", Leaf(INT))
        b = TVar("b", Leaf(INT))
        assert atom_alpha_key(AEq(a, b)) == atom_alpha_key(AEq(b, a))


class TestRoundTrip:
    def test_nsum_to_uterm_renders(self):
        u = UMul(UAdd(URel("R", T), URel("S", T)), UPred("b", (T,)))
        n = normalize(u)
        back = nsum_to_uterm(n)
        # Round-tripped term normalizes to an alpha-equal normal form.
        assert nsums_alpha_equal(normalize(back), n)

    def test_free_vars(self):
        x = fresh_var(SR, "x")
        n = normalize(USum(x, UMul(URel("R", x), UEq(x, T))))
        p = single_product(n)
        assert product_free_vars(p) == {T}
