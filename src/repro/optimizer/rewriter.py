"""Plan rewriting with certified transformations.

The paper's motivation (Sec. 1): optimizers enumerate plans by applying
rewrite rules, and unsound rules ship wrong answers.  This module is the
downstream consumer of the verified rule library — a small Volcano-style
rewriter whose every transformation is an instance of a rule proved by the
engine, and which can additionally re-certify any concrete rewrite it
performs by calling the prover on the before/after pair.

Each transformation takes a core query and yields ``(rewritten, rule
name)`` candidates; :func:`rewrites` applies them at every subquery
position.

Two consumers share these transformations:

* the ``strategy="bfs"`` fallback planner applies them term-at-a-time
  through :func:`rewrites` (the historical Volcano path), and
* the equality-saturation planner applies the *same* rules at every
  e-class through :mod:`repro.optimizer.saturate`, which reuses the
  path-analysis helpers exported here (:func:`predicate_paths`,
  :func:`rewrite_predicate_paths`, :func:`flatten_conjuncts`) so the
  two strategies can never drift apart on what a rule means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..core import ast

#: A rewrite candidate: the transformed query and the rule's name.
Candidate = Tuple[ast.Query, str]


# ---------------------------------------------------------------------------
# Projection-path analysis (for selection pushdown)
# ---------------------------------------------------------------------------

def proj_steps(proj: ast.Projection) -> Optional[Tuple[str, ...]]:
    """Flatten a pure path projection to L/R steps (None if not a path).

    Stash-memoized per (interned, immutable) node — path analysis runs
    per e-node per saturation iteration, on heavily shared projections.
    The stash stores ``(result,)`` so a cached ``None`` is
    distinguishable from a cold miss.
    """
    cached = proj.__dict__.get("_hc_psteps")
    if cached is not None:
        return cached[0]
    result = _proj_steps(proj)
    object.__setattr__(proj, "_hc_psteps", (result,))
    return result


def _proj_steps(proj: ast.Projection) -> Optional[Tuple[str, ...]]:
    if isinstance(proj, ast.Star):
        return ()
    if isinstance(proj, ast.LeftP):
        return ("L",)
    if isinstance(proj, ast.RightP):
        return ("R",)
    if isinstance(proj, ast.Compose):
        first = proj_steps(proj.first)
        second = proj_steps(proj.second)
        if first is None or second is None:
            return None
        return first + second
    return None


def steps_to_proj(steps: Sequence[str]) -> ast.Projection:
    """Rebuild a path projection from L/R steps."""
    parts = [ast.LEFT if s == "L" else ast.RIGHT for s in steps]
    return ast.path(*parts) if parts else ast.STAR


def predicate_paths(pred: ast.Predicate) -> Optional[List[Tuple[str, ...]]]:
    """All attribute paths a predicate dereferences, or None if opaque.

    Opaque constructs (metavariables, EXISTS, casts) make pushdown analysis
    unsound, so the rewriter conservatively refuses them.

    Stash-memoized per interned node (callers only read the result); the
    stash stores ``(result,)`` so a cached ``None`` hits too.
    """
    cached = pred.__dict__.get("_hc_ppaths")
    if cached is not None:
        return cached[0]
    result = _predicate_paths(pred)
    object.__setattr__(pred, "_hc_ppaths", (result,))
    return result


def _predicate_paths(pred: ast.Predicate) -> Optional[List[Tuple[str, ...]]]:
    if isinstance(pred, ast.PredEq):
        return _merge(_expression_paths(pred.left),
                      _expression_paths(pred.right))
    if isinstance(pred, (ast.PredAnd, ast.PredOr)):
        return _merge(predicate_paths(pred.left),
                      predicate_paths(pred.right))
    if isinstance(pred, ast.PredNot):
        return predicate_paths(pred.operand)
    if isinstance(pred, (ast.PredTrue, ast.PredFalse)):
        return []
    if isinstance(pred, ast.PredFunc):
        out: Optional[List[Tuple[str, ...]]] = []
        for arg in pred.args:
            out = _merge(out, _expression_paths(arg))
        return out
    return None  # Exists, CastPred, PredVar: opaque


def _expression_paths(expr: ast.Expression) -> Optional[List[Tuple[str, ...]]]:
    if isinstance(expr, ast.P2E):
        steps = proj_steps(expr.projection)
        return None if steps is None else [steps]
    if isinstance(expr, ast.Const):
        return []
    if isinstance(expr, ast.Func):
        out: Optional[List[Tuple[str, ...]]] = []
        for arg in expr.args:
            out = _merge(out, _expression_paths(arg))
        return out
    return None  # Agg, CastExpr, ExprVar: opaque


def _merge(a, b):
    if a is None or b is None:
        return None
    return a + b


def rewrite_predicate_paths(pred: ast.Predicate, old_prefix: Tuple[str, ...],
                            new_prefix: Tuple[str, ...]) -> ast.Predicate:
    """Replace a leading path prefix in every attribute reference."""
    if isinstance(pred, ast.PredEq):
        return ast.PredEq(
            _rewrite_expression_paths(pred.left, old_prefix, new_prefix),
            _rewrite_expression_paths(pred.right, old_prefix, new_prefix))
    if isinstance(pred, ast.PredAnd):
        return ast.PredAnd(
            rewrite_predicate_paths(pred.left, old_prefix, new_prefix),
            rewrite_predicate_paths(pred.right, old_prefix, new_prefix))
    if isinstance(pred, ast.PredOr):
        return ast.PredOr(
            rewrite_predicate_paths(pred.left, old_prefix, new_prefix),
            rewrite_predicate_paths(pred.right, old_prefix, new_prefix))
    if isinstance(pred, ast.PredNot):
        return ast.PredNot(
            rewrite_predicate_paths(pred.operand, old_prefix, new_prefix))
    if isinstance(pred, (ast.PredTrue, ast.PredFalse)):
        return pred
    if isinstance(pred, ast.PredFunc):
        return ast.PredFunc(pred.name, tuple(
            _rewrite_expression_paths(a, old_prefix, new_prefix)
            for a in pred.args))
    raise ValueError(f"cannot rewrite opaque predicate {pred!r}")


def _rewrite_expression_paths(expr: ast.Expression,
                              old_prefix: Tuple[str, ...],
                              new_prefix: Tuple[str, ...]) -> ast.Expression:
    if isinstance(expr, ast.P2E):
        steps = proj_steps(expr.projection)
        if steps is None:
            raise ValueError("opaque projection in pushdown rewrite")
        if steps[:len(old_prefix)] == old_prefix:
            steps = new_prefix + steps[len(old_prefix):]
        return ast.P2E(steps_to_proj(steps), expr.ty)
    if isinstance(expr, ast.Const):
        return expr
    if isinstance(expr, ast.Func):
        return ast.Func(expr.name, tuple(
            _rewrite_expression_paths(a, old_prefix, new_prefix)
            for a in expr.args), expr.ty)
    raise ValueError(f"cannot rewrite opaque expression {expr!r}")


# ---------------------------------------------------------------------------
# Transformations (each an instance of a verified rule)
# ---------------------------------------------------------------------------

def _split_where(query: ast.Query) -> Iterator[Candidate]:
    """Where(q, b1 AND b2) → Where(Where(q, b1), b2)  [rule sel_split]."""
    if isinstance(query, ast.Where) and isinstance(query.predicate,
                                                   ast.PredAnd):
        yield (ast.Where(ast.Where(query.query, query.predicate.left),
                         query.predicate.right), "sel_split")
        # The commuted order (an instance of sel_comm) lets either conjunct
        # reach the operator below.
        yield (ast.Where(ast.Where(query.query, query.predicate.right),
                         query.predicate.left), "sel_split+sel_comm")


def _merge_where(query: ast.Query) -> Iterator[Candidate]:
    """Where(Where(q, b1), b2) → Where(q, b1 AND b2)  [sel_split, reversed]."""
    if isinstance(query, ast.Where) and isinstance(query.query, ast.Where):
        inner = query.query
        yield (ast.Where(inner.query,
                         ast.PredAnd(inner.predicate, query.predicate)),
               "sel_split⁻¹")


def _push_where_into_product(query: ast.Query) -> Iterator[Candidate]:
    """σ_b(L × R) → σ'_b(L) × R when b touches only L  [selection pushdown].

    The predicate lives in context ``node Γ (node σL σR)``; references into
    the left operand start with the path R.L.  Pushing rewrites R.L→R.
    Outer-context references (prefix L) also survive unchanged.
    """
    if not (isinstance(query, ast.Where)
            and isinstance(query.query, ast.Product)):
        return
    paths = predicate_paths(query.predicate)
    if paths is None:
        return
    product = query.query
    if all(p[:2] == ("R", "L") or p[:1] == ("L",) for p in paths):
        pushed = rewrite_predicate_paths(query.predicate, ("R", "L"), ("R",))
        yield (ast.Product(ast.Where(product.left, pushed), product.right),
               "sel_push_left")
    if all(p[:2] == ("R", "R") or p[:1] == ("L",) for p in paths):
        pushed = rewrite_predicate_paths(query.predicate, ("R", "R"), ("R",))
        yield (ast.Product(product.left, ast.Where(product.right, pushed)),
               "sel_push_right")


def _push_where_below_union(query: ast.Query) -> Iterator[Candidate]:
    """σ_b(A ∪ B) → σ_b(A) ∪ σ_b(B)  [rule sel_union_distr, Figure 1]."""
    if isinstance(query, ast.Where) and isinstance(query.query, ast.UnionAll):
        union = query.query
        yield (ast.UnionAll(ast.Where(union.left, query.predicate),
                            ast.Where(union.right, query.predicate)),
               "sel_union_distr")


def _collapse_distinct(query: ast.Query) -> Iterator[Candidate]:
    """DISTINCT DISTINCT q → DISTINCT q  [rule distinct_idem]."""
    if isinstance(query, ast.Distinct) and isinstance(query.query,
                                                      ast.Distinct):
        yield (query.query, "distinct_idem")


def flatten_conjuncts(pred: ast.Predicate) -> List[ast.Predicate]:
    """The conjuncts of a right/left-nested AND tree, in order.

    Stash-memoized per interned node; callers concatenate or dedup the
    result into fresh containers, never mutate it in place.
    """
    cached = pred.__dict__.get("_hc_conj")
    if cached is not None:
        return cached
    if isinstance(pred, ast.PredAnd):
        result = flatten_conjuncts(pred.left) + flatten_conjuncts(pred.right)
    else:
        result = [pred]
    object.__setattr__(pred, "_hc_conj", result)
    return result


def _dedup_conjuncts(query: ast.Query) -> Iterator[Candidate]:
    """σ_{b ∧ b}(q) → σ_b(q)  [conjunct idempotence: b ∧ b ⇔ b].

    Duplicate conjuncts arise from mechanical predicate assembly (ORMs,
    view inlining, the rewriter's own merge step) and survive
    ``optimize()`` verbatim without this rule; predicates are squashed
    propositions, so repetition is semantically free but pollutes
    decompiled SQL and double-counts selectivity estimates.
    """
    if not isinstance(query, ast.Where):
        return
    conjuncts = flatten_conjuncts(query.predicate)
    unique = list(dict.fromkeys(conjuncts))
    if len(unique) < len(conjuncts):
        yield (ast.Where(query.query, ast.and_(*unique)),
               "sel_conj_dedup")


#: The transformation suite, in application order.
TRANSFORMATIONS = (
    _split_where,
    _merge_where,
    _push_where_into_product,
    _push_where_below_union,
    _collapse_distinct,
    _dedup_conjuncts,
)


def rewrites(query: ast.Query) -> List[Candidate]:
    """All single-step rewrites of ``query``, applied at every position.

    Stash-memoized per interned node: the BFS frontier and rewrite
    certification revisit the same (sub)plans constantly, and a plan's
    one-step neighbourhood is a pure function of the plan.  Callers
    iterate the result; they never mutate it.
    """
    cached = query.__dict__.get("_hc_rw")
    if cached is not None:
        return cached
    out: List[Candidate] = []
    for transform in TRANSFORMATIONS:
        out.extend(transform(query))
    for field_name, child in _child_queries(query):
        for rewritten_child, rule in rewrites(child):
            out.append((_replace_child(query, field_name, rewritten_child),
                        rule))
    object.__setattr__(query, "_hc_rw", out)
    return out


def _child_queries(query: ast.Query):
    if isinstance(query, ast.Select):
        yield "query", query.query
    elif isinstance(query, ast.Product):
        yield "left", query.left
        yield "right", query.right
    elif isinstance(query, ast.Where):
        yield "query", query.query
    elif isinstance(query, (ast.UnionAll, ast.Except)):
        yield "left", query.left
        yield "right", query.right
    elif isinstance(query, ast.Distinct):
        yield "query", query.query


# ---------------------------------------------------------------------------
# Pipeline-backed re-certification
# ---------------------------------------------------------------------------

@dataclass
class CertifiedCandidate:
    """A rewrite candidate together with its verification verdict."""

    query: ast.Query
    rule: str
    verdict: object  # repro.solver.Verdict (kept untyped: layering)

    @property
    def certified(self) -> bool:
        return self.verdict.proved


def certified_rewrites(query: ast.Query,
                       pipeline=None) -> List[CertifiedCandidate]:
    """All single-step rewrites of ``query``, each re-proved end to end.

    Every candidate :func:`rewrites` emits is an instance of a rule the
    engine has verified, so certification *should* never fail — this is
    the belt-and-braces check the paper's motivation demands, now served
    by the tiered pipeline so repeated shapes hit the proof cache.
    Returns only the candidates whose re-proof succeeded.
    """
    if pipeline is None:
        from ..solver.pipeline import default_pipeline
        pipeline = default_pipeline()
    out: List[CertifiedCandidate] = []
    for candidate, rule in rewrites(query):
        verdict = pipeline.check(query, candidate, prove_only=True)
        if verdict.proved:
            out.append(CertifiedCandidate(query=candidate, rule=rule,
                                          verdict=verdict))
    return out


def _replace_child(query: ast.Query, field_name: str,
                   child: ast.Query) -> ast.Query:
    if isinstance(query, ast.Select):
        return ast.Select(query.projection, child)
    if isinstance(query, ast.Product):
        return ast.Product(child, query.right) if field_name == "left" \
            else ast.Product(query.left, child)
    if isinstance(query, ast.Where):
        return ast.Where(child, query.predicate)
    if isinstance(query, ast.UnionAll):
        return ast.UnionAll(child, query.right) if field_name == "left" \
            else ast.UnionAll(query.left, child)
    if isinstance(query, ast.Except):
        return ast.Except(child, query.right) if field_name == "left" \
            else ast.Except(query.left, child)
    if isinstance(query, ast.Distinct):
        return ast.Distinct(child)
    raise TypeError(f"cannot rebuild query node {query!r}")
