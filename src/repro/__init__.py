"""HoTTSQL reproduction: proving SQL query rewrites with semiring semantics.

A from-scratch Python reproduction of *HoTTSQL: Proving Query Rewrites with
Univalent SQL Semantics* (Chu, Weitz, Cheung, Suciu — PLDI 2017) and its
system DOPCERT:

* :mod:`repro.session` — **the front door**: :class:`Session` owns the
  catalog, the tiered verification pipeline, the proof cache, and the
  worker pool; :class:`QueryHandle` memoizes each query's compilation and
  normal form so repeated checks never renormalize.
* :mod:`repro.core` — the HoTTSQL data model, syntax, denotational
  semantics into the UniNomial algebra, and the equivalence prover
  (normalization, congruence closure, Lemma 5.1–5.3 tactics, the automated
  conjunctive-query decision procedure).
* :mod:`repro.solver` — the verification service layer: tiered pipeline,
  content-addressed proof cache, bounded-exhaustive disprover, and the
  multiprocessing batch service.
* :mod:`repro.semiring` — K-relations over commutative semirings, with the
  paper's generalization to infinite cardinal multiplicities.
* :mod:`repro.engine` — the executable semantics (Figure 7 over any
  semiring) and the random-instance falsifier.
* :mod:`repro.rules` — the 23 rewrite rules of the paper's Figure 8, plus
  deliberately unsound optimizer rewrites the system must reject.
* :mod:`repro.sql` — a named SQL frontend compiling to the unnamed model
  (and, via :mod:`repro.sql.decompile`, back out again).
* :mod:`repro.optimizer` — a certified cost-based plan rewriter.
* :mod:`repro.obs` — the observability layer: hierarchical spans with a
  Chrome trace-event exporter, a process-wide metrics registry whose
  snapshots merge across worker processes, and the ``repro`` logging
  hierarchy.
* :mod:`repro.errors` — one :class:`ReproError` base under every
  library exception.
* :mod:`repro.theory` — the decidability landscape of Figure 9.

Quickstart::

    from repro import Session

    with Session.from_tables("R(a:int,b:int)") as session:
        q1 = session.sql("SELECT DISTINCT a FROM R")
        q2 = session.sql("SELECT DISTINCT x.a FROM R AS x, R AS y "
                         "WHERE x.a = y.a")
        assert q1.equivalent_to(q2).proved     # self-join elimination
        plan = q2.optimize()                   # certified plan search
        print(plan.sql())                      # decompiled back to SQL
        report = session.check_all_pairs()     # one normalize per query

Migrating from the pre-session surface:

=====================================================  =======================================================
Old call                                               New call
=====================================================  =======================================================
``Catalog(); catalog.add_table("R", cols)``            ``Session.from_tables("R(a:int,b:int)")``
``compile_sql(sql, catalog)``                          ``session.sql(sql)``
``queries_equivalent(q1, q2)``                         ``h1.equivalent_to(h2).proved``
``check_query_equivalence(q1, q2)``                    ``h1.equivalent_to(h2)`` (a structured ``Verdict``)
``Pipeline().check(q1, q2)``                           ``session.check(sql1, sql2)``
``disprove(q1, q2)``                                   ``h1.disprove(h2)``
``optimize(query, stats)``                             ``h.optimize(stats)`` (a ``PlanHandle``)
``VerificationService().check_batch(jobs)``            ``session.check_batch(jobs)``
``pipeline.cache.save(path)``                          ``Session.from_tables(..., cache=path)`` + ``with``
=====================================================  =======================================================

The old entry points still work — ``compile_sql``, ``Pipeline``, and the
rest import and behave exactly as before; only the two top-level free
functions ``repro.queries_equivalent`` and ``repro.check_query_equivalence``
emit a :class:`DeprecationWarning` (their :mod:`repro.core` homes stay
warning-free for internal use).
"""

import warnings as _warnings

from . import obs
from .core import (
    BOOL,
    EMPTY,
    FDConstraint,
    Hypotheses,
    INT,
    KeyConstraint,
    STRING,
    SVar,
    Schema,
    ast,
    cq_equivalent,
    decide_cq,
    denote_closed,
)
from .core.equivalence import (
    check_query_equivalence as _check_query_equivalence,
    queries_equivalent as _queries_equivalent,
)
from .engine import Database, Interpretation, run_query
from .errors import ReproError
from .rules import all_rules, get_rule, rules_by_category
from .semiring import KRelation, NAT, NAT_INF, PROVENANCE
from .session import (
    PairResult,
    PairwiseReport,
    PlanHandle,
    QueryHandle,
    Session,
    SessionError,
    TableSpecError,
)
from .solver import (
    BatchReport,
    Bound,
    Job,
    Pipeline,
    PipelineConfig,
    ProofCache,
    Status,
    Verdict,
    VerificationService,
)
from .sql import Catalog, compile_sql, query_to_str

__version__ = "2.0.0"


def queries_equivalent(q1, q2, ctx_schema=None, hyps=None):
    """Deprecated shim — use :meth:`QueryHandle.equivalent_to` (or
    :func:`repro.core.equivalence.queries_equivalent` directly)."""
    _warnings.warn(
        "repro.queries_equivalent is deprecated; open a repro.Session and "
        "use QueryHandle.equivalent_to(...).proved",
        DeprecationWarning, stacklevel=2)
    if hyps is None:
        return _queries_equivalent(q1, q2, ctx_schema)
    return _queries_equivalent(q1, q2, ctx_schema, hyps)


def check_query_equivalence(q1, q2, ctx_schema=None, hyps=None, **kwargs):
    """Deprecated shim — use :meth:`QueryHandle.equivalent_to` (or
    :func:`repro.core.equivalence.check_query_equivalence` directly)."""
    _warnings.warn(
        "repro.check_query_equivalence is deprecated; open a repro.Session "
        "and use QueryHandle.equivalent_to(...)",
        DeprecationWarning, stacklevel=2)
    if hyps is None:
        return _check_query_equivalence(q1, q2, ctx_schema, **kwargs)
    return _check_query_equivalence(q1, q2, ctx_schema, hyps, **kwargs)


__all__ = [
    "BOOL",
    "BatchReport",
    "Bound",
    "Catalog",
    "Database",
    "EMPTY",
    "FDConstraint",
    "Hypotheses",
    "INT",
    "Interpretation",
    "Job",
    "KRelation",
    "KeyConstraint",
    "NAT",
    "NAT_INF",
    "PROVENANCE",
    "PairResult",
    "PairwiseReport",
    "Pipeline",
    "PipelineConfig",
    "PlanHandle",
    "ProofCache",
    "QueryHandle",
    "ReproError",
    "STRING",
    "SVar",
    "Schema",
    "Session",
    "SessionError",
    "Status",
    "TableSpecError",
    "Verdict",
    "VerificationService",
    "__version__",
    "all_rules",
    "ast",
    "check_query_equivalence",
    "compile_sql",
    "cq_equivalent",
    "decide_cq",
    "denote_closed",
    "get_rule",
    "obs",
    "queries_equivalent",
    "query_to_str",
    "rules_by_category",
    "run_query",
]
