"""Static analysis tier: plan-property inference and rule linting.

The paper's pitch is that bad rewrites "fail to pass our formal
verification" — but the prover and the random-instance oracle both
*execute* semantics.  This package adds the tier in front of them: a
bottom-up abstract interpretation over core plans
(:mod:`.properties` / :mod:`.infer`) computing duplicate-freeness,
guaranteed emptiness, key sets, cardinality intervals, and static
predicate satisfiability; and a corpus linter for rewrite rules
(:mod:`.rulecheck`) that flags whole defect classes with stable
diagnostic codes before any prover runs.

The facts pay downstream: saturation gains property-guarded rewrites
(still re-certified by the pipeline), the disprover prunes its instance
enumeration, and the cost model tightens selectivities.
"""

from .infer import (
    AnalysisContext,
    EMPTY_CONTEXT,
    infer_properties,
    pred_sat,
    supports_determined,
)
from .properties import Interval, PlanProperties, Sat
from .rulecheck import (
    Diagnostic,
    ExpectedDefect,
    LintReport,
    Severity,
    lint_rule,
    lint_rules,
)

__all__ = [
    "AnalysisContext",
    "Diagnostic",
    "EMPTY_CONTEXT",
    "ExpectedDefect",
    "Interval",
    "LintReport",
    "PlanProperties",
    "Sat",
    "Severity",
    "infer_properties",
    "lint_rule",
    "lint_rules",
    "pred_sat",
    "supports_determined",
]
