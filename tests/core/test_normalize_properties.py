"""Property tests on the normalizer over randomly generated UniNomial terms.

Three properties, hypothesis-driven:

* **idempotence** — normalizing a normal form changes nothing (up to
  alpha), so the rewrite system has reached a fixpoint;
* **soundness** — the concrete interpretation of a term is unchanged by
  normalization, for every environment over small domains;
* **zero/one detection** — terms built to be 0 or 1 normalize to the
  canonical empty/unit forms.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.interp import eval_uterm
from repro.core.normalize import (
    NSUM_ONE,
    NSUM_ZERO,
    normalize,
    nsum_alpha_key,
    nsum_to_uterm,
)
from repro.core.schema import INT, Leaf, Node, enumerate_tuples
from repro.core.uninomial import (
    ONE,
    TConst,
    TVar,
    UAdd,
    UEq,
    UMul,
    UNeg,
    UPred,
    URel,
    USquash,
    USum,
    UTerm,
    ZERO,
    fresh_var,
    tfst,
    tsnd,
    uterm_free_vars,
)
from repro.engine.database import Interpretation
from repro.engine.random_instances import random_relation
from repro.semiring import NAT

DOMAINS = {"int": (0, 1)}
SCHEMA = Node(Leaf(INT), Leaf(INT))


def _random_term(rng: random.Random, scope):
    """A random tuple term over the variables in scope."""
    var = rng.choice(scope)
    choice = rng.randrange(4)
    if choice == 0:
        return var
    if choice == 1:
        return tfst(var)
    if choice == 2:
        return tsnd(var)
    return TConst(rng.randrange(2), INT)


def _random_uterm(rng: random.Random, scope, depth: int) -> UTerm:
    """A random UniNomial term with free variables from ``scope``."""
    choice = rng.randrange(8 if depth > 0 else 4)
    if choice == 0:
        return URel(rng.choice(("R", "S")), rng.choice(scope))
    if choice == 1:
        left = _random_term(rng, scope)
        right = _random_term(rng, scope)
        return UEq(left, right) if _schemas_match(left, right) \
            else URel("R", rng.choice(scope))
    if choice == 2:
        return UPred("b", (rng.choice(scope),))
    if choice == 3:
        return rng.choice((ZERO, ONE))
    if choice == 4:
        return UAdd(_random_uterm(rng, scope, depth - 1),
                    _random_uterm(rng, scope, depth - 1))
    if choice == 5:
        return UMul(_random_uterm(rng, scope, depth - 1),
                    _random_uterm(rng, scope, depth - 1))
    if choice == 6:
        return USquash(_random_uterm(rng, scope, depth - 1))
    var = fresh_var(SCHEMA, "z")
    return USum(var, _random_uterm(rng, scope + [var], depth - 1))


def _schemas_match(a, b) -> bool:
    try:
        return a.schema == b.schema
    except TypeError:
        return False


def _environment(rng: random.Random, free_vars):
    env = {}
    for var in free_vars:
        space = list(enumerate_tuples(var.var_schema, DOMAINS))
        env[var] = rng.choice(space)
    return env


def _interp(rng: random.Random) -> Interpretation:
    interp = Interpretation()
    for name in ("R", "S"):
        interp.relations[name] = random_relation(
            rng, SCHEMA, NAT, max_rows=3, max_multiplicity=2,
            domains=DOMAINS)
    interp.predicates["b"] = lambda t: (hash(("b", t)) & 1) == 0
    return interp


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10**9))
def test_normalize_is_idempotent(seed):
    rng = random.Random(seed)
    root = fresh_var(SCHEMA, "t")
    u = _random_uterm(rng, [root], depth=3)
    once = normalize(u)
    twice = normalize(nsum_to_uterm(once))
    assert nsum_alpha_key(once) == nsum_alpha_key(twice)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10**9))
def test_normalize_preserves_interpretation(seed):
    rng = random.Random(seed)
    root = fresh_var(SCHEMA, "t")
    u = _random_uterm(rng, [root], depth=3)
    normalized = nsum_to_uterm(normalize(u))
    interp = _interp(rng)
    for _ in range(4):
        env = _environment(rng, uterm_free_vars(u))
        before = eval_uterm(u, env, interp, NAT, DOMAINS)
        after = eval_uterm(normalized, dict(env), interp, NAT, DOMAINS)
        assert before == after


class TestCanonicalForms:
    def test_zero_detection(self):
        t = TVar("t", SCHEMA)
        assert normalize(UMul(URel("R", t), ZERO)) == NSUM_ZERO
        assert normalize(UEq(TConst(0, INT), TConst(1, INT))) == NSUM_ZERO
        assert normalize(UNeg(ONE)) == NSUM_ZERO

    def test_one_detection(self):
        t = TVar("t", SCHEMA)
        assert normalize(UEq(t, t)) == NSUM_ONE
        assert normalize(USquash(ONE)) == NSUM_ONE
        assert normalize(UNeg(ZERO)) == NSUM_ONE
