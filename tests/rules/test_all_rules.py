"""The headline result: all 23 Figure 8 rules verify; buggy rules fail.

This is the paper's evaluation as a test suite:

* every sound rule typechecks, is proved by the engine, and survives the
  random-instance oracle;
* the per-category rule counts match Figure 8 exactly;
* the conjunctive-query rules are decided fully automatically;
* every deliberately unsound rule is rejected by the prover AND refuted by
  a concrete counterexample.
"""

import pytest

from repro.rules import (
    CATEGORY_ORDER,
    PAPER_FIGURE_8,
    all_buggy_rules,
    all_rules,
    get_rule,
    rules_by_category,
)

SOUND = all_rules()
BUGGY = all_buggy_rules()


class TestFigure8Counts:
    def test_total_rule_count_is_23(self):
        assert len(SOUND) == 23

    @pytest.mark.parametrize("category", CATEGORY_ORDER)
    def test_category_counts_match_paper(self, category):
        expected_count, _ = PAPER_FIGURE_8[category]
        assert len(rules_by_category()[category]) == expected_count

    def test_rule_names_unique(self):
        names = [r.name for r in SOUND + BUGGY]
        assert len(set(names)) == len(names)

    def test_get_rule(self):
        assert get_rule("join_comm").category == "basic"
        with pytest.raises(KeyError):
            get_rule("nonexistent")


@pytest.mark.parametrize("rule", SOUND, ids=lambda r: r.name)
class TestSoundRules:
    def test_typechecks(self, rule):
        lhs_schema, rhs_schema = rule.typecheck()
        assert lhs_schema == rhs_schema

    def test_proved_by_engine(self, rule):
        proof = rule.prove()
        assert proof.verified, f"prover rejected sound rule {rule.name}"
        assert proof.engine_steps >= 1
        assert proof.elapsed_seconds < 60

    def test_oracle_agrees(self, rule):
        assert rule.validate(trials=15) is None

    def test_metadata(self, rule):
        assert rule.sound
        assert rule.description
        assert rule.tactic_script


@pytest.mark.parametrize("rule", BUGGY, ids=lambda r: r.name)
class TestBuggyRules:
    def test_rejected_by_prover(self, rule):
        proof = rule.prove()
        assert not proof.verified, \
            f"prover ACCEPTED unsound rule {rule.name} — soundness bug!"

    def test_refuted_by_oracle(self, rule):
        cex = rule.validate(trials=80)
        assert cex is not None, f"no counterexample found for {rule.name}"
        assert cex.lhs_result != cex.rhs_result

    def test_marked_unsound(self, rule):
        assert not rule.sound


class TestAutomation:
    def test_conjunctive_rules_automatic(self):
        for rule in rules_by_category()["conjunctive"]:
            proof = rule.prove()
            assert proof.automatic
            assert proof.script_length == 1     # the paper's one-line proofs

    def test_other_categories_not_automatic(self):
        for rule in rules_by_category()["magic"]:
            assert not rule.prove().automatic


class TestProofEffortShape:
    """Figure 8's qualitative shape: conjunctive queries are trivial
    (automatic), basic rules cheap, magic/aggregation/index rules cost
    more engine work."""

    def test_conjunctive_cheapest(self):
        by_cat = _mean_steps()
        assert by_cat["conjunctive"] <= min(
            by_cat[c] for c in CATEGORY_ORDER if c != "conjunctive")

    def test_basic_cheaper_than_magic(self):
        by_cat = _mean_steps()
        assert by_cat["basic"] < by_cat["magic"]

    def test_basic_cheaper_than_aggregation(self):
        by_cat = _mean_steps()
        assert by_cat["basic"] < by_cat["aggregation"]


def _mean_steps():
    out = {}
    for category, rules in rules_by_category().items():
        steps = [r.prove().engine_steps for r in rules]
        out[category] = sum(steps) / len(steps)
    return out
