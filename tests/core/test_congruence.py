"""Congruence closure: union-find, congruence, pair axioms."""

from repro.core.congruence import CongruenceClosure
from repro.core.schema import INT, Leaf, Node
from repro.core.uninomial import TApp, TConst, TFst, TPair, TSnd, TVar

S2 = Node(Leaf(INT), Leaf(INT))
A = TVar("a", Leaf(INT))
B = TVar("b", Leaf(INT))
C = TVar("c", Leaf(INT))
X = TVar("x", S2)
Y = TVar("y", S2)


def f(t):
    return TApp("f", (t,), Leaf(INT))


class TestBasics:
    def test_reflexivity(self):
        cc = CongruenceClosure()
        assert cc.equal(A, A)

    def test_merge_and_transitivity(self):
        cc = CongruenceClosure()
        cc.merge(A, B)
        cc.merge(B, C)
        assert cc.equal(A, C)
        assert not cc.equal(A, TVar("d", Leaf(INT)))

    def test_congruence_propagation(self):
        cc = CongruenceClosure()
        cc.ensure(f(A))
        cc.ensure(f(B))
        cc.merge(A, B)
        assert cc.equal(f(A), f(B))

    def test_congruence_on_new_terms(self):
        # Terms registered after the merge still see the closure.
        cc = CongruenceClosure()
        cc.merge(A, B)
        assert cc.equal(f(A), f(B))

    def test_nested_congruence(self):
        cc = CongruenceClosure()
        cc.merge(A, B)
        assert cc.equal(f(f(A)), f(f(B)))

    def test_contradiction_flag(self):
        cc = CongruenceClosure()
        cc.merge(TConst(1, INT), TConst(2, INT))
        assert cc.contradictory

    def test_constants_equal_when_same(self):
        cc = CongruenceClosure()
        cc.merge(A, TConst(1, INT))
        cc.merge(B, TConst(1, INT))
        assert cc.equal(A, B)
        assert not cc.contradictory


class TestPairTheory:
    def test_projections_of_pair(self):
        cc = CongruenceClosure()
        cc.merge(X, TPair(A, B))
        assert cc.equal(TFst(X), A)
        assert cc.equal(TSnd(X), B)

    def test_surjective_pairing_in_equal(self):
        cc = CongruenceClosure()
        cc.merge(TFst(X), TFst(Y))
        cc.merge(TSnd(X), TSnd(Y))
        # Component-wise equality implies tuple equality for Node schemas.
        assert cc.equal(X, Y)

    def test_pair_congruence(self):
        cc = CongruenceClosure()
        cc.merge(A, B)
        assert cc.equal(TPair(A, C), TPair(B, C))


class TestCanonical:
    def test_canonical_deterministic(self):
        cc = CongruenceClosure()
        cc.merge(f(A), B)
        # B is smaller than f(a): both f(a) and b canonicalize to b.
        assert cc.canonical(f(A)) == cc.canonical(B) == B

    def test_canonical_rebuilds_children(self):
        cc = CongruenceClosure()
        cc.merge(A, B)
        cc.ensure(f(A))
        canon_fa = cc.canonical(f(A))
        canon_fb = cc.canonical(f(B))
        assert canon_fa == canon_fb

    def test_members(self):
        cc = CongruenceClosure()
        cc.merge(A, B)
        assert cc.members(A) == {A, B}

    def test_assume_all(self):
        cc = CongruenceClosure()
        cc.assume_all([(A, B), (B, C)])
        assert cc.equal(A, C)

    def test_cycle_in_class_terminates(self):
        # x = (x.1, x.2) creates a cyclic class graph; canonical must not
        # recurse forever.
        cc = CongruenceClosure()
        cc.merge(X, TPair(TFst(X), TSnd(X)))
        assert cc.canonical(X) is not None
