"""Metrics: kinds, bucket edges, and the snapshot algebra."""

import json
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    empty_snapshot,
    merge_snapshots,
)


# ---------------------------------------------------------------------------
# Metric kinds
# ---------------------------------------------------------------------------

def test_counter_increments_and_rejects_decrease():
    c = Counter("c")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError, match="cannot decrease"):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge("g")
    g.set(10)
    g.inc(5)
    g.dec(3)
    assert g.value == 12.0


def test_histogram_bucket_edges_are_inclusive_upper_bounds():
    h = Histogram("h", buckets=(1.0, 2.0, 5.0))
    h.observe(0.5)   # <= 1.0       → bucket 0
    h.observe(1.0)   # == 1.0 edge  → bucket 0 (inclusive)
    h.observe(1.5)   # <= 2.0       → bucket 1
    h.observe(2.0)   # == 2.0 edge  → bucket 1
    h.observe(5.0)   # == 5.0 edge  → bucket 2
    h.observe(7.0)   # above every edge → overflow
    assert h.counts == [2, 2, 1, 1]
    assert h.count == 6
    assert h.sum == pytest.approx(17.0)


def test_histogram_has_overflow_slot():
    h = Histogram("h", buckets=(1.0,))
    assert len(h.counts) == len(h.buckets) + 1


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError, match="at least one bucket"):
        Histogram("h", buckets=())
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("h", buckets=(1.0, 1.0, 2.0))
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("h", buckets=(2.0, 1.0))


def test_default_latency_buckets_are_increasing():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


def test_counter_is_thread_safe():
    c = Counter("c")

    def hammer():
        for _ in range(1000):
            c.inc()

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 4000.0


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_registry_returns_the_same_object_per_name():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.histogram("h") is reg.histogram("h")


def test_registry_rejects_cross_kind_reuse():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("x")
    with pytest.raises(ValueError, match="already registered"):
        reg.histogram("x")


def test_registry_rejects_bucket_mismatch():
    reg = MetricsRegistry()
    reg.histogram("h", buckets=(1.0, 2.0))
    reg.histogram("h")  # no buckets asked: fine, returns existing
    with pytest.raises(ValueError, match="already registered with buckets"):
        reg.histogram("h", buckets=(1.0, 3.0))


def test_snapshot_is_plain_json_able_data():
    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    reg.gauge("g").set(7)
    reg.histogram("h", buckets=(1.0,)).observe(0.5)
    snap = json.loads(json.dumps(reg.snapshot()))
    assert snap["counters"] == {"c": 2.0}
    assert snap["gauges"] == {"g": 7.0}
    assert snap["histograms"]["h"] == {
        "buckets": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1}


def test_reset_zeroes_but_keeps_handles_valid():
    reg = MetricsRegistry()
    c = reg.counter("c")
    c.inc(5)
    reg.reset()
    assert c.value == 0.0
    assert reg.counter("c") is c  # module-level handles stay live
    c.inc()
    assert reg.snapshot()["counters"]["c"] == 1.0


def test_absorb_folds_a_remote_delta():
    reg = MetricsRegistry()
    reg.counter("c").inc(1)
    reg.gauge("g").set(3)
    reg.histogram("h", buckets=(1.0,)).observe(0.5)
    delta = {
        "counters": {"c": 2.0, "new": 4.0},
        "gauges": {"g": 9.0},
        "histograms": {"h": {"buckets": [1.0], "counts": [0, 1],
                             "sum": 2.0, "count": 1}},
    }
    reg.absorb(delta)
    snap = reg.snapshot()
    assert snap["counters"] == {"c": 3.0, "new": 4.0}
    assert snap["gauges"]["g"] == 9.0  # max wins
    assert snap["histograms"]["h"]["counts"] == [1, 1]
    assert snap["histograms"]["h"]["count"] == 2


def test_absorb_rejects_mismatched_buckets():
    reg = MetricsRegistry()
    reg.histogram("h", buckets=(1.0, 2.0))
    with pytest.raises(ValueError, match="bucket"):
        reg.absorb({"histograms": {"h": {"buckets": [1.0], "counts": [1, 0],
                                         "sum": 0.1, "count": 1}}})


# ---------------------------------------------------------------------------
# Snapshot algebra
# ---------------------------------------------------------------------------

def _snap(c, g, counts, total, n):
    return {
        "counters": {"c": float(c)},
        "gauges": {"g": float(g)},
        "histograms": {"h": {"buckets": [1.0, 2.0],
                             "counts": list(counts),
                             "sum": float(total), "count": n}},
    }


def test_merge_is_associative_and_commutative():
    a = _snap(1, 5, (1, 0, 0), 0.5, 1)
    b = _snap(2, 3, (0, 1, 0), 1.5, 1)
    c = _snap(4, 9, (0, 0, 2), 6.0, 2)
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    assert left == right
    assert merge_snapshots(a, b) == merge_snapshots(b, a)


def test_empty_snapshot_is_the_merge_identity():
    a = _snap(3, 2, (1, 1, 0), 1.7, 2)
    assert merge_snapshots(a, empty_snapshot()) == a
    assert merge_snapshots(empty_snapshot(), a) == a


def test_merge_semantics_per_kind():
    a = _snap(1, 5, (1, 0, 0), 0.5, 1)
    b = _snap(2, 3, (0, 1, 0), 1.5, 1)
    merged = merge_snapshots(a, b)
    assert merged["counters"]["c"] == 3.0          # counters add
    assert merged["gauges"]["g"] == 5.0            # gauges take max
    assert merged["histograms"]["h"]["counts"] == [1, 1, 0]
    assert merged["histograms"]["h"]["sum"] == 2.0
    assert merged["histograms"]["h"]["count"] == 2


def test_merge_does_not_mutate_inputs():
    a = _snap(1, 1, (1, 0, 0), 0.5, 1)
    b = _snap(1, 1, (1, 0, 0), 0.5, 1)
    before = json.dumps([a, b], sort_keys=True)
    merge_snapshots(a, b)
    assert json.dumps([a, b], sort_keys=True) == before


def test_diff_reports_what_happened_in_between():
    reg = MetricsRegistry()
    reg.counter("c").inc(1)
    before = reg.snapshot()
    reg.counter("c").inc(2)
    reg.counter("born").inc(4)       # metric born after `before`
    reg.gauge("g").set(7)
    reg.histogram("h", buckets=(1.0,)).observe(0.5)
    delta = diff_snapshots(before, reg.snapshot())
    assert delta["counters"] == {"c": 2.0, "born": 4.0}
    assert delta["gauges"]["g"] == 7.0
    assert delta["histograms"]["h"]["counts"] == [1, 0]


def test_diff_drops_metrics_that_did_not_move():
    reg = MetricsRegistry()
    reg.counter("quiet").inc(3)
    reg.histogram("h", buckets=(1.0,)).observe(0.2)
    before = reg.snapshot()
    delta = diff_snapshots(before, reg.snapshot())
    assert delta["counters"] == {}
    assert delta["histograms"] == {}


def test_diff_then_absorb_round_trips():
    worker = MetricsRegistry()
    worker.counter("c").inc(1)
    before = worker.snapshot()
    worker.counter("c").inc(5)
    worker.histogram("h", buckets=(1.0,)).observe(0.3)
    delta = diff_snapshots(before, worker.snapshot())

    parent = MetricsRegistry()
    parent.counter("c").inc(10)
    parent.absorb(delta)
    snap = parent.snapshot()
    assert snap["counters"]["c"] == 15.0
    assert snap["histograms"]["h"]["count"] == 1
