"""Tokenizer for the SQL surface syntax.

The frontend accepts a conventional named SQL dialect (the paper's examples
are written in it) and compiles it to the unnamed HoTTSQL data model.  The
lexer is a straightforward longest-match scanner producing a token stream
with positions for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List
from ..errors import ReproError

#: Keywords of the supported dialect (case-insensitive).
KEYWORDS = frozenset({
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "AS",
    "UNION", "ALL", "EXCEPT", "AND", "OR", "NOT", "EXISTS",
    "TRUE", "FALSE",
})

#: Multi-character operators, longest first.
_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*",
              "+", "-", "/", "%")


class LexError(ReproError):
    """Raised on an unrecognized character sequence."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


@dataclass(frozen=True)
class Token:
    """A lexical token: kind, text, and source offset."""

    kind: str      # "keyword" | "ident" | "number" | "string" | "op" | "eof"
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def __str__(self) -> str:
        return self.text if self.kind != "eof" else "<end of input>"


def tokenize(source: str) -> List[Token]:
    """Scan ``source`` into tokens (always ends with an ``eof`` token)."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and source.startswith("--", i):
            end = source.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token("keyword", upper, start)
            else:
                yield Token("ident", word, start)
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            yield Token("number", source[start:i], start)
            continue
        if ch == "'":
            start = i
            i += 1
            while i < n and source[i] != "'":
                i += 1
            if i >= n:
                raise LexError("unterminated string literal", start)
            i += 1
            yield Token("string", source[start + 1:i - 1], start)
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                yield Token("op", op, i)
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", i)
    yield Token("eof", "", n)
