"""NULLs and 3VL (paper Sec. 7): Kleene logic, and excluded middle fails."""


from repro.core import ast
from repro.core.schema import INT, Leaf, NULL, Node
from repro.engine import Interpretation, run_query
from repro.semiring import KRelation, NAT
from repro.sql.three_valued import (
    FALSE,
    TRUE,
    UNKNOWN,
    eq3,
    is_true,
    kleene_and,
    kleene_not,
    kleene_or,
    lt3,
    neq3,
    register_three_valued,
)


class TestKleeneLogic:
    def test_truth_table_and(self):
        assert kleene_and(TRUE, TRUE) == TRUE
        assert kleene_and(TRUE, UNKNOWN) == UNKNOWN
        assert kleene_and(FALSE, UNKNOWN) == FALSE

    def test_truth_table_or(self):
        assert kleene_or(FALSE, FALSE) == FALSE
        assert kleene_or(FALSE, UNKNOWN) == UNKNOWN
        assert kleene_or(TRUE, UNKNOWN) == TRUE

    def test_not(self):
        assert kleene_not(TRUE) == FALSE
        assert kleene_not(FALSE) == TRUE
        assert kleene_not(UNKNOWN) == UNKNOWN    # the 3VL signature

    def test_excluded_middle_fails_propositionally(self):
        # x OR NOT x is UNKNOWN when x is UNKNOWN — not TRUE.
        assert kleene_or(UNKNOWN, kleene_not(UNKNOWN)) == UNKNOWN


class TestComparisons:
    def test_null_comparisons_unknown(self):
        assert eq3(NULL, 5) == UNKNOWN
        assert eq3(5, NULL) == UNKNOWN
        assert neq3(NULL, 5) == UNKNOWN
        assert lt3(NULL, NULL) == UNKNOWN

    def test_strict_comparisons(self):
        assert eq3(5, 5) == TRUE
        assert eq3(5, 6) == FALSE
        assert lt3(1, 2) == TRUE

    def test_where_boundary(self):
        assert is_true(TRUE)
        assert not is_true(UNKNOWN)
        assert not is_true(FALSE)

    def test_null_is_typed_everywhere(self):
        assert INT.validate(NULL)
        from repro.core.schema import STRING
        assert STRING.validate(NULL)

    def test_null_singleton(self):
        from repro.core.schema import _Null
        assert _Null() is NULL


class TestExcludedMiddleOnQueries:
    """Paper Sec. 7: ``SELECT * FROM R WHERE a = 5 OR a <> 5`` is NOT
    ``SELECT * FROM R`` once a may be NULL."""

    SCHEMA = Node(Leaf(INT), Leaf(INT))

    def _interp(self):
        interp = Interpretation()
        interp.relations["R"] = KRelation(NAT, {
            (5, 1): 1,
            (7, 2): 1,
            (NULL, 3): 1,     # the row 3VL drops
        })
        register_three_valued(interp)
        return interp

    def _where(self, *preds):
        a_col = ast.P2E(ast.path(ast.RIGHT, ast.LEFT), INT)
        five = ast.Const(5, INT)
        table = ast.Table("R", self.SCHEMA)
        built = [ast.PredFunc(name, (a_col, five)) for name in preds]
        return ast.Where(table, ast.or_(*built))

    def test_excluded_middle_fails(self):
        interp = self._interp()
        tautology_query = self._where("eq3", "neq3")
        plain = run_query(ast.Table("R", self.SCHEMA), interp)
        filtered = run_query(tautology_query, interp)
        # The NULL row satisfies neither disjunct (both UNKNOWN).
        assert (NULL, 3) in plain
        assert (NULL, 3) not in filtered
        assert filtered != plain
        assert filtered.support() == frozenset({(5, 1), (7, 2)})

    def test_is_null_recovers_the_row(self):
        interp = self._interp()
        a_col = ast.P2E(ast.path(ast.RIGHT, ast.LEFT), INT)
        query = ast.Where(ast.Table("R", self.SCHEMA),
                          ast.PredFunc("is_null", (a_col,)))
        out = run_query(query, interp)
        assert out.support() == frozenset({(NULL, 3)})

    def test_two_valued_engine_would_keep_the_row(self):
        # Contrast: the 2-valued NOT(eq) predicate keeps the NULL row,
        # which is exactly the bug 3VL semantics exists to avoid.
        interp = self._interp()
        a_col = ast.P2E(ast.path(ast.RIGHT, ast.LEFT), INT)
        five = ast.Const(5, INT)
        two_valued = ast.Where(
            ast.Table("R", self.SCHEMA),
            ast.PredOr(ast.PredEq(a_col, five),
                       ast.PredNot(ast.PredEq(a_col, five))))
        out = run_query(two_valued, interp)
        assert (NULL, 3) in out
