"""Round-trip property suites for the generalized grammar.

Two layers:

* **parse/unparse** — ``parse(unparse(q)) == q`` over named ASTs drawn
  from the *new* surface forms: arithmetic SELECT-list expressions,
  scalar aggregates, aggregate-over-subquery calls, GROUP BY + HAVING,
  and aliasing with and without ``AS``.
* **decompile** — compiled queries decompile to SQL that re-parses and
  re-proves equivalent, both directly and after ``optimize()``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Session
from repro.sql import nast
from repro.sql.parser import parse
from repro.sql.unparse import unparse

# ---------------------------------------------------------------------------
# Generators for the new named-AST forms
# ---------------------------------------------------------------------------

idents = st.sampled_from(["a", "b", "k", "price"])
tables = st.sampled_from(["R", "S"])
aliases = st.sampled_from(["x", "y", "t1"])

columns = st.builds(
    nast.NColumn,
    table=st.one_of(st.none(), aliases),
    column=idents)

literals = st.integers(0, 99).map(nast.NLiteral)

exprs = st.recursive(
    st.one_of(columns, literals),
    lambda inner: st.one_of(
        st.builds(nast.NBinOp,
                  op=st.sampled_from(["+", "-", "*", "/"]),
                  left=inner, right=inner),
        st.builds(nast.NFuncCall,
                  name=st.sampled_from(["add", "mod"]),
                  args=st.tuples(inner, inner))),
    max_leaves=5)

agg_calls = st.builds(
    nast.NAggCall,
    name=st.sampled_from(["SUM", "COUNT", "MIN", "MAX", "AVG"]),
    arg=exprs)

comparisons = st.builds(
    nast.NComparison,
    op=st.sampled_from(["=", "<", "<=", ">", ">=", "<>"]),
    left=exprs, right=exprs)


@st.composite
def predicates(draw, depth=2, atoms=comparisons):
    if depth == 0:
        return draw(st.one_of(atoms, st.booleans().map(nast.NBoolLit)))
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return draw(atoms)
    if choice == 1:
        return nast.NAnd(draw(predicates(depth=depth - 1, atoms=atoms)),
                         draw(predicates(depth=depth - 1, atoms=atoms)))
    if choice == 2:
        return nast.NOr(draw(predicates(depth=depth - 1, atoms=atoms)),
                        draw(predicates(depth=depth - 1, atoms=atoms)))
    return nast.NNot(draw(predicates(depth=depth - 1, atoms=atoms)))


#: HAVING atoms compare an aggregate or grouping column with a literal.
having_atoms = st.builds(
    nast.NComparison,
    op=st.sampled_from(["=", "<", ">"]),
    left=st.one_of(agg_calls, st.builds(nast.NColumn, table=st.none(),
                                        column=st.just("k"))),
    right=literals)


@st.composite
def from_lists(draw, depth):
    n_from = draw(st.integers(1, 2))
    froms = []
    seen = set()
    for _ in range(n_from):
        if depth > 0 and draw(st.booleans()):
            item = nast.NFromItem(source=draw(selects(depth=depth - 1)),
                                  alias=draw(aliases))
        else:
            name = draw(tables)
            item = nast.NFromItem(source=name,
                                  alias=draw(st.one_of(st.just(name),
                                                       aliases)))
        if item.alias in seen:
            continue
        seen.add(item.alias)
        froms.append(item)
    if not froms:
        froms = [nast.NFromItem(source="R", alias="R")]
    return tuple(froms)


@st.composite
def selects(draw, depth=1):
    froms = draw(from_lists(depth))
    shape = draw(st.integers(0, 2))
    group_by = None
    having = None
    if shape == 0:
        # Plain select with expression items.
        items = tuple(
            nast.NSelectItem(expr=draw(exprs),
                             alias=draw(st.one_of(st.none(), idents)))
            for _ in range(draw(st.integers(0, 3))))
    elif shape == 1:
        # Scalar aggregates.
        items = tuple(
            nast.NSelectItem(expr=draw(agg_calls),
                             alias=draw(st.one_of(st.none(), idents)))
            for _ in range(draw(st.integers(1, 2))))
    else:
        # GROUP BY, optionally with HAVING.
        group_by = nast.NColumn(table=None, column="k")
        items = (nast.NSelectItem(expr=group_by, alias=None),
                 nast.NSelectItem(expr=draw(agg_calls),
                                  alias=draw(st.one_of(st.none(), idents))))
        if draw(st.booleans()):
            having = draw(predicates(depth=1, atoms=having_atoms))
    where = draw(st.one_of(st.none(), predicates(depth=1)))
    return nast.NSelect(
        distinct=draw(st.booleans()),
        items=items,
        from_items=froms,
        where=where,
        group_by=group_by,
        having=having)


@st.composite
def queries(draw):
    q = draw(selects(depth=1))
    for _ in range(draw(st.integers(0, 1))):
        other = draw(selects(depth=0))
        if draw(st.booleans()):
            q = nast.NUnionAll(q, other)
        else:
            q = nast.NExcept(q, other)
    return q


# ---------------------------------------------------------------------------
# parse/unparse round-trip properties
# ---------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(queries())
def test_parse_unparse_roundtrip(query):
    assert parse(unparse(query)) == query


@settings(max_examples=100, deadline=None)
@given(queries())
def test_unparse_is_stable(query):
    text = unparse(query)
    assert unparse(parse(text)) == text


class TestNewFormExamples:
    def test_expression_select_list(self):
        q = parse("SELECT a + b AS c, a * 2 FROM R")
        assert parse(unparse(q)) == q

    def test_precedence(self):
        assert parse("SELECT a + b * 2 FROM R") == \
            parse("SELECT a + (b * 2) FROM R")
        assert parse("SELECT a - b - 1 FROM R") == \
            parse("SELECT (a - b) - 1 FROM R")

    def test_scalar_aggregate(self):
        q = parse("SELECT COUNT(b) AS c FROM R")
        assert parse(unparse(q)) == q

    def test_aggregate_over_subquery(self):
        q = parse("SELECT SUM((SELECT b FROM R)) FROM R")
        item = q.items[0].expr
        assert isinstance(item, nast.NAggQuery)
        assert parse(unparse(q)) == q

    def test_having(self):
        q = parse("SELECT k, SUM(b) AS s FROM R GROUP BY k HAVING k = 1")
        assert q.having is not None
        assert parse(unparse(q)) == q

    def test_alias_without_as(self):
        assert parse("SELECT DISTINCT a FROM (SELECT a FROM R) t") == \
            parse("SELECT DISTINCT a FROM (SELECT a FROM R) AS t")
        assert parse("SELECT x.a FROM R x") == parse("SELECT x.a FROM R AS x")


# ---------------------------------------------------------------------------
# decompile round-trips: optimize, re-parse, re-prove
# ---------------------------------------------------------------------------

NEW_FORM_QUERIES = [
    "SELECT a + b AS c FROM R",
    "SELECT a * 2 - b AS c FROM R WHERE a + 1 = b",
    "SELECT COUNT(b) AS c FROM R",
    "SELECT SUM(a) AS total, COUNT(b) AS n FROM R WHERE a = 1",
    "SELECT k, SUM(b) AS s FROM R GROUP BY k",
    "SELECT k, SUM(b) AS s FROM R GROUP BY k HAVING k = 1",
    "SELECT k, COUNT(b) AS n FROM R GROUP BY k HAVING SUM(b) > 2",
    "SELECT DISTINCT a FROM (SELECT a FROM R) t",
    "SELECT a FROM R WHERE a = 1 AND a = 1",
]


@pytest.fixture(scope="module")
def session():
    with Session.from_tables("R(k:int,a:int,b:int)") as s:
        yield s


@pytest.mark.parametrize("text", NEW_FORM_QUERIES)
def test_decompile_reparses_and_reproves(session, text):
    handle = session.sql(text)
    rendered = handle.sql()
    assert session.sql(rendered).equivalent_to(handle).proved


@pytest.mark.parametrize("text", NEW_FORM_QUERIES)
def test_optimized_plan_reparses_and_reproves(session, text):
    handle = session.sql(text)
    plan = handle.optimize()
    assert plan.certified
    assert session.sql(plan.sql()).equivalent_to(handle).proved
