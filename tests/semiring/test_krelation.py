"""K-relations: relational algebra on annotated relations."""

import pytest
from hypothesis import given, strategies as st

from repro.semiring.cardinal import Cardinal, OMEGA
from repro.semiring.krelation import KRelation
from repro.semiring.provenance import PROVENANCE, Polynomial
from repro.semiring.semirings import BOOL, NAT, NAT_INF


def nat_rel(data):
    return KRelation(NAT, data)


class TestConstruction:
    def test_from_bag(self):
        rel = KRelation.from_bag(NAT, ["a", "b", "a"])
        assert rel.annotation("a") == 2
        assert rel.annotation("b") == 1
        assert rel.annotation("c") == 0

    def test_zero_annotations_not_stored(self):
        rel = nat_rel({"a": 0, "b": 2})
        assert "a" not in rel
        assert len(rel) == 1

    def test_empty(self):
        assert len(KRelation.empty(NAT)) == 0

    def test_add_accumulates(self):
        rel = KRelation(NAT)
        rel.add("x", 2)
        rel.add("x", 3)
        assert rel.annotation("x") == 5

    def test_support_and_iteration(self):
        rel = nat_rel({"a": 1, "b": 2})
        assert rel.support() == frozenset({"a", "b"})
        assert set(rel) == {"a", "b"}
        assert dict(rel.items()) == {"a": 1, "b": 2}


class TestOperators:
    def test_union_all_adds(self):
        r = nat_rel({"a": 1, "b": 2})
        s = nat_rel({"b": 3, "c": 1})
        out = r.union_all(s)
        assert dict(out.items()) == {"a": 1, "b": 5, "c": 1}

    def test_cross_multiplies(self):
        r = nat_rel({"a": 2})
        s = nat_rel({"x": 3, "y": 1})
        out = r.cross(s)
        assert out.annotation(("a", "x")) == 6
        assert out.annotation(("a", "y")) == 2

    def test_select(self):
        r = nat_rel({1: 2, 2: 3, 3: 4})
        out = r.select(lambda row: row % 2 == 1)
        assert dict(out.items()) == {1: 2, 3: 4}

    def test_project_sums_preimages(self):
        r = nat_rel({(1, "x"): 2, (1, "y"): 3, (2, "z"): 1})
        out = r.project(lambda row: row[0])
        assert dict(out.items()) == {1: 5, 2: 1}

    def test_distinct_squashes(self):
        r = nat_rel({"a": 5, "b": 1})
        assert dict(r.distinct().items()) == {"a": 1, "b": 1}

    def test_except_keeps_full_multiplicity(self):
        # Paper semantics: R EXCEPT S keeps ALL copies of tuples absent
        # from S (not multiset difference).
        r = nat_rel({"a": 5, "b": 2})
        s = nat_rel({"b": 1})
        out = r.except_(s)
        assert dict(out.items()) == {"a": 5}

    def test_scale(self):
        r = nat_rel({"a": 2})
        assert r.scale(3).annotation("a") == 6

    def test_total_multiplicity(self):
        assert nat_rel({"a": 2, "b": 3}).total_multiplicity() == 5

    def test_semiring_mismatch_rejected(self):
        r = nat_rel({"a": 1})
        s = KRelation(BOOL, {"a": True})
        with pytest.raises(TypeError):
            r.union_all(s)
        with pytest.raises(TypeError):
            r.cross(s)


class TestInfiniteMultiplicities:
    def test_omega_through_operators(self):
        r = KRelation(NAT_INF, {"a": OMEGA, "b": Cardinal(2)})
        s = KRelation(NAT_INF, {"a": Cardinal(1)})
        assert r.union_all(s).annotation("a") == OMEGA
        assert r.cross(s).annotation(("a", "a")) == OMEGA
        assert r.distinct().annotation("a") == Cardinal(1)
        assert r.except_(s).annotation("a") == Cardinal(0)
        assert r.except_(s).annotation("b") == Cardinal(2)

    def test_project_with_omega(self):
        r = KRelation(NAT_INF, {(1, "x"): OMEGA, (1, "y"): Cardinal(3)})
        assert r.project(lambda row: row[0]).annotation(1) == OMEGA


class TestHomomorphismProperty:
    """Semiring homomorphisms commute with the positive operators —
    the fundamental K-relation fact (Green et al.)."""

    rows = st.dictionaries(st.integers(0, 4), st.integers(1, 5), max_size=5)

    @given(rows, rows)
    def test_nat_to_bool_commutes(self, d1, d2):
        r = KRelation(NAT, d1)
        s = KRelation(NAT, d2)

        def to_bool(rel):
            return rel.map_annotations(lambda n: n > 0, BOOL)

        assert to_bool(r.union_all(s)) == to_bool(r).union_all(to_bool(s))
        assert to_bool(r.cross(s)) == to_bool(r).cross(to_bool(s))
        assert to_bool(r.project(lambda x: x % 2)) == \
            to_bool(r).project(lambda x: x % 2)

    @given(rows)
    def test_provenance_specializes_to_nat(self, d):
        # Annotate distinctly, evaluate the polynomial at the original
        # multiplicities: identity.
        rel = KRelation(NAT, d)
        annotated = KRelation(
            PROVENANCE,
            {row: Polynomial.variable(f"v{i}")
             for i, (row, _) in enumerate(sorted(rel.items()))})
        assignment = {f"v{i}": annot
                      for i, (_, annot) in enumerate(sorted(rel.items()))}
        projected = annotated.project(lambda x: x % 3)
        direct = rel.project(lambda x: x % 3)
        evaluated = projected.map_annotations(
            lambda p: p.evaluate(NAT, assignment), NAT)
        assert evaluated == direct
