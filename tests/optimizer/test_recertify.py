"""Re-certification of optimizer rewrites through the pipeline.

The ISSUE's satellite: every candidate the plan rewriter emits on a corpus
of sample queries must re-prove end to end through the verification
pipeline, and the deliberately unsound rules must come back DISPROVED with
a concrete counterexample.
"""

import pytest

from repro.core.schema import INT
from repro.optimizer import certified_rewrites, rewrites
from repro.rules import all_buggy_rules
from repro.solver import Pipeline, default_pipeline, reset_default_pipeline
from repro.sql import Catalog, compile_sql


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_table("Emp", [("eid", INT), ("did", INT), ("age", INT)])
    cat.add_table("Dept", [("did", INT), ("budget", INT)])
    return cat


#: A corpus of plan shapes covering every transformation in the rewriter:
#: selection splitting/merging, pushdown through products and unions, and
#: DISTINCT collapsing — applied at root and at nested positions.
CORPUS = (
    "SELECT e.eid FROM Emp e, Dept d "
    "WHERE e.did = d.did AND d.budget > 100 AND e.age < 30",
    "SELECT eid FROM Emp WHERE age < 30 AND did = 2",
    "SELECT e.eid FROM Emp AS e WHERE e.age = 1 AND e.did = 2 "
    "AND e.eid = 3",
    "SELECT a.eid FROM Emp a, Emp b WHERE a.age < 30",
    "SELECT u.eid FROM (SELECT eid FROM Emp UNION ALL "
    "SELECT eid FROM Emp) AS u WHERE u.eid = 1",
)


class TestRecertification:
    @pytest.mark.parametrize("sql", CORPUS)
    def test_every_candidate_reproves(self, catalog, sql):
        query = compile_sql(sql, catalog).query
        candidates = rewrites(query)
        certified = certified_rewrites(query)
        # Certification is belt-and-braces: every emitted candidate is an
        # instance of a verified rule, so none may be dropped.
        assert len(certified) == len(candidates)
        for cc in certified:
            assert cc.certified
            assert cc.verdict.proved

    def test_second_step_candidates_reprove_too(self, catalog):
        # Rewriting a rewrite reaches the shapes the first step cannot
        # (merged selections, collapsed DISTINCTs); those must re-prove
        # against *their* parent as well.
        query = compile_sql(CORPUS[1], catalog).query
        for first in certified_rewrites(query):
            seconds = certified_rewrites(first.query)
            assert len(seconds) == len(rewrites(first.query))

    def test_corpus_actually_exercises_the_rewriter(self, catalog):
        rules_hit = set()
        total = 0
        for sql in CORPUS:
            query = compile_sql(sql, catalog).query
            for candidate, rule in rewrites(query):
                rules_hit.add(rule)
                total += 1
                for _, rule2 in rewrites(candidate):
                    rules_hit.add(rule2)
                    total += 1
        assert total >= 10
        assert {"sel_split", "sel_split⁻¹", "sel_union_distr"} <= rules_hit

    def test_certification_hits_the_shared_cache(self, catalog):
        reset_default_pipeline()
        try:
            query = compile_sql(CORPUS[0], catalog).query
            certified_rewrites(query)
            pipeline = default_pipeline()
            before = pipeline.cache.hits
            certified_rewrites(query)  # same plan again: all cache hits
            assert pipeline.cache.hits > before
        finally:
            reset_default_pipeline()

    def test_explicit_pipeline_override(self, catalog):
        pipeline = Pipeline()
        query = compile_sql(CORPUS[1], catalog).query
        certified = certified_rewrites(query, pipeline=pipeline)
        assert certified
        assert len(pipeline.cache) > 0


class TestBuggyRulesStayOut:
    @pytest.mark.parametrize("rule", all_buggy_rules(),
                             ids=lambda r: r.name)
    def test_buggy_rule_disproved_with_concrete_instance(self, rule):
        verdict = Pipeline().check_rule(rule)
        assert verdict.disproved
        record = verdict.counterexample
        assert record is not None and record.disagreements
        live = verdict.live_counterexample
        assert live.lhs_result != live.rhs_result
