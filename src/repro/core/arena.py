"""Flat arena term kernel: int-indexed UniNomials behind ``normalize``.

The object kernel (:mod:`repro.core.uninomial`, :mod:`repro.core.normalize`)
hash-conses terms as frozen dataclasses; after PR 3 the remaining
normalization cost is pure object-graph traversal — every rewrite pass
chases pointers through dataclass ``__dict__``s, re-enters ``__new__``
interning machinery per node, and re-derives metadata through attribute
probes.

This module compiles the same algebra onto a **flat arena**: every
canonical node is a dense integer id into per-column ("struct of arrays")
tables — one list per kind of payload:

========  ==================================================================
column    contents
========  ==================================================================
``tags``  the node's constructor tag (small int; fits a byte, so consumers
          that want vectorized sweeps can snapshot it into ``array('B')``
          or a numpy array — see :meth:`TermArena.tags_view`)
``kids``  the tuple of child ids
``pay``   the non-term payload (names, schemas, constants)
``fv``    free tuple variables as an int **bitset** (lazy)
``bs``    binder-sensitivity flag for alpha keys (lazy)
``akey``  the closed alpha-canonical key (lazy)
``strv``  the rendered form, identical to the object ``__str__`` (lazy)
``ordk``  the atom sort key ``(rank, str)`` (lazy)
``prp``   the ``is_prop`` flag (lazy)
``objv``  the decoded interned object, for the thin object-API view (lazy)
========  ==================================================================

The hot loops — ``_translate``'s sum/product construction, the Lemma
5.1/5.2 clause refinement fixpoint, equality decomposition, alpha-key
computation, dedup-under-squash — run entirely over contiguous int ids:
substitution guards are single ``&`` operations on free-variable bitsets,
structural equality is ``==`` on ints, and multiset dedup compares interned
key tuples.  The rewrites are an exact mirror of the object normalizer
(same rule priority, same fresh-name draws from the shared counter, same
canonical factor order), so the two backends agree up to alpha-equivalence
— which the differential property suite in
``tests/core/test_intern_properties.py`` checks on both sides.

The object API stays the boundary: :func:`arena_normalize` takes an
interned ``UTerm`` and returns an interned ``NSum``, so ``core/``,
``solver/`` and ``optimizer/`` callers never see an id.  Encoding stamps
``(epoch, id)`` on the object node, making re-encoding O(1); decoding
memoizes per id, so unchanged subterms decode to the *same* objects that
were encoded.

Backend selection lives in :mod:`repro.core.intern`
(``REPRO_KERNEL=arena|object``, :func:`repro.core.intern.set_kernel_backend`);
``normalize()`` dispatches per call and falls back to the object path when
the arena cannot represent a term (:class:`ArenaUnsupported` — e.g. an
unhashable constant payload).

Occupancy and hit counters surface through :func:`arena_stats`, which also
refreshes the ``kernel.arena.*`` gauges in the observability registry.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from . import ast
from .intern import kernel_backend  # noqa: F401  (re-exported convenience)
from .schema import EMPTY, Empty, Leaf, Node, Schema
from .typecheck import TypecheckError, infer_projection, infer_query
from .uninomial import (
    TAgg,
    TApp,
    TConst,
    TFst,
    TPair,
    TSnd,
    TUnit,
    TVar,
    Term,
    UAdd,
    UEq,
    UMul,
    UNeg,
    UOne,
    UPred,
    URel,
    USquash,
    USum,
    UTerm,
    UZero,
    _FRESH,
)

__all__ = [
    "ArenaUnsupported",
    "TermArena",
    "arena",
    "arena_denote_closed",
    "arena_normalize",
    "arena_stats",
    "reset_arena",
]


class ArenaUnsupported(Exception):
    """The arena cannot represent this term (e.g. unhashable payload).

    ``normalize`` catches this and falls back to the object backend, so
    exotic inputs degrade to the uncompiled behaviour instead of failing.
    """


# ---------------------------------------------------------------------------
# Node tags.  Term sorts first, then UniNomial operators, then normal-form
# atoms and the normal-form containers.
# ---------------------------------------------------------------------------

T_VAR, T_UNIT, T_CONST, T_PAIR, T_FST, T_SND, T_APP, T_AGG = range(8)
U_ZERO, U_ONE, U_ADD, U_MUL, U_SQUASH, U_NEG, U_SUM, U_EQ, U_REL, U_PRED = \
    range(8, 18)
A_REL, A_EQ, A_PRED, A_SQ, A_NEG = range(18, 23)
N_PROD, N_SUM = 23, 24

#: Canonical atom order inside a clause (mirror of ``_ATOM_RANK``):
#: relations, predicates, equalities, squashes, negations.
_ATOM_RANK = {A_REL: 0, A_PRED: 1, A_EQ: 2, A_SQ: 3, A_NEG: 4}

#: Atom tags that denote propositions (mirror of ``_atom_is_prop``).
_PROP_ATOMS = frozenset((A_EQ, A_PRED, A_SQ, A_NEG))

#: A clause during normalization: ``(bound-var ids, factor atom ids)``.
Clause = Tuple[Tuple[int, ...], Tuple[int, ...]]


class TermArena:
    """One flat arena: hash-consed nodes with dense int ids.

    Node creation is guarded by a lock (id assignment plus the column
    appends are one critical section); reads are index lookups on
    append-only lists, safe under the GIL once an id has been published.
    Lazy metadata fills are idempotent single-slot writes of deterministic
    values, so racing fills are benign.
    """

    def __init__(self, epoch: int = 0) -> None:
        self.epoch = epoch
        self._lock = threading.RLock()
        self._ids: Dict[Tuple, int] = {}
        self.tags: List[int] = []
        self.kids: List[Tuple[int, ...]] = []
        self.pay: List[Any] = []
        self.fv: List[Optional[int]] = []
        self.bs: List[int] = []          # -1 unknown, 0 false, 1 true
        self.akey: List[Optional[Tuple]] = []
        self.strv: List[Optional[str]] = []
        self.ordk: List[Optional[Tuple[int, str]]] = []
        self.prp: List[int] = []         # -1 unknown, 0 false, 1 true
        self.objv: List[Any] = []
        self.var_bit: Dict[int, int] = {}
        #: memo of dedup+refine over squashed sums: sum id → refined
        #: clause tuple.  Sound because a refined sum refines to itself
        #: (the fixpoint draws no fresh names on already-split binders),
        #: so re-simplification across fixpoint iterations is a lookup.
        self._refined: Dict[int, Tuple[Clause, ...]] = {}
        #: memo of full normalization: UniNomial id → decoded ``NSum``.
        #: Persistent arena state (like ``_refined`` and the intern
        #: tables): within an epoch the normal form of a canonical id is
        #: fixed up to fresh binder names, and reusing one normal form is
        #: exactly as sound as ``normalize``'s own identity-keyed memo.
        self._norm: Dict[int, Any] = {}
        #: memo of denotation alignment: ``(body, g₂, t₂, g₁, t₁)`` →
        #: renamed body id.  Repeated checks of the same query pair skip
        #: the substitution walk entirely.
        self._align: Dict[Tuple[int, int, int, int, int], int] = {}
        self.hits = 0
        self.misses = 0
        # Shared leaves.
        self.unit = self.node(T_UNIT, (), None)
        self.zero = self.node(U_ZERO, (), None)
        self.one = self.node(U_ONE, (), None)

    # -- construction -------------------------------------------------------

    def node(self, tag: int, kids: Tuple[int, ...], pay: Any = None) -> int:
        """Intern a node, returning its dense id."""
        key = (tag, kids, pay)
        try:
            i = self._ids.get(key)
        except TypeError as exc:  # unhashable payload
            raise ArenaUnsupported(f"unhashable payload: {pay!r}") from exc
        if i is not None:
            self.hits += 1
            return i
        with self._lock:
            i = self._ids.get(key)
            if i is not None:
                self.hits += 1
                return i
            i = len(self.tags)
            self.tags.append(tag)
            self.kids.append(kids)
            self.pay.append(pay)
            self.fv.append(None)
            self.bs.append(-1)
            self.akey.append(None)
            self.strv.append(None)
            self.ordk.append(None)
            self.prp.append(-1)
            self.objv.append(None)
            if tag == T_VAR:
                self.var_bit[i] = len(self.var_bit)
            self._ids[key] = i
            self.misses += 1
        return i

    def fresh(self, schema, hint: str) -> int:
        """A globally fresh tuple variable (shared counter with the object
        kernel, so names never collide across backends)."""
        return self.node(T_VAR, (), (_FRESH.next_name(hint), schema))

    def var_mask(self, i: int) -> int:
        return 1 << self.var_bit[i]

    def _hint(self, var: int) -> str:
        return self.pay[var][0].split("$")[0]

    def tags_view(self):
        """A compact snapshot of the tag column for vectorized consumers.

        Returns a numpy ``uint8`` array when numpy is importable, else an
        ``array('B')`` — either way a flat byte-per-node view suitable for
        counting sweeps (see ``benchmarks/bench_kernel.py``).
        """
        try:
            import numpy as np
            return np.array(self.tags, dtype=np.uint8)
        except ImportError:  # pragma: no cover - numpy is normally present
            from array import array
            return array("B", self.tags)

    # -- encode: object -> id -----------------------------------------------

    def encode_term(self, t: Term) -> int:
        stamp = t.__dict__.get("_hc_aid")
        if stamp is not None and stamp[0] is self:
            return stamp[1]
        cls = t.__class__
        if cls is TVar:
            i = self.node(T_VAR, (), (t.name, t.var_schema))
        elif cls is TUnit:
            i = self.unit
        elif cls is TConst:
            i = self.node(T_CONST, (), (t.value, t.ty))
        elif cls is TPair:
            i = self.node(
                T_PAIR, (self.encode_term(t.left), self.encode_term(t.right)))
        elif cls is TFst:
            i = self.node(T_FST, (self.encode_term(t.arg),))
        elif cls is TSnd:
            i = self.node(T_SND, (self.encode_term(t.arg),))
        elif cls is TApp:
            i = self.node(T_APP, tuple(self.encode_term(a) for a in t.args),
                          (t.fn, t.result_schema))
        elif cls is TAgg:
            i = self.node(T_AGG, (self.encode_term(t.var),
                                  self.encode_uterm(t.body)),
                          (t.name, t.ty))
        else:
            raise ArenaUnsupported(f"not a term: {t!r}")
        object.__setattr__(t, "_hc_aid", (self, i))
        if self.objv[i] is None and t.__dict__.get("_hc_ready"):
            self.objv[i] = t
        return i

    def encode_uterm(self, u: UTerm) -> int:
        stamp = u.__dict__.get("_hc_aid")
        if stamp is not None and stamp[0] is self:
            return stamp[1]
        cls = u.__class__
        if cls is UZero:
            i = self.zero
        elif cls is UOne:
            i = self.one
        elif cls is UAdd:
            i = self.node(U_ADD, (self.encode_uterm(u.left),
                                  self.encode_uterm(u.right)))
        elif cls is UMul:
            i = self.node(U_MUL, (self.encode_uterm(u.left),
                                  self.encode_uterm(u.right)))
        elif cls is USquash:
            i = self.node(U_SQUASH, (self.encode_uterm(u.arg),))
        elif cls is UNeg:
            i = self.node(U_NEG, (self.encode_uterm(u.arg),))
        elif cls is USum:
            i = self.node(U_SUM, (self.encode_term(u.var),
                                  self.encode_uterm(u.body)))
        elif cls is UEq:
            i = self.node(U_EQ, (self.encode_term(u.left),
                                 self.encode_term(u.right)))
        elif cls is URel:
            i = self.node(U_REL, (self.encode_term(u.arg),), u.name)
        elif cls is UPred:
            i = self.node(U_PRED, tuple(self.encode_term(a) for a in u.args),
                          u.name)
        else:
            raise ArenaUnsupported(f"not a UTerm: {u!r}")
        object.__setattr__(u, "_hc_aid", (self, i))
        if self.objv[i] is None and u.__dict__.get("_hc_ready"):
            self.objv[i] = u
        return i

    # -- decode: id -> interned object --------------------------------------

    def decode_term(self, i: int) -> Term:
        obj = self.objv[i]
        if obj is not None:
            return obj
        tag = self.tags[i]
        kids = self.kids[i]
        pay = self.pay[i]
        if tag == T_VAR:
            obj = TVar(pay[0], pay[1])
        elif tag == T_UNIT:
            obj = TUnit()
        elif tag == T_CONST:
            obj = TConst(pay[0], pay[1])
        elif tag == T_PAIR:
            obj = TPair(self.decode_term(kids[0]), self.decode_term(kids[1]))
        elif tag == T_FST:
            obj = TFst(self.decode_term(kids[0]))
        elif tag == T_SND:
            obj = TSnd(self.decode_term(kids[0]))
        elif tag == T_APP:
            obj = TApp(pay[0], tuple(self.decode_term(k) for k in kids),
                       pay[1])
        elif tag == T_AGG:
            obj = TAgg(pay[0], self.decode_term(kids[0]),
                       self.decode_uterm(kids[1]), pay[1])
        else:
            raise TypeError(f"id {i} (tag {tag}) is not a term")
        object.__setattr__(obj, "_hc_aid", (self, i))
        self.objv[i] = obj
        return obj

    def decode_uterm(self, i: int) -> UTerm:
        obj = self.objv[i]
        if obj is not None:
            return obj
        tag = self.tags[i]
        kids = self.kids[i]
        pay = self.pay[i]
        if tag == U_ZERO:
            obj = UZero()
        elif tag == U_ONE:
            obj = UOne()
        elif tag == U_ADD:
            obj = UAdd(self.decode_uterm(kids[0]), self.decode_uterm(kids[1]))
        elif tag == U_MUL:
            obj = UMul(self.decode_uterm(kids[0]), self.decode_uterm(kids[1]))
        elif tag == U_SQUASH:
            obj = USquash(self.decode_uterm(kids[0]))
        elif tag == U_NEG:
            obj = UNeg(self.decode_uterm(kids[0]))
        elif tag == U_SUM:
            obj = USum(self.decode_term(kids[0]), self.decode_uterm(kids[1]))
        elif tag == U_EQ:
            obj = UEq(self.decode_term(kids[0]), self.decode_term(kids[1]))
        elif tag == U_REL:
            obj = URel(pay, self.decode_term(kids[0]))
        elif tag == U_PRED:
            obj = UPred(pay, tuple(self.decode_term(k) for k in kids))
        else:
            raise TypeError(f"id {i} (tag {tag}) is not a UTerm")
        object.__setattr__(obj, "_hc_aid", (self, i))
        self.objv[i] = obj
        return obj

    def decode_atom(self, i: int):
        from .normalize import AEq, ANeg, APred, ARel, ASquash
        obj = self.objv[i]
        if obj is not None:
            return obj
        tag = self.tags[i]
        kids = self.kids[i]
        if tag == A_REL:
            obj = ARel(self.pay[i], self.decode_term(kids[0]))
        elif tag == A_EQ:
            obj = AEq(self.decode_term(kids[0]), self.decode_term(kids[1]))
        elif tag == A_PRED:
            obj = APred(self.pay[i],
                        tuple(self.decode_term(k) for k in kids))
        elif tag == A_SQ:
            obj = ASquash(self.decode_nsum(kids[0]))
        elif tag == A_NEG:
            obj = ANeg(self.decode_nsum(kids[0]))
        else:
            raise TypeError(f"id {i} (tag {tag}) is not an atom")
        self.objv[i] = obj
        return obj

    def decode_nsum(self, i: int):
        from .normalize import NProduct, NSum
        obj = self.objv[i]
        if obj is not None:
            return obj
        products = []
        for p in self.kids[i]:
            pobj = self.objv[p]
            if pobj is None:
                pobj = NProduct(
                    tuple(self.decode_term(v) for v in self.pay[p]),
                    tuple(self.decode_atom(f) for f in self.kids[p]))
                self.objv[p] = pobj
            products.append(pobj)
        obj = NSum(tuple(products))
        self.objv[i] = obj
        return obj

    def decode_clauses(self, clauses: List[Clause]):
        """Decode a refined clause list into an interned ``NSum``."""
        from .normalize import NProduct, NSum
        return NSum(tuple(
            NProduct(tuple(self.decode_term(v) for v in vs),
                     tuple(self.decode_atom(f) for f in fs))
            for vs, fs in clauses))

    # -- cached metadata -----------------------------------------------------

    def schema_of(self, i: int):
        """The schema of a term id (mirror of ``Term.schema``)."""
        tag = self.tags[i]
        if tag == T_VAR:
            return self.pay[i][1]
        if tag == T_UNIT:
            return EMPTY
        if tag == T_CONST:
            return Leaf(self.pay[i][1])
        if tag == T_PAIR:
            kids = self.kids[i]
            return Node(self.schema_of(kids[0]), self.schema_of(kids[1]))
        if tag == T_FST:
            s = self.schema_of(self.kids[i][0])
            if isinstance(s, Node):
                return s.left
            raise TypeError(f"TFst of non-node schema {s}")
        if tag == T_SND:
            s = self.schema_of(self.kids[i][0])
            if isinstance(s, Node):
                return s.right
            raise TypeError(f"TSnd of non-node schema {s}")
        if tag == T_APP:
            return self.pay[i][1]
        if tag == T_AGG:
            return Leaf(self.pay[i][1])
        raise TypeError(f"id {i} (tag {tag}) has no schema")

    def fv_of(self, i: int) -> int:
        """Free tuple variables as a bitset over ``var_bit`` indices."""
        v = self.fv[i]
        if v is not None:
            return v
        tag = self.tags[i]
        if tag == T_VAR:
            v = 1 << self.var_bit[i]
        elif tag in (T_UNIT, T_CONST, U_ZERO, U_ONE):
            v = 0
        elif tag in (T_AGG, U_SUM):
            kids = self.kids[i]
            v = self.fv_of(kids[1]) & ~(1 << self.var_bit[kids[0]])
        elif tag == N_PROD:
            v = 0
            for f in self.kids[i]:
                v |= self.fv_of(f)
            for b in self.pay[i]:
                v &= ~(1 << self.var_bit[b])
        else:
            v = 0
            for k in self.kids[i]:
                v |= self.fv_of(k)
        self.fv[i] = v
        return v

    def bsens_of(self, i: int) -> bool:
        """Does the alpha key depend on the ambient environment's size?"""
        b = self.bs[i]
        if b >= 0:
            return bool(b)
        tag = self.tags[i]
        if tag in (T_VAR, T_UNIT, T_CONST, U_ZERO, U_ONE):
            r = False
        elif tag in (U_SUM, A_SQ, A_NEG, N_PROD, N_SUM):
            r = True
        elif tag == T_AGG:
            r = self.bsens_of(self.kids[i][1])
        else:
            r = any(self.bsens_of(k) for k in self.kids[i])
        self.bs[i] = int(r)
        return r

    def is_prop(self, i: int) -> bool:
        """Mirror of ``uninomial.is_prop`` on UniNomial ids."""
        p = self.prp[i]
        if p >= 0:
            return bool(p)
        tag = self.tags[i]
        if tag in (U_ZERO, U_ONE, U_EQ, U_PRED, U_SQUASH, U_NEG):
            r = True
        elif tag == U_MUL:
            kids = self.kids[i]
            r = self.is_prop(kids[0]) and self.is_prop(kids[1])
        else:
            r = False
        self.prp[i] = int(r)
        return r

    # -- rendering (identical to the object ``__str__`` forms) ---------------

    def str_of(self, i: int) -> str:
        s = self.strv[i]
        if s is None:
            s = self._render(i)
            self.strv[i] = s
        return s

    def _render(self, i: int) -> str:
        tag = self.tags[i]
        kids = self.kids[i]
        pay = self.pay[i]
        s = self.str_of
        if tag == T_VAR:
            return pay[0]
        if tag == T_UNIT:
            return "()"
        if tag == T_CONST:
            return repr(pay[0])
        if tag == T_PAIR:
            return f"({s(kids[0])}, {s(kids[1])})"
        if tag == T_FST:
            return f"{s(kids[0])}.1"
        if tag == T_SND:
            return f"{s(kids[0])}.2"
        if tag == T_APP:
            return f"{pay[0]}({', '.join(s(k) for k in kids)})"
        if tag == T_AGG:
            return f"{pay[0]}(λ{s(kids[0])}. {s(kids[1])})"
        if tag == U_ZERO:
            return "0"
        if tag == U_ONE:
            return "1"
        if tag == U_ADD:
            return f"({s(kids[0])} + {s(kids[1])})"
        if tag == U_MUL:
            return f"{s(kids[0])} × {s(kids[1])}"
        if tag == U_SQUASH:
            return f"‖{s(kids[0])}‖"
        if tag == U_NEG:
            return f"({s(kids[0])} → 0)"
        if tag == U_SUM:
            return (f"Σ {s(kids[0])}:{self.pay[kids[0]][1]}. "
                    f"({s(kids[1])})")
        if tag == U_EQ:
            return f"({s(kids[0])} = {s(kids[1])})"
        if tag in (U_REL, A_REL):
            return f"⟦{pay}⟧ {s(kids[0])}"
        if tag in (U_PRED, A_PRED):
            return f"⟦{pay}⟧ ({', '.join(s(k) for k in kids)})"
        if tag == A_EQ:
            return f"({s(kids[0])} = {s(kids[1])})"
        if tag == A_SQ:
            return f"‖{s(kids[0])}‖"
        if tag == A_NEG:
            return f"({s(kids[0])} → 0)"
        if tag == N_PROD:
            binder = "".join(
                f"Σ{s(v)}:{self.pay[v][1]}. " for v in pay)
            if not kids:
                return binder + "1"
            return binder + " × ".join(s(f) for f in kids)
        if tag == N_SUM:
            if not kids:
                return "0"
            return " + ".join(f"({s(p)})" for p in kids)
        raise TypeError(f"unrenderable tag {tag}")

    def atom_order(self, i: int) -> Tuple[int, str]:
        """Mirror of ``_atom_sort_key``: canonical factor order in a clause."""
        k = self.ordk[i]
        if k is None:
            k = (_ATOM_RANK[self.tags[i]], self.str_of(i))
            self.ordk[i] = k
        return k

    def _sort_factors(self, factors) -> Tuple[int, ...]:
        if len(factors) > 1:
            return tuple(sorted(factors, key=self.atom_order))
        return tuple(factors)

    def prod_node(self, vs: Tuple[int, ...], fs) -> int:
        """An ``NProduct`` node (factors in canonical sorted order)."""
        return self.node(N_PROD, self._sort_factors(fs), tuple(vs))

    def sum_node(self, clauses) -> int:
        """An ``NSum`` node over a clause list."""
        return self.node(
            N_SUM, tuple(self.prod_node(vs, fs) for vs, fs in clauses))

    def clauses_of(self, sum_id: int) -> List[Clause]:
        return [(self.pay[p], self.kids[p]) for p in self.kids[sum_id]]

    # -- smart constructors (mirror of uninomial's) --------------------------

    def tfst(self, t: int) -> int:
        if self.tags[t] == T_PAIR:
            return self.kids[t][0]
        return self.node(T_FST, (t,))

    def tsnd(self, t: int) -> int:
        if self.tags[t] == T_PAIR:
            return self.kids[t][1]
        return self.node(T_SND, (t,))

    def tpair(self, left: int, right: int) -> int:
        if self.tags[left] == T_FST and self.tags[right] == T_SND \
                and self.kids[left][0] == self.kids[right][0]:
            return self.kids[left][0]
        return self.node(T_PAIR, (left, right))

    def uadd(self, left: int, right: int) -> int:
        if self.tags[left] == U_ZERO:
            return right
        if self.tags[right] == U_ZERO:
            return left
        return self.node(U_ADD, (left, right))

    def umul(self, left: int, right: int) -> int:
        tl, tr = self.tags[left], self.tags[right]
        if tl == U_ZERO or tr == U_ZERO:
            return self.zero
        if tl == U_ONE:
            return right
        if tr == U_ONE:
            return left
        return self.node(U_MUL, (left, right))

    def usquash(self, u: int) -> int:
        if self.is_prop(u) or self.tags[u] == U_SQUASH:
            return u
        return self.node(U_SQUASH, (u,))

    def uneg(self, u: int) -> int:
        tag = self.tags[u]
        if tag == U_ZERO:
            return self.one
        if tag == U_ONE:
            return self.zero
        if tag == U_NEG:
            return self.usquash(self.kids[u][0])
        if tag == U_SQUASH:
            return self.node(U_NEG, (self.kids[u][0],))
        return self.node(U_NEG, (u,))

    def usum(self, var: int, body: int) -> int:
        if self.tags[body] == U_ZERO:
            return self.zero
        return self.node(U_SUM, (var, body))

    def ueq(self, left: int, right: int) -> int:
        if left == right:
            return self.one
        if self.tags[left] == T_CONST and self.tags[right] == T_CONST:
            return self.one if self.pay[left][0] == self.pay[right][0] \
                else self.zero
        return self.node(U_EQ, (left, right))

    def orient_eq(self, left: int, right: int) -> int:
        """Mirror of ``_orient_eq`` / ``_term_order_key``."""
        lk = (0 if self.tags[left] == T_VAR else 1, self.str_of(left))
        rk = (0 if self.tags[right] == T_VAR else 1, self.str_of(right))
        if rk < lk:
            left, right = right, left
        return self.node(A_EQ, (left, right))

    # -- substitution (mirror of uninomial's, bitset-guarded) ----------------

    def subst_term(self, i: int, sub: Dict[int, int], mask: int) -> int:
        if not (self.fv_of(i) & mask):
            return i
        tag = self.tags[i]
        kids = self.kids[i]
        if tag == T_VAR:
            return sub.get(i, i)
        if tag == T_PAIR:
            return self.tpair(self.subst_term(kids[0], sub, mask),
                              self.subst_term(kids[1], sub, mask))
        if tag == T_FST:
            return self.tfst(self.subst_term(kids[0], sub, mask))
        if tag == T_SND:
            return self.tsnd(self.subst_term(kids[0], sub, mask))
        if tag == T_APP:
            return self.node(
                T_APP, tuple(self.subst_term(k, sub, mask) for k in kids),
                self.pay[i])
        if tag == T_AGG:
            inner, var, imask = self._avoid_capture(kids[0], sub, mask)
            return self.node(
                T_AGG, (var, self.subst_uterm(kids[1], inner, imask)),
                self.pay[i])
        raise TypeError(f"id {i} (tag {tag}) is not a substitutable term")

    def subst_uterm(self, i: int, sub: Dict[int, int], mask: int) -> int:
        if not (self.fv_of(i) & mask):
            return i
        tag = self.tags[i]
        kids = self.kids[i]
        if tag == U_ADD:
            return self.uadd(self.subst_uterm(kids[0], sub, mask),
                             self.subst_uterm(kids[1], sub, mask))
        if tag == U_MUL:
            return self.umul(self.subst_uterm(kids[0], sub, mask),
                             self.subst_uterm(kids[1], sub, mask))
        if tag == U_SQUASH:
            return self.usquash(self.subst_uterm(kids[0], sub, mask))
        if tag == U_NEG:
            return self.uneg(self.subst_uterm(kids[0], sub, mask))
        if tag == U_SUM:
            inner, var, imask = self._avoid_capture(kids[0], sub, mask)
            return self.usum(var, self.subst_uterm(kids[1], inner, imask))
        if tag == U_EQ:
            return self.ueq(self.subst_term(kids[0], sub, mask),
                            self.subst_term(kids[1], sub, mask))
        if tag == U_REL:
            return self.node(U_REL, (self.subst_term(kids[0], sub, mask),),
                             self.pay[i])
        if tag == U_PRED:
            return self.node(
                U_PRED, tuple(self.subst_term(k, sub, mask) for k in kids),
                self.pay[i])
        raise TypeError(f"id {i} (tag {tag}) is not a substitutable UTerm")

    def _avoid_capture(self, bound: int, sub: Dict[int, int],
                       mask: int) -> Tuple[Dict[int, int], int, int]:
        """Mirror of ``_avoid_capture``: drop shadowed bindings, rename the
        binder when a substitution value captures it."""
        if bound in sub:
            sub = {v: t for v, t in sub.items() if v != bound}
            mask = 0
            for v in sub:
                mask |= self.var_mask(v)
            if not sub:
                return sub, bound, 0
        bmask = self.var_mask(bound)
        clash = any(self.fv_of(t) & bmask for t in sub.values())
        if clash:
            renamed = self.fresh(self.pay[bound][1], self._hint(bound))
            sub = dict(sub)
            sub[bound] = renamed
            return sub, renamed, mask | bmask
        return sub, bound, mask

    def subst_atom(self, i: int, sub: Dict[int, int], mask: int) -> int:
        """Mirror of ``atom_subst`` (AEq re-orients after substitution)."""
        if not (self.fv_of(i) & mask):
            return i
        tag = self.tags[i]
        kids = self.kids[i]
        if tag == A_REL:
            return self.node(A_REL, (self.subst_term(kids[0], sub, mask),),
                             self.pay[i])
        if tag == A_EQ:
            return self.orient_eq(self.subst_term(kids[0], sub, mask),
                                  self.subst_term(kids[1], sub, mask))
        if tag == A_PRED:
            return self.node(
                A_PRED, tuple(self.subst_term(k, sub, mask) for k in kids),
                self.pay[i])
        if tag in (A_SQ, A_NEG):
            return self.node(tag, (self.subst_sum(kids[0], sub, mask),))
        raise TypeError(f"id {i} (tag {tag}) is not an atom")

    def subst_sum(self, i: int, sub: Dict[int, int], mask: int) -> int:
        """Mirror of ``nsum_subst``/``product_subst`` on normal-form nodes."""
        if not (self.fv_of(i) & mask):
            return i
        products = []
        for p in self.kids[i]:
            if not (self.fv_of(p) & mask):
                products.append(p)
                continue
            vs = self.pay[p]
            inner = {v: t for v, t in sub.items() if v not in vs}
            imask = 0
            for v in inner:
                imask |= self.var_mask(v)
            if not (imask and (self.fv_of(p) & imask)):
                products.append(p)
                continue
            products.append(self.prod_node(
                vs, tuple(self.subst_atom(f, inner, imask)
                          for f in self.kids[p])))
        return self.node(N_SUM, tuple(products))

    # -- alpha-equivalence keys (mirror of normalize's) ----------------------

    def akey_of(self, i: int, env: Optional[Dict[int, str]] = None,
                envmask: int = 0) -> Tuple:
        """Canonical structural key under a bound-variable labelling."""
        if env and (self.bsens_of(i) or (self.fv_of(i) & envmask)):
            return self._akey_env(i, env, envmask)
        k = self.akey[i]
        if k is None:
            k = self._akey_env(i, {}, 0)
            self.akey[i] = k
        return k

    def _akey_env(self, i: int, env: Dict[int, str], envmask: int) -> Tuple:
        tag = self.tags[i]
        kids = self.kids[i]
        pay = self.pay[i]
        key = self.akey_of
        if tag == T_VAR:
            return ("var", env.get(i, pay[0]), str(pay[1]))
        if tag == T_UNIT:
            return ("unit",)
        if tag == T_PAIR:
            return ("pair", key(kids[0], env, envmask),
                    key(kids[1], env, envmask))
        if tag == T_FST:
            return ("fst", key(kids[0], env, envmask))
        if tag == T_SND:
            return ("snd", key(kids[0], env, envmask))
        if tag == T_CONST:
            return ("const", pay[1].name, repr(pay[0]))
        if tag == T_APP:
            return ("app", pay[0], str(pay[1]),
                    tuple(key(k, env, envmask) for k in kids))
        if tag == T_AGG:
            inner = dict(env)
            inner[kids[0]] = "@agg"
            return ("agg", pay[0], pay[1].name,
                    key(kids[1], inner, envmask | self.var_mask(kids[0])))
        if tag == U_ZERO:
            return ("zero",)
        if tag == U_ONE:
            return ("one",)
        if tag == U_ADD:
            return ("add", key(kids[0], env, envmask),
                    key(kids[1], env, envmask))
        if tag == U_MUL:
            return ("mul", key(kids[0], env, envmask),
                    key(kids[1], env, envmask))
        if tag == U_SQUASH:
            return ("squash", key(kids[0], env, envmask))
        if tag == U_NEG:
            return ("neg", key(kids[0], env, envmask))
        if tag == U_SUM:
            inner = dict(env)
            inner[kids[0]] = f"@{len(env)}"
            return ("sum", str(self.pay[kids[0]][1]),
                    key(kids[1], inner, envmask | self.var_mask(kids[0])))
        if tag == U_EQ:
            return ("eq", key(kids[0], env, envmask),
                    key(kids[1], env, envmask))
        if tag == U_REL:
            return ("rel", pay, key(kids[0], env, envmask))
        if tag == U_PRED:
            return ("pred", pay, tuple(key(k, env, envmask) for k in kids))
        if tag == A_REL:
            return ("rel", pay, key(kids[0], env, envmask))
        if tag == A_EQ:
            keys = sorted((key(kids[0], env, envmask),
                           key(kids[1], env, envmask)))
            return ("eq", keys[0], keys[1])
        if tag == A_PRED:
            return ("pred", pay, tuple(key(k, env, envmask) for k in kids))
        if tag == A_SQ:
            return ("squash", self._akey_sum(kids[0], env, envmask))
        if tag == A_NEG:
            return ("negsum", self._akey_sum(kids[0], env, envmask))
        if tag == N_PROD:
            return self.akey_clause(pay, kids, env, envmask)
        if tag == N_SUM:
            return self._akey_sum(i, env, envmask)
        raise TypeError(f"no alpha key for tag {tag}")

    def akey_clause(self, vs, fs, env: Optional[Dict[int, str]] = None,
                    envmask: int = 0) -> Tuple:
        """Mirror of ``product_alpha_key``: binders become positional labels."""
        env = dict(env) if env else {}
        for idx, v in enumerate(vs):
            env[v] = f"@{len(env)}.{idx}"
            envmask |= self.var_mask(v)
        schemas = tuple(sorted(str(self.pay[v][1]) for v in vs))
        factor_keys = tuple(sorted(self.akey_of(f, env, envmask)
                                   for f in fs))
        return ("product", schemas, factor_keys)

    def _akey_sum(self, i: int, env: Dict[int, str], envmask: int) -> Tuple:
        return ("nsum", tuple(sorted(
            self.akey_clause(self.pay[p], self.kids[p], env, envmask)
            for p in self.kids[i])))

    # -- translation (mirror of normalize's ``_translate``) ------------------

    def translate(self, u: int) -> List[Clause]:
        tag = self.tags[u]
        kids = self.kids[u]
        if tag == U_ZERO:
            return []
        if tag == U_ONE:
            return [((), ())]
        if tag == U_ADD:
            return self.translate(kids[0]) + self.translate(kids[1])
        if tag == U_MUL:
            left = self.translate(kids[0])
            right = self.translate(kids[1])
            out: List[Clause] = []
            for pv, pf in left:
                for q in right:
                    qv, qf = self._freshen(q)
                    out.append((pv + qv, self._sort_factors(pf + qf)))
            return out
        if tag == U_SUM:
            var, body = kids
            inner = self.translate(body)
            out = []
            schema = self.pay[var][1]
            hint = self._hint(var)
            mask = self.var_mask(var)
            for pv, pf in inner:
                renamed = self.fresh(schema, hint)
                sub = {var: renamed}
                pf2 = self._sort_factors(
                    tuple(self.subst_atom(f, sub, mask) for f in pf))
                out.append(((renamed,) + pv, pf2))
            return out
        if tag == U_SQUASH:
            return [((), (self.node(
                A_SQ, (self.sum_node(self.translate(kids[0])),)),))]
        if tag == U_NEG:
            return [((), (self.node(
                A_NEG, (self.sum_node(self.translate(kids[0])),)),))]
        if tag == U_EQ:
            factors = self.eq_factors(kids[0], kids[1])
            if factors is None:
                return []
            return [((), self._sort_factors(tuple(factors)))]
        if tag == U_REL:
            return [((), (self.node(A_REL, (kids[0],), self.pay[u]),))]
        if tag == U_PRED:
            return [((), (self.node(A_PRED, kids, self.pay[u]),))]
        raise ArenaUnsupported(f"untranslatable tag {tag}")

    def _freshen(self, clause: Clause) -> Clause:
        """Rename all binders of a clause to globally fresh variables."""
        vs, fs = clause
        if not vs:
            return clause
        sub: Dict[int, int] = {}
        new_vars = []
        mask = 0
        for v in vs:
            nv = self.fresh(self.pay[v][1], self._hint(v))
            sub[v] = nv
            new_vars.append(nv)
            mask |= self.var_mask(v)
        return (tuple(new_vars),
                self._sort_factors(tuple(self.subst_atom(f, sub, mask)
                                         for f in fs)))

    def eq_factors(self, left: int, right: int) -> Optional[List[int]]:
        """Mirror of ``_eq_factors``: schema-directed equality decomposition.

        ``None`` marks a refuted equality; ``[]`` a trivially true one.
        """
        if left == right:
            return []
        schema = self.schema_of(left)
        if isinstance(schema, Empty):
            return []
        if isinstance(schema, Node) or self.tags[left] == T_PAIR \
                or self.tags[right] == T_PAIR:
            first = self.eq_factors(self.tfst(left), self.tfst(right))
            if first is None:
                return None
            second = self.eq_factors(self.tsnd(left), self.tsnd(right))
            if second is None:
                return None
            return first + second
        if self.tags[left] == T_CONST and self.tags[right] == T_CONST:
            return [] if self.pay[left][0] == self.pay[right][0] else None
        return [self.orient_eq(left, right)]

    # -- clause refinement (mirror of normalize's fixpoint) ------------------

    def refine_clauses(self, clauses: List[Clause]) -> List[Clause]:
        out = []
        for c in clauses:
            refined = self.refine_product(c)
            if refined is not None:
                out.append(refined)
        return out

    def refine_product(self, clause: Clause) -> Optional[Clause]:
        """Lemmas 5.1/5.2 + squash simplification to a fixpoint; ``None``
        marks the empty type.  Rule priority mirrors ``_refine_product``,
        but substitutions are *batched*: splits and point eliminations
        compose into one substitution that sweeps the heavy factors (the
        nested ``A_SQ``/``A_NEG`` sums) once per outer round, instead of
        re-walking every factor after each single step — that re-walk is
        what made refinement quadratic in the number of bound variables.

        Soundness of the batching: only ``A_EQ`` factors can produce a
        split, a refutation, or a pin, and equalities are cheap to keep
        substituted eagerly.  The composed map is kept *resolved* — no
        value mentions a variable eliminated later — so applying it
        simultaneously equals applying the single-variable substitutions
        in sequence.
        """
        vars_list = list(clause[0])
        factors = list(clause[1])
        heavy = (A_SQ, A_NEG)

        def compose(csub: Dict[int, int], var: int, rep: int,
                    mask: int) -> None:
            if csub:
                one = {var: rep}
                for k, v in csub.items():
                    if self.fv_of(v) & mask:
                        csub[k] = self.subst_term(v, one, mask)
            csub[var] = rep

        changed = True
        while changed:
            changed = False
            csub: Dict[int, int] = {}
            cmask = 0

            # Lemma 5.1 — split bound pair variables / drop unit
            # variables, leftmost-first one level at a time (the fresh
            # draw order of the stepwise algorithm), composing the
            # replacement trees instead of sweeping the factors.
            while True:
                split = None
                for idx, var in enumerate(vars_list):
                    schema = self.pay[var][1]
                    if isinstance(schema, (Empty, Node)):
                        split = (idx, var, schema)
                        break
                if split is None:
                    break
                idx, var, schema = split
                mask = self.var_mask(var)
                if isinstance(schema, Empty):
                    del vars_list[idx]
                    compose(csub, var, self.unit, mask)
                else:
                    hint = self._hint(var)
                    v1 = self.fresh(schema.left, hint)
                    v2 = self.fresh(schema.right, hint)
                    vars_list[idx:idx + 1] = [v1, v2]
                    compose(csub, var, self.tpair(v1, v2), mask)
                cmask |= mask
                changed = True
            if csub:
                factors = [self.subst_atom(f, csub, cmask)
                           if self.tags[f] not in heavy else f
                           for f in factors]

            # Equality decomposition and Lemma 5.2 point elimination to a
            # fixpoint over the light factors (equalities stay eagerly
            # substituted; heavies wait for the composed sweep below).
            while True:
                new_factors: List[int] = []
                refuted = False
                for f in factors:
                    if self.tags[f] == A_EQ:
                        kf = self.kids[f]
                        pieces = self.eq_factors(kf[0], kf[1])
                        if pieces is None:
                            refuted = True
                            break
                        if len(pieces) != 1 or pieces[0] != f:
                            changed = True
                        new_factors.extend(pieces)
                    else:
                        new_factors.append(f)
                if refuted:
                    return None
                factors = new_factors

                pin = None
                for idx, f in enumerate(factors):
                    if self.tags[f] != A_EQ:
                        continue
                    kf = self.kids[f]
                    for side, other in ((kf[0], kf[1]), (kf[1], kf[0])):
                        if self.tags[side] == T_VAR \
                                and side in vars_list \
                                and not (self.fv_of(other)
                                         & self.var_mask(side)):
                            pin = (idx, side, other)
                            break
                    if pin is not None:
                        break
                if pin is None:
                    break
                idx, var, replacement = pin
                vars_list.remove(var)
                del factors[idx]
                mask = self.var_mask(var)
                one = {var: replacement}
                compose(csub, var, replacement, mask)
                cmask |= mask
                factors = [self.subst_atom(f, one, mask)
                           if self.tags[f] not in heavy
                           and self.fv_of(f) & mask else f
                           for f in factors]
                changed = True

            # One composed sweep over the heavy factors.
            if csub:
                factors = [self.subst_atom(f, csub, cmask)
                           if self.tags[f] in heavy
                           and self.fv_of(f) & cmask else f
                           for f in factors]

            # Squash / negation simplification of nested normal forms.
            simplified, factors_or_none = self._simplify_nested(factors)
            if factors_or_none is None:
                return None
            factors = factors_or_none
            if simplified:
                changed = True
                continue
            if changed:
                # Light work happened this round but nothing new can
                # apply: splits and pins are exhausted (their fixpoints
                # ran above) and simplification found nothing.
                break

        return (tuple(vars_list), self._sort_factors(tuple(factors)))

    def _refine_under_squash(self, inner_id: int) -> Tuple[Clause, ...]:
        """Dedup + refine a squashed sum's clauses, memoized per sum id."""
        cached = self._refined.get(inner_id)
        if cached is not None:
            return cached
        inner = tuple(self.refine_clauses(
            self._dedup_under_squash(self.clauses_of(inner_id))))
        self._refined[inner_id] = inner
        return inner

    def _simplify_nested(
            self, factors: List[int]) -> Tuple[bool, Optional[List[int]]]:
        changed = False
        out: List[int] = []
        for f in factors:
            tag = self.tags[f]
            if tag == A_SQ:
                inner_id = self.kids[f][0]
                inner = self._refine_under_squash(inner_id)
                if not inner:
                    return True, None
                if any(not vs and not fs for vs, fs in inner):
                    changed = True  # ‖1 + ...‖ = 1: the factor vanishes
                    continue
                pulled, remainder = self._pull_props(inner)
                if pulled:
                    changed = True
                    out.extend(pulled)
                    if remainder is not None:
                        out.append(self.node(
                            A_SQ, (self.sum_node(remainder),)))
                    continue
                new_sum = self.sum_node(inner)
                if new_sum != inner_id:
                    changed = True
                out.append(self.node(A_SQ, (new_sum,)))
            elif tag == A_NEG:
                inner_id = self.kids[f][0]
                inner = self.refine_clauses(
                    self._dedup_under_squash(self.clauses_of(inner_id)))
                if not inner:
                    changed = True  # (0 → 0) = 1: the factor vanishes
                    continue
                if any(not vs and not fs for vs, fs in inner):
                    return True, None  # (1 → 0) = 0
                if len(inner) == 1:
                    vs, fs = inner[0]
                    if not vs and len(fs) == 1:
                        only = fs[0]
                        if self.tags[only] == A_NEG:
                            # ¬¬X = ‖X‖ (Sec. 3.4).
                            changed = True
                            out.append(self.node(
                                A_SQ, (self.kids[only][0],)))
                            continue
                        if self.tags[only] == A_SQ:
                            # ¬‖X‖ = ¬X.
                            changed = True
                            out.append(self.node(
                                A_NEG, (self.kids[only][0],)))
                            continue
                new_sum = self.sum_node(inner)
                if new_sum != inner_id:
                    changed = True
                out.append(self.node(A_NEG, (new_sum,)))
            else:
                out.append(f)
        return changed, out

    def _dedup_under_squash(self, clauses: List[Clause]) -> List[Clause]:
        """``‖n × n‖ = ‖n‖`` — only sound under a truncation."""
        out = []
        seen = set()
        for vs, fs in clauses:
            env: Dict[int, str] = {}
            envmask = 0
            for idx, v in enumerate(vs):
                env[v] = f"@{idx}"
                envmask |= self.var_mask(v)
            factor_keys = set()
            dedup = []
            for f in fs:
                key = self.akey_of(f, env, envmask)
                if key in factor_keys:
                    continue
                factor_keys.add(key)
                dedup.append(f)
            dedup_t = self._sort_factors(tuple(dedup))
            qkey = self.akey_clause(vs, dedup_t)
            if qkey not in seen:
                seen.add(qkey)
                out.append((vs, dedup_t))
        return out

    def _pull_props(
            self, inner: List[Clause]
    ) -> Tuple[List[int], Optional[List[Clause]]]:
        """``‖A × P‖ = ‖A‖ × P`` — hoist prop factors out of a squash."""
        if len(inner) != 1:
            return [], inner
        vs, fs = inner[0]
        if vs:
            return [], inner
        props = [f for f in fs if self.tags[f] in _PROP_ATOMS]
        rest = [f for f in fs if self.tags[f] not in _PROP_ATOMS]
        if not props:
            return [], inner
        if not rest:
            return props, None
        return props, [((), tuple(rest))]

    # -- normalization entry on ids ------------------------------------------

    def normalize_uid(self, uid: int):
        """Normal form (decoded interned ``NSum``) of a UniNomial id.

        Memoized per id as persistent arena state: a canonical id's
        normal form never changes within an epoch, and returning the same
        interned ``NSum`` (same fresh binder names included) is exactly
        the contract ``normalize``'s identity-keyed memo already has.
        """
        hit = self._norm.get(uid)
        if hit is None:
            hit = self.decode_clauses(self.refine_clauses(self.translate(uid)))
            self._norm[uid] = hit
        return hit

    def align_body(self, body: int, g_from: int, t_from: int,
                   g_to: int, t_to: int) -> int:
        """Rename one denotation body's ``g``/``t`` onto another's (memoized)."""
        if g_from == g_to and t_from == t_to:
            return body
        key = (body, g_from, t_from, g_to, t_to)
        hit = self._align.get(key)
        if hit is None:
            sub = {g_from: g_to, t_from: t_to}
            mask = self.var_mask(g_from) | self.var_mask(t_from)
            hit = self.subst_uterm(body, sub, mask)
            self._align[key] = hit
        return hit

    # -- denotation (mirror of ``denote.py``'s Figure 7 onto arena ids) ------

    def _dstash(self, node, key):
        """Per-AST-node denotation stash, keyed with the arena instance so
        :func:`reset_arena` invalidates stamped results."""
        cache = node.__dict__.get("_hc_aden")
        if cache is None:
            cache = {}
            object.__setattr__(node, "_hc_aden", cache)
        return cache, cache.get(key)

    def denote_query(self, query, ctx: Schema, g: int, t: int) -> int:
        """``⟦Γ ⊢ q : σ⟧ g t`` built directly as arena ids."""
        cache, hit = self._dstash(query, (self, ctx, g, t))
        if hit is not None:
            return hit
        result = self._denote_query(query, ctx, g, t)
        cache[(self, ctx, g, t)] = result
        return result

    def _denote_query(self, query, ctx: Schema, g: int, t: int) -> int:
        cls = query.__class__
        if cls is ast.Table:
            return self.node(U_REL, (t,), query.name)
        if cls is ast.Select:
            inner_schema = infer_query(query.query, ctx)
            t_prime = self.fresh(inner_schema, "t")
            ext_ctx = Node(ctx, inner_schema)
            projected = self.denote_projection(
                query.projection, ext_ctx, self.tpair(g, t_prime))
            body = self.umul(self.ueq(projected, t),
                             self.denote_query(query.query, ctx, g, t_prime))
            return self.usum(t_prime, body)
        if cls is ast.Product:
            return self.umul(
                self.denote_query(query.left, ctx, g, self.tfst(t)),
                self.denote_query(query.right, ctx, g, self.tsnd(t)))
        if cls is ast.Where:
            inner_schema = infer_query(query.query, ctx)
            ext_ctx = Node(ctx, inner_schema)
            return self.umul(
                self.denote_query(query.query, ctx, g, t),
                self.denote_predicate(query.predicate, ext_ctx,
                                      self.tpair(g, t)))
        if cls is ast.UnionAll:
            return self.uadd(self.denote_query(query.left, ctx, g, t),
                             self.denote_query(query.right, ctx, g, t))
        if cls is ast.Except:
            return self.umul(
                self.denote_query(query.left, ctx, g, t),
                self.uneg(self.denote_query(query.right, ctx, g, t)))
        if cls is ast.Distinct:
            return self.usquash(self.denote_query(query.query, ctx, g, t))
        raise TypecheckError(f"cannot denote query node: {query!r}")

    def denote_predicate(self, pred, ctx: Schema, g: int) -> int:
        cache, hit = self._dstash(pred, (self, ctx, g))
        if hit is not None:
            return hit
        result = self._denote_predicate(pred, ctx, g)
        cache[(self, ctx, g)] = result
        return result

    def _denote_predicate(self, pred, ctx: Schema, g: int) -> int:
        cls = pred.__class__
        if cls is ast.PredEq:
            return self.ueq(self.denote_expression(pred.left, ctx, g),
                            self.denote_expression(pred.right, ctx, g))
        if cls is ast.PredAnd:
            return self.umul(self.denote_predicate(pred.left, ctx, g),
                             self.denote_predicate(pred.right, ctx, g))
        if cls is ast.PredOr:
            return self.usquash(
                self.uadd(self.denote_predicate(pred.left, ctx, g),
                          self.denote_predicate(pred.right, ctx, g)))
        if cls is ast.PredNot:
            return self.uneg(self.denote_predicate(pred.operand, ctx, g))
        if cls is ast.PredTrue:
            return self.one
        if cls is ast.PredFalse:
            return self.zero
        if cls is ast.Exists:
            inner_schema = infer_query(pred.query, ctx)
            t = self.fresh(inner_schema, "t")
            return self.usquash(
                self.usum(t, self.denote_query(pred.query, ctx, g, t)))
        if cls is ast.CastPred:
            inner_ctx = infer_projection(pred.projection, ctx)
            recast = self.denote_projection(pred.projection, ctx, g)
            return self.denote_predicate(pred.predicate, inner_ctx, recast)
        if cls is ast.PredVar:
            return self.node(U_PRED, (g,), pred.name)
        if cls is ast.PredFunc:
            args = tuple(self.denote_expression(a, ctx, g)
                         for a in pred.args)
            return self.node(U_PRED, args, pred.name)
        raise TypecheckError(f"cannot denote predicate node: {pred!r}")

    def denote_expression(self, expr, ctx: Schema, g: int) -> int:
        cls = expr.__class__
        if cls is ast.P2E:
            return self.denote_projection(expr.projection, ctx, g)
        if cls is ast.Const:
            return self.node(T_CONST, (), (expr.value, expr.ty))
        if cls is ast.Func:
            args = tuple(self.denote_expression(a, ctx, g)
                         for a in expr.args)
            return self.node(T_APP, args, (expr.name, Leaf(expr.ty)))
        if cls is ast.Agg:
            inner_schema = infer_query(expr.query, ctx)
            if not isinstance(inner_schema, Leaf):
                raise TypecheckError(
                    f"aggregate over non-single-column schema {inner_schema}")
            v = self.fresh(inner_schema, "a")
            body = self.denote_query(expr.query, ctx, g, v)
            return self.node(T_AGG, (v, body), (expr.name, expr.ty))
        if cls is ast.CastExpr:
            inner_ctx = infer_projection(expr.projection, ctx)
            recast = self.denote_projection(expr.projection, ctx, g)
            return self.denote_expression(expr.expression, inner_ctx, recast)
        if cls is ast.ExprVar:
            return self.node(T_APP, (g,), (expr.name, Leaf(expr.ty)))
        raise TypecheckError(f"cannot denote expression node: {expr!r}")

    def denote_projection(self, proj, source: Schema, g: int) -> int:
        cache, hit = self._dstash(proj, (self, source, g))
        if hit is not None:
            return hit
        result = self._denote_projection(proj, source, g)
        cache[(self, source, g)] = result
        return result

    def _denote_projection(self, proj, source: Schema, g: int) -> int:
        cls = proj.__class__
        if cls is ast.Star:
            return g
        if cls is ast.LeftP:
            return self.tfst(g)
        if cls is ast.RightP:
            return self.tsnd(g)
        if cls is ast.EmptyP:
            return self.unit
        if cls is ast.Compose:
            middle_schema = infer_projection(proj.first, source)
            middle = self.denote_projection(proj.first, source, g)
            return self.denote_projection(proj.second, middle_schema, middle)
        if cls is ast.Duplicate:
            return self.tpair(self.denote_projection(proj.left, source, g),
                              self.denote_projection(proj.right, source, g))
        if cls is ast.E2P:
            return self.denote_expression(proj.expression, source, g)
        if cls is ast.PVar:
            return self.node(T_APP, (g,), (proj.name, proj.target))
        raise TypecheckError(f"cannot denote projection node: {proj!r}")


# ---------------------------------------------------------------------------
# The process-wide arena and the ``normalize`` entry point
# ---------------------------------------------------------------------------

_ARENA = TermArena(epoch=0)
_ARENA_LOCK = threading.Lock()


def arena() -> TermArena:
    """The current process-wide arena."""
    return _ARENA


def reset_arena() -> TermArena:
    """Drop the arena and start a new epoch.

    Object nodes stamped with ids of the old arena re-encode on next use
    (the stamp carries the arena instance, not just an int).  Used by
    tests and by long-lived processes that want to bound arena growth.
    """
    global _ARENA
    with _ARENA_LOCK:
        _ARENA = TermArena(epoch=_ARENA.epoch + 1)
    return _ARENA


def arena_normalize(u: UTerm):
    """Normalize through the arena: encode → translate → refine → decode.

    Raises :class:`ArenaUnsupported` for terms the arena cannot hold;
    ``normalize`` falls back to the object pipeline in that case.
    """
    ar = _ARENA
    return ar.normalize_uid(ar.encode_uterm(u))


def arena_denote_closed(query, ctx: Schema = EMPTY):
    """Typecheck and denote a top-level query directly onto the arena.

    Returns ``(schema, g_id, t_id, body_id)`` with globally fresh ``g``
    and ``t``, memoized per (arena, context) on the query node — the
    id-level twin of :func:`repro.core.denote.denote_closed`, and the
    entry point of the arena-backend fast path in
    :func:`repro.core.equivalence.check_query_equivalence`.
    """
    ar = _ARENA
    cache = query.__dict__.get("_hc_adc")
    if cache is None:
        cache = {}
        object.__setattr__(query, "_hc_adc", cache)
    key = (ar, ctx)
    hit = cache.get(key)
    if hit is not None:
        return hit
    schema = infer_query(query, ctx)
    g = ar.fresh(ctx, "g")
    t = ar.fresh(schema, "t")
    body = ar.denote_query(query, ctx, g, t)
    result = (schema, g, t, body)
    cache[key] = result
    return result


def arena_stats(refresh_gauges: bool = True) -> Dict[str, Any]:
    """Arena occupancy/hit counters; also refreshes ``kernel.arena.*`` gauges.

    Keys: ``nodes`` (interned arena nodes), ``vars`` (distinct tuple
    variables, i.e. bitset width), ``hits``/``misses`` (node-constructor
    table outcomes), ``epoch`` (reset generation).
    """
    ar = _ARENA
    stats: Dict[str, Any] = {
        "nodes": len(ar.tags),
        "vars": len(ar.var_bit),
        "hits": ar.hits,
        "misses": ar.misses,
        "epoch": ar.epoch,
    }
    if refresh_gauges:
        try:
            from ..obs.metrics import gauge
            for name, value in stats.items():
                gauge(f"kernel.arena.{name}").set(float(value))
        except ImportError:  # pragma: no cover - obs is part of the tree
            pass
    return stats
