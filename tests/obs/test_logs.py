"""The ``repro`` logging hierarchy and ``configure_logging``."""

import io
import logging

import pytest

from repro.obs.logs import (
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
    reset_logging,
)


@pytest.fixture(autouse=True)
def clean_handlers():
    reset_logging()
    yield
    reset_logging()


def test_root_logger_carries_a_null_handler():
    root = logging.getLogger(ROOT_LOGGER_NAME)
    assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


def test_get_logger_prefixes_names():
    assert get_logger("solver.pipeline").name == "repro.solver.pipeline"
    assert get_logger().name == "repro"
    assert get_logger("repro").name == "repro"
    assert get_logger("repro.obs").name == "repro.obs"


def test_child_loggers_propagate_to_the_configured_handler():
    stream = io.StringIO()
    configure_logging("INFO", stream=stream)
    get_logger("solver.pipeline").info("hello from the pipeline")
    out = stream.getvalue()
    assert "hello from the pipeline" in out
    assert "repro.solver.pipeline" in out
    assert "INFO" in out


def test_configure_logging_is_idempotent():
    root = logging.getLogger(ROOT_LOGGER_NAME)
    baseline = len(root.handlers)
    handler1 = configure_logging("INFO")
    handler2 = configure_logging("DEBUG")
    assert handler1 is handler2
    assert len(root.handlers) == baseline + 1
    assert handler2.level == logging.DEBUG


def test_configure_logging_accepts_level_numbers():
    handler = configure_logging(logging.WARNING)
    assert handler.level == logging.WARNING


def test_configure_logging_rejects_unknown_level_names():
    with pytest.raises(ValueError, match="unknown log level"):
        configure_logging("LOUD")


def test_level_filters_messages():
    stream = io.StringIO()
    configure_logging("WARNING", stream=stream)
    log = get_logger("quiet")
    log.info("not shown")
    log.warning("shown")
    out = stream.getvalue()
    assert "not shown" not in out
    assert "shown" in out


def test_reset_logging_detaches_the_handler():
    stream = io.StringIO()
    configure_logging("INFO", stream=stream)
    reset_logging()
    get_logger("after").info("silent again")
    assert stream.getvalue() == ""
