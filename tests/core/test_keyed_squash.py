"""Keyed-squash elimination: ``DISTINCT R ≡ R`` under a key hypothesis.

The absorption step added for the static-analysis tier: a squash whose
body is a product of propositions and keyed relation atoms is the
identity, because each factor is already ≤ 1 (paper Sec. 4.2: keys
force set-valuedness).  This is the lemma that lets the verification
pipeline certify the planner's ``distinct_elim_under_key`` extractions.
"""

from repro.core import ast
from repro.core.equivalence import (
    Hypotheses,
    KeyConstraint,
    NO_HYPOTHESES,
    check_query_equivalence,
)
from repro.core.schema import INT, Leaf, Node

SCHEMA = Node(Leaf(INT), Leaf(INT))
R = ast.Table("R", SCHEMA)
S = ast.Table("S", SCHEMA)
KEY_R = Hypotheses(keys=(KeyConstraint("R", "k", Leaf(INT)),))


class TestKeyedSquash:
    def test_distinct_of_keyed_table_is_identity(self):
        assert check_query_equivalence(ast.Distinct(R), R,
                                       hyps=KEY_R).equal

    def test_not_equal_without_the_key(self):
        assert not check_query_equivalence(ast.Distinct(R), R,
                                           hyps=NO_HYPOTHESES).equal

    def test_key_on_other_table_does_not_leak(self):
        assert not check_query_equivalence(ast.Distinct(S), S,
                                           hyps=KEY_R).equal

    def test_distinct_of_filtered_keyed_table(self):
        # the squashed body mixes a keyed atom with a predicate factor;
        # both are ≤ 1, so the squash still splices
        q = ast.Where(R, ast.PredTrue())
        assert check_query_equivalence(ast.Distinct(q), q,
                                       hyps=KEY_R).equal

    def test_product_of_keyed_tables(self):
        hyps = Hypotheses(keys=(KeyConstraint("R", "k", Leaf(INT)),
                                KeyConstraint("S", "j", Leaf(INT)),))
        q = ast.Product(R, S)
        assert check_query_equivalence(ast.Distinct(q), q, hyps=hyps).equal
        assert not check_query_equivalence(ast.Distinct(q), q,
                                           hyps=KEY_R).equal
